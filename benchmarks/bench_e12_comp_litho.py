"""E12 — Sawicki: "computational lithography has been one of the
primary enablers of feature scaling in the absence of EUV."  Rossi:
"RET, OPC and multi-patterning techniques have made possible the bring
up of 14nm and 10nm without introducing ... EUV."

Reproduction: per node, print the metal-1 grating with a single 193i
exposure, then with the node's multi-patterning split (per-mask pitch =
colors x pitch); show OPC recovering 2-D line-end fidelity; show EUV
printing the same pitch in one exposure.
"""

import numpy as np
import pytest

from repro.litho import apply_opc, dense_line_mask
from repro.litho.aerial import EUV_135, printability
from repro.tech import colors_required, get_node

from conftest import report

NODES_UNDER_TEST = ("28nm", "20nm", "14nm", "10nm")


def _grating_passes(pitch_nm, system=None, spec=None):
    kwargs = {}
    if system is not None:
        kwargs["system"] = system
    mask = dense_line_mask(pitch_nm, pixel_nm=2.0)
    result = printability(mask, 2.0, epe_spec_nm=spec or 8.0, **kwargs)
    return result


@pytest.fixture(scope="module")
def node_print_table():
    table = {}
    for name in NODES_UNDER_TEST:
        node = get_node(name)
        pitch = node.metal1_pitch_nm
        k = colors_required(pitch)
        single = _grating_passes(pitch)
        split = _grating_passes(pitch * k)
        table[name] = {
            "pitch": pitch, "k": k,
            "single_ok": single["passes"],
            "single_epe": single["max_epe_nm"],
            "split_ok": split["passes"],
            "split_epe": split["max_epe_nm"],
        }
    return table


def test_sub_80nm_pitch_fails_single_exposure(node_print_table):
    rows = [f"{n}: pitch {v['pitch']:.0f}nm, single "
            f"{'OK' if v['single_ok'] else 'FAIL'} "
            f"(EPE {v['single_epe']:.0f}nm), {v['k']}-mask split "
            f"{'OK' if v['split_ok'] else 'FAIL'} "
            f"(EPE {v['split_epe']:.0f}nm)"
            for n, v in node_print_table.items()]
    report("E12", rows)
    assert node_print_table["28nm"]["single_ok"]
    for name in ("20nm", "14nm", "10nm"):
        assert not node_print_table[name]["single_ok"], name


def test_multipatterning_brings_up_14_and_10nm_without_euv(
        node_print_table):
    for name in ("20nm", "14nm", "10nm"):
        assert node_print_table[name]["split_ok"], name


def test_euv_would_print_these_pitches_directly():
    for name in ("14nm", "10nm"):
        pitch = get_node(name).metal1_pitch_nm
        mask = dense_line_mask(pitch, pixel_nm=1.0)
        result = printability(mask, 1.0, EUV_135,
                              epe_spec_nm=0.1 * pitch)
        assert result["passes"], name


def test_opc_recovers_line_end_fidelity():
    """The OPC half of computational lithography, on 2-D patterns."""
    target = np.zeros((200, 160), dtype=bool)
    for r0 in range(10, 190, 50):
        target[r0:r0 + 22, 10:70] = True
        target[r0:r0 + 22, 85:150] = True
    raw = printability(target, 2.0)
    opc = apply_opc(target, 2.0, iterations=15)
    corrected = printability(target, 2.0, mask=opc.mask)
    report("E12", [
        f"line-end pattern: raw EPE rms {raw['rms_epe_nm']:.1f} nm, "
        f"after OPC {corrected['rms_epe_nm']:.1f} nm "
        f"({opc.iterations} iterations, "
        f"{opc.improvement:.1f}x improvement)"])
    assert opc.improvement > 3.0
    assert corrected["rms_epe_nm"] < raw["rms_epe_nm"] / 3


def test_opc_iteration_ablation():
    """Ablation: EPE improves monotonically-ish with OPC iterations."""
    target = np.zeros((120, 160), dtype=bool)
    for r0 in range(10, 110, 50):
        target[r0:r0 + 22, 10:70] = True
        target[r0:r0 + 22, 85:150] = True
    epes = []
    for iters in (1, 4, 12):
        opc = apply_opc(target, 2.0, iterations=iters)
        epes.append(opc.rms_epe_after_nm)
    report("E12", [f"OPC iterations 1/4/12 -> rms EPE "
                   f"{epes[0]:.1f}/{epes[1]:.1f}/{epes[2]:.1f} nm"])
    assert epes[2] <= epes[0]


def test_bench_opc(benchmark):
    """Benchmark a 12-iteration OPC run on a line-end pattern."""
    target = np.zeros((120, 160), dtype=bool)
    for r0 in range(10, 110, 50):
        target[r0:r0 + 22, 10:70] = True
    result = benchmark(
        lambda: apply_opc(target, 2.0, iterations=12).rms_epe_after_nm)
    assert result >= 0
