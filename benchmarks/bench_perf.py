#!/usr/bin/env python
"""Standing performance-regression harness for the hot kernels.

Times the kernels the optimization inner loops lean on — scalar STA,
cold vectorized STA, incremental STA updates, global placement, global
routing — on three synthetic design sizes, plus the end-to-end sizing
loop with per-trial full STA versus incremental updates.  Results are
written to ``BENCH_perf.json`` (repo root by default) so regressions
show up in review diffs.

Every timed kernel runs inside an
:func:`orchestrate.telemetry.kernel_span`, and the spans are logged to
a :class:`~repro.learn.rundb.RunDatabase` at the end — the same
self-monitoring pipeline the flow sweeps use.

Correctness is asserted alongside speed: the incremental engine's
arrivals, requireds, and WNS must match the scalar analyzer bit for
bit, and the sizing loop must make the identical resize decisions in
both modes.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py            # full
    PYTHONPATH=src python benchmarks/bench_perf.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_perf.py --check    # gate

``--check`` exits nonzero unless incremental STA is at least 2x faster
than a cold analysis on the medium design, the analytic placer beats
the quadratic baseline by >=5x (quick) / >=50x (full) on the large
design, analytic HPWL stays within 1.02x of the baseline, and both
placements agree on post-placement timing sign-off.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.learn.rundb import RunDatabase
from repro.netlist import build_library, registered_cloud
from repro.orchestrate.telemetry import TelemetrySink, kernel_span
from repro.place.analytic import analytic_place
from repro.place.global_place import global_place
from repro.route.global_route import route_placement
from repro.synthesis.sizing import size_gates
from repro.tech import get_node
from repro.timing import (
    IncrementalTimingAnalyzer,
    TimingAnalyzer,
    WireModel,
)

# (num_inputs, num_flops, num_gates) per design size.
FULL_SIZES = {
    "small": (24, 64, 2000),
    "medium": (32, 128, 6000),
    "large": (48, 192, 12000),
}
QUICK_SIZES = {
    "small": (12, 24, 300),
    "medium": (16, 48, 1500),
    "large": (24, 64, 4000),
}
STA_REPEATS = 3          # best-of-N for the full-analysis kernels
RESIZE_TRIALS = 40       # resize+update pairs timed per design


def _tight_clock(nl, wm) -> float:
    """A clock period ~25% below the design's critical delay, so the
    sizing loop has negative slack to chase."""
    report = TimingAnalyzer(nl, wm).analyze()
    return 0.75 * report.critical_delay_ps


def _resize_candidates(nl, count):
    """Evenly spread (gate, other_cell) pairs for resize trials."""
    lib = nl.library
    gates = [g for g in nl.combinational_gates()
             if g.cell.name.endswith("_X1_rvt")]
    step = max(1, len(gates) // count)
    picked = []
    for g in gates[::step][:count]:
        other = lib.cells.get(g.cell.name.replace("_X1_", "_X2_"))
        if other is not None:
            picked.append((g.name, g.cell, other))
    return picked


def _assert_identical(inc_report, ref_report, context):
    if (inc_report.arrival_ps != ref_report.arrival_ps
            or inc_report.required_ps != ref_report.required_ps
            or inc_report.wns_ps != ref_report.wns_ps):
        raise AssertionError(
            f"incremental STA diverged from scalar STA ({context})")


def bench_sta(name, nl, wm, T, sink) -> dict:
    """Scalar vs cold-vectorized vs incremental STA on one design."""
    scalar = TimingAnalyzer(nl, wm, T)
    scalar_s = []
    for _ in range(STA_REPEATS):
        with kernel_span(sink, "sta_scalar"):
            ref = scalar.analyze()
        scalar_s.append(sink.spans[-1].wall_s)

    with IncrementalTimingAnalyzer(nl, wm, T) as inc:
        cold_s = []
        for _ in range(STA_REPEATS):
            with kernel_span(sink, "sta_cold"):
                got = inc.analyze()
            cold_s.append(sink.spans[-1].wall_s)
        _assert_identical(got, ref, f"{name} cold")

        # The vectorized passes alone, on the cached levelized graph.
        passes_s = []
        for _ in range(STA_REPEATS):
            with kernel_span(sink, "sta_passes"):
                got = inc.repropagate()
            passes_s.append(sink.spans[-1].wall_s)
        _assert_identical(got, ref, f"{name} passes")

        trials = _resize_candidates(nl, RESIZE_TRIALS)
        with kernel_span(sink, "sta_incremental"):
            for gname, orig, other in trials:
                nl.resize_gate(gname, other)
                inc.update()
                nl.resize_gate(gname, orig)
                inc.update()
        incr_s = sink.spans[-1].wall_s / max(2 * len(trials), 1)
        # After the revert pairs the netlist is back to its original
        # cells: the incremental state must still match scalar STA.
        _assert_identical(inc.update(), ref,
                          f"{name} after {2 * len(trials)} updates")

    return {
        "sta_scalar_ms": 1e3 * min(scalar_s),
        "sta_cold_ms": 1e3 * min(cold_s),
        "sta_passes_ms": 1e3 * min(passes_s),
        "sta_incremental_ms": 1e3 * incr_s,
        "sta_updates_timed": 2 * len(trials),
        "speedup_passes_vs_scalar": min(scalar_s) / min(passes_s),
        "speedup_incr_vs_cold": min(cold_s) / incr_s,
    }


#: The analytic engine's per-phase kernel_span names.
PLACE_PHASES = ("place_assemble", "place_solve", "place_spread",
                "place_legalize", "place_detailed")


def _assert_legal(placement) -> None:
    """Rows + no overlaps + inside die — QoR numbers must be earned."""
    placement.validate()
    row_h = placement.row_height_um
    rows: dict = {}
    for gname, (x, y) in placement.positions.items():
        r = (y - row_h / 2) / row_h
        if abs(r - round(r)) > 1e-6:
            raise AssertionError(f"{gname} off-row")
        gate = placement.netlist.gates[gname]
        width = max(gate.cell.area_um2 / row_h, 0.05)
        rows.setdefault(round(r), []).append((x - width / 2,
                                              x + width / 2))
    for cells in rows.values():
        cells.sort()
        for (_, ra), (lb, _) in zip(cells, cells[1:]):
            if lb < ra - 1e-6:
                raise AssertionError("overlapping cells in a row")


def _signoff_wns(nl, placement, T) -> float:
    """Post-placement WNS with this placement's parasitics."""
    wm = WireModel.for_node(nl.library.node, placement.net_lengths())
    return TimingAnalyzer(nl, wm, T).analyze().wns_ps


def bench_physical(name, nl, T, sink) -> dict:
    """Both placement engines (timing + QoR) and global route.

    The baseline quadratic placer is timed first as the QoR
    reference; the analytic engine runs with per-phase
    ``kernel_span`` telemetry (assemble/solve/spread/legalize/
    detailed).  The headline ``place_ms`` is the analytic engine —
    the flow default — and ``place_base_ms``/``hpwl_ratio`` keep the
    comparison honest.  Legality is asserted for the analytic result,
    and both placements must agree on post-placement timing sign-off.
    """
    with kernel_span(sink, "place_quadratic"):
        base = global_place(nl, utilization=0.35, seed=0)
    base_s = sink.spans[-1].wall_s
    base_hpwl = base.total_hpwl()

    mark = len(sink.spans)
    with kernel_span(sink, "place_analytic"):
        placement = analytic_place(nl, utilization=0.35, seed=0,
                                   telemetry=sink)
    place_s = sink.spans[-1].wall_s
    phases = {p: 0.0 for p in PLACE_PHASES}
    for span in sink.spans[mark:-1]:
        if span.stage in phases:
            phases[span.stage] += span.wall_s
    _assert_legal(placement)
    hpwl = placement.total_hpwl()

    wns_new = _signoff_wns(nl, placement, T)
    wns_base = _signoff_wns(nl, base, T)

    with kernel_span(sink, "global_route"):
        route_placement(placement, engine="line_search",
                        gcell_um=8.0, max_iterations=2)
    route_s = sink.spans[-1].wall_s
    return {
        "place_ms": 1e3 * place_s,
        "place_base_ms": 1e3 * base_s,
        "place_speedup": base_s / place_s if place_s > 0
        else float("inf"),
        "hpwl_um": float(hpwl),
        "hpwl_base_um": float(base_hpwl),
        "hpwl_ratio": float(hpwl / base_hpwl) if base_hpwl > 0
        else 1.0,
        **{f"{p}_ms": 1e3 * s for p, s in phases.items()},
        "signoff_wns_ps": float(wns_new),
        "signoff_base_wns_ps": float(wns_base),
        "signoff_parity": bool((wns_new >= 0) == (wns_base >= 0)),
        "route_ms": 1e3 * route_s,
    }


def bench_sizing(lib, params, wm, sink) -> dict:
    """The acceptance experiment: the full sizing loop with per-trial
    scalar STA versus incremental updates, on two regenerated copies of
    the same design — decisions and final netlists must be identical."""
    ni, nf, ng = params

    def fresh():
        nl = registered_cloud(ni, nf, ng, lib, seed=11, name="sizing")
        return nl, _tight_clock(nl, wm)

    nl_full, T = fresh()
    with kernel_span(sink, "sizing_full_sta"):
        rep_full = size_gates(nl_full, wire_model=wm,
                              clock_period_ps=T, max_passes=2,
                              incremental=False)
    full_s = sink.spans[-1].wall_s

    nl_inc, T2 = fresh()
    assert T2 == T
    with kernel_span(sink, "sizing_incremental"):
        rep_inc = size_gates(nl_inc, wire_model=wm,
                             clock_period_ps=T, max_passes=2,
                             incremental=True)
    inc_s = sink.spans[-1].wall_s

    cells_full = {n: g.cell.name for n, g in nl_full.gates.items()}
    cells_inc = {n: g.cell.name for n, g in nl_inc.gates.items()}
    identical = (rep_full == rep_inc and cells_full == cells_inc)
    if not identical:
        raise AssertionError(
            "sizing diverged between full-STA and incremental modes")
    return {
        "clock_ps": T,
        "resized": rep_inc["resized"],
        "before_ps": rep_inc["before_ps"],
        "after_ps": rep_inc["after_ps"],
        "full_sta_s": full_s,
        "incremental_s": inc_s,
        "speedup": full_s / inc_s if inc_s > 0 else float("inf"),
        "identical": identical,
    }


def run(quick: bool) -> tuple[dict, TelemetrySink]:
    sizes = QUICK_SIZES if quick else FULL_SIZES
    lib = build_library(get_node("28nm"),
                        vt_flavors=("lvt", "rvt", "hvt"))
    wm = WireModel.for_node(lib.node)
    sink = TelemetrySink()
    results: dict = {"quick": quick, "designs": {}}
    for name, (ni, nf, ng) in sizes.items():
        nl = registered_cloud(ni, nf, ng, lib, seed=7, name=name)
        T = _tight_clock(nl, wm)
        entry = {
            "gates": nl.num_instances(),
            "flops": len(nl.sequential_gates()),
            "clock_ps": T,
        }
        t0 = time.perf_counter()
        entry.update(bench_sta(name, nl, wm, T, sink))
        entry.update(bench_physical(name, nl, T, sink))
        entry["total_s"] = time.perf_counter() - t0
        results["designs"][name] = entry
        print(f"[{name}] gates={entry['gates']} "
              f"scalar={entry['sta_scalar_ms']:.2f}ms "
              f"cold={entry['sta_cold_ms']:.2f}ms "
              f"passes={entry['sta_passes_ms']:.2f}ms "
              f"incr={entry['sta_incremental_ms']:.4f}ms "
              f"(incr vs cold {entry['speedup_incr_vs_cold']:.1f}x) "
              f"place={entry['place_ms']:.0f}ms "
              f"(quadratic {entry['place_base_ms']:.0f}ms, "
              f"{entry['place_speedup']:.1f}x, "
              f"hpwl {entry['hpwl_ratio']:.3f}) "
              f"route={entry['route_ms']:.0f}ms")
        print(f"        phases: " + " ".join(
            f"{p.removeprefix('place_')}="
            f"{entry[p + '_ms']:.1f}ms" for p in PLACE_PHASES))

    results["sizing"] = bench_sizing(lib, sizes["large"], wm, sink)
    s = results["sizing"]
    print(f"[sizing/large] full-STA {s['full_sta_s']:.2f}s vs "
          f"incremental {s['incremental_s']:.2f}s "
          f"({s['speedup']:.1f}x, {s['resized']} resized, "
          f"identical={s['identical']})")

    # Per-kernel spans feed the same self-monitoring store as flow runs.
    rundb = RunDatabase()
    rundb.log_telemetry("bench_perf", sink.spans)
    results["kernel_profile"] = rundb.stage_profile("bench_perf")
    return results, sink


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small designs (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless incremental STA is >=2x "
                             "faster than cold on the medium design")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_perf.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    results, _ = run(args.quick)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        failed = False
        speedup = results["designs"]["medium"]["speedup_incr_vs_cold"]
        if speedup < 2.0:
            print(f"CHECK FAILED: incremental STA only "
                  f"{speedup:.2f}x faster than cold (need >=2x)")
            failed = True
        else:
            print(f"CHECK OK: incremental STA {speedup:.1f}x faster "
                  f"than cold on medium")
        # Placement gates: the analytic engine must beat the
        # quadratic baseline on time without giving up wirelength or
        # sign-off status.  Quick mode (CI, 4k gates) gates >=5x; the
        # full 12k-gate run must hold the tentpole >=50x claim.
        need = 5.0 if results["quick"] else 50.0
        large = results["designs"]["large"]
        if large["place_speedup"] < need:
            print(f"CHECK FAILED: analytic placement only "
                  f"{large['place_speedup']:.1f}x faster than the "
                  f"quadratic baseline on large (need >={need:g}x)")
            failed = True
        else:
            print(f"CHECK OK: analytic placement "
                  f"{large['place_speedup']:.1f}x faster on large")
        for dname, entry in results["designs"].items():
            if entry["hpwl_ratio"] > 1.02:
                print(f"CHECK FAILED: analytic HPWL on {dname} is "
                      f"{entry['hpwl_ratio']:.3f}x the baseline "
                      f"(max 1.02)")
                failed = True
            if not entry["signoff_parity"]:
                print(f"CHECK FAILED: post-placement sign-off status "
                      f"diverged on {dname} "
                      f"(new WNS {entry['signoff_wns_ps']:.1f}ps, "
                      f"base {entry['signoff_base_wns_ps']:.1f}ps)")
                failed = True
        if not failed:
            worst = max(e["hpwl_ratio"]
                        for e in results["designs"].values())
            print(f"CHECK OK: HPWL ratio <= {worst:.3f}, "
                  f"sign-off parity on all designs")
        return 1 if failed else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
