#!/usr/bin/env python
"""Serialization benchmark: PackedNetlist vs pickle as flow currency.

Before the columnar interchange refactor, every flow stage pickled its
design twice (once into the result cache, once into the run journal)
and pickled it a third time just to hash it for the cache key.  This
harness measures the stage-level serialization pipeline both ways:

* **pickle pipeline** — ``pickle.dumps`` for the cache blob, a second
  ``pickle.dumps`` for the journal blob, plus ``pickle.dumps`` +
  SHA-256 for the stage key (the pre-refactor ``stable_hash`` path).
* **packed pipeline** — one ``Netlist.to_packed()`` pack, one
  ``to_bytes()`` encode for the cache, the memoized re-encode for the
  journal, and ``content_digest()`` for the key.

Blob sizes compare the raw pickle of the object netlist against the
compressed ``.pnl`` container.  Decode compares ``pickle.loads``
against ``PackedNetlist.from_bytes(...).to_netlist(library)`` (the
full rehydration a worker performs).  Correctness rides along: the
rehydrated netlist must report the same content digest.

Results are written to ``BENCH_serialize.json`` (repo root by default)
so regressions show up in review diffs.

Usage::

    PYTHONPATH=src python benchmarks/bench_serialize.py           # full
    PYTHONPATH=src python benchmarks/bench_serialize.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_serialize.py --check   # gate

``--check`` exits nonzero unless, on the largest design, the ``.pnl``
blob is at least 3x smaller than the pickle and the packed stage
pipeline is at least 2x faster than the pickle pipeline.  In
``--quick`` mode the speed gate drops to 1.5x: on CI-smoke-sized
designs fixed per-call overheads eat into the ratio.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pickle
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.netlist import build_library, registered_cloud
from repro.netlist.packed import PackedNetlist
from repro.tech import get_node

# (num_inputs, num_flops, num_gates) per design size.
FULL_SIZES = {
    "small": (16, 64, 1000),
    "medium": (32, 256, 10000),
    "large": (64, 512, 50000),
}
QUICK_SIZES = {
    "small": (12, 24, 400),
    "medium": (16, 48, 1500),
    "large": (24, 96, 4000),
}
REPEATS = 3              # best-of-N for every timed pipeline

SIZE_RATIO_MIN = 3.0         # .pnl blob vs pickle blob, largest design
SPEED_RATIO_MIN = 2.0        # pickle pipeline vs packed pipeline, ditto
QUICK_SPEED_RATIO_MIN = 1.5  # smoke designs: fixed overheads dominate


def _best_of(fn, repeats=REPEATS) -> float:
    """Best-of-N wall seconds; best-of beats mean for small kernels."""
    xs = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        xs.append(time.perf_counter() - t0)
    return min(xs)


def _pickle_pipeline(nl) -> bytes:
    """What one stage cost pre-refactor: cache blob + journal blob +
    key hash, each a fresh pickle of the object graph."""
    cache_blob = pickle.dumps(nl, protocol=pickle.HIGHEST_PROTOCOL)
    pickle.dumps(nl, protocol=pickle.HIGHEST_PROTOCOL)
    hashlib.sha256(
        pickle.dumps(nl, protocol=pickle.HIGHEST_PROTOCOL)).hexdigest()
    return cache_blob


def _packed_pipeline(nl) -> bytes:
    """The columnar equivalent: pack once, encode for the cache, reuse
    the memoized encoding for the journal, digest for the key."""
    packed = PackedNetlist.from_netlist(nl)
    cache_blob = packed.to_bytes()
    packed.to_bytes()          # journal blob: memoized, near-free
    packed.content_digest()
    return cache_blob


def bench_design(name, params, lib) -> dict:
    ni, nf, ng = params
    nl = registered_cloud(ni, nf, ng, lib, seed=5, name=name)

    pickle_blob = pickle.dumps(nl, protocol=pickle.HIGHEST_PROTOCOL)
    packed = nl.to_packed()
    pnl_blob = packed.to_bytes()

    pickle_s = _best_of(lambda: _pickle_pipeline(nl))
    packed_s = _best_of(lambda: _packed_pipeline(nl))

    pickle_dec_s = _best_of(lambda: pickle.loads(pickle_blob))
    packed_dec_s = _best_of(
        lambda: PackedNetlist.from_bytes(pnl_blob).to_netlist(lib))

    back = PackedNetlist.from_bytes(pnl_blob).to_netlist(lib)
    if back.content_digest() != nl.content_digest():
        raise AssertionError(
            f"[{name}] .pnl round-trip changed the content digest")

    return {
        "gates": nl.num_instances(),
        "flops": len(nl.sequential_gates()),
        "pickle_bytes": len(pickle_blob),
        "pnl_bytes": len(pnl_blob),
        "size_ratio": len(pickle_blob) / len(pnl_blob),
        "pickle_pipeline_ms": pickle_s * 1e3,
        "packed_pipeline_ms": packed_s * 1e3,
        "pipeline_ratio": pickle_s / packed_s if packed_s > 0
        else float("inf"),
        "pickle_decode_ms": pickle_dec_s * 1e3,
        "packed_decode_ms": packed_dec_s * 1e3,
    }


def run(quick: bool) -> dict:
    sizes = QUICK_SIZES if quick else FULL_SIZES
    lib = build_library(get_node("28nm"),
                        vt_flavors=("lvt", "rvt", "hvt"))
    results: dict = {"quick": quick, "repeats": REPEATS, "designs": {}}
    for name, params in sizes.items():
        entry = bench_design(name, params, lib)
        results["designs"][name] = entry
        print(f"[{name}] gates={entry['gates']} "
              f"pickle={entry['pickle_bytes']}B "
              f"pnl={entry['pnl_bytes']}B "
              f"({entry['size_ratio']:.2f}x smaller) "
              f"pipeline {entry['pickle_pipeline_ms']:.1f}ms vs "
              f"{entry['packed_pipeline_ms']:.1f}ms "
              f"({entry['pipeline_ratio']:.2f}x) "
              f"decode {entry['pickle_decode_ms']:.1f}ms vs "
              f"{entry['packed_decode_ms']:.1f}ms")
    return results


def check(results: dict) -> int:
    """Gate the largest design on the acceptance thresholds."""
    large = results["designs"]["large"]
    speed_min = (QUICK_SPEED_RATIO_MIN if results["quick"]
                 else SPEED_RATIO_MIN)
    failures = []
    if large["size_ratio"] < SIZE_RATIO_MIN:
        failures.append(
            f"size ratio {large['size_ratio']:.2f}x < "
            f"{SIZE_RATIO_MIN}x")
    if large["pipeline_ratio"] < speed_min:
        failures.append(
            f"pipeline ratio {large['pipeline_ratio']:.2f}x < "
            f"{speed_min}x")
    for f in failures:
        print(f"CHECK FAILED: {f}", file=sys.stderr)
    if not failures:
        print(f"check OK: size {large['size_ratio']:.2f}x "
              f">= {SIZE_RATIO_MIN}x, pipeline "
              f"{large['pipeline_ratio']:.2f}x >= {speed_min}x")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small designs (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless the largest design meets the "
                             "size and pipeline-speed thresholds")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_serialize.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    results = run(args.quick)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.check:
        return check(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
