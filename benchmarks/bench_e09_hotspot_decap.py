"""E9 — Rossi: "In ASICs for networking we are used to face products
with switching activities in excess of 5X if compared to most of
standard processors: the management of the power density and the
removal of hot spots cannot rely on any automatic tool.  The
identification of the most critical situations and the on-the-fly
introduction of decoupling cells as well as the management of power
crowding should be one of the key parameters the tool itself should
take care [of]."

Reproduction: a die with crossbar-core tiles at 5-6x background
activity; the automatic loop (decap insertion, then activity
spreading) must clear the violation map without designer input.
"""

import numpy as np
import pytest

from repro.power import PowerGrid, insert_decaps
from repro.power.grid import power_density_map, spread_hotspots

from conftest import report

TILES = 12
VDD = 0.9
TOTAL_UW = 4.2e6   # a ~4 W networking sub-chip
HOT = [(5, 5), (5, 6), (6, 5), (6, 6)]   # the crossbar core


def make_grid(multiplier=5.5, seed=0, total_uw=TOTAL_UW):
    pm = power_density_map(TILES, TILES, total_uw, hotspot_tiles=HOT,
                           hotspot_multiplier=multiplier, seed=seed)
    grid = PowerGrid(TILES, TILES, vdd=VDD)
    grid.set_current_from_power(pm)
    return grid


def test_5x_activity_creates_hotspots():
    calm = make_grid(multiplier=1.0)
    hot = make_grid(multiplier=5.5)
    calm_report = calm.solve()
    hot_report = hot.solve()
    report("E9", [
        f"1x activity: worst {calm_report.worst_drop_mv:.1f} mV, "
        f"{calm_report.violation_count} violations",
        f"5.5x activity: worst {hot_report.worst_drop_mv:.1f} mV, "
        f"{hot_report.violation_count} violations",
    ])
    assert hot_report.violation_count > calm_report.violation_count
    assert hot_report.worst_drop_mv > calm_report.worst_drop_mv


def test_worst_tile_is_the_crossbar_core():
    grid = make_grid()
    y, x = grid.solve().worst_tile()
    assert 4 <= y <= 7 and 4 <= x <= 7


def test_automatic_decap_loop_clears_dynamic_hotspots():
    grid = make_grid()
    before = grid.solve()
    plan = insert_decaps(grid, budget_ff=400_000, step_ff=5_000)
    after = grid.solve()
    report("E9", [
        f"decap loop: {plan.count()} insertions, "
        f"{plan.total_cap_ff / 1000:.0f} pF total",
        f"violations {before.violation_count} -> "
        f"{after.violation_count}; worst "
        f"{before.worst_drop_mv:.1f} -> {after.worst_drop_mv:.1f} mV",
    ])
    assert plan.count() > 0
    assert after.worst_drop_mv < before.worst_drop_mv
    assert after.violation_count == 0


def test_spreading_clears_power_crowding():
    """'Management of power crowding': an extreme 10x local hotspot at
    moderate total power is cleared by activity spreading alone."""
    grid = make_grid(multiplier=10.0, total_uw=3.2e6)
    before = grid.solve()
    moves = spread_hotspots(grid, iterations=300)
    after = grid.solve()
    report("E9", [f"10x crowding: {before.violation_count} violations "
                  f"-> {after.violation_count} after {moves} moves"])
    assert before.violation_count > 0
    assert after.violation_count == 0


def test_full_retrofit_escalation_at_high_power():
    """When decap cannot fix the static component, the automatic loop
    escalates to grid upsizing (the retrofit's third action)."""
    grid = make_grid(total_uw=4.8e6)
    before = grid.solve()
    insert_decaps(grid, budget_ff=400_000, step_ff=5_000)
    after_decap = grid.solve()
    grid.strap_res_ohm *= 0.5   # double the strap metal
    final = grid.solve()
    report("E9", [
        f"4.8W escalation: {before.violation_count} -> "
        f"{after_decap.violation_count} (decap) -> "
        f"{final.violation_count} (grid upsize), worst "
        f"{final.worst_drop_mv:.1f} mV"])
    assert after_decap.violation_count < before.violation_count
    assert final.violation_count == 0


def test_decaps_target_the_hotspots():
    grid = make_grid()
    plan = insert_decaps(grid, budget_ff=100_000, step_ff=5_000)
    assert plan.placements, "loop must have acted"
    near_core = sum(1 for y, x, _ in plan.placements
                    if 3 <= y <= 8 and 3 <= x <= 8)
    assert near_core >= len(plan.placements) * 0.7


def test_budget_is_respected():
    grid = make_grid(multiplier=8.0)
    plan = insert_decaps(grid, budget_ff=50_000, step_ff=5_000)
    assert plan.total_cap_ff <= 50_000


def test_bench_automatic_loop(benchmark):
    """Benchmark the decap-insertion loop on the 5.5x die."""
    def run():
        grid = make_grid()
        return insert_decaps(grid, budget_ff=200_000,
                             step_ff=10_000).count()
    assert benchmark(run) >= 0
