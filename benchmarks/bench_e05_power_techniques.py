"""E5 — Domic: "Voltage scaling use increased at 130 nanometers, when
the dynamic power reduction started to be offset by the static power
increase.  At 90/65 nanometers, it became virtually impossible to
design an IC without using sophisticated power reduction techniques.
'Design for power' was an enabler that prevented massive amounts of
'dark silicon' ...  Literally, scores of voltage/supply/shutdown
domains even at 180 nanometers are common."

Reproduction: (a) the static-vs-dynamic crossover swept across nodes on
identical logic; (b) the technique ladder's cumulative reduction; (c)
dark-silicon recovery; (d) a scores-of-domains 180 nm power intent that
verifies cleanly once auto-protected.
"""

import pytest

from repro.netlist import build_library, logic_cloud
from repro.power import dark_silicon_fraction, power_report, technique_ladder
from repro.power.intent import scores_of_domains_intent
from repro.tech import get_node

from conftest import report

SWEEP_NODES = ("250nm", "180nm", "130nm", "90nm", "65nm", "45nm", "28nm")


@pytest.fixture(scope="module")
def static_fraction_by_node():
    out = {}
    for name in SWEEP_NODES:
        lib = build_library(get_node(name))
        nl = logic_cloud(8, 8, 200, lib, seed=5)
        rep = power_report(nl, freq_ghz=0.2, seed=0)
        out[name] = rep.static_fraction
    return out


def test_leakage_becomes_material_at_130nm(static_fraction_by_node):
    rows = [f"{n}: static fraction {f * 100:.2f}%"
            for n, f in static_fraction_by_node.items()]
    report("E5", rows)
    # Negligible at 250/180, then a jump of more than an order of
    # magnitude by 90/65 nm — the crisis the panel dates.
    assert static_fraction_by_node["180nm"] < 0.005
    assert static_fraction_by_node["90nm"] > \
        static_fraction_by_node["180nm"] * 10
    assert static_fraction_by_node["65nm"] > 0.01


def test_static_fraction_monotone_through_planar_era(
        static_fraction_by_node):
    vals = [static_fraction_by_node[n] for n in SWEEP_NODES[:5]]
    assert all(a <= b * 1.05 for a, b in zip(vals, vals[1:]))


def test_technique_ladder_tames_power(lib65):
    nl = logic_cloud(8, 8, 250, lib65, seed=7)
    # Add flops so clock gating has a target.
    from repro.netlist import registered_cloud
    nl = registered_cloud(8, 32, 250, lib65, seed=7)
    ladder = technique_ladder(nl)
    rows = [f"{name}: {uw:.2f} uW" for name, uw in ladder.totals()]
    rows.append(f"cumulative reduction: {ladder.reduction_factor():.2f}x")
    report("E5", rows)
    assert ladder.reduction_factor() >= 1.5


def test_dark_silicon_prevented_by_techniques():
    raw = dark_silicon_fraction("10nm", tdp_w_per_mm2=0.15,
                                activity=0.25)
    helped = dark_silicon_fraction("10nm", tdp_w_per_mm2=0.15,
                                   activity=0.25,
                                   power_technique_factor=0.2)
    lit_gain = (1 - helped) / (1 - raw)
    report("E5", [f"10nm dark silicon: raw {raw * 100:.1f}%, with "
                  f"design-for-power {helped * 100:.1f}% "
                  f"({lit_gain:.1f}x more usable silicon)"])
    assert raw > 0.5            # "massive amounts" without techniques
    assert lit_gain >= 3.0      # techniques multiply the usable area


def test_dark_silicon_grows_along_roadmap():
    fractions = [dark_silicon_fraction(n, tdp_w_per_mm2=0.15,
                                       activity=0.25)
                 for n in ("90nm", "28nm", "10nm", "5nm")]
    assert all(a <= b + 1e-9 for a, b in zip(fractions, fractions[1:]))


def test_scores_of_domains_at_180nm_verify_cleanly():
    intent = scores_of_domains_intent(24, base_vdd=1.8)
    violations_before = len(intent.check())
    added = intent.auto_protect()
    report("E5", [f"180nm intent: 24 domains, {violations_before} raw "
                  f"violations, {added} protections inserted, "
                  f"{len(intent.check())} remaining"])
    assert intent.domain_count() == 24          # "scores" of domains
    assert violations_before > 0
    assert intent.check() == []                 # consistently verified


def test_bench_technique_ladder(benchmark, lib65):
    """Benchmark the full technique-ladder evaluation."""
    from repro.netlist import registered_cloud
    nl = registered_cloud(8, 24, 150, lib65, seed=9)
    factor = benchmark(lambda: technique_ladder(nl).reduction_factor())
    assert factor >= 1.0
