#!/usr/bin/env python
"""Chaos-smoke harness for the crash-safe flow runner.

For each seed, a journaled flow run is killed mid-flight at a
seed-chosen stage (via :class:`~repro.orchestrate.ChaosPolicy`), a
journal blob or disk-cache entry is optionally corrupted, and the run
is finished with :func:`~repro.orchestrate.resume_run`.  The harness
asserts two invariants per scenario:

* the resumed run's signoff metrics are bit-identical to an
  uninterrupted run of the same design, and
* only the frontier re-executes — every verified journal entry replays
  (telemetry spans tagged ``cache="journal"``), corrupted ones re-run.

Results land in ``BENCH_resilience.json`` (repo root by default).

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py            # seeds 0-9
    PYTHONPATH=src python benchmarks/bench_resilience.py --seeds 0 1 2
    PYTHONPATH=src python benchmarks/bench_resilience.py --seeds 0 1 2 --check

``--check`` exits nonzero if any scenario diverges from the clean
baseline or re-executes more than the frontier.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import FlowOptions
from repro.netlist import build_library, registered_cloud
from repro.orchestrate import (
    ChaosPolicy,
    ResultCache,
    RunJournal,
    TelemetrySink,
    WorkerCrash,
    corrupt_file,
    resume_run,
    run,
)
from repro.orchestrate.flows import STAGE_NAMES
from repro.tech import get_node

OPTS = dict(scan=True, cts=True)


def _design(lib):
    # Fresh per call: the flow mutates its subject (scan insertion).
    return registered_cloud(8, 16, 120, lib, seed=3)


def _qor(result):
    return (result.delay_ps, result.power_uw, result.hpwl_um,
            result.routed_wirelength, result.overflow,
            result.instances, result.area_um2)


def _scenario(seed: int) -> dict:
    rng = random.Random(seed)
    return {
        "seed": seed,
        "kill": rng.choice(STAGE_NAMES[1:]),   # after >=1 record
        "rot": rng.choice(("none", "journal", "cache")),
    }


def run_scenario(lib, clean, scenario, root: Path) -> dict:
    seed, kill = scenario["seed"], scenario["kill"]
    run_id = f"smoke{seed}"
    cache_dir = root / f"cache{seed}"
    cache = ResultCache(disk_dir=cache_dir) \
        if scenario["rot"] == "cache" else None

    t0 = time.perf_counter()
    try:
        run(_design(lib), lib, FlowOptions(**OPTS), journal_root=root,
            run_id=run_id, cache=cache,
            chaos=ChaosPolicy(seed=seed, crash_stages=(kill,)))
        raise AssertionError(f"chaos never fired at {kill}")
    except WorkerCrash:
        pass

    journal = RunJournal.open(root, run_id)
    journaled = {e["stage"] for e in journal.entries()}
    rotted = None
    if scenario["rot"] == "journal" and journaled:
        rotted = sorted(journaled)[seed % len(journaled)]
        corrupt_file(journal.blob_dir / f"{rotted}.pkl", seed=seed)
    elif scenario["rot"] == "cache":
        entries = sorted(cache_dir.glob("*.pkl"))
        if entries:
            corrupt_file(entries[seed % len(entries)], seed=seed)
        cache = ResultCache(disk_dir=cache_dir)

    sink = TelemetrySink()
    resumed = resume_run(run_id, journal_root=root, cache=cache,
                         telemetry=sink)
    wall_s = time.perf_counter() - t0

    replayed = {s.stage for s in sink.spans if s.cache == "journal"}
    executed = {s.stage for s in sink.spans if s.cache != "journal"}
    expected_replay = journaled - ({rotted} if rotted else set())
    identical = _qor(resumed) == clean
    frontier_only = (replayed == expected_replay
                     and executed == set(STAGE_NAMES) - expected_replay)
    return {
        **scenario,
        "rotted": rotted,
        "replayed": sorted(replayed),
        "executed": sorted(executed),
        "identical": identical,
        "frontier_only": frontier_only,
        "complete": RunJournal.open(root, run_id).is_complete,
        "wall_s": wall_s,
        "ok": identical and frontier_only,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, nargs="+",
                        default=list(range(10)),
                        help="scenario seeds (default 0-9)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero on any divergence")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_resilience.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    lib = build_library(get_node("28nm"),
                        vt_flavors=("lvt", "rvt", "hvt"))
    t0 = time.perf_counter()
    clean = _qor(run(_design(lib), lib, FlowOptions(**OPTS)))
    clean_s = time.perf_counter() - t0

    rows = []
    with tempfile.TemporaryDirectory(prefix="chaos_smoke_") as tmp:
        for seed in args.seeds:
            scenario = _scenario(seed)
            row = run_scenario(lib, clean, scenario, Path(tmp))
            rows.append(row)
            print(f"[seed{seed:3d}] kill={row['kill']:<9} "
                  f"rot={row['rot']:<7} "
                  f"replayed={len(row['replayed'])} "
                  f"executed={len(row['executed'])} "
                  f"{'OK' if row['ok'] else 'DIVERGED'}")

    bad = [r for r in rows if not r["ok"]]
    results = {
        "clean_run_s": clean_s,
        "scenarios": rows,
        "divergent": len(bad),
    }
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")

    if bad:
        print(f"CHECK FAILED: {len(bad)}/{len(rows)} scenarios "
              f"diverged: {[r['seed'] for r in bad]}")
        return 1 if args.check else 0
    print(f"CHECK OK: {len(rows)}/{len(rows)} interrupted runs "
          f"resumed bit-identical, frontier-only")
    return 0


if __name__ == "__main__":
    sys.exit(main())
