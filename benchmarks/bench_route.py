#!/usr/bin/env python
"""Routing engine parity/performance harness (batched vs maze).

Routes the same placed design with the sequential maze engine and the
vectorized batched engine, both resolved through the shared engine
registry, and records wall time, overflow, wirelength, and the batched
engine's kernel-phase breakdown to ``BENCH_route.json``.

The full tier routes a 50k-gate flattened hierarchical SoC under a
tiled floorplan; the quick tier shrinks the SoC an order of magnitude
for CI.  Both engines run the identical instance, iteration budget,
and seed — the bench measures engines, not configurations.

Usage::

    PYTHONPATH=src python benchmarks/bench_route.py            # full
    PYTHONPATH=src python benchmarks/bench_route.py --quick    # CI
    PYTHONPATH=src python benchmarks/bench_route.py --check    # gate

``--check`` exits nonzero unless:

* the batched engine is at least 10x (quick: 3x) faster than maze on
  the same instance (batched best-of-3 vs maze single run — the maze
  run dominates total bench time),
* overflow parity holds: batched overflow <= 1.02x maze overflow
  (both engines fully resolve the full-tier instance, so parity there
  means literal equality at zero),
* batched wirelength <= 1.02x maze wirelength,
* two seeded batched runs are bit-identical (paths compared
  cell-for-cell), and
* both the placement and routing stages resolve through
  ``repro.engines`` with construction-time knob validation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.flow import FlowOptions
from repro.engines import UnknownEngineError, default_engine, get_engine
from repro.netlist import build_library
from repro.netlist.generators import hierarchical_soc
from repro.netlist.hierarchy import flatten
from repro.place.placement import Placement
from repro.route import route_placement
from repro.tech import get_node

LAYERS = 8
GCELL_UM = 2.0
ITERATIONS = 4
SEED = 0
UTILIZATION = 0.2


def tiled_placement(nl, utilization: float = UTILIZATION,
                    row_height: float = 1.0) -> Placement:
    """Serpentine-in-tile placement of a flattened hierarchical SoC.

    Each block of the SoC gets a square tile of the die and fills it
    in serpentine row order — the regular, locality-preserving
    floorplan a real hierarchical flow would produce, without paying
    for a 50k-gate global placement inside a routing bench.
    """
    gates = list(nl.gates.values())
    area = sum(g.cell.area_um2 for g in gates)
    die = (area / utilization) ** 0.5
    groups: dict = {}
    for g in gates:
        key = g.name.split("_", 2)
        key = key[1] if len(key) > 2 and key[0] == "u" else "top"
        groups.setdefault(key, []).append(g)
    tiles = int(np.ceil(len(groups) ** 0.5))
    tw, th = die / tiles, die / tiles
    positions: dict = {}
    for bi, (key, members) in enumerate(sorted(groups.items())):
        ty, tx = divmod(bi, tiles)
        ox, oy = tx * tw, ty * th
        rows = max(1, int(th / row_height))
        per_row = max(1, -(-len(members) // rows))
        pitch = tw / per_row
        for i, g in enumerate(members):
            r, c = divmod(i, per_row)
            if r % 2:
                c = per_row - 1 - c
            positions[g.name] = (ox + (c + 0.5) * pitch,
                                 oy + (r + 0.5) * row_height)
    pads: dict = {}
    io = sorted(set(nl.primary_inputs) | set(nl.primary_outputs))
    for j, net in enumerate(io):
        t = j / max(len(io), 1)
        side, u = divmod(t * 4, 1)
        u *= die
        pads[net] = [(u, 0.0), (die, u), (die - u, die),
                     (0.0, die - u)][int(side)]
    return Placement(netlist=nl, die_w_um=die, die_h_um=die,
                     positions=positions, pad_positions=pads,
                     row_height_um=row_height)


def build_instance(quick: bool):
    lib = build_library(get_node("28nm"))
    blocks, gates_per = (12, 400) if quick else (50, 1000)
    soc = hierarchical_soc(blocks, gates_per, lib, seed=7,
                           bus_width=8 if quick else 16)
    nl = flatten(soc)
    return nl, tiled_placement(nl)


def registry_resolution() -> dict:
    """Both stages resolve through the shared registry, knobs early."""
    route_spec = get_engine("routing", "batched")
    place_spec = get_engine("placement", default_engine("placement"))
    assert route_spec.load() is not None
    assert place_spec.load() is not None
    opts = FlowOptions(routing_engine="batched")   # validates at init
    assert opts.routing_engine == "batched"
    try:
        FlowOptions(routing_engine="bathced")
        raise AssertionError("typo'd engine accepted")
    except UnknownEngineError:
        pass
    return {"routing_default": default_engine("routing"),
            "placement_default": default_engine("placement"),
            "early_validation": True}


def run_engine(pl, engine: str, repeats: int) -> tuple:
    best_s, result = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = route_placement(pl, engine=engine, layers=LAYERS,
                                 gcell_um=GCELL_UM,
                                 max_iterations=ITERATIONS, seed=SEED)
        dt = time.perf_counter() - t0
        best_s = dt if best_s is None else min(best_s, dt)
    return best_s, result


def paths_identical(a, b) -> bool:
    if a.paths.keys() != b.paths.keys():
        return False
    for net in a.paths:
        pa, pb = a.paths[net], b.paths[net]
        if len(pa) != len(pb):
            return False
        for p, q in zip(pa, pb):
            if not np.array_equal(np.asarray(p), np.asarray(q)):
                return False
    return True


def run(quick: bool) -> dict:
    nl, pl = build_instance(quick)
    n_gates = nl.num_instances()
    print(f"instance: {n_gates} gates, die {pl.die_w_um:.0f} um, "
          f"utilization {UTILIZATION}")

    registry = registry_resolution()

    maze_s, maze = run_engine(pl, "maze", repeats=1)
    print(f"  maze:    {maze.summary()}  [{maze_s:.2f} s]")

    batched_s, batched = run_engine(pl, "batched", repeats=3)
    print(f"  batched: {batched.summary()}  [{batched_s:.2f} s "
          f"best-of-3]")

    _, twin = run_engine(pl, "batched", repeats=1)
    reproducible = (batched.wirelength == twin.wirelength
                    and batched.overflow == twin.overflow
                    and paths_identical(batched, twin))

    speedup = maze_s / batched_s
    wl_ratio = batched.wirelength / maze.wirelength
    print(f"  speedup {speedup:.1f}x, overflow {batched.overflow} vs "
          f"{maze.overflow}, wl ratio {wl_ratio:.4f}, "
          f"reproducible={reproducible}")
    return {
        "quick": quick,
        "gates": n_gates,
        "engine_registry": registry,
        "route_maze_ms": maze_s * 1000,
        "route_ms": batched_s * 1000,
        "route_speedup": speedup,
        "overflow_maze": maze.overflow,
        "overflow_batched": batched.overflow,
        "wl_maze": maze.wirelength,
        "wl_batched": batched.wirelength,
        "wl_ratio": wl_ratio,
        "failed_nets": len(batched.failed),
        "bit_reproducible": bool(reproducible),
        "phase_ms": {k: round(v, 1)
                     for k, v in batched.phase_ms.items()},
    }


def check(payload: dict) -> int:
    floor = 3.0 if payload["quick"] else 10.0
    gates = [
        (payload["route_speedup"] >= floor,
         f"speedup {payload['route_speedup']:.1f}x >= {floor:.0f}x"),
        (payload["overflow_batched"]
         <= payload["overflow_maze"] * 1.02,
         f"overflow {payload['overflow_batched']} <= "
         f"1.02 * {payload['overflow_maze']}"),
        (payload["wl_ratio"] <= 1.02,
         f"wl ratio {payload['wl_ratio']:.4f} <= 1.02"),
        (payload["failed_nets"] == 0, "no failed nets"),
        (payload["bit_reproducible"], "seeded runs bit-identical"),
        (payload["engine_registry"]["early_validation"],
         "registry validates knobs at option construction"),
    ]
    failures = 0
    for ok, desc in gates:
        print(f"  {'ok  ' if ok else 'FAIL'} {desc}")
        failures += 0 if ok else 1
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small instance for CI")
    parser.add_argument("--check", action="store_true",
                        help="apply the speedup/parity gates")
    parser.add_argument("--out", default=None,
                        help="snapshot path (default: repo-root "
                             "BENCH_route.json, full runs only)")
    args = parser.parse_args(argv)
    payload = run(args.quick)
    out = args.out
    if out is None and not args.quick:
        out = Path(__file__).resolve().parent.parent / \
            "BENCH_route.json"
    if out:
        Path(out).write_text(json.dumps(payload, indent=2,
                                        sort_keys=True) + "\n")
        print(f"wrote {out}")
    if args.check:
        failures = check(payload)
        if failures:
            print(f"{failures} gate(s) failed")
            return 1
        print("all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
