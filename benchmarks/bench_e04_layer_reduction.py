"""E4/E14 — Domic: "more efficient 'line-search' routing algorithms
have resulted in much better routers under 'simpler' design rules,
making it possible to reduce layers at 28 nanometers and above" and
"moving from a 6-layer 130 nanometers A&M/S process variant to a
4-layer slashes 15-20% from the cost."

Reproduction: (a) the router quality side — a stronger router (more
negotiation iterations; line-search probes for speed) routes the same
design on fewer layers; (b) the economics side — the layer cost model
prices the 6-to-4 move on a 130 nm variant.
"""

import dataclasses

import pytest

from repro.mfg import layer_cost_model
from repro.netlist import logic_cloud
from repro.place import global_place
from repro.route import route_placement
from repro.route.linesearch import count_probe_cells
from repro.route.grid import RoutingGrid
from repro.tech import get_node

from conftest import report


@pytest.fixture(scope="module")
def placed(lib28):
    nl = logic_cloud(16, 16, 500, lib28, seed=5, locality=0.9)
    return global_place(nl, seed=0, utilization=0.35,
                        spreading_passes=4)


def test_better_router_needs_fewer_layers(placed):
    """A weak router (1 iteration) vs the negotiated router (5)."""
    results = {}
    for label, iters in (("weak", 1), ("strong", 5)):
        needed = None
        for layers in range(3, 9):
            res = route_placement(placed, layers=layers, gcell_um=2.0,
                                  max_iterations=iters)
            if res.success:
                needed = layers
                break
        results[label] = needed if needed is not None else 9
    report("E4", [f"min layers: weak router {results['weak']}, "
                  f"strong router {results['strong']}"])
    assert results["strong"] <= results["weak"]


def test_line_search_touches_fewer_cells_than_maze():
    """The panel's efficiency claim, without wall-clock noise: on an
    open grid, line probes touch O(n) cells where a maze wave floods
    O(n^2)."""
    grid = RoutingGrid(40, 40, h_capacity=8, v_capacity=8)
    probes = count_probe_cells(grid, (2, 2), (37, 30))
    report("E4", [f"line-probe cells touched: {probes} of "
                  f"{grid.nx * grid.ny} gcells"])
    assert probes < grid.nx * grid.ny * 0.25


def test_line_search_quality_comparable(placed):
    maze = route_placement(placed, engine="maze", gcell_um=2.0)
    probe = route_placement(placed, engine="line_search", gcell_um=2.0)
    report("E4", [maze.summary(), probe.summary()])
    assert probe.wirelength <= maze.wirelength * 1.15
    assert not probe.failed


def test_steiner_topology_ablation(placed):
    """Better net topology is part of "more efficient routing
    algorithms": Steiner decomposition never wires more than MST."""
    mst = route_placement(placed, gcell_um=2.0, topology="mst",
                          max_iterations=2)
    steiner = route_placement(placed, gcell_um=2.0, topology="steiner",
                              max_iterations=2)
    report("E4", [f"net topology: MST wl={mst.wirelength}, "
                  f"Steiner wl={steiner.wirelength}"])
    assert steiner.wirelength <= mst.wirelength * 1.02


def test_six_to_four_layer_cost_saving_15_to_20_percent():
    """The E14 economics anchor, on the quoted 130 nm A&M/S variant."""
    variant = dataclasses.replace(get_node("130nm"),
                                  metal_layers_typical=6)
    costs = layer_cost_model(variant, 50.0, [6, 5, 4])
    saving = 1 - costs[4].total_usd / costs[6].total_usd
    rows = [f"{layers}L: {bd.summary()}" for layers, bd in costs.items()]
    rows.append(f"6->4 layer saving: {saving * 100:.1f}% "
                f"(paper: 15-20%)")
    report("E4", rows)
    assert 0.13 <= saving <= 0.22


def test_cost_monotone_in_layers():
    variant = dataclasses.replace(get_node("130nm"),
                                  metal_layers_typical=6)
    costs = layer_cost_model(variant, 50.0, [4, 5, 6, 7])
    totals = [costs[k].total_usd for k in (4, 5, 6, 7)]
    assert totals == sorted(totals)


def test_bench_maze_routing(benchmark, placed):
    """Benchmark a full global-routing run (maze engine)."""
    result = benchmark(
        lambda: route_placement(placed, gcell_um=2.0,
                                max_iterations=2).wirelength)
    assert result > 0


def test_bench_line_search_routing(benchmark, placed):
    """Benchmark the line-search engine on the same design."""
    result = benchmark(
        lambda: route_placement(placed, engine="line_search",
                                gcell_um=2.0,
                                max_iterations=2).wirelength)
    assert result > 0
