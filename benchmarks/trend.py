"""Append machine-normalized benchmark results to a trend file.

``BENCH_*.json`` snapshots are absolute numbers from whatever machine
ran them, so comparing across commits compares hardware as much as
code.  This tool extracts each bench's headline metrics, divides the
time-like ones by a measured *machine score* (a short fixed pure-
Python workload, timed at append time), and appends one JSONL row per
bench to a trajectory file (default ``BENCH_TREND.jsonl``).  Ratios,
counts, and rates are dimensionless and pass through unchanged.

Rows carry the git revision when available, so the trajectory reads
as "normalized metric over history":

    python benchmarks/trend.py                  # append all BENCH_*.json
    python benchmarks/trend.py BENCH_perf.json  # just one
    python benchmarks/trend.py --show           # print the trajectory
    python benchmarks/trend.py --check          # regression gate

``--check`` compares the two most recent rows of every (bench, quick)
series and exits nonzero if any gated time-like metric regressed by
more than 10% (machine-normalized, so a slower CI box alone does not
trip it).  It also alerts — advisory unless ``--gate-best`` — when
the newest row drifts more than ``--best-tolerance`` (default 25%)
above the *best* value its series ever recorded, catching slow
multi-commit erosion the pairwise gate cannot see.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: bench name -> (headline metrics, which of them are seconds-like and
#: therefore divided by the machine score).  Metrics missing from a
#: snapshot are skipped, so older files still append.
HEADLINES = {
    "service": {
        "metrics": ["throughput_ratio", "job_cache_hit_rate",
                    "latency_p50_s", "latency_p99_s",
                    "service_jobs_per_s", "jobs_lost"],
        "time_like": ["latency_p50_s", "latency_p99_s"],
        "rate_like": ["service_jobs_per_s"],
    },
    "perf": {
        "metrics": ["designs.large.sta_incremental_ms",
                    "designs.large.place_ms",
                    "designs.large.speedup_incr_vs_cold",
                    "designs.large.place_speedup",
                    "designs.large.hpwl_ratio"],
        "time_like": ["designs.large.sta_incremental_ms",
                      "designs.large.place_ms"],
        "rate_like": [],
    },
    "serialize": {
        "metrics": ["designs.large.size_ratio",
                    "designs.large.pipeline_ratio",
                    "designs.large.packed_pipeline_ms"],
        "time_like": ["designs.large.packed_pipeline_ms"],
        "rate_like": [],
    },
    "lint": {
        "metrics": ["designs.large.lint_full_ms",
                    "designs.large.lint_invariants_ms"],
        "time_like": ["designs.large.lint_full_ms",
                      "designs.large.lint_invariants_ms"],
        "rate_like": [],
    },
    "resilience": {
        "metrics": ["clean_run_s", "scenarios", "identical",
                    "divergent"],
        "time_like": ["clean_run_s"],
        "rate_like": [],
    },
    "route": {
        "metrics": ["route_ms", "route_speedup",
                    "overflow_batched", "wl_ratio"],
        "time_like": ["route_ms"],
        "rate_like": [],
    },
}


def machine_score(repeats: int = 3) -> float:
    """Relative speed of this machine (1.0 = the reference box).

    Times a fixed integer/string workload; the reference constant was
    measured once on the box that seeded the trend file.  Dividing a
    wall-clock metric by this score cancels (to first order) raw
    single-core speed differences between machines.
    """
    def workload() -> int:
        acc = 0
        for i in range(200_000):
            acc = (acc * 1103515245 + i) % (1 << 31)
        return acc ^ sum(map(hash, map(str, range(10_000))))

    best = min(_timed(workload) for _ in range(repeats))
    reference_s = 0.034              # the seeding machine's best time
    return reference_s / best


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _lookup(payload: dict, dotted: str):
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def append_snapshot(path: Path, trend_path: Path,
                    score: float) -> dict | None:
    name = path.stem.replace("BENCH_", "")
    spec = HEADLINES.get(name)
    if spec is None:
        print(f"  {path.name}: no headline spec, skipped")
        return None
    payload = json.loads(path.read_text())
    metrics = {}
    for dotted in spec["metrics"]:
        value = _lookup(payload, dotted)
        if value is None:
            continue
        if dotted in spec["time_like"]:
            value = value / score    # faster machine -> smaller raw
        elif dotted in spec["rate_like"]:
            value = value * (1.0 / score)
        metrics[dotted] = value
    row = {"bench": name, "rev": _git_rev(),
           "machine_score": score, "quick": payload.get("quick"),
           "metrics": metrics}
    with open(trend_path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(row, separators=(",", ":")) + "\n")
    return row


def show(trend_path: Path) -> None:
    if not trend_path.exists():
        print("no trend file yet")
        return
    for line in trend_path.read_text().splitlines():
        if not line.strip():
            continue
        row = json.loads(line)
        metrics = ", ".join(f"{k}={v:.4g}" if isinstance(v, float)
                            else f"{k}={v}"
                            for k, v in row["metrics"].items())
        print(f"{row.get('rev') or '???????':>9}  "
              f"{row['bench']:<10} {metrics}")


def check(trend_path: Path, tolerance: float = 0.10,
          best_tolerance: float = 0.25,
          gate_best: bool = False) -> int:
    """Fail on >``tolerance`` regression of any gated kernel.

    For every (bench, quick) series in the trend file, the newest row
    is compared against the one before it; only the ``time_like``
    headline metrics are gated (ratios and counts drift for
    legitimate reasons).  Both rows are machine-normalized at append
    time, so this compares code, not hardware.

    The newest row is *also* compared against the best (smallest)
    value the series ever recorded: a kernel can erode a few percent
    per commit without ever tripping the vs-prev gate, so drifting
    more than ``best_tolerance`` above the historical best prints a
    ``DRIFT`` alert.  Alerts are advisory by default (a long-lived
    series legitimately trades peak speed for features); with
    ``gate_best`` they fail the check like a regression.
    """
    if not trend_path.exists():
        print("no trend file yet; nothing to check")
        return 0
    series: dict[tuple, list] = {}
    for line in trend_path.read_text().splitlines():
        if not line.strip():
            continue
        row = json.loads(line)
        series.setdefault((row["bench"], row.get("quick")),
                          []).append(row)
    failures = 0
    drifts = 0
    for (bench, quick), rows in sorted(series.items()):
        spec = HEADLINES.get(bench)
        if spec is None or len(rows) < 2:
            continue
        prev, last = rows[-2], rows[-1]
        for metric in spec["time_like"]:
            a = prev["metrics"].get(metric)
            b = last["metrics"].get(metric)
            if a is None or b is None or a <= 0:
                continue
            ratio = b / a
            tag = f"{bench}[quick={quick}] {metric}"
            if ratio > 1 + tolerance:
                print(f"REGRESSION {tag}: {a:.4g} -> {b:.4g} "
                      f"({ratio:.2f}x, max {1 + tolerance:.2f}x)")
                failures += 1
            else:
                print(f"ok {tag}: {a:.4g} -> {b:.4g} ({ratio:.2f}x)")
            history = [r["metrics"][metric] for r in rows[:-1]
                       if r["metrics"].get(metric)]
            best = min(history) if history else None
            if best and best > 0 and b / best > 1 + best_tolerance:
                print(f"DRIFT {tag}: {b:.4g} is {b / best:.2f}x the "
                      f"series best {best:.4g} "
                      f"(alert above {1 + best_tolerance:.2f}x)")
                drifts += 1
    if drifts:
        print(f"{drifts} gated kernel(s) drifted >"
              f"{best_tolerance:.0%} above their series best"
              + (" (gating)" if gate_best else " (advisory)"))
    if failures or (gate_best and drifts):
        print(f"{failures} gated kernel(s) regressed >10%")
        return 1
    print("no gated kernel regressed")
    return 0


def report(trend_path: Path, out_path: Path) -> int:
    """Render the trajectory as a committed markdown summary.

    One table row per (series, metric): the latest normalized value,
    the best value the series ever recorded (min for time-like
    metrics, where smaller is faster), and the delta of the latest
    row against the one before it.  The output is deterministic for a
    given trend file, so CI can regenerate it and diff against the
    committed copy.
    """
    if not trend_path.exists():
        print("no trend file yet; nothing to report")
        return 1
    series: dict[tuple, list] = {}
    for line in trend_path.read_text().splitlines():
        if not line.strip():
            continue
        row = json.loads(line)
        series.setdefault((row["bench"], row.get("quick")),
                          []).append(row)
    lines = [
        "# Benchmark trend",
        "",
        "Machine-normalized headline metrics from "
        "`BENCH_TREND.jsonl` (time-like metrics are divided by the "
        "appending machine's score, so rows compare code, not "
        "hardware).  Regenerate with "
        "`python benchmarks/trend.py --report`.",
        "",
        "| series | metric | latest | best | Δ vs prev | rev |",
        "|---|---|---:|---:|---:|---|",
    ]
    for (bench, quick), rows in sorted(
            series.items(), key=lambda kv: (kv[0][0],
                                            str(kv[0][1]))):
        spec = HEADLINES.get(bench)
        if spec is None:
            continue
        tier = f"{bench}" + (" (quick)" if quick else "")
        for metric in spec["metrics"]:
            vals = [r["metrics"][metric] for r in rows
                    if metric in r["metrics"]]
            if not vals:
                continue
            latest = vals[-1]
            fmt = (lambda v: f"{v:.4g}"
                   if isinstance(v, float) else f"{v}")
            best = (fmt(min(vals)) if metric in spec["time_like"]
                    else "—")
            if len(vals) >= 2 and isinstance(vals[-2], (int, float)) \
                    and vals[-2]:
                delta = f"{(latest / vals[-2] - 1) * 100:+.1f}%"
            else:
                delta = "—"
            rev = rows[-1].get("rev") or "—"
            lines.append(f"| {tier} | {metric} | {fmt(latest)} "
                         f"| {best} | {delta} | {rev} |")
    out_path.write_text("\n".join(lines) + "\n")
    print(f"wrote {out_path} ({len(lines) - 6} metric rows)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("snapshots", nargs="*",
                        help="BENCH_*.json files "
                             "(default: all in the repo root)")
    parser.add_argument("--trend", default=REPO / "BENCH_TREND.jsonl")
    parser.add_argument("--show", action="store_true",
                        help="print the trajectory and exit")
    parser.add_argument("--check", action="store_true",
                        help="gate: fail on >10%% regression of any "
                             "time-like headline metric between the "
                             "two newest rows of each series; also "
                             "alert when the newest row drifts above "
                             "the series' historical best")
    parser.add_argument("--best-tolerance", type=float, default=0.25,
                        help="vs-best drift alert threshold "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--gate-best", action="store_true",
                        help="treat vs-best drift alerts as failures "
                             "instead of advisories")
    parser.add_argument("--report", action="store_true",
                        help="write the markdown summary "
                             "(BENCH_TREND.md) and exit")
    parser.add_argument("--report-out",
                        default=REPO / "BENCH_TREND.md")
    args = parser.parse_args(argv)
    trend_path = Path(args.trend)
    if args.show:
        show(trend_path)
        return 0
    if args.check:
        return check(trend_path, best_tolerance=args.best_tolerance,
                     gate_best=args.gate_best)
    if args.report:
        return report(trend_path, Path(args.report_out))
    paths = [Path(p) for p in args.snapshots] or \
        sorted(REPO.glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json snapshots found", file=sys.stderr)
        return 1
    score = machine_score()
    print(f"machine score {score:.3f} (1.0 = reference box)")
    appended = 0
    for path in paths:
        row = append_snapshot(path, trend_path, score)
        if row is not None:
            appended += 1
            print(f"  {path.name}: {len(row['metrics'])} metrics")
    print(f"appended {appended} row(s) to {trend_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
