"""E17 — Rossi: "the time spent in designing, developing and
integrating analog IPs into an ASIC design flow ... define[s] the time
a new technology is used for ASICs for Networking.  These are the cases
of High Speed Links SERDES, High Speed ADC and DAC and, to different
extend, TCAM memories.  From this standpoint boost[ing] the design
productivity is fundamental."

Reproduction: the SERDES/ADC/TCAM feasibility and cost models across
nodes, and the readiness-timeline model showing analog porting — not
the digital flow — gating node adoption, with productivity tooling
pulling the dates in.
"""

import pytest

from repro.analog import (
    IpPortingModel,
    SerdesSpec,
    TcamSpec,
    adc_area_mm2,
    node_readiness_years,
    readiness_timeline,
    serdes_feasible,
    serdes_power_mw,
    tcam_metrics,
)
from repro.analog.serdes import max_line_rate_gbps
from repro.tech import get_node

from conftest import report


def test_serdes_gates_line_rate_adoption():
    """Networking line rates force node adoption: each rate generation
    has a minimum node."""
    rows = []
    for node in ("65nm", "28nm", "16nm", "7nm"):
        nrz = "OK" if serdes_feasible(node, SerdesSpec(25.0)) else "no"
        pam4_spec = SerdesSpec(25.0, modulation="pam4")
        pam4 = "OK" if serdes_feasible(node, pam4_spec) else "no"
        rows.append(
            f"{node}: max NRZ {max_line_rate_gbps(node):.0f}G, "
            f"25G NRZ {nrz}, 25G PAM4 {pam4}")
    report("E17", rows)
    assert not serdes_feasible("65nm", SerdesSpec(25.0))
    assert serdes_feasible("16nm", SerdesSpec(25.0))


def test_serdes_efficiency_improves_with_node():
    p16 = serdes_power_mw("16nm", SerdesSpec(25.0))
    p7 = serdes_power_mw("7nm", SerdesSpec(25.0))
    report("E17", [f"25G NRZ power: 16nm {p16:.0f} mW, 7nm {p7:.0f} mW"])
    assert p7 <= p16


def test_analog_area_is_the_porting_pain():
    """Digital shrinks ~4x per two nodes; the ADC barely moves."""
    a65 = adc_area_mm2("65nm", bits=12)
    a16 = adc_area_mm2("16nm", bits=12)
    digital = (get_node("16nm").density_mtr_per_mm2
               / get_node("65nm").density_mtr_per_mm2)
    report("E17", [f"12b ADC area 65nm {a65:.3f} -> 16nm {a16:.3f} mm2 "
                   f"({a65 / a16:.1f}x) vs digital density {digital:.0f}x"])
    assert a65 / a16 < digital / 3


def test_tcam_is_the_hot_block():
    """TCAM search power density feeds the E9 hot-spot profile."""
    m = tcam_metrics("28nm", TcamSpec(entries=16384, width_bits=128,
                                      searches_per_s=5e8))
    report("E17", [f"16k x 128 TCAM @28nm: {m['area_mm2']:.1f} mm2, "
                   f"{m['power_w']:.2f} W, "
                   f"{m['power_density_w_per_mm2']:.3f} W/mm2"])
    assert m["power_w"] > 0.05


def test_analog_porting_gates_node_adoption():
    timeline = readiness_timeline()
    rows = [f"{n}: process {py}, ASIC-ready {ry:.1f} "
            f"(+{ry - py:.1f} y of analog porting)"
            for n, (py, ry) in timeline.items()]
    report("E17", rows)
    for _, (process_year, ready_year) in timeline.items():
        assert ready_year - process_year >= 1.0  # years, not weeks


def test_productivity_tooling_shortens_the_gate():
    brute = node_readiness_years("7nm", from_node="10nm")
    tooled = node_readiness_years("7nm", from_node="10nm",
                                  productivity=0.5)
    report("E17", [f"7nm readiness: brute {brute:.1f} y, with design-"
                   f"productivity tooling {tooled:.1f} y"])
    assert tooled < brute * 0.6


def test_team_parallelism_has_diminishing_returns():
    years = [IpPortingModel(team_parallelism=k).catalogue_years(
        "28nm", "14nm") for k in (1, 2, 4, 8)]
    assert years[1] < years[0]
    # Beyond the catalogue's critical path, more teams buy nothing.
    assert years[3] == pytest.approx(years[2], rel=0.3)


def test_bench_readiness_timeline(benchmark):
    """Benchmark the full readiness-timeline computation."""
    result = benchmark(lambda: len(readiness_timeline()))
    assert result == 4
