"""E15 — Domic, synthesizing the decade: "if one uses an advanced EDA
solution, one can 'do more with less'" — at emerging AND established
nodes alike.

Reproduction: the full implementation flow (synthesis -> place -> scan
-> route -> signoff) with the basic (2006) and advanced (2016) recipes,
run at 28 nm and at 180 nm, averaged over seeds.
"""

import numpy as np
import pytest

from repro.core import FlowOptions
from repro.netlist import random_aig
from repro.orchestrate import run

from conftest import report

SEEDS = (41, 42)


def _run_pair(lib, seed, clock_ps):
    basic_opts = FlowOptions.basic()
    basic_opts.clock_period_ps = clock_ps
    advanced_opts = FlowOptions.advanced()
    advanced_opts.clock_period_ps = clock_ps
    basic = run(random_aig(16, 450, 10, seed=seed), lib, basic_opts)
    advanced = run(random_aig(16, 450, 10, seed=seed), lib,
                   advanced_opts)
    return basic, advanced


@pytest.fixture(scope="module")
def results_28(lib28):
    return [_run_pair(lib28, s, clock_ps=2000.0) for s in SEEDS]


@pytest.fixture(scope="module")
def results_180(lib180):
    # The established node is slower; give it a period its logic can
    # meet so sizing does not trade area for unneeded speed.
    return [_run_pair(lib180, s, clock_ps=8000.0) for s in SEEDS]


def _mean(results, which, metric):
    idx = 0 if which == "basic" else 1
    return float(np.mean([getattr(r[idx], metric) for r in results]))


def test_advanced_flow_wins_at_28nm(results_28):
    rows = []
    for basic, advanced in results_28:
        rows.append("28nm basic:    " + basic.summary())
        rows.append("28nm advanced: " + advanced.summary())
    report("E15", rows)
    assert _mean(results_28, "advanced", "area_um2") <= \
        _mean(results_28, "basic", "area_um2") * 1.02
    assert _mean(results_28, "advanced", "power_uw") <= \
        _mean(results_28, "basic", "power_uw")


def test_advanced_flow_wins_at_180nm_too(results_180):
    """The panel's point: the same tools pay at established nodes."""
    rows = []
    for basic, advanced in results_180:
        rows.append("180nm basic:    " + basic.summary())
        rows.append("180nm advanced: " + advanced.summary())
    report("E15", rows)
    assert _mean(results_180, "advanced", "area_um2") <= \
        _mean(results_180, "basic", "area_um2") * 1.02
    assert _mean(results_180, "advanced", "power_uw") <= \
        _mean(results_180, "basic", "power_uw")


def test_advanced_routing_is_cleaner(results_28):
    assert _mean(results_28, "advanced", "overflow") <= \
        _mean(results_28, "basic", "overflow")


def test_do_more_with_less_summary(results_28, results_180):
    rows = []
    for label, results in (("28nm", results_28), ("180nm", results_180)):
        area = 1 - (_mean(results, "advanced", "area_um2") /
                    _mean(results, "basic", "area_um2"))
        power = 1 - (_mean(results, "advanced", "power_uw") /
                     _mean(results, "basic", "power_uw"))
        rows.append(f"{label}: advanced flow saves {area * 100:.1f}% "
                    f"area, {power * 100:.1f}% power")
    report("E15", rows)


def test_bench_advanced_flow(benchmark, lib28):
    """Benchmark the full advanced implementation flow."""
    result = benchmark(
        lambda: run(random_aig(12, 250, 8, seed=43), lib28,
                    FlowOptions.advanced()).instances)
    assert result > 0
