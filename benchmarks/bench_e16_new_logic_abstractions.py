"""E16 — De Micheli (moderator): emerging SiNW/CNT controlled-polarity
devices bring "the need of new logic abstractions and in turn the
requirement of new logic synthesis models and algorithms ... achieving
competitive design in the 10nm range and beyond can no longer be
thought in terms [of] NANDs, NORs and AOIs."

Reproduction: majority-inverter graphs vs and-inverter graphs on
carry-dominated arithmetic.  A full-adder carry IS a majority — the
function the new devices implement natively — so the majority
abstraction is strictly smaller and shallower where it matters.
"""

import numpy as np
import pytest

from repro.netlist import random_aig
from repro.synthesis.mig import (
    Mig,
    aig_adder,
    mig_adder,
    mig_from_aig,
)

from conftest import report

WIDTHS = (8, 16, 32)


@pytest.fixture(scope="module")
def adder_table():
    table = {}
    for w in WIDTHS:
        mig = mig_adder(w)
        aig = aig_adder(w)
        table[w] = {
            "mig_size": mig.num_majs, "mig_depth": mig.depth(),
            "aig_size": aig.num_ands, "aig_depth": aig.depth(),
        }
    return table


def test_adders_functionally_identical():
    w = 8
    mig = mig_adder(w)
    aig = aig_adder(w)
    rng = np.random.default_rng(0)
    vec = rng.random((64, 2 * w + 1)) < 0.5
    assert np.array_equal(mig.simulate(vec), aig.simulate(vec))


def test_majority_abstraction_smaller(adder_table):
    rows = [f"{w}-bit adder: MIG {v['mig_size']} nodes / depth "
            f"{v['mig_depth']}  vs  AIG {v['aig_size']} nodes / depth "
            f"{v['aig_depth']}"
            for w, v in adder_table.items()]
    report("E16", rows)
    for w, v in adder_table.items():
        assert v["mig_size"] < v["aig_size"], w


def test_majority_abstraction_much_shallower(adder_table):
    for w, v in adder_table.items():
        assert v["mig_depth"] <= v["aig_depth"] / 2, w


def test_advantage_grows_with_width(adder_table):
    ratios = [adder_table[w]["aig_depth"] / adder_table[w]["mig_depth"]
              for w in WIDTHS]
    report("E16", [f"depth advantage AIG/MIG: "
                   + ", ".join(f"{w}b {r:.2f}x"
                               for w, r in zip(WIDTHS, ratios))])
    assert ratios[-1] >= ratios[0]


def test_mig_subsumes_aig():
    """MAJ with a constant input IS an AND/OR: conversion never grows."""
    aig = random_aig(8, 150, 6, seed=3)
    mig = mig_from_aig(aig)
    report("E16", [f"random AIG {aig.num_ands} ANDs -> MIG "
                   f"{mig.num_majs} MAJs (never worse)"])
    assert mig.num_majs <= aig.num_ands
    assert np.array_equal(mig.simulate_all(), aig.simulate_all())


def test_omega_rules_fold_redundancy():
    """The Ω-algebra at construction: MAJ(x,x,y)=x, MAJ(x,!x,y)=y."""
    mig = Mig(2)
    a, b = mig.input_lit(0), mig.input_lit(1)
    assert mig.maj_(a, a, b) == a
    assert mig.maj_(a, a ^ 1, b) == b
    assert mig.num_majs == 0


def test_bench_mig_adder_construction(benchmark):
    """Benchmark constructing + simulating a 32-bit majority adder."""
    def run():
        mig = mig_adder(32)
        vec = np.zeros((8, 65), dtype=bool)
        return mig.simulate(vec).shape[0]
    assert benchmark(run) == 8
