"""Ablations over the design choices DESIGN.md calls out.

These are not panel claims; they justify implementation decisions by
measuring what each mechanism contributes:

* CTS: balanced H-tree vs serpentine spine (skew).
* Timing-driven placement: slack weighting on vs off.
* SRAF insertion: process window of isolated lines.
* Thermal: leakage feedback loop on vs off; the ADAS screening plan.
* Buffering: optimal repeater segment vs naive fixed segment.
* Flow knobs: a run_sweep ablation over detailed placement and
  routing effort, sharing upstream stages through the result cache.
"""

import numpy as np
import pytest

from repro.litho.ret import insert_srafs, isolated_line_mask, process_window
from repro.mfg.reliability import ScreeningPlan, screen_for_target_ppm, shipped_ppm
from repro.netlist import build_library, logic_cloud, registered_cloud
from repro.place import global_place, timing_driven_place
from repro.place.buffering import estimate_buffers, optimal_buffer_segment_um
from repro.power.thermal import derate_for_temperature, solve_thermal
from repro.tech import get_node
from repro.timing import (
    TimingAnalyzer,
    WireModel,
    naive_clock_spine,
    synthesize_clock_tree,
)

from conftest import report


@pytest.fixture(scope="module")
def seq_placed(lib28):
    nl = registered_cloud(8, 64, 400, lib28, seed=5)
    return global_place(nl, seed=0)


def test_cts_vs_spine(seq_placed):
    tree = synthesize_clock_tree(seq_placed)
    spine = naive_clock_spine(seq_placed)
    report("A-CTS", [
        f"H-tree: skew {tree.skew_ps:.3f} ps, wl "
        f"{tree.wirelength_um:.0f} um, {len(tree.buffers)} buffers",
        f"spine:  skew {spine.skew_ps:.3f} ps, wl "
        f"{spine.wirelength_um:.0f} um"])
    assert tree.skew_ps < spine.skew_ps
    assert tree.wirelength_um < spine.wirelength_um


def test_timing_driven_placement_ablation(lib28):
    nl = logic_cloud(16, 16, 400, lib28, seed=3, locality=0.8)

    def delay(pl):
        wm = WireModel.for_node(lib28.node, pl.net_lengths())
        return TimingAnalyzer(nl, wm).analyze().critical_delay_ps

    base = global_place(nl, seed=0, utilization=0.4)
    td = timing_driven_place(nl, seed=0, utilization=0.4)
    d0, d1 = delay(base), delay(td)
    report("A-TDP", [
        f"wirelength-driven: {d0:.0f} ps, HPWL {base.total_hpwl():.0f}",
        f"timing-driven:     {d1:.0f} ps, HPWL {td.total_hpwl():.0f}"])
    assert d1 < d0
    assert td.total_hpwl() < base.total_hpwl() * 1.25


def test_sraf_ablation():
    img = isolated_line_mask(40, field_nm=600)
    raw = process_window(img, 2.0, epe_spec_nm=6.0)
    result = insert_srafs(img, 2.0)
    assisted = process_window(img, 2.0, mask=result.mask,
                              epe_spec_nm=6.0)
    report("A-SRAF", [
        f"isolated 40nm line: window {raw:.2f} bare, {assisted:.2f} "
        f"with {result.assists_added} assists "
        f"(printed violation: {result.assist_printed})"])
    assert assisted > raw
    assert not result.assist_printed


def test_electrothermal_feedback_matters():
    pm = np.full((10, 10), 0.06)
    pm[4:6, 4:6] = 0.6
    open_loop = solve_thermal(pm)
    closed = solve_thermal(pm, leakage_feedback=0.05)
    derate = derate_for_temperature(get_node("28nm"), closed.peak_c)
    report("A-THERM", [
        f"open loop peak {open_loop.peak_c:.1f} C; with leakage "
        f"feedback {closed.peak_c:.1f} C "
        f"({closed.iterations} iterations)",
        f"signoff derate at peak: delay x{derate['delay_factor']:.2f}, "
        f"leakage x{derate['leakage_factor']:.1f}"])
    assert closed.peak_c > open_loop.peak_c


def test_adas_zero_ppm_screening():
    node = get_node("28nm")
    no_screen = shipped_ppm(node, 50, ScreeningPlan(0.95))
    plan = screen_for_target_ppm(node, 50, target_ppm=3.0,
                                 coverage=0.999)
    achieved = shipped_ppm(node, 50, plan)
    report("A-ADAS", [
        f"95% coverage, no burn-in: {no_screen:.0f} PPM",
        f"zero-PPM plan: coverage 99.9% + {plan.burn_in_hours:.0f} h "
        f"burn-in -> {achieved:.2f} PPM"])
    assert plan is not None
    assert achieved <= 3.0


def test_buffer_segment_ablation(lib28):
    """Over-buffering (too-short segments) wastes area for nothing:
    compare the optimal segment against an over-eager quarter of the
    longest net (so both policies actually fire on this die)."""
    nl = logic_cloud(16, 16, 400, lib28, seed=9, locality=0.7)
    placement = global_place(nl, seed=0, utilization=0.3)
    longest = max(placement.net_lengths().values())
    optimal = min(optimal_buffer_segment_um(lib28.node), longest / 2)
    eager = longest / 8
    opt = estimate_buffers(placement, segment_um=optimal)
    naive = estimate_buffers(placement, segment_um=eager)
    report("A-BUF", [
        f"segment {optimal:.1f} um: {opt.buffers_added} buffers",
        f"over-eager {eager:.1f} um: {naive.buffers_added} buffers "
        f"({naive.buffer_area_um2:.2f} um2 of area)"])
    assert naive.buffers_added > opt.buffers_added


def test_flow_knob_ablation_sweep(lib28):
    """Knob ablation through the orchestration layer: 8 FlowOptions
    variants over one design via run_sweep with a shared result
    cache.  Variants that differ only in routing effort reuse the
    cached synthesis/placement/dft stages, so the sweep does far less
    work than 8 cold runs — the mechanism that makes large ablation
    grids affordable."""
    from repro.core import FlowOptions
    from repro.orchestrate import ResultCache, TelemetrySink, run_sweep

    nl = logic_cloud(12, 12, 250, lib28, seed=11, locality=0.8)
    options = [FlowOptions(detailed_passes=d, routing_iterations=r)
               for d in (0, 2) for r in (1, 2, 3, 4)]
    cache = ResultCache(max_memory_entries=64)
    sink = TelemetrySink()
    sweep = run_sweep(nl, lib28, options, jobs=1, cache=cache,
                      telemetry=sink)
    rows = [f"dp={o.detailed_passes} ri={o.routing_iterations}: "
            f"hpwl {r.hpwl_um:.0f} um, wl {r.routed_wirelength} "
            f"gcells (ovfl {r.overflow}), {r.delay_ps:.0f} ps"
            for o, r in zip(options, sweep.results)]
    report_stats = sink.report()
    rows.append(f"stage cache: {report_stats.cache_hits} hits / "
                f"{report_stats.cache_hits + report_stats.cache_misses}"
                f" executions ({report_stats.hit_rate:.0%} reused)")
    report("A-FLOW", rows)
    # 8 variants x 6 stages, but only 2 placements and 8 routings are
    # distinct: most stage executions replay from cache.
    assert report_stats.cache_hits > report_stats.cache_misses
    # More routing effort never increases overflow on this design.
    for d in (0, 2):
        group = [r for o, r in zip(options, sweep.results)
                 if o.detailed_passes == d]
        assert group[-1].overflow <= group[0].overflow


def test_bench_cts(benchmark, seq_placed):
    """Benchmark clock-tree synthesis over 64 flops."""
    tree = benchmark(lambda: synthesize_clock_tree(seq_placed))
    assert tree.sink_delays
