"""E13 — Sawicki: "IOT designs will require low-power, low-cost
implementations.  Here technologies originally implemented to enable
advanced node designs are easily reused and retargeted.  Low-power
design techniques move directly across.  ... high-compression DFT
technologies will be targeted at low-pin-count test, helping to enable
lower cost packaging.  We are also already seeing established node
variants ... [hitting] a new point on the power/cost/performance
curve."

Reproduction: the same IoT logic implemented at 180 nm with and
without the retargeted advanced-node techniques (multi-Vt leakage
recovery, clock gating, DVFS), plus the low-pin-count test-cost ladder
and the node-variant cost frontier.
"""

import pytest

from repro.dft import test_cost_model as lpct_cost_model
from repro.mfg import die_cost, design_cost
from repro.netlist import build_library, registered_cloud
from repro.power import power_report, technique_ladder
from repro.synthesis import assign_vt
from repro.tech import get_node

from conftest import report


@pytest.fixture(scope="module")
def iot_design(lib180):
    return registered_cloud(8, 32, 300, lib180, seed=23)


def test_low_power_techniques_move_across(iot_design):
    """The technique ladder, applied at 180 nm, still pays."""
    ladder = technique_ladder(iot_design, freq_ghz=0.05,
                              required_ghz=0.02, idle_fraction=0.9)
    rows = [f"{name}: {uw:.2f} uW" for name, uw in ladder.totals()]
    rows.append(f"180nm retargeted reduction: "
                f"{ladder.reduction_factor():.2f}x")
    report("E13", rows)
    assert ladder.reduction_factor() >= 1.5


def test_multi_vt_retargets_to_established_node(lib180):
    nl = registered_cloud(8, 24, 200, lib180, seed=29)
    result = assign_vt(nl, clock_period_ps=50_000.0)
    report("E13", [f"180nm multi-Vt: {result['swapped']} swaps, leakage "
                   f"{result['leak_before_nw']:.1f} -> "
                   f"{result['leak_after_nw']:.1f} nW"])
    assert result["leak_after_nw"] < result["leak_before_nw"]


def test_low_pin_count_test_cuts_cost():
    flops, patterns = 30_000, 1_500
    ladder = {}
    for pins, chains in ((64, 32), (16, 64), (4, 128), (2, 256)):
        ladder[pins] = lpct_cost_model(flops, patterns, scan_pins=pins,
                                       internal_chains=chains)
    rows = [f"{pins} pins: ${v['total_cost_usd']:.4f}/die "
            f"(compression {v['compression_ratio']:.0f}x)"
            for pins, v in ladder.items()]
    report("E13", rows)
    costs = [ladder[p]["total_cost_usd"] for p in (64, 16, 4)]
    assert costs[2] < costs[0]          # low-pin-count wins
    assert ladder[2]["compression_ratio"] > \
        ladder[64]["compression_ratio"]


def test_established_node_variant_hits_new_cost_point():
    """Power/cost/performance frontier: 180nm vs 28nm for the same
    small IoT die at IoT volumes."""
    transistors = 2e6
    rows = []
    points = {}
    for name in ("180nm", "65nm", "28nm"):
        node = get_node(name)
        area = node.area_for_transistors(transistors)
        cost = die_cost(node, max(area, 1.0), volume=2_000_000)
        nre = design_cost(node, transistors / 1e6)
        points[name] = (cost.total_usd, nre)
        rows.append(f"{name}: die {area:.2f} mm2, "
                    f"${cost.total_usd:.3f}/die, NRE ${nre / 1e6:.1f}M")
    report("E13", rows)
    # The established node is the low-cost point at IoT volumes: the
    # mask set and NRE of the advanced node dominate its tiny die.
    assert points["180nm"][1] < points["28nm"][1]          # NRE
    assert points["180nm"][0] < points["28nm"][0]          # $/die @2M


def test_iot_volume_economics_favor_established(lib180):
    """Total cost of ownership at modest volume."""
    transistors = 2e6
    volume = 500_000
    totals = {}
    for name in ("180nm", "28nm"):
        node = get_node(name)
        area = max(node.area_for_transistors(transistors), 1.0)
        unit = die_cost(node, area, volume=volume).total_usd
        nre = design_cost(node, transistors / 1e6)
        totals[name] = nre + unit * volume
    report("E13", [f"500k-unit program cost: 180nm "
                   f"${totals['180nm'] / 1e6:.1f}M vs 28nm "
                   f"${totals['28nm'] / 1e6:.1f}M"])
    assert totals["180nm"] < totals["28nm"]


def test_bench_technique_retarget(benchmark, lib180):
    """Benchmark the 180nm technique-ladder evaluation."""
    nl = registered_cloud(8, 24, 150, lib180, seed=31)
    factor = benchmark(
        lambda: technique_ladder(nl, freq_ghz=0.05,
                                 required_ghz=0.02).reduction_factor())
    assert factor >= 1.0
