"""Shared fixtures and reporting helpers for the experiment benches.

Each ``bench_eNN_*.py`` file reproduces one panel claim (see DESIGN.md
for the index).  Benches both *assert* the claim's shape and *print*
the rows EXPERIMENTS.md records, so ``pytest benchmarks/ -s`` doubles
as the table generator.
"""

import pytest

from repro.netlist import build_library
from repro.tech import get_node


@pytest.fixture(scope="session")
def lib28():
    """28 nm library with all Vt flavors (the 'established' workhorse)."""
    return build_library(get_node("28nm"),
                         vt_flavors=("lvt", "rvt", "hvt"))


@pytest.fixture(scope="session")
def lib180():
    """180 nm library (the most-designed node per the panel)."""
    return build_library(get_node("180nm"),
                         vt_flavors=("rvt", "hvt"))


@pytest.fixture(scope="session")
def lib65():
    """65 nm library (the power-crisis node)."""
    return build_library(get_node("65nm"),
                         vt_flavors=("rvt", "hvt"))


def report(exp_id: str, rows: list) -> None:
    """Print an experiment's result rows in EXPERIMENTS.md form."""
    print(f"\n[{exp_id}]")
    for row in rows:
        print(f"  {row}")
