"""E2 — Domic: "the flat implementation of a hierarchical design can
save silicon real estate, and power consumption — due to the lesser
amount of buffering."

Reproduction: the same SoC implemented flat vs block-by-block.  The
hierarchical flow isolates every block port behind buffers; the deltas
in cell count, area, and power are exactly the boundary-buffer tax.
"""

import pytest

from repro.netlist import hierarchical_soc
from repro.place.flows import flat_vs_hierarchical, place_flat

from conftest import report


@pytest.fixture(scope="module")
def soc_results(lib28):
    soc = hierarchical_soc(4, 150, lib28, seed=7, bus_width=16)
    results = flat_vs_hierarchical(soc, seed=0)
    return soc, results


def test_flat_saves_area_and_cells(soc_results):
    soc, res = soc_results
    flat, hier = res["flat"], res["hierarchical"]
    rows = [flat.summary(), hier.summary(),
            f"boundary ports (buffer tax): {soc.boundary_port_count()}",
            f"area saving flat vs hier: "
            f"{100 * (1 - flat.area_um2 / hier.area_um2):.1f}%"]
    report("E2", rows)
    assert flat.instances < hier.instances
    assert flat.area_um2 < hier.area_um2


def test_buffer_delta_is_exactly_the_boundary(soc_results):
    soc, res = soc_results
    delta = res["hierarchical"].buffers - res["flat"].buffers
    assert delta == soc.boundary_port_count()


def test_flat_saves_power(soc_results):
    _, res = soc_results
    assert res["flat"].power_uw < res["hierarchical"].power_uw


def test_saving_grows_with_block_count(lib28):
    small = hierarchical_soc(2, 150, lib28, seed=9, bus_width=16)
    large = hierarchical_soc(6, 150, lib28, seed=9, bus_width=16)
    rs = flat_vs_hierarchical(small, seed=1)
    rl = flat_vs_hierarchical(large, seed=1)
    saving_small = 1 - rs["flat"].area_um2 / rs["hierarchical"].area_um2
    saving_large = 1 - rl["flat"].area_um2 / rl["hierarchical"].area_um2
    report("E2", [f"area saving 2 blocks: {saving_small * 100:.1f}%, "
                  f"6 blocks: {saving_large * 100:.1f}%"])
    assert saving_large > saving_small * 0.8  # more boundaries, more tax


def test_bench_flat_flow(benchmark, lib28):
    """Benchmark the flat implementation flow."""
    soc = hierarchical_soc(3, 120, lib28, seed=11)
    result = benchmark(lambda: place_flat(soc, seed=0).hpwl_um)
    assert result > 0
