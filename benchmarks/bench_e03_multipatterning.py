"""E3 — Domic: "starting at 20 nanometers, it has become impossible to
draw the copper interconnects of an IC without double-, triple-, or
even quadruple-patterning.  Without EUV, 5 nanometers could require
octuple-patterning; ... advanced EDA has made multi-patterning
automated, hiding and waiving its complexity."

Reproduction: identical routed wire textures evaluated at each node's
metal-1 pitch.  The conflict graph's chromatic requirement gives the
*coloring* masks; the node's industry regime (including SAQP/cut
steps) gives the *total mask steps*, which is where octuple appears.
"""

import pytest

from repro.litho import build_conflict_graph, random_track_wires
from repro.litho.mpd import decompose, min_masks_needed
from repro.tech import NODES, get_node

from conftest import report

#: Wire texture shared across nodes: only the pitch changes.
WIRES = random_track_wires(28, 120, density=0.55, seed=42)


def _colors_at(node_name):
    node = get_node(node_name)
    graph = build_conflict_graph(WIRES, pitch_nm=node.metal1_pitch_nm)
    return min_masks_needed(graph, allow_stitches=True)


@pytest.fixture(scope="module")
def mask_table():
    table = {}
    for name in ("45nm", "32nm", "28nm", "20nm", "16nm", "14nm",
                 "10nm", "7nm", "5nm"):
        node = get_node(name)
        table[name] = {
            "pitch": node.metal1_pitch_nm,
            "colors": _colors_at(name),
            "regime": node.litho.value,
            "mask_steps": node.litho.mask_multiplier,
        }
    return table


def test_single_patterning_holds_through_28nm(mask_table):
    rows = [f"{n}: pitch {v['pitch']:.0f}nm, colors {v['colors']}, "
            f"regime {v['regime']} ({v['mask_steps']} mask steps)"
            for n, v in mask_table.items()]
    report("E3", rows)
    for name in ("45nm", "32nm", "28nm"):
        assert mask_table[name]["colors"] == 1, name


def test_double_patterning_onset_at_20nm(mask_table):
    # The panel's onset claim, exactly.
    assert mask_table["20nm"]["colors"] >= 2
    assert mask_table["16nm"]["colors"] >= 2
    assert mask_table["14nm"]["colors"] >= 2


def test_triple_quad_below_14nm(mask_table):
    assert mask_table["10nm"]["colors"] >= 2
    assert mask_table["7nm"]["colors"] >= 2
    assert mask_table["5nm"]["colors"] >= 3


def test_octuple_at_5nm_without_euv(mask_table):
    # Total mask steps (coloring + SAQP spacer/cut steps) reach 8.
    assert mask_table["5nm"]["mask_steps"] == 8


def test_mask_requirement_monotone_down_the_roadmap(mask_table):
    order = ["45nm", "32nm", "28nm", "20nm", "16nm", "14nm", "10nm",
             "7nm", "5nm"]
    colors = [mask_table[n]["colors"] for n in order]
    assert all(a <= b for a, b in zip(colors, colors[1:]))


def test_automation_hides_complexity(mask_table):
    # "Automated, hiding and waiving its complexity": the decomposer
    # must succeed unassisted everywhere the regime allows.
    for name, row in mask_table.items():
        node = get_node(name)
        graph = build_conflict_graph(
            WIRES, pitch_nm=node.metal1_pitch_nm)
        result = decompose(graph, max(row["colors"], 1),
                           allow_stitches=True)
        assert result.success, name


def test_stitches_reduce_required_masks(mask_table):
    # Ablation: disallowing stitches can only need more masks.
    for name in ("20nm", "10nm", "5nm"):
        node = get_node(name)
        graph = build_conflict_graph(
            WIRES, pitch_nm=node.metal1_pitch_nm)
        with_st = min_masks_needed(graph, allow_stitches=True)
        without = min_masks_needed(graph, allow_stitches=False)
        assert with_st <= without


def test_real_routed_design_decomposes(lib28):
    """End-to-end: place -> route -> track-assign -> decompose.

    The synthetic-texture study above, repeated on an actual routed
    design's metal-2: single-patterned at 28 nm, double at 20 nm, and
    the automatic decomposer closes both.
    """
    from repro.netlist import logic_cloud
    from repro.netlist.cells import build_library
    from repro.place import global_place
    from repro.route import route_placement
    from repro.route.track_assign import decompose_routed_layer

    rows = []
    for name in ("28nm", "20nm"):
        node = get_node(name)
        lib = build_library(node)
        nl = logic_cloud(16, 16, 300, lib, seed=1, locality=0.9)
        placement = global_place(nl, seed=0, utilization=0.35)
        result = route_placement(placement, gcell_um=2.0)
        stats = decompose_routed_layer(result, node=node)
        rows.append(f"routed {name} M2: {stats['wires']} wires, "
                    f"{stats['conflict_edges']} conflicts, "
                    f"k={stats['k']}, "
                    f"{'OK' if stats['success'] else 'FAIL'}")
        assert stats["success"], name
        if name == "28nm":
            assert stats["k"] == 1
        else:
            assert stats["k"] == 2
    report("E3", rows)


def test_bench_decomposition(benchmark):
    """Benchmark a full 10nm-pitch decomposition."""
    node = get_node("10nm")

    def run():
        graph = build_conflict_graph(
            WIRES, pitch_nm=node.metal1_pitch_nm)
        return decompose(graph, 3, allow_stitches=True).success

    assert benchmark(run)
