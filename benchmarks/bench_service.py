"""Benchmark: the flow service vs ``run_sweep`` on a heterogeneous
job stream.

The scenario the service exists for: a large stream of flow jobs over
a modest set of distinct (design, options) combinations — the design-
starts shape, where many tenants resubmit overlapping work.  Both
schedulers get the same stream:

* **baseline** — ``run_sweep`` with a process pool and a shared
  on-disk *stage* cache (its best configuration);
* **service** — a :class:`repro.service.FlowService` with the same
  worker count, shared-memory design transport, the sharded job-level
  result cache, and write-ahead journaling enabled.  Mid-sweep, one
  worker is SIGKILLed to prove the throughput number includes paying
  for crash recovery.

Acceptance (``--check``):

* every per-job QoR from the service is identical to the baseline's
  (and therefore to a direct ``run``) — including jobs recovered from
  the kill;
* zero jobs are lost to the kill;
* service throughput >= ``--floor`` x baseline (1.5 full, 1.1 quick —
  the quick stream is small enough that fixed costs dominate).

Writes BENCH_service.json: jobs/sec for both schedulers, the ratio,
job-cache hit rate, scheduler counters, and p50/p99 job latency.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import FlowOptions
from repro.netlist import build_library, registered_cloud
from repro.orchestrate import run_sweep
from repro.service import FlowService
from repro.tech import get_node


def _qor(result):
    return (result.delay_ps, result.power_uw, result.hpwl_um,
            result.routed_wirelength, result.overflow,
            result.instances, result.area_um2)


def _job_stream(jobs: int, designs: int, variants: int, lib):
    """A deterministic heterogeneous stream: ``designs * variants``
    distinct combos cycled to ``jobs`` entries."""
    subjects = [registered_cloud(8, 16, 100 + 24 * i, lib, seed=3 + i)
                for i in range(designs)]
    combos = [(subjects[d], FlowOptions(seed=11 + v,
                                        utilization=0.55 + 0.05 * (v % 3)))
              for d in range(designs) for v in range(variants)]
    return [combos[i % len(combos)] for i in range(jobs)]


def _percentile(values, q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(int(q * (len(ordered) - 1) + 0.5), len(ordered) - 1)
    return ordered[idx]


def bench_baseline(stream, lib, workers: int, root: Path):
    subjects = [s for s, _ in stream]
    options = [o for _, o in stream]
    t0 = time.perf_counter()
    sweep = run_sweep(subjects, lib, options, jobs=workers,
                      cache_dir=root / "baseline-cache")
    wall = time.perf_counter() - t0
    return sweep.results, wall


def bench_service(stream, lib, workers: int, root: Path,
                  kill_workers: int):
    import threading

    service = FlowService(workers=workers,
                          cache_root=root / "service-cache",
                          journal_root=root / "service-journals",
                          rundb_log=root / "service-runs.jsonl")
    kills = [0]
    done = threading.Event()

    def killer():
        # SIGKILL live workers mid-sweep, concurrently with
        # submission: recovery is part of the measured wall clock,
        # not an excuse.
        deadline = time.time() + 30
        while kills[0] < kill_workers and not done.is_set() \
                and time.time() < deadline:
            running = service.running_jobs()
            if running:
                os.kill(running[0][1], signal.SIGKILL)
                kills[0] += 1
            else:
                time.sleep(0.001)

    t0 = time.perf_counter()
    with service:
        assassin = threading.Thread(target=killer, daemon=True)
        assassin.start()
        jobs = [service.submit(subject, lib, options)
                for subject, options in stream]
        results = [service.result(job_id, timeout=600)
                   for job_id in jobs]
        done.set()
        assassin.join()
        wall = time.perf_counter() - t0
        stats = service.stats()
        records = service.job_records()
    latencies = [r["queued_s"] + r["exec_s"] for r in records]
    return results, wall, stats, latencies, kills[0]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1000)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--designs", type=int, default=4)
    parser.add_argument("--variants", type=int, default=4)
    parser.add_argument("--kills", type=int, default=1,
                        help="workers to SIGKILL mid-sweep")
    parser.add_argument("--node", default="28nm")
    parser.add_argument("--quick", action="store_true",
                        help="small stream for CI (120 jobs)")
    parser.add_argument("--check", action="store_true",
                        help="enforce the acceptance floors")
    parser.add_argument("--floor", type=float, default=None,
                        help="required service/baseline throughput "
                             "ratio (default: 1.5, quick: 1.1)")
    parser.add_argument("--out", default=None,
                        help="output JSON path "
                             "(default: BENCH_service.json)")
    args = parser.parse_args(argv)

    if args.quick:
        args.jobs = min(args.jobs, 120)
        args.workers = min(args.workers, 2)
        args.designs = min(args.designs, 2)
        args.variants = min(args.variants, 3)
    floor = args.floor if args.floor is not None \
        else (1.1 if args.quick else 1.5)

    lib = build_library(get_node(args.node))
    stream = _job_stream(args.jobs, args.designs, args.variants, lib)
    print(f"{args.jobs} jobs over "
          f"{args.designs * args.variants} distinct combos, "
          f"{args.workers} workers, {args.kills} mid-sweep kill(s)")

    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        root = Path(tmp)
        base_results, base_wall = bench_baseline(
            stream, lib, args.workers, root)
        print(f"baseline run_sweep: {base_wall:.2f}s "
              f"({args.jobs / base_wall:.1f} jobs/s)")
        svc_results, svc_wall, stats, latencies, kills = bench_service(
            stream, lib, args.workers, root, args.kills)
        print(f"service:            {svc_wall:.2f}s "
              f"({args.jobs / svc_wall:.1f} jobs/s), "
              f"{kills} worker(s) killed")

    base_qor = [_qor(r) for r in base_results]
    svc_qor = [_qor(r) for r in svc_results]
    mismatches = sum(1 for a, b in zip(base_qor, svc_qor) if a != b)
    lost = args.jobs - stats["completed"]
    ratio = (args.jobs / svc_wall) / (args.jobs / base_wall)
    cache = stats.get("job_cache", {})
    report = {
        "quick": args.quick,
        "jobs": args.jobs,
        "workers": args.workers,
        "distinct_combos": args.designs * args.variants,
        "workers_killed": kills,
        "baseline_wall_s": base_wall,
        "baseline_jobs_per_s": args.jobs / base_wall,
        "service_wall_s": svc_wall,
        "service_jobs_per_s": args.jobs / svc_wall,
        "throughput_ratio": ratio,
        "qor_mismatches": mismatches,
        "jobs_lost": lost,
        "latency_p50_s": _percentile(latencies, 0.50),
        "latency_p99_s": _percentile(latencies, 0.99),
        "job_cache_hit_rate": cache.get("hit_rate", 0.0),
        "job_cache_hits": cache.get("hits", 0),
        "scheduler": {k: stats[k] for k in (
            "completed", "failed", "parent_hits", "worker_hits",
            "coalesced", "steals", "affinity_hits", "resumed",
            "respawns", "segments")},
    }
    out = Path(args.out or
               Path(__file__).resolve().parent.parent /
               "BENCH_service.json")
    out.write_text(json.dumps(report, indent=1) + "\n")
    print(f"ratio {ratio:.2f}x | hit rate "
          f"{report['job_cache_hit_rate']:.2f} | p50 "
          f"{report['latency_p50_s'] * 1000:.0f}ms p99 "
          f"{report['latency_p99_s'] * 1000:.0f}ms -> {out}")

    if args.check:
        failures = []
        if mismatches:
            failures.append(f"{mismatches} QoR mismatches vs baseline")
        if lost:
            failures.append(f"{lost} jobs lost to the worker kill")
        if stats["failed"]:
            failures.append(f"{stats['failed']} jobs failed")
        if ratio < floor:
            failures.append(f"throughput ratio {ratio:.2f} < "
                            f"floor {floor}")
        if failures:
            print("CHECK FAILED: " + "; ".join(failures))
            return 1
        print(f"CHECK OK: identical QoR, zero lost jobs, "
              f"{ratio:.2f}x >= {floor}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
