"""E10 — Rossi: "Usually and universally DFT is considered ... a front
end activity, but is this still true?  Why is it needed to perform,
later during the implementation, the scan chain reordering to alleviate
the congestion ...?  Even in this case, a radical change in the
approach is required."

Reproduction: the same scanned design stitched in front-end (netlist)
order vs layout-aware order after placement; measured on chain
wirelength and on the routing-congestion contribution of the scan nets.
"""

import numpy as np
import pytest

from repro.dft import chain_wirelength, insert_scan, reorder_chain
from repro.dft.scan import ScanChain, scan_routing_demand
from repro.netlist import registered_cloud
from repro.place import global_place

from conftest import report


@pytest.fixture(scope="module")
def placed_design(lib28):
    nl = registered_cloud(8, 48, 300, lib28, seed=17)
    placement = global_place(nl, seed=0)
    flops = [g.name for g in nl.sequential_gates()]
    return nl, placement, flops


def test_layout_aware_order_cuts_wirelength(placed_design):
    _, placement, flops = placed_design
    front = ScanChain("front", flops, "si", "so")
    layout = ScanChain("layout", reorder_chain(flops, placement),
                       "si", "so")
    wl_front = chain_wirelength(front, placement)
    wl_layout = chain_wirelength(layout, placement)
    saving = 1 - wl_layout / wl_front
    report("E10", [
        f"scan wirelength: front-end {wl_front:.0f} um, layout-aware "
        f"{wl_layout:.0f} um ({saving * 100:.0f}% saved)"])
    assert saving >= 0.4


def test_layout_aware_order_relieves_congestion(placed_design):
    _, placement, flops = placed_design
    front = ScanChain("front", flops, "si", "so")
    layout = ScanChain("layout", reorder_chain(flops, placement),
                       "si", "so")
    d_front = scan_routing_demand(front, placement)
    d_layout = scan_routing_demand(layout, placement)
    report("E10", [
        f"scan routing demand: front-end peak {d_front.max():.2f}, "
        f"layout-aware peak {d_layout.max():.2f}; total "
        f"{d_front.sum():.1f} vs {d_layout.sum():.1f}"])
    assert d_layout.sum() < d_front.sum()


def test_front_end_dft_leaves_quality_on_the_table(placed_design):
    """The panel's thesis, stated as the measured gap: a front-end-only
    flow cannot see placement, so its stitching is far from optimal."""
    _, placement, flops = placed_design
    wl_front = chain_wirelength(
        ScanChain("f", flops, "si", "so"), placement)
    wl_layout = chain_wirelength(
        ScanChain("l", reorder_chain(flops, placement), "si", "so"),
        placement)
    assert wl_front > wl_layout * 1.5


def test_reordered_scan_still_functions(lib28):
    """Reordering must not break shift behaviour."""
    nl = registered_cloud(6, 12, 80, lib28, seed=19)
    placement = global_place(nl, seed=0)
    flops = [g.name for g in nl.sequential_gates()]
    order = reorder_chain(flops, placement)
    chains = insert_scan(nl, order=order)
    nl.validate()
    state = np.zeros((1, len(flops)), dtype=bool)
    vec = np.zeros((1, len(nl.primary_inputs)), dtype=bool)
    vec[0, nl.primary_inputs.index("scan_en")] = True
    vec[0, nl.primary_inputs.index("scan_in0")] = True
    nxt = nl.next_state(vec, state)
    assert nxt.sum() == 1  # exactly the chain head loaded
    assert len(chains[0]) == len(flops)


def test_two_opt_ablation(placed_design):
    """Ablation: 2-opt on top of nearest-neighbor keeps improving."""
    _, placement, flops = placed_design
    wl = lambda order: chain_wirelength(  # noqa: E731
        ScanChain("c", order, "si", "so"), placement)
    greedy = wl(reorder_chain(flops, placement, two_opt=False))
    improved = wl(reorder_chain(flops, placement, two_opt=True))
    report("E10", [f"2-opt ablation: greedy {greedy:.0f} um, "
                   f"with 2-opt {improved:.0f} um"])
    assert improved <= greedy


def test_bench_layout_aware_reorder(benchmark, placed_design):
    """Benchmark the nearest-neighbor + 2-opt reorder."""
    _, placement, flops = placed_design
    order = benchmark(lambda: reorder_chain(flops, placement))
    assert len(order) == len(flops)
