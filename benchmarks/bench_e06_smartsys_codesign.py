"""E6 — Macii: smart-system design must move "from an expert
methodology to a mainstream (automated, integrated, reliable, and
repeatable) design methodology, so that design cost is reduced,
time-to-market is shortened" — by treating integration as an explicit
constraint and "minimizing manual hand-off".

Reproduction: the same system spec attacked by the separate-tools
baseline (per-domain local optimization, manual hand-off iterations)
and by the holistic co-design search.
"""

import pytest

from repro.smartsys import (
    SystemSpec,
    codesign_flow,
    separate_tools_flow,
)

from conftest import report


@pytest.fixture(scope="module")
def outcomes():
    spec = SystemSpec()
    return spec, separate_tools_flow(spec), codesign_flow(spec)


def test_codesign_shortens_time_to_market(outcomes):
    _, separate, joint = outcomes
    rows = [separate.summary(), joint.summary(),
            f"TTM reduction: {separate.time_to_market_weeks / joint.time_to_market_weeks:.1f}x",
            f"NRE reduction: {separate.engineering_cost_usd / joint.engineering_cost_usd:.1f}x"]
    report("E6", rows)
    assert joint.time_to_market_weeks < \
        separate.time_to_market_weeks * 0.6


def test_codesign_reduces_design_cost(outcomes):
    _, separate, joint = outcomes
    assert joint.engineering_cost_usd < \
        separate.engineering_cost_usd * 0.6


def test_codesign_meets_spec_with_cheaper_unit(outcomes):
    _, separate, joint = outcomes
    assert joint.met_spec
    if separate.met_spec:
        assert joint.unit_cost_usd <= separate.unit_cost_usd + 1e-9


def test_separate_tools_burn_handoff_iterations(outcomes):
    _, separate, joint = outcomes
    assert separate.iterations > joint.iterations


def test_codesign_handles_tighter_specs():
    """Integration as an explicit constraint: shrink the footprint
    budget until the sequential methodology fails but the joint search
    still finds a configuration."""
    tight = SystemSpec(max_footprint_mm2=45.0, max_unit_cost_usd=6.0)
    separate = separate_tools_flow(tight)
    joint = codesign_flow(tight)
    report("E6", [f"tight spec: separate "
                  f"{'met' if separate.met_spec else 'FAILED'}, "
                  f"codesign {'met' if joint.met_spec else 'FAILED'}"])
    assert joint.met_spec
    # The baseline either fails outright or pays more iterations.
    assert (not separate.met_spec) or \
        separate.iterations > joint.iterations


def test_repeatability(outcomes):
    """'Reliable and repeatable': the automated flow is deterministic."""
    spec, _, joint = outcomes
    again = codesign_flow(spec)
    assert [c.name for c in again.components] == \
        [c.name for c in joint.components]


def test_bench_codesign_search(benchmark):
    """Benchmark the full joint search over the catalogue."""
    spec = SystemSpec()
    outcome = benchmark(lambda: codesign_flow(spec).unit_cost_usd)
    assert outcome > 0
