"""E1 — Domic: "in the last ten years, we have improved advanced RTL
synthesis results by 30% in terms of area — incidentally, we have also
improved performance, and power by approximately the same amount."

Reproduction: the same workloads run through the 1996, 2006, and 2016
era flows; the decade delta is 2006 -> 2016.  We check the *shape*:
double-digit simultaneous improvement on area, delay, and leakage.
"""

import numpy as np
import pytest

from repro.netlist import random_aig
from repro.netlist.generators import logic_cloud
from repro.synthesis import LogicNetwork
from repro.synthesis.flow import SynthesisFlow, decade_comparison

from conftest import report

WORKLOADS = [
    ("aig_dense", lambda: random_aig(12, 350, 10, seed=101)),
    ("aig_wide", lambda: random_aig(16, 500, 12, seed=202)),
    ("aig_deep", lambda: random_aig(10, 300, 6, seed=303)),
]


@pytest.fixture(scope="module")
def era_results(lib28):
    out = {}
    for name, factory in WORKLOADS:
        out[name] = decade_comparison(factory, lib28,
                                      clock_period_ps=2000.0)
    return out


def _geomean_improvement(era_results, metric):
    ratios = []
    for res in era_results.values():
        old = getattr(res["2006"], metric)
        new = getattr(res["2016"], metric)
        ratios.append(new / old)
    return 1.0 - float(np.prod(ratios) ** (1.0 / len(ratios)))


def test_area_improves_about_30_percent(era_results):
    gain = _geomean_improvement(era_results, "area_um2")
    rows = [f"area improvement 2006->2016: {gain * 100:.1f}% "
            f"(paper: ~30%)"]
    for name, res in era_results.items():
        rows.append(
            f"{name}: " + " | ".join(res[e].summary() for e in res))
    report("E1", rows)
    assert gain >= 0.10, "decade must deliver double-digit area gain"


def test_performance_improves_alongside(era_results):
    gain = _geomean_improvement(era_results, "delay_ps")
    report("E1", [f"delay improvement 2006->2016: {gain * 100:.1f}% "
                  f"(paper: ~30%)"])
    assert gain >= 0.10


def test_power_improves_alongside(era_results):
    gain = _geomean_improvement(era_results, "leakage_nw")
    report("E1", [f"leakage improvement 2006->2016: {gain * 100:.1f}% "
                  f"(paper: ~30%)"])
    assert gain >= 0.20  # multi-Vt recovery dominates this axis


def test_every_workload_improves_area(era_results):
    for name, res in era_results.items():
        assert res["2016"].area_um2 <= res["2006"].area_um2 * 1.02, name


def test_bench_2016_flow_runtime(benchmark, lib28):
    """Benchmark the full 2016-era synthesis flow."""
    def run():
        flow = SynthesisFlow(lib28, "2016", 2000.0)
        return flow.run(random_aig(12, 350, 10, seed=101)).area_um2

    area = benchmark(run)
    assert area > 0
