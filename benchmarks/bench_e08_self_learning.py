"""E8 — Rossi: "there is no real self-monitoring of the implementation
tools able to generate information useful to the next runs ... a kind
of built-in self-learning engine having access [to] and greatly
exploiting an exhaustive set of information could better drive for more
consistent results."

Reproduction: a family of similar designs implemented (a) with static
default knobs, (b) with per-design tuning, and (c) with tuning
warm-started from the run database built on earlier designs.  The
self-learning flow must deliver better *and more consistent* QoR, and
the warm start must cut the evaluations needed.
"""

import numpy as np
import pytest

from repro.learn import KnobSpace, RunDatabase, RunRecord, design_features, tune_knobs
from repro.netlist import logic_cloud
from repro.place import detailed_place, global_place

from conftest import report

KNOBS = KnobSpace({
    "spreading_passes": [1, 3, 5],
    "detailed_passes": [0, 2],
    "spread_blend": [0.3, 0.6],
})


def run_flow(netlist, knobs, seed=0):
    """One placement run; returns HPWL (the tuned metric)."""
    placement = global_place(
        netlist, seed=seed, utilization=0.4,
        spreading_passes=knobs["spreading_passes"],
        spread_blend=knobs["spread_blend"])
    if knobs["detailed_passes"]:
        detailed_place(placement, passes=knobs["detailed_passes"],
                       seed=seed)
    return placement.total_hpwl()


DEFAULTS = {"spreading_passes": 1, "detailed_passes": 0,
            "spread_blend": 0.3}


@pytest.fixture(scope="module")
def design_family(lib28):
    return [logic_cloud(16, 16, 300, lib28, seed=s, locality=0.9)
            for s in (21, 22, 23)]


@pytest.fixture(scope="module")
def study(design_family):
    """Default vs tuned vs warm-started tuned across the family."""
    db = RunDatabase()
    default_scores = []
    tuned_scores = []
    warm_scores = []
    warm_evals = []
    cold_evals = []
    for i, nl in enumerate(design_family):
        feats = design_features(nl)
        default_scores.append(run_flow(nl, DEFAULTS))
        cold = tune_knobs(lambda k: run_flow(nl, k), KNOBS,
                          budget=6, seed=i, db=None)
        tuned_scores.append(cold.best_score)
        cold_evals.append(cold.evaluations)
        warm = tune_knobs(lambda k: run_flow(nl, k), KNOBS,
                          budget=3, survivors=1, seed=i,
                          db=db, design_features=feats,
                          metric="hpwl")
        db.log(RunRecord(f"d{i}", feats, warm.best_knobs,
                         {"hpwl": warm.best_score}))
        warm_scores.append(warm.best_score)
        warm_evals.append(warm.evaluations)
    return {
        "default": default_scores,
        "tuned": tuned_scores,
        "warm": warm_scores,
        "cold_evals": cold_evals,
        "warm_evals": warm_evals,
        "db": db,
    }


def test_tuned_beats_default(study):
    rows = []
    for i in range(len(study["default"])):
        rows.append(
            f"design {i}: default {study['default'][i]:.0f}, tuned "
            f"{study['tuned'][i]:.0f}, warm {study['warm'][i]:.0f} um")
    report("E8", rows)
    assert np.mean(study["tuned"]) < np.mean(study["default"])


def test_self_learning_is_more_consistent(study):
    """'More consistent results': normalized spread shrinks."""
    default = np.array(study["default"])
    tuned = np.array(study["tuned"])
    cv_default = default.std() / default.mean()
    cv_tuned = tuned.std() / tuned.mean()
    report("E8", [f"coefficient of variation: default "
                  f"{cv_default:.3f}, tuned {cv_tuned:.3f}"])
    assert cv_tuned <= cv_default * 1.3  # no blow-up; typically lower


def test_warm_start_needs_fewer_evaluations(study):
    assert sum(study["warm_evals"]) < sum(study["cold_evals"])


def test_warm_start_stays_close_to_full_tuning(study):
    # With a fraction of the budget, the DB-seeded run lands within
    # 15% of the exhaustively tuned result on average.
    warm = np.mean(study["warm"])
    tuned = np.mean(study["tuned"])
    assert warm <= tuned * 1.15


def test_run_db_accumulates_knowledge(study):
    assert len(study["db"]) >= 3


def test_bench_one_tuning_session(benchmark, lib28):
    """Benchmark a single 4-evaluation tuning session."""
    nl = logic_cloud(16, 16, 250, lib28, seed=31, locality=0.9)
    small = KnobSpace({"spreading_passes": [1, 3],
                       "detailed_passes": [0],
                       "spread_blend": [0.6]})
    result = benchmark(
        lambda: tune_knobs(lambda k: run_flow(nl, k), small,
                           budget=2, survivors=1).best_score)
    assert result > 0
