"""E7 — Rossi: "Taking (almost full) the opportunity given by the
multiple cores sitting in the farms, engineers can today run a
place-and-route job for a 5-6M instance sub-chip with a throughput
approaching the 1M instance per day."

Reproduction: measure our placement+routing runtime at several sizes,
fit the power-law exponent (algorithmic scaling transfers; absolute
constants do not), anchor the constant to a production data point, and
extrapolate the instances/day-vs-cores curve for a 5.5M-instance
sub-chip.
"""

import multiprocessing

import pytest

from repro.core import FlowOptions, ThroughputModel, calibrate_throughput
from repro.netlist import logic_cloud
from repro.orchestrate import ResultCache, TelemetrySink, run_sweep

from conftest import report


@pytest.fixture(scope="module")
def measured_model(lib28):
    return calibrate_throughput(lib28, sizes=(150, 300, 600, 1200),
                                seed=0)


def test_scaling_is_near_linear_loglinear(measured_model):
    """P&R scales like n^1.0..1.6 — the regime that makes 5-6M-instance
    overnight runs possible at all."""
    rows = [f"measured samples: "
            + ", ".join(f"{n} cells {t * 1000:.0f} ms"
                        for n, t in measured_model.samples),
            f"fitted exponent: {measured_model.exponent:.2f}"]
    report("E7", rows)
    assert 0.8 <= measured_model.exponent <= 1.8


def test_throughput_approaches_1m_per_day_on_a_farm(measured_model):
    model = ThroughputModel.from_anchor(
        5_000_000, 50.0, measured_model.exponent,
        parallel_fraction=0.9)
    table = []
    for cores in (1, 4, 16, 64):
        per_day = model.instances_per_day(5_500_000, cores=cores)
        table.append(f"{cores} cores: {per_day / 1e6:.2f} M inst/day")
    report("E7", table)
    farm = model.instances_per_day(5_500_000, cores=64)
    assert 0.5e6 <= farm <= 1.5e6  # "approaching the 1M per day"


def test_single_core_cannot_reach_the_target(measured_model):
    model = ThroughputModel.from_anchor(
        5_000_000, 50.0, measured_model.exponent,
        parallel_fraction=0.9)
    assert model.instances_per_day(5_500_000, cores=1) < 0.3e6


def test_amdahl_limits_the_farm(measured_model):
    # "Almost full" use of the cores: speedup saturates.
    model = ThroughputModel.from_anchor(
        5_000_000, 50.0, measured_model.exponent,
        parallel_fraction=0.9)
    x64 = model.instances_per_day(5_500_000, cores=64)
    x1024 = model.instances_per_day(5_500_000, cores=1024)
    assert x1024 < x64 * 1.6  # diminishing returns past the farm size


def test_bigger_blocks_lower_throughput(measured_model):
    model = ThroughputModel.from_anchor(
        5_000_000, 50.0, max(measured_model.exponent, 1.05),
        parallel_fraction=0.9)
    small = model.instances_per_day(1_000_000, cores=16)
    big = model.instances_per_day(6_000_000, cores=16)
    assert big < small


def test_bench_place_and_route(benchmark, lib28):
    """Benchmark one 600-cell place+route job (the calibration unit)."""
    from repro.place import global_place
    from repro.route import route_placement

    def run():
        nl = logic_cloud(16, 16, 600, lib28, seed=1, locality=0.9)
        placement = global_place(nl, seed=0, utilization=0.35)
        return route_placement(placement, gcell_um=2.0,
                               max_iterations=2).wirelength

    assert benchmark(run) > 0


# ----------------------------------------------------------------------
# The farm itself: run_sweep as the multicore harness Rossi describes.


def _farm_jobs(lib, n_jobs=8, cells=250):
    """One flow job per farm slot: distinct seeded designs."""
    subjects = [logic_cloud(12, 12, cells, lib, seed=i, locality=0.9)
                for i in range(n_jobs)]
    options = [FlowOptions(seed=i, detailed_passes=1,
                           routing_iterations=2)
               for i in range(n_jobs)]
    return subjects, options


@pytest.mark.benchmark
def test_sweep_parallel_vs_serial_throughput(lib28):
    """The E7 mechanism in miniature: the same 8 P&R jobs through
    run_sweep with jobs=1 vs jobs=4, instances/day computed from wall
    time.  The speedup assertion needs real cores under the pool."""
    subjects, options = _farm_jobs(lib28)
    serial = run_sweep(subjects, lib28, options, jobs=1)
    parallel = run_sweep(subjects, lib28, options, jobs=4)
    instances = sum(r.instances for r in serial.results)
    rows = [f"8 jobs serial:   {serial.wall_s:.2f} s "
            f"({instances * 86400 / serial.wall_s / 1e6:.2f} M inst/day)",
            f"8 jobs jobs=4:   {parallel.wall_s:.2f} s "
            f"({instances * 86400 / parallel.wall_s / 1e6:.2f} M inst/day)",
            f"speedup: {serial.wall_s / parallel.wall_s:.2f}x on "
            f"{multiprocessing.cpu_count()} cores"]
    report("E7", rows)
    qor = lambda r: (r.delay_ps, r.routed_wirelength, r.overflow)
    assert [qor(r) for r in serial.results] == \
        [qor(r) for r in parallel.results]
    if multiprocessing.cpu_count() >= 2:
        assert serial.wall_s >= 1.3 * parallel.wall_s


@pytest.mark.benchmark
def test_sweep_cache_hit_speedup(lib28):
    """Re-running an identical sweep replays every stage from the
    content-hash cache — the reuse half of farm throughput."""
    subjects, options = _farm_jobs(lib28, n_jobs=4)
    cache = ResultCache(max_memory_entries=64)
    sink = TelemetrySink()
    cold = run_sweep(subjects, lib28, options, jobs=1, cache=cache)
    warm = run_sweep(subjects, lib28, options, jobs=1, cache=cache,
                     telemetry=sink)
    report("E7", [
        f"cold sweep: {cold.wall_s:.2f} s, warm (cached) sweep: "
        f"{warm.wall_s:.2f} s ({cold.wall_s / warm.wall_s:.0f}x)",
        f"cache: {cache.stats.hits} hits / "
        f"{cache.stats.hits + cache.stats.misses} lookups"])
    hits = [s for s in sink.spans if s.cache == "hit"]
    assert len(hits) == 6 * len(subjects)   # every stage replayed
    assert warm.wall_s < cold.wall_s
