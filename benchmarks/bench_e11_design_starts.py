"""E11 — Domic: "more than 90% of design starts are happening at 32/28
nanometers and above, and 180 nanometers is by far the most 'designed'
technology node, with more than 25% of the total design starts every
year.  This won't change significantly over the next decade."
Sawicki: IoT "does not require the next technology node to implement."

Reproduction: the 2015-anchored design-start distribution, its
ten-year forecast under migration + IoT influx, and the two-path
silicon demand projection.
"""

import pytest

from repro.market import (
    DesignStartModel,
    IOT_ARCHETYPES,
    two_path_forecast,
)

from conftest import report


def test_2015_anchors_hold():
    model = DesignStartModel()
    established = model.established_share()
    s180 = model.share_of("180nm")
    report("E11", [
        f"2015: established share {established * 100:.1f}% "
        f"(paper: >90%)",
        f"2015: 180nm share {s180 * 100:.1f}% (paper: >25%), leader: "
        f"{model.most_designed_node()}"])
    assert established >= 0.90
    assert s180 >= 0.25
    assert model.most_designed_node() == "180nm"


def test_decade_stability():
    model = DesignStartModel()
    snaps = model.forecast(10)
    rows = [f"+{y}y: established {e * 100:.1f}%, 180nm {s * 100:.1f}%"
            for y, e, s in snaps[::2]]
    report("E11", rows)
    _, established_2025, s180_2025 = snaps[-1]
    assert established_2025 >= 0.80     # "won't change significantly"
    assert s180_2025 >= 0.15
    assert model.most_designed_node() == "180nm"


def test_established_share_erodes_only_slowly():
    model = DesignStartModel()
    start = model.established_share()
    snaps = model.forecast(10)
    # Average erosion below 1.5 points/year.
    assert (start - snaps[-1][1]) / 10 < 0.015


def test_iot_lands_on_established_nodes():
    for arch in IOT_ARCHETYPES:
        size = float(arch.node.rstrip("nm"))
        assert size >= 28, arch.name


def test_two_paths_both_grow():
    fc = two_path_forecast(10)
    rows = [f"{fc.years[k]}: IoT {fc.iot_wafers_300mm[k]:.0f} wafers, "
            f"infra {fc.infra_wafers_300mm[k]:.1f} wafers"
            for k in (0, 5, 10)]
    report("E11", rows)
    assert fc.iot_wafers_300mm[-1] > fc.iot_wafers_300mm[0] * 3
    assert fc.infra_wafers_300mm[-1] > fc.infra_wafers_300mm[0] * 3


def test_infrastructure_compounds_faster_than_devices():
    # "The amount of data ... will require an underlying infrastructure
    # backbone that will drive increased transistor densities for years
    # to come": cumulative data makes the advanced path compound.
    fc = two_path_forecast(10)
    iot_growth = fc.iot_wafers_300mm[-1] / fc.iot_wafers_300mm[0]
    infra_growth = fc.infra_wafers_300mm[-1] / fc.infra_wafers_300mm[0]
    assert infra_growth > iot_growth


def test_bench_forecast(benchmark):
    """Benchmark a 10-year two-path forecast."""
    result = benchmark(lambda: two_path_forecast(10).years[-1])
    assert result == 2025
