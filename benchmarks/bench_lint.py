#!/usr/bin/env python
"""Performance harness for the static-analysis subsystem.

Times the full netlist rule set on three synthetic design sizes
(including a 50k-gate design on the full run), the invariant-only
subset the stage-boundary sanitizer replays, and the flow static
verifier (+ purity checker) on the shipped implement DAG.  Results are
written to ``BENCH_lint.json`` so lint slowdowns show up in review
diffs alongside the kernel benchmarks.

The economics only work if the checks are effectively free: a linter
that costs minutes per run is a linter nobody gates on.  ``--check``
enforces that — the whole suite on the large design must finish under
2 s and the pre-run flow verification under 50 ms.

Usage::

    PYTHONPATH=src python benchmarks/bench_lint.py            # full
    PYTHONPATH=src python benchmarks/bench_lint.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_lint.py --check    # gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lint import INVARIANT_RULE_IDS, lint_flow, lint_netlist
from repro.netlist import build_library, registered_cloud
from repro.orchestrate.flows import build_implement_dag
from repro.orchestrate.telemetry import TelemetrySink, kernel_span
from repro.core.flow import FlowOptions
from repro.tech import get_node

# (num_inputs, num_flops, num_gates) per design size.
FULL_SIZES = {
    "small": (24, 64, 2_000),
    "medium": (32, 128, 12_000),
    "large": (48, 256, 50_000),
}
QUICK_SIZES = {
    "small": (12, 24, 300),
    "medium": (16, 48, 1_500),
    "large": (24, 64, 5_000),
}
REPEATS = 3              # best-of-N per timed lint pass


def bench_netlist_lint(name, nl, sink) -> dict:
    """Full rule set and the sanitizer's invariant subset."""
    full_s, report = [], None
    for _ in range(REPEATS):
        with kernel_span(sink, "lint_full"):
            report = lint_netlist(nl)
        full_s.append(sink.spans[-1].wall_s)
    if report.errors:
        raise AssertionError(
            f"{name}: generator produced a lint-dirty design: "
            f"{[str(f) for f in report.errors]}")

    inv_s = []
    for _ in range(REPEATS):
        with kernel_span(sink, "lint_invariants"):
            lint_netlist(nl, only=list(INVARIANT_RULE_IDS))
        inv_s.append(sink.spans[-1].wall_s)

    return {
        "lint_full_ms": 1e3 * min(full_s),
        "lint_invariants_ms": 1e3 * min(inv_s),
        "findings": len(report.findings),
    }


def bench_flow_lint(sink) -> dict:
    """Pre-run flow verification incl. the AST purity checker."""
    dag = build_implement_dag()
    options = FlowOptions()
    flow_s = []
    for _ in range(REPEATS):
        with kernel_span(sink, "lint_flow"):
            report = lint_flow(dag, options)
        flow_s.append(sink.spans[-1].wall_s)
    if not report.ok:
        raise AssertionError(
            f"implement DAG is lint-dirty: "
            f"{[str(f) for f in report.findings]}")
    return {"lint_flow_ms": 1e3 * min(flow_s)}


def run(quick: bool) -> dict:
    sizes = QUICK_SIZES if quick else FULL_SIZES
    lib = build_library(get_node("28nm"),
                        vt_flavors=("lvt", "rvt", "hvt"))
    sink = TelemetrySink()
    results: dict = {"quick": quick, "designs": {}}
    for name, (ni, nf, ng) in sizes.items():
        t0 = time.perf_counter()
        nl = registered_cloud(ni, nf, ng, lib, seed=7, name=name)
        entry = {"gates": nl.num_instances()}
        entry.update(bench_netlist_lint(name, nl, sink))
        entry["total_s"] = time.perf_counter() - t0
        results["designs"][name] = entry
        print(f"[{name}] gates={entry['gates']} "
              f"full={entry['lint_full_ms']:.1f}ms "
              f"invariants={entry['lint_invariants_ms']:.1f}ms "
              f"findings={entry['findings']}")

    results["flow"] = bench_flow_lint(sink)
    print(f"[flow] static verification "
          f"{results['flow']['lint_flow_ms']:.1f}ms")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small designs (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless large-design lint < 2 s "
                             "and flow verification < 50 ms")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_lint.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    results = run(args.quick)
    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        large_s = results["designs"]["large"]["lint_full_ms"] / 1e3
        flow_ms = results["flow"]["lint_flow_ms"]
        if large_s > 2.0:
            print(f"CHECK FAILED: large-design lint took "
                  f"{large_s:.2f}s (budget 2s)")
            return 1
        if flow_ms > 50.0:
            print(f"CHECK FAILED: flow verification took "
                  f"{flow_ms:.1f}ms (budget 50ms)")
            return 1
        print(f"CHECK OK: large lint {large_s:.3f}s, "
              f"flow verification {flow_ms:.1f}ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
