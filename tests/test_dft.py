"""Tests for scan, fault simulation, ATPG, and compression."""

import numpy as np
import pytest

from repro.dft import (
    CompressionConfig,
    Fault,
    Lfsr,
    Misr,
    chain_wirelength,
    enumerate_faults,
    fault_simulate,
    insert_scan,
    random_atpg,
    reorder_chain,
)
from repro.dft import test_cost_model as dft_cost_model
from repro.dft.compression import expand_stimulus, expander_matrix
from repro.dft.faults import fault_coverage
from repro.dft.scan import ScanChain, scan_routing_demand
from repro.netlist import Netlist, build_library, registered_cloud
from repro.place import global_place
from repro.tech import get_node


@pytest.fixture(scope="module")
def lib():
    return build_library(get_node("28nm"))


@pytest.fixture()
def design(lib):
    return registered_cloud(8, 24, 150, lib, seed=3)


class TestScanInsertion:
    def test_flops_become_scan_flops(self, design):
        insert_scan(design)
        design.validate()
        assert all(g.cell.is_scan for g in design.sequential_gates())

    def test_chain_connectivity(self, design):
        chains = insert_scan(design)
        chain = chains[0]
        assert len(chain) == len(design.sequential_gates())
        # Each flop's SI comes from the previous flop's Q.
        prev = chain.scan_in
        for name in chain.flops:
            gate = design.gates[name]
            assert gate.pins["SI"] == prev
            assert gate.pins["SE"] == "scan_en"
            prev = gate.output
        assert prev == chain.scan_out

    def test_multiple_chains_partition_flops(self, design):
        chains = insert_scan(design, num_chains=4)
        names = [n for c in chains for n in c.flops]
        assert sorted(names) == sorted(
            g.name for g in design.sequential_gates())
        assert len(chains) == 4

    def test_shift_behaviour(self, lib):
        # A scanned design must shift the chain when scan_en=1.
        nl = registered_cloud(4, 6, 30, lib, seed=5)
        insert_scan(nl)
        nl.validate()
        n_pi = len(nl.primary_inputs)
        flops = nl.sequential_gates()
        state = np.zeros((1, len(flops)), dtype=bool)
        vec = np.zeros((1, n_pi), dtype=bool)
        vec[0, nl.primary_inputs.index("scan_en")] = True
        vec[0, nl.primary_inputs.index("scan_in0")] = True
        nxt = nl.next_state(vec, state)
        # Exactly the first chain element loads the scan-in value.
        assert nxt.sum() == 1

    def test_no_flops_raises(self, lib):
        nl = Netlist("comb", lib)
        a = nl.add_input("a")
        nl.add_gate("INV_X1_rvt", [a], "y")
        nl.add_output("y")
        with pytest.raises(ValueError):
            insert_scan(nl)

    def test_bad_chain_count(self, design):
        with pytest.raises(ValueError):
            insert_scan(design, num_chains=0)

    def test_order_must_cover_flops(self, design):
        with pytest.raises(ValueError):
            insert_scan(design, order=["ff0"])


class TestChainOrdering:
    def test_layout_aware_shorter_than_frontend(self, lib):
        nl = registered_cloud(8, 32, 200, lib, seed=7)
        placement = global_place(nl, seed=0)
        flops = [g.name for g in nl.sequential_gates()]
        front = ScanChain("f", flops, "si", "so")
        wl_front = chain_wirelength(front, placement)
        better = reorder_chain(flops, placement)
        wl_better = chain_wirelength(
            ScanChain("b", better, "si", "so"), placement)
        assert wl_better < wl_front * 0.7

    def test_reorder_is_permutation(self, lib):
        nl = registered_cloud(8, 16, 100, lib, seed=9)
        placement = global_place(nl, seed=0)
        flops = [g.name for g in nl.sequential_gates()]
        new = reorder_chain(flops, placement)
        assert sorted(new) == sorted(flops)

    def test_two_opt_no_worse_than_greedy(self, lib):
        nl = registered_cloud(8, 24, 120, lib, seed=11)
        placement = global_place(nl, seed=0)
        flops = [g.name for g in nl.sequential_gates()]
        greedy = reorder_chain(flops, placement, two_opt=False)
        opt = reorder_chain(flops, placement, two_opt=True)
        wl = lambda order: chain_wirelength(  # noqa: E731
            ScanChain("c", order, "si", "so"), placement)
        assert wl(opt) <= wl(greedy) + 1e-9

    def test_empty_order(self, lib):
        nl = registered_cloud(8, 8, 40, lib, seed=13)
        placement = global_place(nl, seed=0)
        assert reorder_chain([], placement) == []

    def test_routing_demand_map(self, lib):
        nl = registered_cloud(8, 16, 80, lib, seed=15)
        placement = global_place(nl, seed=0)
        flops = [g.name for g in nl.sequential_gates()]
        demand = scan_routing_demand(
            ScanChain("c", flops, "si", "so"), placement, bins=8)
        assert demand.shape == (8, 8)
        assert demand.sum() > 0


class TestFaults:
    def test_fault_validation(self):
        with pytest.raises(ValueError):
            Fault("n1", 2)

    def test_enumerate_covers_all_nets(self, lib):
        nl = Netlist("t", lib)
        a = nl.add_input("a")
        nl.add_gate("INV_X1_rvt", [a], "y")
        nl.add_output("y")
        faults = enumerate_faults(nl)
        assert len(faults) == 4  # 2 nets x 2 polarities

    def test_inverter_faults_all_detectable(self, lib):
        nl = Netlist("t", lib)
        a = nl.add_input("a")
        nl.add_gate("INV_X1_rvt", [a], "y")
        nl.add_output("y")
        patterns = np.array([[0], [1]], dtype=bool)
        detected = fault_simulate(nl, patterns)
        assert fault_coverage(detected) == 1.0

    def test_single_pattern_misses_some(self, lib):
        nl = Netlist("t", lib)
        a = nl.add_input("a")
        nl.add_gate("INV_X1_rvt", [a], "y")
        nl.add_output("y")
        patterns = np.array([[0]], dtype=bool)
        detected = fault_simulate(nl, patterns)
        assert 0 < fault_coverage(detected) < 1.0

    def test_undetectable_fault_on_unobserved_net(self, lib):
        nl = Netlist("t", lib)
        a = nl.add_input("a")
        nl.add_gate("INV_X1_rvt", [a], "dead")  # drives nothing visible
        nl.add_gate("BUF_X1_rvt", [a], "y")
        nl.add_output("y")
        patterns = np.array([[0], [1]], dtype=bool)
        detected = fault_simulate(nl, patterns,
                                  faults=[Fault("dead", 0)])
        assert not detected[Fault("dead", 0)]

    def test_pattern_shape_check(self, lib):
        nl = Netlist("t", lib)
        a = nl.add_input("a")
        nl.add_gate("INV_X1_rvt", [a], "y")
        nl.add_output("y")
        with pytest.raises(ValueError):
            fault_simulate(nl, np.zeros((2, 3), dtype=bool))


class TestAtpg:
    def test_coverage_curve_monotone(self, design):
        result = random_atpg(design, target_coverage=0.9,
                             max_patterns=128, seed=1)
        curve = result.coverage_curve
        assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:]))
        assert result.coverage == pytest.approx(curve[-1])

    def test_more_patterns_no_worse(self, design):
        small = random_atpg(design, max_patterns=32, seed=2,
                            target_coverage=0.999)
        big = random_atpg(design, max_patterns=256, seed=2,
                          target_coverage=0.999)
        assert big.coverage >= small.coverage - 1e-12

    def test_target_validation(self, design):
        with pytest.raises(ValueError):
            random_atpg(design, target_coverage=0.0)

    def test_detected_counts_consistent(self, design):
        result = random_atpg(design, max_patterns=64, seed=3)
        assert 0 <= result.detected <= result.total_faults
        assert result.coverage == pytest.approx(
            result.detected / result.total_faults)


class TestCompression:
    def test_lfsr_maximal_periods(self):
        assert Lfsr(8).period() == 255
        assert Lfsr(16).period() == 65535

    def test_lfsr_validation(self):
        with pytest.raises(ValueError):
            Lfsr(1)
        with pytest.raises(ValueError):
            Lfsr(8, seed=0)
        with pytest.raises(ValueError):
            Lfsr(8, taps=[9])

    def test_lfsr_bits_deterministic(self):
        a = Lfsr(16, seed=7).bits(100)
        b = Lfsr(16, seed=7).bits(100)
        assert np.array_equal(a, b)

    def test_misr_distinguishes_responses(self):
        m1 = Misr(16)
        m2 = Misr(16)
        rng = np.random.default_rng(0)
        resp = rng.random((20, 16)) < 0.5
        for row in resp:
            m1.absorb(row)
        flipped = resp.copy()
        flipped[10, 3] ^= True
        for row in flipped:
            m2.absorb(row)
        assert m1.signature != m2.signature

    def test_misr_aliasing_bound(self):
        assert Misr(24).aliasing_probability() == pytest.approx(2.0 ** -24)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CompressionConfig(3, 8, 100)      # odd pins
        with pytest.raises(ValueError):
            CompressionConfig(8, 2, 100)      # fan-in expander

    def test_compression_shortens_chains(self):
        flat = CompressionConfig(8, 4, 4000)
        comp = CompressionConfig(8, 64, 4000)
        assert comp.chain_length < flat.chain_length
        assert comp.compression_ratio > flat.compression_ratio

    def test_cost_model_low_pin_count_wins(self):
        # E13: compression retargeted at low-pin-count test cuts cost.
        full = dft_cost_model(40000, 2000, scan_pins=64)
        lpct = dft_cost_model(40000, 2000, scan_pins=4,
                               internal_chains=256)
        assert lpct["total_cost_usd"] < full["total_cost_usd"]
        assert lpct["compression_ratio"] > full["compression_ratio"]

    def test_expander_properties(self):
        m = expander_matrix(4, 32, seed=1)
        assert m.shape == (32, 4)
        assert m.any(axis=1).all()  # every chain driven
        pins = np.array([1, 0, 1, 0], dtype=bool)
        chains = expand_stimulus(m, pins)
        assert chains.shape == (32,)

    def test_expander_must_fan_out(self):
        with pytest.raises(ValueError):
            expander_matrix(8, 4)
