"""Stage-function specimens for the purity checker tests.

These live in a real module (not a test body or REPL) because
:func:`repro.lint.purity.check_stage_purity` needs ``inspect`` to find
their source.  Each function exhibits exactly one hazard class — or
none — so the tests can assert rule ids precisely.
"""

import os
import random
import time

import numpy as np

_SCRATCH: dict = {}


def draws_random(ctx):
    """PURE-002: unseeded module-level randomness."""
    return random.random()


def reads_clock(ctx):
    """PURE-001: wall-clock read folds time into the result."""
    return time.time()


def reads_env(ctx):
    """PURE-003: environment read invisible to the cache key."""
    return os.environ.get("HOME", "")


def mutates_global(ctx):
    """PURE-004: writes into captured module state."""
    _SCRATCH["last"] = ctx
    return len(_SCRATCH)


def seeded_rng(ctx):
    """Clean: explicitly seeded generators are reproducible."""
    rng = np.random.default_rng(ctx["options"].seed)
    return float(rng.random())


def waived_clock(ctx):
    """PURE-001 present but waived inline."""
    t0 = time.time()  # lint: waive PURE-001 coarse progress logging
    return t0
