"""Tests for the technology-node table and scaling laws."""

import math

import pytest

from repro.tech import (
    NODES,
    NODE_NAMES,
    LithoRegime,
    SINGLE_PATTERN_PITCH_NM,
    TechNode,
    colors_required,
    dennard_power_density,
    density_gain,
    emerging_nodes,
    established_nodes,
    get_node,
    integration_capacity_ratio,
    masks_for_pitch,
    nodes_between,
    patterning_for_pitch,
    scale_node,
)
from repro.tech.node import interpolate_vdd, speed_power_product
from repro.tech.patterning import mask_layer_cost_multiplier
from repro.tech.scaling import moore_doublings, node_cadence_months


class TestNodeTable:
    def test_all_canonical_nodes_present(self):
        for name in ["250nm", "180nm", "130nm", "90nm", "65nm", "45nm",
                     "32nm", "28nm", "20nm", "16nm", "14nm", "10nm",
                     "7nm", "5nm"]:
            assert name in NODES

    def test_get_node_accepts_bare_size(self):
        assert get_node("28").name == "28nm"
        assert get_node("28nm").name == "28nm"

    def test_get_node_unknown_raises_with_catalog(self):
        with pytest.raises(KeyError, match="28nm"):
            get_node("31nm")

    def test_nodes_ordered_oldest_first(self):
        sizes = [NODES[n].drawn_nm for n in NODE_NAMES]
        assert sizes == sorted(sizes, reverse=True)

    def test_years_monotonic(self):
        years = [NODES[n].year for n in NODE_NAMES]
        assert years == sorted(years)

    def test_vdd_monotonically_nonincreasing(self):
        vdds = [NODES[n].vdd for n in NODE_NAMES]
        assert all(a >= b for a, b in zip(vdds, vdds[1:]))

    def test_density_monotonically_increasing(self):
        d = [NODES[n].density_mtr_per_mm2 for n in NODE_NAMES]
        assert all(a < b for a, b in zip(d, d[1:]))

    def test_wafer_and_mask_costs_increase(self):
        w = [NODES[n].wafer_cost_usd for n in NODE_NAMES]
        m = [NODES[n].mask_set_cost_usd for n in NODE_NAMES]
        assert all(a <= b for a, b in zip(w, w[1:]))
        assert all(a <= b for a, b in zip(m, m[1:]))

    def test_established_emerging_partition(self):
        est = established_nodes()
        eme = emerging_nodes()
        assert len(est) + len(eme) == len(NODES)
        assert all(n.drawn_nm >= 28 for n in est)
        assert all(n.drawn_nm < 28 for n in eme)
        assert get_node("28nm").is_established
        assert get_node("20nm").is_emerging

    def test_nodes_between(self):
        span = nodes_between("20nm", "90nm")
        names = [n.name for n in span]
        assert names[0] == "90nm" and names[-1] == "20nm"
        assert "130nm" not in names and "14nm" not in names

    def test_nodes_between_rejects_swapped_order(self):
        with pytest.raises(ValueError):
            nodes_between("90nm", "20nm")


class TestPanelAnchors:
    """The specific numbers the panel quotes must hold in the model."""

    def test_integration_capacity_two_orders_90nm_to_10nm(self):
        # Abstract: "integration capacity has increased by two orders of
        # magnitude" between 90 nm (ten years before) and 10 nm.
        ratio = integration_capacity_ratio("90nm", "10nm")
        assert 60 <= ratio <= 150

    def test_single_patterning_limit_is_80nm(self):
        # Domic: "minimum single-patterning pitch of approximately 80nm".
        assert SINGLE_PATTERN_PITCH_NM == 80.0
        assert colors_required(81) == 1
        assert colors_required(80) == 1
        assert colors_required(79) == 2

    def test_20nm_node_first_to_need_double_patterning(self):
        # Domic: "starting at 20 nanometers, it has become impossible to
        # draw the copper interconnects without double patterning".
        for name in ["28nm", "32nm", "45nm", "65nm"]:
            assert NODES[name].litho is LithoRegime.SINGLE
        assert NODES["20nm"].litho.mask_multiplier >= 2

    def test_5nm_without_euv_needs_octuple(self):
        assert NODES["5nm"].litho is LithoRegime.OCTUPLE
        assert NODES["5nm"].litho.mask_multiplier == 8

    def test_leakage_explodes_through_130_90_65(self):
        # The static-power crisis the panel dates to 130 nm: leakage per
        # um rises orders of magnitude from 180 nm planar to 65 nm.
        i180 = get_node("180nm").ileak_na_per_um
        i65 = get_node("65nm").ileak_na_per_um
        assert i65 / i180 > 50

    def test_finfet_reduces_leakage_vs_20nm_planar(self):
        assert get_node("16nm").ileak_na_per_um < get_node("20nm").ileak_na_per_um


class TestDerivedQuantities:
    def test_fo4_improves_with_scaling(self):
        assert get_node("28nm").fo4_delay_ps() < get_node("180nm").fo4_delay_ps()

    def test_wire_delay_quadratic(self):
        n = get_node("28nm")
        assert n.wire_delay_ps(200) == pytest.approx(4 * n.wire_delay_ps(100))

    def test_leakage_vth_shift_exponential(self):
        n = get_node("65nm")
        hvt = n.leakage_nw(1.0, +0.085)
        rvt = n.leakage_nw(1.0, 0.0)
        assert hvt == pytest.approx(rvt / 10.0, rel=0.01)

    def test_area_transistor_roundtrip(self):
        n = get_node("28nm")
        assert n.transistors_for_area(n.area_for_transistors(1e6)) == pytest.approx(1e6)

    def test_power_density_positive_and_rises_post_dennard(self):
        d90 = dennard_power_density("90nm")
        d180 = dennard_power_density("180nm")
        assert d90 > 0 and d180 > 0
        # Post-Dennard: naive power density grows as scaling proceeds.
        assert d90 > d180

    def test_speed_power_product_improves(self):
        assert speed_power_product(get_node("28nm")) < speed_power_product(
            get_node("180nm"))

    def test_describe_mentions_name_and_litho(self):
        s = get_node("20nm").describe()
        assert "20nm" in s and "lele" in s


class TestPatterning:
    def test_colors_required_monotone_in_pitch(self):
        prev = 100
        for pitch in [120, 80, 60, 40, 30, 20, 10]:
            k = colors_required(pitch)
            assert k <= prev or k >= 1
            prev = k
        assert colors_required(40) == 2
        assert colors_required(27) == 3
        assert colors_required(20) == 4
        assert colors_required(10) == 8

    def test_colors_required_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            colors_required(0)

    def test_patterning_ladder(self):
        assert patterning_for_pitch(100) is LithoRegime.SINGLE
        assert patterning_for_pitch(45) is LithoRegime.LELE
        assert patterning_for_pitch(27) is LithoRegime.LELELE
        assert patterning_for_pitch(20) is LithoRegime.SAQP
        assert patterning_for_pitch(10) is LithoRegime.OCTUPLE

    def test_euv_kicks_in_beyond_double(self):
        assert patterning_for_pitch(30, allow_euv=True) is LithoRegime.EUV
        # EUV not used when double patterning suffices.
        assert patterning_for_pitch(45, allow_euv=True) is LithoRegime.LELE
        # Below the EUV single-exposure pitch, multi-patterning returns.
        assert patterning_for_pitch(27, allow_euv=True) is LithoRegime.LELELE

    def test_masks_for_pitch(self):
        assert masks_for_pitch(100) == 1
        assert masks_for_pitch(45) == 2
        assert masks_for_pitch(30, allow_euv=True) == 1

    def test_cost_multiplier_ordering(self):
        regimes = [LithoRegime.SINGLE, LithoRegime.LELE, LithoRegime.LELELE,
                   LithoRegime.SAQP, LithoRegime.OCTUPLE]
        costs = [mask_layer_cost_multiplier(r) for r in regimes]
        assert costs == sorted(costs)


class TestScaling:
    def test_density_gain_symmetric_inverse(self):
        g = density_gain("90nm", "28nm")
        assert g > 1
        assert density_gain("28nm", "90nm") == pytest.approx(1 / g)

    def test_scale_node_shrinks_geometry(self):
        base = get_node("7nm")
        proj = scale_node(base, 0.7, name="5nm-x")
        assert proj.metal1_pitch_nm == pytest.approx(base.metal1_pitch_nm * 0.7)
        assert proj.density_mtr_per_mm2 > base.density_mtr_per_mm2
        assert proj.mask_set_cost_usd > base.mask_set_cost_usd
        assert proj.name == "5nm-x"

    def test_scale_node_rejects_bad_factor(self):
        base = get_node("7nm")
        with pytest.raises(ValueError):
            scale_node(base, 1.5)
        with pytest.raises(ValueError):
            scale_node(base, 0.05)

    def test_interpolate_vdd_hits_anchors(self):
        assert interpolate_vdd(180) == pytest.approx(1.8)
        assert interpolate_vdd(130) == pytest.approx(1.2)
        assert interpolate_vdd(300) == 2.5
        assert interpolate_vdd(3) == 0.65

    def test_interpolate_vdd_monotone(self):
        sizes = [250, 200, 150, 100, 70, 50, 30, 20, 10, 7, 5]
        vs = [interpolate_vdd(s) for s in sizes]
        assert all(a >= b for a, b in zip(vs, vs[1:]))

    def test_moore_doublings(self):
        d = moore_doublings("90nm", "10nm")
        assert 6 < d < 7.2  # ~90x is ~6.5 doublings

    def test_node_cadence(self):
        # Rossi: "new nodes are introduced every 18 months".
        assert node_cadence_months(2014, 2017, 2) == pytest.approx(18.0)
        with pytest.raises(ValueError):
            node_cadence_months(2014, 2017, 0)
