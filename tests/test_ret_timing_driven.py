"""Tests for SRAF insertion and timing-driven placement."""

import numpy as np
import pytest

from repro.litho.ret import (
    insert_srafs,
    isolated_line_mask,
    process_window,
)
from repro.netlist import build_library, logic_cloud
from repro.place import global_place
from repro.place.timing_driven import (
    critical_path_length_um,
    slack_weights,
    timing_driven_place,
)
from repro.tech import get_node
from repro.timing import TimingAnalyzer, WireModel


class TestSraf:
    def test_isolated_line_mask_geometry(self):
        img = isolated_line_mask(60, field_nm=600)
        assert img.any()
        # One line: exactly two vertical edges.
        occupied = img.any(axis=0)
        assert np.abs(np.diff(occupied.astype(int))).sum() == 2
        with pytest.raises(ValueError):
            isolated_line_mask(0)

    def test_srafs_added_beside_isolated_line(self):
        img = isolated_line_mask(40, field_nm=600)
        result = insert_srafs(img, 2.0)
        assert result.assists_added == 2  # one per side
        assert not result.assist_printed

    def test_srafs_widen_process_window(self):
        img = isolated_line_mask(40, field_nm=600)
        raw = process_window(img, 2.0, epe_spec_nm=6.0)
        result = insert_srafs(img, 2.0)
        assisted = process_window(img, 2.0, mask=result.mask,
                                  epe_spec_nm=6.0)
        assert assisted > raw

    def test_dense_pattern_gets_no_assists(self):
        from repro.litho import dense_line_mask
        dense = dense_line_mask(120, lines=6)
        result = insert_srafs(dense, 2.0)
        # Interior lines have neighbors; at most the two outermost
        # edges are eligible.
        assert result.assists_added <= 2

    def test_assists_subresolution(self):
        img = isolated_line_mask(40, field_nm=600)
        result = insert_srafs(img, 2.0)
        # The assist transmission is partial and narrower than the PSF,
        # so it must not print.
        assert not result.assist_printed

    def test_process_window_bounds(self):
        img = isolated_line_mask(80, field_nm=600)
        pw = process_window(img, 2.0)
        assert 0.0 <= pw <= 1.0


class TestTimingDrivenPlacement:
    @pytest.fixture(scope="class")
    def design(self):
        lib = build_library(get_node("28nm"))
        return logic_cloud(16, 16, 400, lib, seed=3, locality=0.8)

    def _delay(self, netlist, placement):
        wm = WireModel.for_node(netlist.library.node,
                                placement.net_lengths())
        return TimingAnalyzer(netlist, wm).analyze().critical_delay_ps

    def test_weights_in_range(self, design):
        placement = global_place(design, seed=0, utilization=0.4)
        weights = slack_weights(design, placement, max_weight=6.0)
        assert weights
        assert all(1.0 <= w <= 6.0 + 1e-9 for w in weights.values())

    def test_critical_nets_get_heavier(self, design):
        placement = global_place(design, seed=0, utilization=0.4)
        weights = slack_weights(design, placement)
        wm = WireModel.for_node(design.library.node,
                                placement.net_lengths())
        report = TimingAnalyzer(design, wm).analyze()
        crit_gate = design.gates[report.critical_path[-1]]
        crit_w = weights[crit_gate.output]
        assert crit_w > np.median(list(weights.values()))

    def test_timing_driven_shortens_critical_path(self, design):
        base = global_place(design, seed=0, utilization=0.4)
        td = timing_driven_place(design, seed=0, utilization=0.4)
        assert self._delay(design, td) < self._delay(design, base)

    def test_wirelength_cost_is_bounded(self, design):
        base = global_place(design, seed=0, utilization=0.4)
        td = timing_driven_place(design, seed=0, utilization=0.4)
        assert td.total_hpwl() < base.total_hpwl() * 1.25

    def test_critical_path_wire_contracts(self, design):
        base = global_place(design, seed=0, utilization=0.4)
        td = timing_driven_place(design, seed=0, utilization=0.4)
        assert critical_path_length_um(design, td) < \
            critical_path_length_um(design, base)

    def test_weight_validation(self, design):
        placement = global_place(design, seed=0, utilization=0.4)
        with pytest.raises(ValueError):
            slack_weights(design, placement, max_weight=0.5)
