"""Tests for repro.orchestrate: DAG scheduling, content-hash caching,
executors (retry/timeout/degraded), sweeps, and telemetry."""

import time

import pytest

from repro.core import FlowOptions, implement
from repro.learn import RunDatabase
from repro.netlist import build_library, registered_cloud
from repro.orchestrate import (
    CycleError,
    FlowDAG,
    PoolExecutor,
    ResultCache,
    SerialExecutor,
    Stage,
    StageError,
    StageTimeout,
    TelemetrySink,
    implement_dag,
    parallel_map,
    run_sweep,
    stable_hash,
    stage_key,
    stage_timer,
)
from repro.tech import get_node


@pytest.fixture(scope="module")
def lib():
    return build_library(get_node("28nm"),
                         vt_flavors=("lvt", "rvt", "hvt"))


def small_design(lib, seed=3):
    return registered_cloud(8, 16, 120, lib, seed=seed)


# ----------------------------------------------------------------------
# DAG structure


class TestDag:
    def test_topological_order_respects_deps(self):
        dag = (FlowDAG()
               .add(Stage("c", lambda ctx: 3, deps=("a", "b")))
               .add(Stage("a", lambda ctx: 1))
               .add(Stage("b", lambda ctx: 2, deps=("a",))))
        order = [s.name for s in dag.topological_order()]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_detection(self):
        dag = (FlowDAG()
               .add(Stage("a", lambda ctx: 1, deps=("b",)))
               .add(Stage("b", lambda ctx: 2, deps=("a",))))
        with pytest.raises(CycleError, match="a"):
            dag.topological_order()

    def test_unknown_dep_rejected(self):
        dag = FlowDAG().add(Stage("a", lambda ctx: 1, deps=("ghost",)))
        with pytest.raises(ValueError, match="ghost"):
            dag.validate()

    def test_duplicate_stage_rejected(self):
        dag = FlowDAG().add(Stage("a", lambda ctx: 1))
        with pytest.raises(ValueError, match="duplicate"):
            dag.add(Stage("a", lambda ctx: 2))

    def test_dependents_transitive(self):
        dag = (FlowDAG()
               .add(Stage("a", lambda ctx: 1))
               .add(Stage("b", lambda ctx: 2, deps=("a",)))
               .add(Stage("c", lambda ctx: 3, deps=("b",)))
               .add(Stage("d", lambda ctx: 4)))
        assert dag.dependents("a") == {"b", "c"}
        assert dag.dependents("d") == set()


# ----------------------------------------------------------------------
# Content-hash cache


class TestCache:
    def test_stable_hash_dict_order_independent(self):
        assert stable_hash({"a": 1, "b": [2.5, "x"]}) == \
            stable_hash({"b": [2.5, "x"], "a": 1})

    def test_stable_hash_distinguishes_values(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})
        assert stable_hash(FlowOptions()) != \
            stable_hash(FlowOptions(routing_iterations=2))

    def test_hit_miss_and_invalidation_on_input_change(self):
        cache = ResultCache()
        k1 = stage_key("route", "1", {"iters": 4})
        cache.put(k1, "result-4")
        hit, value = cache.get(k1)
        assert hit and value == "result-4"
        # One knob changed -> different key -> miss.
        hit, _ = cache.get(stage_key("route", "1", {"iters": 5}))
        assert not hit
        # Version bump invalidates too.
        hit, _ = cache.get(stage_key("route", "2", {"iters": 4}))
        assert not hit
        assert cache.stats.hits == 1 and cache.stats.misses == 2

    def test_disk_store_survives_new_instance(self, tmp_path):
        key = stage_key("s", "1", {"x": 1})
        ResultCache(disk_dir=tmp_path).put(key, {"qor": 42})
        fresh = ResultCache(disk_dir=tmp_path)
        hit, value = fresh.get(key)
        assert hit and value == {"qor": 42}
        assert fresh.stats.disk_hits == 1

    def test_hits_return_fresh_copies(self):
        cache = ResultCache()
        cache.put("k", {"mutable": [1]})
        _, first = cache.get("k")
        first["mutable"].append(2)
        _, second = cache.get("k")
        assert second == {"mutable": [1]}

    def test_lru_eviction(self):
        cache = ResultCache(max_memory_entries=2)
        for i in range(4):
            cache.put(f"k{i}", i)
        assert len(cache) == 2
        assert cache.stats.evictions == 2
        assert not cache.get("k0")[0]
        assert cache.get("k3")[0]


# ----------------------------------------------------------------------
# Executors: retry, timeout, degradation


class TestExecutor:
    def test_retry_then_succeed(self):
        calls = {"n": 0}

        def flaky(ctx):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "done"

        dag = FlowDAG().add(Stage("flaky", flaky, retries=3,
                                  backoff_s=0.001))
        sink = TelemetrySink()
        run = SerialExecutor().run(dag, {}, sink=sink)
        assert run.status == "ok"
        assert run.outputs["flaky"] == "done"
        assert sink.spans[0].retries == 2

    def test_retries_exhausted_raises_strict(self):
        dag = FlowDAG().add(Stage(
            "dead", lambda ctx: 1 / 0, retries=1, backoff_s=0.001))
        with pytest.raises(StageError, match="dead"):
            SerialExecutor().run(dag, {})

    def test_timeout_path(self):
        def slow(ctx):
            time.sleep(1.0)

        dag = FlowDAG().add(Stage("slow", slow, timeout_s=0.05))
        run = SerialExecutor().run(dag, {}, strict=False)
        assert run.status == "failed"
        assert run.spans[0].status == "timeout"
        with pytest.raises(StageTimeout):
            SerialExecutor().run(dag, {})

    def test_optional_failure_degrades_and_dependents_run(self):
        dag = (FlowDAG()
               .add(Stage("base", lambda ctx: 10))
               .add(Stage("shaky", lambda ctx: 1 / 0,
                          deps=("base",), optional=True))
               .add(Stage("after", lambda ctx: (ctx["base"],
                                                ctx["shaky"]),
                          deps=("base", "shaky"))))
        run = SerialExecutor().run(dag, {})
        assert run.status == "degraded"
        assert run.outputs["shaky"] is None
        assert run.outputs["after"] == (10, None)

    def test_required_failure_skips_dependents(self):
        dag = (FlowDAG()
               .add(Stage("boom", lambda ctx: 1 / 0))
               .add(Stage("child", lambda ctx: 1, deps=("boom",)))
               .add(Stage("island", lambda ctx: 2)))
        run = SerialExecutor().run(dag, {}, strict=False)
        assert run.status == "failed"
        assert run.failed == ["boom"] and run.skipped == ["child"]
        assert run.outputs["island"] == 2

    def test_caching_skips_execution(self):
        calls = {"n": 0}

        def expensive(ctx):
            calls["n"] += 1
            return ctx["x"] * 2

        dag = FlowDAG().add(Stage("double", expensive, params=("x",)))
        cache = ResultCache()
        first = SerialExecutor().run(dag, {"x": 21}, cache=cache)
        again = SerialExecutor().run(dag, {"x": 21}, cache=cache)
        other = SerialExecutor().run(dag, {"x": 4}, cache=cache)
        assert first.outputs["double"] == again.outputs["double"] == 42
        assert other.outputs["double"] == 8
        assert calls["n"] == 2   # second run replayed from cache
        assert again.spans[0].cache == "hit"


# ----------------------------------------------------------------------
# The implement flow on the DAG engine


class TestImplementDag:
    def test_legacy_wrapper_unchanged(self, lib):
        nl = small_design(lib)
        result = implement(nl, lib, FlowOptions(scan=True, cts=True))
        assert result.netlist is nl
        assert result.status == "ok"
        assert set(result.stage_runtimes) == {
            "synthesis", "placement", "dft", "cts", "routing",
            "signoff"}

    def test_cached_rerun_skips_every_stage(self, lib):
        cache = ResultCache()
        sink1, sink2 = TelemetrySink(), TelemetrySink()
        opts = FlowOptions(scan=True, cts=True)
        first = implement_dag(small_design(lib), lib, opts,
                              cache=cache, telemetry=sink1)
        second = implement_dag(small_design(lib), lib, opts,
                               cache=cache, telemetry=sink2)
        assert [s.cache for s in sink1.spans] == ["miss"] * 6
        assert [s.cache for s in sink2.spans] == ["hit"] * 6
        assert (first.delay_ps, first.power_uw, first.hpwl_um,
                first.routed_wirelength) == \
               (second.delay_ps, second.power_uw, second.hpwl_um,
                second.routed_wirelength)

    def test_knob_change_reruns_only_downstream(self, lib):
        cache = ResultCache()
        implement_dag(small_design(lib), lib, FlowOptions(),
                      cache=cache)
        sink = TelemetrySink()
        implement_dag(small_design(lib), lib,
                      FlowOptions(routing_iterations=2),
                      cache=cache, telemetry=sink)
        dispositions = {s.stage: s.cache for s in sink.spans}
        assert dispositions["routing"] == "miss"
        for stage in ("synthesis", "placement", "dft", "cts",
                      "signoff"):
            assert dispositions[stage] == "hit", stage

    def test_pool_executor_matches_serial(self, lib):
        opts = FlowOptions(scan=True, cts=True)
        serial = implement_dag(small_design(lib), lib, opts)
        pooled = implement_dag(small_design(lib), lib, opts, jobs=3)
        assert (serial.delay_ps, serial.power_uw, serial.hpwl_um,
                serial.routed_wirelength, serial.overflow) == \
               (pooled.delay_ps, pooled.power_uw, pooled.hpwl_um,
                pooled.routed_wirelength, pooled.overflow)

    def test_run_db_gets_telemetry(self, lib):
        db = RunDatabase()
        implement(small_design(lib), lib, FlowOptions.basic(),
                  run_db=db)
        assert len(db) == 1
        assert len(db.telemetry) == 6
        profile = db.stage_profile()
        assert set(profile) == {"synthesis", "placement", "dft",
                                "cts", "routing", "signoff"}
        assert all(p["calls"] == 1 for p in profile.values())


# ----------------------------------------------------------------------
# Sweeps


def _nap_flow(subject, library, options):
    """Stand-in flow job: sleeps like a tool run, returns its seed."""
    time.sleep(0.15)
    return options.seed


def _quick_flow(subject, library, options):
    return options.seed * 2


class TestSweep:
    def test_parallel_equals_serial_result_for_result(self, lib):
        options_list = [FlowOptions(seed=i, detailed_passes=1)
                        for i in range(4)]
        serial = run_sweep(small_design(lib), lib, options_list,
                           jobs=1)
        parallel = run_sweep(small_design(lib), lib, options_list,
                             jobs=2)
        as_qor = lambda r: (r.delay_ps, r.power_uw, r.hpwl_um,
                            r.routed_wirelength, r.overflow)
        assert [as_qor(r) for r in serial.results] == \
               [as_qor(r) for r in parallel.results]

    def test_sweep_shares_cache_across_jobs(self, lib):
        # Two identical jobs: the second replays entirely from cache.
        cache = ResultCache()
        sink = TelemetrySink()
        sweep = run_sweep(small_design(lib), lib,
                          [FlowOptions(), FlowOptions()],
                          jobs=1, cache=cache, telemetry=sink)
        assert len(sweep.results) == 2
        assert cache.stats.hits == 6 and cache.stats.misses == 6
        hits = [s for s in sink.spans if s.cache == "hit"]
        assert {s.job for s in hits} == {1}

    def test_subject_list_must_match(self, lib):
        with pytest.raises(ValueError, match="subjects"):
            run_sweep([1, 2], lib, [FlowOptions()], flow_fn=_quick_flow)

    def test_results_in_input_order(self):
        options_list = [FlowOptions(seed=i) for i in range(8)]
        sweep = run_sweep(None, None, options_list, jobs=3,
                          flow_fn=_quick_flow)
        assert sweep.results == [i * 2 for i in range(8)]

    @pytest.mark.benchmark
    def test_parallel_sweep_speedup(self):
        """run_sweep(jobs=4) on 8 jobs beats jobs=1 by >= 1.3x.

        Jobs are sleep-bound so the assertion measures scheduling
        concurrency, which holds on any core count (non-flaky).
        """
        options_list = [FlowOptions(seed=i) for i in range(8)]
        serial = run_sweep(None, None, options_list, jobs=1,
                           flow_fn=_nap_flow)
        parallel = run_sweep(None, None, options_list, jobs=4,
                             flow_fn=_nap_flow)
        assert serial.results == parallel.results
        assert serial.wall_s >= 1.3 * parallel.wall_s, \
            f"serial {serial.wall_s:.2f}s vs parallel " \
            f"{parallel.wall_s:.2f}s"

    def test_parallel_map_matches_builtin_map(self):
        data = list(range(10))
        assert parallel_map(_double, data, jobs=3) == \
            [x * 2 for x in data]


def _double(x):
    return x * 2


# ----------------------------------------------------------------------
# Telemetry


class TestTelemetry:
    def test_stage_timer_records_elapsed(self):
        stages = {}
        with stage_timer(stages, "work"):
            time.sleep(0.01)
        assert stages["work"] >= 0.01

    def test_jsonl_roundtrip(self, tmp_path, lib):
        sink = TelemetrySink()
        implement_dag(small_design(lib), lib, FlowOptions(),
                      telemetry=sink)
        path = tmp_path / "spans.jsonl"
        sink.emit_jsonl(path)
        loaded = TelemetrySink.load_jsonl(path)
        assert [s.to_dict() for s in loaded.spans] == \
            [s.to_dict() for s in sink.spans]

    def test_report_aggregates(self, lib):
        cache = ResultCache()
        sink = TelemetrySink()
        implement_dag(small_design(lib), lib, FlowOptions(),
                      cache=cache, telemetry=sink)
        implement_dag(small_design(lib), lib, FlowOptions(),
                      cache=cache, telemetry=sink)
        report = sink.report()
        assert report.spans == 12
        assert report.cache_hits == 6 and report.cache_misses == 6
        assert report.hit_rate == 0.5
        assert report.by_stage["routing"]["calls"] == 2
        assert "12 spans" in report.summary()

    def test_rundb_telemetry_persists(self, tmp_path, lib):
        db = RunDatabase()
        implement(small_design(lib), lib, FlowOptions.basic(),
                  run_db=db)
        path = tmp_path / "runs.json"
        db.save(path)
        loaded = RunDatabase.load(path)
        assert len(loaded) == 1
        assert len(loaded.telemetry) == len(db.telemetry) == 6
        assert loaded.stage_profile() == db.stage_profile()

    def test_rundb_loads_legacy_list_format(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text('[{"design": "d", "features": {}, '
                        '"knobs": {}, "qor": {}, "tags": []}]')
        db = RunDatabase.load(path)
        assert len(db) == 1 and db.telemetry == []
