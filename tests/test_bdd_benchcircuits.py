"""Tests for BDDs, equivalence checking, and benchmark circuits."""

import numpy as np
import pytest

from repro.netlist import build_library, random_aig
from repro.netlist.benchmark_circuits import (
    all_benchmark_circuits,
    c17,
    comparator,
    decoder,
    gray_to_binary,
    parity_tree,
    popcount,
    priority_encoder,
    reference_c17,
)
from repro.synthesis import map_aig, trivial_map
from repro.synthesis.bdd import (
    BDD_FALSE,
    BDD_TRUE,
    BddManager,
    check_equivalence,
    netlist_bdds,
)
from repro.synthesis.rewrite import optimize_aig
from repro.tech import get_node


@pytest.fixture(scope="module")
def lib():
    return build_library(get_node("28nm"), vt_flavors=("lvt", "rvt",
                                                       "hvt"))


class TestBddManager:
    def test_terminals(self):
        m = BddManager(2)
        assert m.not_(BDD_TRUE) == BDD_FALSE
        assert m.and_(BDD_TRUE, BDD_TRUE) == BDD_TRUE
        assert m.or_(BDD_FALSE, BDD_FALSE) == BDD_FALSE

    def test_canonicity(self):
        m = BddManager(3)
        a, b = m.var(0), m.var(1)
        # a&b built two ways is the same node.
        assert m.and_(a, b) == m.not_(m.or_(m.not_(a), m.not_(b)))
        # xor both ways.
        assert m.xor_(a, b) == m.xor_(b, a)

    def test_evaluate_matches_semantics(self):
        m = BddManager(3)
        a, b, c = (m.var(i) for i in range(3))
        f = m.or_(m.and_(a, b), c)
        for mt in range(8):
            env = {i: bool(mt >> i & 1) for i in range(3)}
            want = (env[0] and env[1]) or env[2]
            assert m.evaluate(f, env) == want

    def test_sat_count(self):
        m = BddManager(3)
        a, b, c = (m.var(i) for i in range(3))
        assert m.sat_count(m.and_(a, b)) == 2       # c free
        assert m.sat_count(m.or_(a, m.or_(b, c))) == 7
        assert m.sat_count(BDD_TRUE) == 8
        assert m.sat_count(BDD_FALSE) == 0

    def test_any_sat(self):
        m = BddManager(2)
        a, b = m.var(0), m.var(1)
        f = m.and_(a, m.not_(b))
        sat = m.any_sat(f)
        assert sat[0] is True and sat[1] is False
        assert m.any_sat(BDD_FALSE) is None

    def test_size_reduced(self):
        m = BddManager(4)
        # Parity of 4 vars: ROBDD size is linear (7 internal nodes).
        f = BDD_FALSE
        for i in range(4):
            f = m.xor_(f, m.var(i))
        assert m.size(f) == 7

    def test_var_bounds(self):
        m = BddManager(2)
        with pytest.raises(ValueError):
            m.var(2)


class TestEquivalenceChecking:
    def test_mapped_equivalent_to_trivial(self, lib):
        aig = random_aig(9, 150, 6, seed=7)
        rep = check_equivalence(map_aig(aig, lib), trivial_map(aig, lib))
        assert rep["equivalent"]
        assert rep["counterexample"] is None

    def test_optimized_pipeline_formally_equivalent(self, lib):
        aig = random_aig(8, 120, 5, seed=9)
        opt = optimize_aig(aig.copy(), "high")
        rep = check_equivalence(map_aig(aig, lib), map_aig(opt, lib))
        assert rep["equivalent"]

    def test_detects_injected_bug_with_counterexample(self, lib):
        aig = random_aig(8, 120, 5, seed=11)
        good = map_aig(aig, lib)
        bad = trivial_map(aig, lib)
        for g in bad.combinational_gates():
            if g.cell.name.startswith("AND2"):
                g.cell = lib["NAND2_X1_rvt"]
                break
        rep = check_equivalence(good, bad)
        assert not rep["equivalent"]
        cex = rep["counterexample"]
        assert cex is not None
        # The counterexample must actually distinguish the designs.
        vec = np.array([[cex.get(p, False)
                         for p in good.primary_inputs]], dtype=bool)
        assert not np.array_equal(good.simulate(vec),
                                  bad.simulate(vec))

    def test_interface_mismatch_rejected(self, lib):
        a = c17(lib)
        b = parity_tree(4, lib)
        with pytest.raises(ValueError):
            check_equivalence(a, b)

    def test_netlist_bdds_cover_outputs(self, lib):
        nl = c17(lib)
        _, bdds = netlist_bdds(nl)
        assert set(bdds) == set(nl.primary_outputs)


class TestBenchmarkCircuits:
    def test_c17_matches_reference(self, lib):
        nl = c17(lib)
        nl.validate()
        for m in range(32):
            bits = [bool(m >> i & 1) for i in range(5)]
            vec = np.array([bits], dtype=bool)
            got = nl.simulate(vec)[0]
            want = reference_c17(*bits)
            assert (got[0], got[1]) == want, m

    def test_decoder_one_hot(self, lib):
        bits = 3
        nl = decoder(bits, lib)
        nl.validate()
        for m in range(1 << bits):
            vec = np.array([[bool(m >> i & 1) for i in range(bits)]],
                           dtype=bool)
            out = nl.simulate(vec)[0]
            assert out.sum() == 1
            assert bool(out[m])

    def test_comparator(self, lib):
        bits = 4
        nl = comparator(bits, lib)
        rng = np.random.default_rng(0)
        for _ in range(20):
            a = int(rng.integers(0, 1 << bits))
            b = a if rng.random() < 0.5 else int(
                rng.integers(0, 1 << bits))
            vec = np.array([[bool(a >> i & 1) for i in range(bits)]
                            + [bool(b >> i & 1) for i in range(bits)]],
                           dtype=bool)
            assert nl.simulate(vec)[0][0] == (a == b)

    def test_priority_encoder(self, lib):
        bits = 4
        nl = priority_encoder(bits, lib)
        for m in range(1, 1 << bits):
            vec = np.array([[bool(m >> i & 1) for i in range(bits)]],
                           dtype=bool)
            out = nl.simulate(vec)[0]
            highest = max(i for i in range(bits) if m >> i & 1)
            assert out.sum() == 1
            assert bool(out[highest])

    def test_popcount(self, lib):
        bits = 6
        nl = popcount(bits, lib)
        for m in range(1 << bits):
            vec = np.array([[bool(m >> i & 1) for i in range(bits)]],
                           dtype=bool)
            out = nl.simulate(vec)[0]
            got = sum(int(v) << i for i, v in enumerate(out))
            assert got == bin(m).count("1"), m

    def test_parity(self, lib):
        bits = 8
        nl = parity_tree(bits, lib)
        rng = np.random.default_rng(1)
        for _ in range(30):
            m = int(rng.integers(0, 1 << bits))
            vec = np.array([[bool(m >> i & 1) for i in range(bits)]],
                           dtype=bool)
            assert nl.simulate(vec)[0][0] == (bin(m).count("1") % 2 == 1)

    def test_gray_to_binary(self, lib):
        bits = 4
        nl = gray_to_binary(bits, lib)
        for value in range(1 << bits):
            gray = value ^ (value >> 1)
            vec = np.array([[bool(gray >> i & 1) for i in range(bits)]],
                           dtype=bool)
            out = nl.simulate(vec)[0]
            got = sum(int(v) << i for i, v in enumerate(out))
            assert got == value, value

    def test_all_factories_instantiate(self, lib):
        circuits = all_benchmark_circuits(lib)
        assert len(circuits) == 7
        for name, nl in circuits.items():
            nl.validate()
            assert nl.num_instances() > 0, name

    def test_size_validation(self, lib):
        with pytest.raises(ValueError):
            decoder(0, lib)
        with pytest.raises(ValueError):
            popcount(1, lib)
