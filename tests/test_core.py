"""Tests for the full flow, throughput model, panel report, registry."""

import numpy as np
import pytest

from repro.core import (
    EXPERIMENTS,
    FlowOptions,
    ThroughputModel,
    calibrate_throughput,
    decade_report,
    experiment_info,
    implement,
)
from repro.netlist import build_library, logic_cloud, random_aig, registered_cloud
from repro.tech import get_node


@pytest.fixture(scope="module")
def lib():
    return build_library(get_node("28nm"), vt_flavors=("lvt", "rvt", "hvt"))


class TestImplementFlow:
    def test_full_flow_from_aig(self, lib):
        aig = random_aig(16, 400, 8, seed=1)
        result = implement(aig, lib)
        assert result.instances > 0
        assert result.area_um2 > 0
        assert result.routed_wirelength > 0
        assert result.delay_ps > 0
        assert result.power_uw > 0
        assert set(result.stage_runtimes) == {
            "synthesis", "placement", "dft", "cts", "routing",
            "signoff"}

    def test_flow_from_mapped_netlist_skips_synthesis(self, lib):
        nl = logic_cloud(8, 8, 150, lib, seed=2)
        result = implement(nl, lib)
        assert result.netlist is nl
        assert result.instances == 150

    def test_scan_option_inserts_chains(self, lib):
        nl = registered_cloud(8, 16, 120, lib, seed=3)
        opts = FlowOptions(scan=True)
        result = implement(nl, lib, opts)
        assert any(g.cell.is_scan
                   for g in result.netlist.sequential_gates())

    def test_recipes_distinct(self):
        basic = FlowOptions.basic()
        advanced = FlowOptions.advanced()
        assert basic.era == "2006" and advanced.era == "2016"
        assert basic.routing_iterations < advanced.routing_iterations

    def test_summary_format(self, lib):
        nl = logic_cloud(8, 8, 100, lib, seed=4)
        assert "cells" in implement(nl, lib).summary()


class TestThroughput:
    def test_calibration_fits_positive_exponent(self, lib):
        model = calibrate_throughput(lib, sizes=(100, 200, 400))
        assert model.exponent > 0.5
        assert model.coefficient > 0
        assert len(model.samples) == 3

    def test_runtime_scales_superlinearly(self):
        model = ThroughputModel(coefficient=1e-4, exponent=1.3)
        assert model.runtime_s(20000) > 2 * model.runtime_s(10000)

    def test_amdahl_speedup_saturates(self):
        model = ThroughputModel(coefficient=1e-4, exponent=1.2,
                                parallel_fraction=0.9)
        t1 = model.runtime_s(1_000_000, cores=1)
        t16 = model.runtime_s(1_000_000, cores=16)
        t1024 = model.runtime_s(1_000_000, cores=1024)
        assert t16 < t1 / 5
        assert t1024 > t1 / 11  # ceiling is 10x at 0.9

    def test_anchored_model_reproduces_panel_regime(self):
        # Rossi: 5-6M instance sub-chip, throughput approaching
        # 1M instances/day, using multicore farms.
        model = ThroughputModel.from_anchor(
            5_000_000, 50.0, 1.2, parallel_fraction=0.9)
        farm = model.instances_per_day(5_000_000, cores=64)
        assert 0.5e6 <= farm <= 1.2e6

    def test_cores_for_target(self):
        model = ThroughputModel.from_anchor(
            5_000_000, 50.0, 1.2, parallel_fraction=0.9)
        cores = model.cores_for_target(5_000_000, 0.8e6)
        assert cores > 1
        assert model.cores_for_target(5_000_000, 1e9) == -1

    def test_validation(self):
        model = ThroughputModel(coefficient=1e-4, exponent=1.2)
        with pytest.raises(ValueError):
            model.runtime_s(0)
        with pytest.raises(ValueError):
            ThroughputModel.from_anchor(0, 1.0, 1.2)


class TestPanelReport:
    def test_all_abstract_claims_hold(self):
        report = decade_report()
        failing = [c.claim_id for c in report.claims if not c.holds]
        assert report.all_hold(), f"failing claims: {failing}"

    def test_report_covers_seven_claims(self):
        assert len(decade_report().claims) == 7

    def test_markdown_renders(self):
        md = decade_report().to_markdown()
        assert md.startswith("| id |")
        assert "A1" in md and "A7" in md


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        for eid in ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
                    "E9", "E10", "E11", "E12", "E13", "E15"):
            info = experiment_info(eid)
            assert info.bench.startswith("benchmarks/")
            assert info.modules

    def test_lookup_case_insensitive(self):
        assert experiment_info("e3").exp_id == "E3"

    def test_unknown_raises_with_catalog(self):
        with pytest.raises(KeyError, match="E3"):
            experiment_info("E99")

    def test_bench_files_exist(self):
        import pathlib
        root = pathlib.Path(__file__).resolve().parent.parent
        for exp in EXPERIMENTS.values():
            assert (root / exp.bench).exists(), exp.bench
