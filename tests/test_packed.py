"""Tests for repro.netlist.packed and the packed-value codec.

Covers the columnar interchange tentpole end to end: lossless
``Netlist`` <-> ``PackedNetlist`` round-trips, canonical content
digests, the versioned ``.pnl`` binary format (including corruption
hardening), the ``encode_value``/``decode_value`` codec the
orchestration layers speak, packed-form consumers
(``write_verilog``, ``global_place``), and the flow-level acceptance
claims: codec runs are metric-bit-identical to pickle runs, and a
journal written with raw-pickle blobs resumes across the codec
boundary.
"""

import pickle
import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FlowOptions, FlowStatus
from repro.netlist import (
    PackError,
    PackedNetlist,
    build_library,
    lfsr,
    registered_cloud,
    ripple_carry_adder,
)
from repro.netlist.io import read_verilog, write_verilog
from repro.orchestrate import resume_run, run
from repro.orchestrate import cache as cache_mod
from repro.orchestrate import executor as executor_mod
from repro.orchestrate import resilience as resilience_mod
from repro.orchestrate.cache import decode_value, encode_value, stage_key
from repro.place import global_place
from repro.tech import get_node
from repro.timing import TimingAnalyzer

LIB = build_library(get_node("28nm"), vt_flavors=("lvt", "rvt", "hvt"))


@pytest.fixture(scope="module")
def lib():
    return LIB


def _vt_swap(cell_name):
    """Footprint-compatible variant: flip the Vt flavor suffix."""
    if cell_name.endswith("_rvt"):
        return cell_name[:-4] + "_hvt"
    return cell_name[:-4] + "_rvt"


def same_structure(a, b):
    assert a.name == b.name
    assert a.primary_inputs == b.primary_inputs
    assert a.primary_outputs == b.primary_outputs
    assert list(a.gates) == list(b.gates)
    for name, gate in a.gates.items():
        other = b.gates[name]
        assert gate.cell.name == other.cell.name
        assert gate.pins == other.pins
        assert gate.output == other.output
    assert a._counter == b._counter


# ----------------------------------------------------------------------
# Round-trips and digests


class TestRoundTrip:
    @pytest.mark.parametrize("make", [
        lambda lib: ripple_carry_adder(8, lib),
        lambda lib: lfsr(16, lib),
        lambda lib: registered_cloud(8, 16, 200, lib, seed=1),
    ])
    def test_lossless(self, lib, make):
        nl = make(lib)
        packed = nl.to_packed()
        back = packed.to_netlist(lib)
        back.validate()
        same_structure(nl, back)
        assert nl.content_digest() == back.content_digest()

    def test_empty_netlist(self, lib):
        from repro.netlist import Netlist
        nl = Netlist("empty", lib)
        back = nl.to_packed().to_netlist(lib)
        assert back.name == "empty"
        assert not back.gates

    def test_packed_memoized_until_edit(self, lib):
        nl = ripple_carry_adder(4, lib)
        first = nl.to_packed()
        assert nl.to_packed() is first
        gate = next(iter(nl.gates.values()))
        nl.resize_gate(gate.name, _vt_swap(gate.cell.name))
        assert nl.to_packed() is not first

    def test_digest_ignores_construction_history(self, lib):
        nl = ripple_carry_adder(6, lib)
        twin = ripple_carry_adder(6, lib)
        a = next(iter(twin.gates.values()))
        extra = twin.add_gate("INV_X1_rvt", [a.output])
        twin.remove_gate(extra.name)
        # Same content, different edit history (and name counter).
        assert twin.content_digest() == nl.content_digest()

    def test_digest_sees_content_changes(self, lib):
        nl = ripple_carry_adder(6, lib)
        other = ripple_carry_adder(6, lib)
        gate = next(iter(other.gates.values()))
        other.resize_gate(gate.name, _vt_swap(gate.cell.name))
        assert other.content_digest() != nl.content_digest()

    def test_cache_keys_use_digest_not_pickle(self, lib):
        nl = ripple_carry_adder(5, lib)
        clone = nl.to_packed().to_netlist(lib)
        key = stage_key("syn", "1", {"netlist": nl})
        assert key == stage_key("syn", "1", {"netlist": clone})
        gate = next(iter(clone.gates.values()))
        clone.resize_gate(gate.name, _vt_swap(gate.cell.name))
        assert key != stage_key("syn", "1", {"netlist": clone})


# ----------------------------------------------------------------------
# .pnl binary format


class TestPnlFormat:
    def test_bytes_roundtrip_both_codepaths(self, lib):
        nl = registered_cloud(8, 16, 150, lib, seed=2)
        packed = nl.to_packed()
        for compress in (True, False):
            blob = packed.to_bytes(compress=compress)
            again = PackedNetlist.from_bytes(blob)
            assert again.content_digest() == packed.content_digest()
            same_structure(nl, again.to_netlist(lib))

    def test_save_load(self, lib, tmp_path):
        nl = lfsr(12, lib)
        path = tmp_path / "design.pnl"
        nl.to_packed().save(path)
        assert PackedNetlist.load(path).content_digest() == \
            nl.content_digest()

    def test_corruption_is_diagnosed(self, lib):
        blob = ripple_carry_adder(4, lib).to_packed().to_bytes()
        hdr = struct.Struct("<4sHBI")
        magic, version, flags, hlen = hdr.unpack_from(blob)
        cases = [
            (blob[:3], "truncated .pnl header"),
            (b"NOPE" + blob[4:], "bad magic"),
            (hdr.pack(magic, 99, flags, hlen) + blob[hdr.size:],
             "unsupported .pnl format version 99"),
            (blob[:hdr.size + hlen - 5], "truncated .pnl header"),
            (hdr.pack(magic, version, flags, hlen)
             + b"{" * hlen + blob[hdr.size + hlen:], "corrupt .pnl header"),
            (blob[:-7], "corrupt .pnl payload"),
        ]
        for bad, message in cases:
            with pytest.raises(PackError, match=message):
                PackedNetlist.from_bytes(bad)

    def test_payload_bitflip_fails_checksum(self, lib):
        packed = ripple_carry_adder(4, lib).to_packed()
        raw = bytearray(packed.to_bytes(compress=False))
        raw[-3] ^= 0x40
        with pytest.raises(PackError, match="checksum mismatch"):
            PackedNetlist.from_bytes(bytes(raw))


# ----------------------------------------------------------------------
# to_netlist hardening


class TestRehydrationHardening:
    def tampered(self, lib, **overrides):
        packed = ripple_carry_adder(4, lib).to_packed()
        fields = dict(
            name=packed.name, node=packed.node, counter=packed.counter,
            net_names=packed.net_names, gate_names=packed.gate_names,
            cell_names=packed.cell_names, cell_pins=packed.cell_pins,
            cell_seq=packed.cell_seq, pin_names=packed.pin_names,
            gate_cell=packed.gate_cell.copy(),
            gate_output=packed.gate_output.copy(),
            pin_off=packed.pin_off.copy(),
            pin_net=packed.pin_net.copy(),
            pin_name=packed.pin_name.copy(),
            primary_inputs=packed.primary_inputs.copy(),
            primary_outputs=packed.primary_outputs.copy(),
        )
        fields.update(overrides)
        return PackedNetlist(**fields)

    def test_unknown_cell_names_gate(self, lib):
        packed = self.tampered(
            lib, cell_names=("NO_SUCH_CELL",)
            * len(ripple_carry_adder(4, lib).to_packed().cell_names))
        with pytest.raises(PackError, match="unknown cell"):
            packed.to_netlist(lib)

    def test_out_of_range_output_names_gate(self, lib):
        bad = self.tampered(lib)
        bad.gate_output[0] = bad.num_nets + 7
        gate_name = bad.gate_names[0]
        with pytest.raises(PackError, match=gate_name):
            bad.to_netlist(lib)

    def test_out_of_range_pin_net_names_gate(self, lib):
        bad = self.tampered(lib)
        bad.pin_net[0] = -2
        with pytest.raises(PackError, match="out of range"):
            bad.to_netlist(lib)

    def test_inconsistent_pin_offsets(self, lib):
        bad = self.tampered(lib)
        bad.pin_off[-1] += 1
        with pytest.raises(PackError, match="pin offsets"):
            bad.to_netlist(lib)


# ----------------------------------------------------------------------
# The packed-value codec


class TestCodec:
    def test_netlist_roundtrip(self, lib):
        nl = registered_cloud(8, 16, 150, lib, seed=4)
        clone = decode_value(encode_value(nl))
        same_structure(nl, clone)
        clone.validate()

    def test_placement_roundtrip(self, lib):
        nl = ripple_carry_adder(6, lib)
        placement = global_place(nl, seed=1)
        clone = decode_value(encode_value(placement))
        same_structure(placement.netlist, clone.netlist)
        assert clone.positions == placement.positions
        assert clone.die_w_um == placement.die_w_um
        assert clone.die_h_um == placement.die_h_um

    def test_packed_passthrough(self, lib):
        packed = lfsr(8, lib).to_packed()
        clone = decode_value(encode_value(packed))
        assert isinstance(clone, PackedNetlist)
        assert clone.content_digest() == packed.content_digest()

    def test_generic_values_still_work(self):
        for value in ({"wns": -12.5}, [1, 2, 3], "text", None, 4.25):
            assert decode_value(encode_value(value)) == value

    def test_legacy_raw_pickle_decodes(self, lib):
        nl = ripple_carry_adder(4, lib)
        legacy = pickle.dumps({"netlist": nl, "x": 1})
        clone = decode_value(legacy)
        assert clone["x"] == 1
        same_structure(nl, clone["netlist"])

    def test_netlist_blob_beats_pickle(self, lib):
        nl = registered_cloud(8, 16, 1000, lib, seed=6)
        packed_size = len(encode_value(nl))
        pickle_size = len(pickle.dumps(
            nl, protocol=pickle.HIGHEST_PROTOCOL))
        assert packed_size * 2 < pickle_size


# ----------------------------------------------------------------------
# Packed-form consumers


class TestPackedConsumers:
    def test_write_verilog_identical_text(self, lib):
        nl = registered_cloud(6, 12, 120, lib, seed=7)
        assert write_verilog(nl.to_packed()) == write_verilog(nl)

    def test_verilog_roundtrip_from_packed(self, lib):
        nl = ripple_carry_adder(5, lib)
        back = read_verilog(write_verilog(nl.to_packed()), lib)
        assert back.simulate(np.eye(len(nl.primary_inputs),
                                    dtype=bool)).tolist() == \
            nl.simulate(np.eye(len(nl.primary_inputs),
                               dtype=bool)).tolist()

    def test_global_place_accepts_packed(self, lib):
        nl = ripple_carry_adder(4, lib)
        placement = global_place(nl.to_packed(), library=lib, seed=1)
        assert set(placement.positions) == set(nl.gates)

    def test_global_place_packed_requires_library(self, lib):
        with pytest.raises(TypeError, match="library"):
            global_place(ripple_carry_adder(4, lib).to_packed())


# ----------------------------------------------------------------------
# Property: round-trip preserves structure, digest, and timing


edit_script = st.lists(
    st.tuples(st.integers(0, 10_000), st.integers(0, 3)),
    min_size=0, max_size=8)


class TestRoundTripProperties:
    @given(st.integers(0, 10_000), st.integers(30, 200), edit_script)
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_preserves_timing_bits(self, seed, gates, edits):
        nl = registered_cloud(6, 10, gates, LIB, seed=seed)
        for pick, kind in edits:
            names = list(nl.gates)
            gate = nl.gates[names[pick % len(names)]]
            if kind == 0:          # journaled resize (Vt swap)
                nl.resize_gate(gate.name, _vt_swap(gate.cell.name))
            elif kind == 1:        # rewire a pin to a primary input
                pin = list(gate.pins)[pick % len(gate.pins)]
                pi = nl.primary_inputs[pick % len(nl.primary_inputs)]
                try:
                    nl.rewire_pin(gate.name, pin, pi)
                except ValueError:
                    pass
            elif kind == 2:        # grow fresh logic
                pi = nl.primary_inputs[pick % len(nl.primary_inputs)]
                nl.add_gate("INV_X1_rvt", [pi])
            else:                  # expose another observation point
                nl.add_output(gate.output)
        nl.validate()
        back = nl.to_packed().to_netlist(LIB)
        back.validate()
        assert back.content_digest() == nl.content_digest()
        assert TimingAnalyzer(back).analyze().arrival_ps == \
            TimingAnalyzer(nl).analyze().arrival_ps


# ----------------------------------------------------------------------
# Flow-level acceptance: codec vs pickle


def _pickle_codec(mp):
    """Force every layer back onto wholesale pickling."""
    def enc(value):
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    for mod in (cache_mod, executor_mod, resilience_mod):
        mp.setattr(mod, "encode_value", enc)
        mp.setattr(mod, "decode_value", pickle.loads)


def _qor(result):
    return (result.delay_ps, result.power_uw, result.hpwl_um,
            result.routed_wirelength, result.overflow,
            result.instances, result.area_um2)


class TestFlowAcceptance:
    def test_codec_run_bit_identical_to_pickle_run(self, lib):
        options = FlowOptions(scan=True, cts=True)
        with_codec = run(registered_cloud(8, 16, 120, lib, seed=3),
                         lib, options)
        with pytest.MonkeyPatch.context() as mp:
            _pickle_codec(mp)
            with_pickle = run(registered_cloud(8, 16, 120, lib, seed=3),
                              lib, options)
        assert _qor(with_codec) == _qor(with_pickle)

    def test_resume_replays_legacy_pickle_journal(self, lib, tmp_path):
        options = FlowOptions(scan=True, cts=True)
        with pytest.MonkeyPatch.context() as mp:
            _pickle_codec(mp)
            legacy = run(registered_cloud(8, 16, 120, lib, seed=3),
                         lib, options, journal_root=tmp_path,
                         run_id="legacy")
        resumed = resume_run("legacy", journal_root=tmp_path)
        assert _qor(resumed) == _qor(legacy)
        assert resumed.status in (FlowStatus.RESUMED, FlowStatus.OK)
