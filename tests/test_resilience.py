"""Tests for repro.orchestrate.resilience: the write-ahead run
journal, checkpoint/resume, chaos fault injection, sealed-cache
corruption handling, the timeout-thread leak cap, and the unified
``run``/``resume_run`` flow API.

The acceptance centerpiece is the chaos soak
(:class:`TestChaosSoak`): 20+ seeded kill/corruption scenarios, each
of which must resume to signoff metrics bit-identical to an
uninterrupted run while re-executing only the frontier.
"""

import json
import multiprocessing
import os
import pickle
import random
import signal
import time

import pytest

from repro.core import FlowOptions, FlowStatus, implement
from repro.learn import RecoveryRecord, RunDatabase
from repro.netlist import build_library, registered_cloud
from repro.orchestrate import (
    ChaosFailure,
    ChaosPolicy,
    CorruptEntry,
    FlowDAG,
    ResultCache,
    RetryBudget,
    RunJournal,
    SerialExecutor,
    Stage,
    StageError,
    TelemetrySink,
    WorkerCrash,
    backoff_delay,
    corrupt_file,
    leaked_threads,
    resumable_runs,
    resume_run,
    run,
    run_stage,
    run_sweep,
    seal_blob,
    stage_key,
    unseal_blob,
)
from repro.orchestrate import executor as executor_mod
from repro.orchestrate.flows import STAGE_NAMES
from repro.tech import get_node


@pytest.fixture(scope="module")
def lib():
    return build_library(get_node("28nm"),
                         vt_flavors=("lvt", "rvt", "hvt"))


def small_design(lib, seed=3):
    # Fresh per call: the flow mutates its subject (scan insertion).
    return registered_cloud(8, 16, 120, lib, seed=seed)


OPTS = dict(scan=True, cts=True)


def qor(result):
    """The signoff fingerprint the bit-identical claims compare."""
    return (result.delay_ps, result.power_uw, result.hpwl_um,
            result.routed_wirelength, result.overflow,
            result.instances, result.area_um2)


@pytest.fixture(scope="module")
def clean_qor(lib):
    """Signoff metrics of one uninterrupted run — the soak baseline."""
    return qor(run(small_design(lib), lib, FlowOptions(**OPTS)))


# ----------------------------------------------------------------------
# Sealed blobs and the run journal


class TestSealedBlobs:
    def test_roundtrip(self):
        data = pickle.dumps({"x": 1})
        assert unseal_blob(seal_blob(data, "k"), "k") == data

    def test_detects_flip_truncation_and_wrong_key(self):
        sealed = seal_blob(b"payload-bytes", "key-a")
        flipped = bytearray(sealed)
        flipped[-1] ^= 0xFF
        for bad, expect in [
            (bytes(flipped), "checksum"),
            (sealed[:-4], "checksum"),
            (b"garbage", "unsealed"),
            (sealed[: len(sealed) // 4], "truncated"),
        ]:
            with pytest.raises(CorruptEntry, match=expect):
                unseal_blob(bad, "key-a")
        with pytest.raises(CorruptEntry, match="sealed for key"):
            unseal_blob(sealed, "key-b")


class TestRunJournal:
    def test_record_and_completed_roundtrip(self, tmp_path):
        journal = RunJournal.create(tmp_path, "r1", "subj", None,
                                    FlowOptions())
        journal.record("a", {"v": 1}, key="k-a", wall_s=0.5)
        journal.record("b", [1, 2, 3])
        journal.record("a", {"v": 2})       # last write wins
        reopened = RunJournal.open(tmp_path, "r1")
        assert reopened.completed() == {"a": {"v": 2}, "b": [1, 2, 3]}
        subject, library, options = reopened.load_inputs()
        assert subject == "subj" and options == FlowOptions()

    def test_duplicate_create_rejected(self, tmp_path):
        RunJournal.create(tmp_path, "r1", None, None, None)
        with pytest.raises(Exception, match="already journaled"):
            RunJournal.create(tmp_path, "r1", None, None, None)

    def test_open_missing_rejected(self, tmp_path):
        with pytest.raises(Exception, match="no journal"):
            RunJournal.open(tmp_path, "ghost")

    def test_torn_index_tail_ignored(self, tmp_path):
        journal = RunJournal.create(tmp_path, "r1", None, None, None)
        journal.record("a", 1)
        with journal.index_path.open("a") as fh:
            fh.write('{"stage": "b", "blo')   # kill mid-append
        assert journal.completed() == {"a": 1}

    def test_blob_without_index_line_ignored(self, tmp_path):
        journal = RunJournal.create(tmp_path, "r1", None, None, None)
        journal.record("a", 1)
        # Kill between blob publish and index append: blob exists,
        # index never saw it.
        (journal.blob_dir / "orphan.pkl").write_bytes(
            seal_blob(pickle.dumps(2), "orphan"))
        assert journal.completed() == {"a": 1}

    def test_corrupted_blob_quarantined_and_dropped(self, tmp_path):
        journal = RunJournal.create(tmp_path, "r1", None, None, None)
        journal.record("a", 1)
        journal.record("b", 2)
        corrupt_file(journal.blob_dir / "a.pkl", seed=7)
        assert journal.completed() == {"b": 2}
        assert (journal.dir / "quarantine" / "a.pkl").exists()

    def test_completion_marker_and_resumable_listing(self, tmp_path):
        done = RunJournal.create(tmp_path, "done", None, None, None)
        RunJournal.create(tmp_path, "stuck", None, None, None)
        done.finish(FlowStatus.OK)
        assert done.is_complete
        assert done.meta()["flow_status"] == "ok"
        assert resumable_runs(tmp_path) == ["stuck"]


# ----------------------------------------------------------------------
# Disk-cache corruption: quarantine and recompute (satellite)


def _double(ctx):
    _double.calls += 1
    return ctx["x"] * 2


_double.calls = 0


class TestCacheCorruption:
    def _cache_with_entry(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        key = stage_key("s", "1", {"x": 1})
        cache.put(key, {"qor": 42})
        return cache, key

    def test_truncated_entry_is_miss_and_quarantined(self, tmp_path):
        cache, key = self._cache_with_entry(tmp_path)
        path = cache.entry_path(key)
        path.write_bytes(path.read_bytes()[: 10])
        fresh = ResultCache(disk_dir=tmp_path)
        hit, _ = fresh.get(key)
        assert not hit
        assert fresh.stats.corrupt == 1
        assert (tmp_path / "quarantine" / path.name).exists()
        assert not path.exists()

    def test_flipped_byte_is_miss(self, tmp_path):
        cache, key = self._cache_with_entry(tmp_path)
        assert corrupt_file(cache.entry_path(key), seed=11)
        fresh = ResultCache(disk_dir=tmp_path)
        assert not fresh.get(key)[0]
        assert fresh.stats.corrupt == 1

    def test_entry_under_wrong_key_is_miss(self, tmp_path):
        cache, key = self._cache_with_entry(tmp_path)
        other = stage_key("s", "1", {"x": 2})
        os.replace(cache.entry_path(key), cache.entry_path(other))
        fresh = ResultCache(disk_dir=tmp_path)
        assert not fresh.get(other)[0]
        assert fresh.stats.corrupt == 1

    def test_legacy_unsealed_entry_is_miss(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        key = stage_key("s", "1", {"x": 1})
        cache.entry_path(key).write_bytes(pickle.dumps({"qor": 42}))
        assert not cache.get(key)[0]
        assert cache.stats.corrupt == 1

    def test_run_stage_recomputes_over_bad_entry(self, tmp_path):
        """The satellite bug: a bad disk entry used to raise out of
        ``run_stage``; now it falls back to recompute and republishes
        a clean entry."""
        stage = Stage("double", _double, params=("x",))
        _double.calls = 0
        cache = ResultCache(disk_dir=tmp_path)
        first = run_stage(stage, {"x": 21}, cache=cache)
        assert first.value == 42 and _double.calls == 1
        corrupt_file(cache.entry_path(first.key), seed=3)
        fresh = ResultCache(disk_dir=tmp_path)
        again = run_stage(stage, {"x": 21}, cache=fresh)
        assert again.span.status == "ok" and again.value == 42
        assert again.span.cache == "miss" and _double.calls == 2
        # The recompute republished a verifiable entry.
        repaired = ResultCache(disk_dir=tmp_path)
        hit, value = repaired.get(first.key)
        assert hit and value == 42


# ----------------------------------------------------------------------
# Timed-out stage threads: observable, capped leak (satellite)


def _nap(ctx):
    time.sleep(ctx["nap_s"])
    return "late"


class TestTimeoutThreadLeak:
    def test_leak_is_counted_and_surfaced_in_span(self):
        dag = FlowDAG().add(Stage("slow", _nap, params=("nap_s",),
                                  timeout_s=0.02))
        sink = TelemetrySink()
        SerialExecutor().run(dag, {"nap_s": 0.25}, sink=sink,
                             strict=False)
        assert sink.spans[0].status == "timeout"
        assert sink.spans[0].leaked_threads >= 1
        assert sink.report().leaked_threads >= 1
        time.sleep(0.35)                  # orphan finishes its nap
        assert leaked_threads() == 0

    def test_cap_bounds_concurrent_orphans(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "MAX_ABANDONED_THREADS", 2)
        dag = FlowDAG().add(Stage("slow", _nap, params=("nap_s",),
                                  timeout_s=0.01))
        for _ in range(5):
            SerialExecutor().run(dag, {"nap_s": 0.15}, strict=False)
            assert leaked_threads() <= 2
        time.sleep(0.25)
        assert leaked_threads() == 0


# ----------------------------------------------------------------------
# Chaos policy: determinism, retries, budget


def _always_fail(ctx):
    raise RuntimeError("permanent")


def _ok(ctx):
    return "fine"


class TestChaosPolicy:
    def test_decisions_are_seed_deterministic(self):
        a = ChaosPolicy(seed=5, fail_rate=0.5, timeout_rate=0.2,
                        crash_rate=0.3)
        b = ChaosPolicy(seed=5, fail_rate=0.5, timeout_rate=0.2,
                        crash_rate=0.3)
        other = ChaosPolicy(seed=6, fail_rate=0.5, timeout_rate=0.2,
                            crash_rate=0.3)

        def decisions(policy):
            out = []
            for stage in ("a", "b", "c", "d"):
                for attempt in range(4):
                    try:
                        policy.on_attempt(stage, attempt)
                        out.append("ok")
                    except Exception as err:  # noqa: BLE001
                        out.append(type(err).__name__)
            return out

        assert decisions(a) == decisions(b)
        assert decisions(a) != decisions(other)

    def test_injected_fault_recovered_by_retry(self):
        # By construction: find a seed that faults attempt 0 of this
        # stage but not attempt 1, so one retry must recover the run.
        seed = next(
            s for s in range(1000)
            if ChaosPolicy(seed=s)._roll("fail", "flaky", 0) < 0.5 <=
            ChaosPolicy(seed=s)._roll("fail", "flaky", 1))
        chaos = ChaosPolicy(seed=seed, fail_rate=0.5)
        dag = FlowDAG().add(Stage("flaky", _ok, retries=2,
                                  backoff_s=0.001))
        sink = TelemetrySink()
        result = SerialExecutor(chaos=chaos).run(dag, {}, sink=sink)
        assert result.status == "ok"
        assert sink.spans[0].retries == 1

    def test_chaos_crash_aborts_run(self):
        chaos = ChaosPolicy(seed=0, crash_stages=("boom",))
        dag = (FlowDAG().add(Stage("first", _ok))
               .add(Stage("boom", _ok, deps=("first",))))
        with pytest.raises(WorkerCrash, match="boom"):
            SerialExecutor(chaos=chaos).run(dag, {})

    def test_retry_budget_caps_total_retries(self):
        dag = FlowDAG().add(Stage("dead", _always_fail, retries=5,
                                  backoff_s=0.0))
        budget = RetryBudget(limit=1)
        with pytest.raises(StageError, match="2 attempt"):
            SerialExecutor().run(dag, {}, budget=budget)
        assert budget.remaining == 0

    def test_backoff_delay_jitter_bounds(self):
        random.seed(0)
        for attempt in range(4):
            base = 0.01 * (2 ** attempt)
            for _ in range(20):
                d = backoff_delay(0.01, attempt, jitter=0.25)
                assert base <= d <= base * 1.25


# ----------------------------------------------------------------------
# The unified API, status enum, and schema versioning (satellites)


class TestUnifiedApi:
    def test_run_is_the_facade(self, lib):
        result = run(small_design(lib), lib, FlowOptions(**OPTS))
        assert result.status is FlowStatus.OK
        # Pinned literal on purpose: a schema bump must fail here and
        # be acknowledged by updating this test, not slide through via
        # the imported constant.
        assert result.schema_version == 5
        assert result.options.schema_version == 5
        assert result.run_id is None      # no journaling requested
        assert set(result.stage_runtimes) == set(STAGE_NAMES)

    def test_implement_shim_deprecated_but_equivalent(self, lib):
        with pytest.deprecated_call(match="repro.orchestrate.run"):
            shim = implement(small_design(lib), lib,
                             FlowOptions(**OPTS))
        assert qor(shim) == qor(run(small_design(lib), lib,
                                    FlowOptions(**OPTS)))

    def test_max_retries_absorbs_chaos_faults(self, lib, clean_qor):
        # max_retries gives the default DAG per-stage retry headroom
        # (its stages carry retries=0 otherwise), so injected faults
        # are absorbed and the QoR still matches a clean run.
        sink = TelemetrySink()
        chaos = ChaosPolicy(seed=7, fail_rate=0.2)
        with pytest.raises((StageError, ChaosFailure)):
            run(small_design(lib), lib, FlowOptions(**OPTS),
                chaos=chaos)
        result = run(small_design(lib), lib, FlowOptions(**OPTS),
                     chaos=chaos, telemetry=sink, max_retries=3)
        assert result.status is FlowStatus.OK
        assert qor(result) == clean_qor
        assert sum(s.retries for s in sink.spans) >= 1

    def test_status_enum_is_string_compatible(self):
        assert FlowStatus.OK == "ok"
        assert str(FlowStatus.RESUMED) == "resumed"
        assert f"{FlowStatus.DEGRADED}" == "degraded"
        assert FlowStatus("failed") is FlowStatus.FAILED

    def test_from_run_tolerates_failed_runs(self):
        from repro.core.flow import FlowResult
        from repro.orchestrate import RunResult
        failed = RunResult(outputs={}, status="failed", spans=[],
                           wall_s=0.1, failed=["synthesis"],
                           skipped=["placement"])
        result = FlowResult.from_run(failed, FlowOptions())
        assert result.status is FlowStatus.FAILED
        assert result.netlist is None and result.instances == 0
        assert result.delay_ps != result.delay_ps   # NaN

    def test_journaled_run_reports_run_id(self, lib, tmp_path):
        result = run(small_design(lib), lib, FlowOptions(**OPTS),
                     journal_root=tmp_path, run_id="named")
        assert result.run_id == "named"
        assert RunJournal.open(tmp_path, "named").is_complete
        assert resumable_runs(tmp_path) == []


# ----------------------------------------------------------------------
# Checkpoint/resume


class TestResume:
    def test_resume_after_kill_at_each_stage(self, lib, tmp_path,
                                             clean_qor):
        for kill in STAGE_NAMES:
            run_id = f"kill-{kill}"
            with pytest.raises(WorkerCrash, match=kill):
                run(small_design(lib), lib, FlowOptions(**OPTS),
                    journal_root=tmp_path, run_id=run_id,
                    chaos=ChaosPolicy(seed=1, crash_stages=(kill,)))
            sink = TelemetrySink()
            resumed = resume_run(run_id, journal_root=tmp_path,
                                 telemetry=sink)
            assert qor(resumed) == clean_qor, kill
            assert resumed.status is FlowStatus.RESUMED or \
                kill == STAGE_NAMES[0]   # nothing journaled: plain ok
            replayed = {s.stage for s in sink.spans
                        if s.cache == "journal"}
            executed = {s.stage for s in sink.spans
                        if s.cache != "journal"}
            assert replayed.isdisjoint(executed)
            assert kill in executed      # the cut stage re-runs
            assert replayed | executed == set(STAGE_NAMES)

    def test_resume_with_pool_executor(self, lib, tmp_path, clean_qor):
        with pytest.raises(WorkerCrash):
            run(small_design(lib), lib, FlowOptions(**OPTS), jobs=2,
                journal_root=tmp_path, run_id="pool",
                chaos=ChaosPolicy(seed=2, crash_stages=("signoff",)))
        resumed = resume_run("pool", journal_root=tmp_path, jobs=2)
        assert qor(resumed) == clean_qor
        assert resumed.status is FlowStatus.RESUMED

    def test_resume_of_complete_run_replays_everything(
            self, lib, tmp_path, clean_qor):
        run(small_design(lib), lib, FlowOptions(**OPTS),
            journal_root=tmp_path, run_id="done")
        sink = TelemetrySink()
        resumed = resume_run("done", journal_root=tmp_path,
                             telemetry=sink)
        assert qor(resumed) == clean_qor
        assert all(s.cache == "journal" for s in sink.spans)

    def test_recovery_telemetry_logged_and_persisted(
            self, lib, tmp_path):
        with pytest.raises(WorkerCrash):
            run(small_design(lib), lib, FlowOptions(**OPTS),
                journal_root=tmp_path, run_id="rec",
                chaos=ChaosPolicy(seed=3, crash_stages=("routing",)))
        db = RunDatabase()
        resume_run("rec", journal_root=tmp_path, run_db=db)
        assert len(db.recovery) == 1
        rec = db.recovery[0]
        assert rec.run_id == "rec"
        assert rec.replayed == 4 and rec.executed == 2
        assert rec.status == "resumed"
        path = tmp_path / "db.json"
        db.save(path)
        loaded = RunDatabase.load(path)
        assert loaded.recovery == [rec]
        assert isinstance(loaded.recovery[0], RecoveryRecord)

    def test_sweep_jobs_journal_individually(self, lib, tmp_path):
        sweep = run_sweep(
            [small_design(lib, seed=3), small_design(lib, seed=4)],
            lib, [FlowOptions(), FlowOptions()],
            journal_root=tmp_path)
        assert len(sweep.results) == 2
        assert sorted(RunJournal.list_runs(tmp_path)) == \
            ["job0000", "job0001"]
        assert resumable_runs(tmp_path) == []


def _run_and_die(journal_root, run_id, kill_stage):
    """Child-process body: start a journaled run, SIGKILL ourselves
    when the flow reaches ``kill_stage`` (a real process death, not a
    simulated one)."""
    lib = build_library(get_node("28nm"),
                        vt_flavors=("lvt", "rvt", "hvt"))
    run(small_design(lib), lib, FlowOptions(**OPTS),
        journal_root=journal_root, run_id=run_id,
        chaos=_SigkillAt(kill_stage))


class _SigkillAt:
    """Chaos stand-in whose kill point is an actual SIGKILL."""

    def __init__(self, stage):
        self.stage = stage

    def pre_stage(self, stage):
        if stage == self.stage:
            os.kill(os.getpid(), signal.SIGKILL)

    def on_attempt(self, stage, attempt):
        pass

    def after_put(self, cache, key):
        pass


class TestProcessKill:
    def test_sigkilled_process_resumes_bit_identical(
            self, tmp_path, clean_qor):
        child = multiprocessing.Process(
            target=_run_and_die, args=(tmp_path, "killed", "routing"))
        child.start()
        child.join(timeout=60)
        assert child.exitcode == -signal.SIGKILL
        assert resumable_runs(tmp_path) == ["killed"]
        resumed = resume_run("killed", journal_root=tmp_path)
        assert qor(resumed) == clean_qor
        assert resumed.status is FlowStatus.RESUMED


# ----------------------------------------------------------------------
# The chaos soak: the acceptance criterion


def _soak_scenarios(n_seeds=20):
    """Seeded kill/corruption scenarios: which stage dies, and whether
    a journal blob or a cache entry additionally rots."""
    out = []
    for seed in range(n_seeds):
        rng = random.Random(seed)
        out.append({
            "seed": seed,
            "kill": rng.choice(STAGE_NAMES[1:]),   # after >=1 record
            "rot": rng.choice(("none", "journal", "cache")),
        })
    return out


class TestChaosSoak:
    @pytest.mark.parametrize(
        "scenario", _soak_scenarios(),
        ids=lambda s: f"seed{s['seed']}-{s['kill']}-{s['rot']}")
    def test_interrupted_run_resumes_bit_identical(
            self, scenario, lib, tmp_path, clean_qor):
        seed, kill = scenario["seed"], scenario["kill"]
        run_id = f"soak{seed}"
        cache = ResultCache(disk_dir=tmp_path / "cache") \
            if scenario["rot"] == "cache" else None
        with pytest.raises(WorkerCrash, match=kill):
            run(small_design(lib), lib, FlowOptions(**OPTS),
                journal_root=tmp_path, run_id=run_id, cache=cache,
                chaos=ChaosPolicy(seed=seed, crash_stages=(kill,)))

        journal = RunJournal.open(tmp_path, run_id)
        journaled = {e["stage"] for e in journal.entries()}
        rotted = None
        if scenario["rot"] == "journal" and journaled:
            rotted = sorted(journaled)[seed % len(journaled)]
            assert corrupt_file(journal.blob_dir / f"{rotted}.pkl",
                                seed=seed)
        elif scenario["rot"] == "cache":
            entries = [p for p in (tmp_path / "cache").glob("*.pkl")]
            if entries:
                assert corrupt_file(entries[seed % len(entries)],
                                    seed=seed)
            cache = ResultCache(disk_dir=tmp_path / "cache")

        sink = TelemetrySink()
        resumed = resume_run(run_id, journal_root=tmp_path,
                             cache=cache, telemetry=sink)

        # 1. Bit-identical signoff metrics.
        assert qor(resumed) == clean_qor, scenario
        # 2. Only the frontier re-executed: every verified journal
        #    entry replayed, the rotted one (if any) re-ran.
        replayed = {s.stage for s in sink.spans
                    if s.cache == "journal"}
        executed = {s.stage for s in sink.spans
                    if s.cache != "journal"}
        expected_replay = journaled - ({rotted} if rotted else set())
        assert replayed == expected_replay, scenario
        assert executed == set(STAGE_NAMES) - expected_replay, scenario
        assert resumed.status is FlowStatus.RESUMED or not replayed
        assert RunJournal.open(tmp_path, run_id).is_complete
