"""Tests for the batched router and the engine-selection registry.

Covers the PR-8 satellites: engine registry semantics (strict lookup,
alias shims, lenient execution-time resolution, FlowOptions
construction-time validation), RoutingResult schema parity across
engines, hypothesis-driven both-engine parity (legal routes, overflow
no worse than maze, wirelength within 2%), bit-reproducibility of the
batched engine, and flow-level cache-key sensitivity to the
``routing_engine`` knob.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flow import FlowOptions
from repro.engines import (
    UnknownEngineError,
    default_engine,
    engine_names,
    get_engine,
    resolve_engine,
)
from repro.netlist import build_library, logic_cloud
from repro.orchestrate import ResultCache, TelemetrySink, run
from repro.place import global_place
from repro.route import ROUTE_SCHEMA_VERSION, route_placement
from repro.tech import get_node

LIB = build_library(get_node("28nm"))


def small_placement(gates=150, seed=0, utilization=0.35):
    nl = logic_cloud(8, 8, gates, LIB, seed=seed, locality=0.9)
    return global_place(nl, seed=seed, utilization=utilization)


def legal(result):
    """Every path is a chain of adjacent gcells inside the grid."""
    g = result.grid
    for segs in result.paths.values():
        for p in segs:
            arr = np.asarray(p)
            assert (arr[:, 0] >= 0).all() and (arr[:, 0] < g.nx).all()
            assert (arr[:, 1] >= 0).all() and (arr[:, 1] < g.ny).all()
            step = np.abs(np.diff(arr, axis=0)).sum(axis=1)
            assert (step == 1).all(), "non-adjacent hop in path"
    # The grid's committed usage agrees with the paths.
    edges = sum(len(p) - 1 for segs in result.paths.values()
                for p in segs)
    assert result.grid.wirelength() == edges == result.wirelength


# ----------------------------------------------------------------------
# Engine registry


class TestRegistry:
    def test_stages_and_defaults(self):
        assert "batched" in engine_names("routing")
        assert "maze" in engine_names("routing")
        assert "line_search" in engine_names("routing")
        assert default_engine("routing") == "batched"
        assert default_engine("placement") == "analytic"

    def test_unknown_engine_is_value_error_with_hint(self):
        with pytest.raises(UnknownEngineError, match="batched"):
            get_engine("routing", "bathced")
        assert issubclass(UnknownEngineError, ValueError)

    def test_alias_resolves_with_deprecation(self):
        with pytest.deprecated_call(match="maze"):
            spec = get_engine("routing", "lee")
        assert spec.name == "maze"

    def test_resolve_engine_is_lenient(self):
        # Journal replay must not explode on a retired engine string.
        with pytest.warns(DeprecationWarning):
            spec = resolve_engine("routing", "no-such-engine-ever")
        assert spec.name == default_engine("routing")

    def test_flow_options_reject_typo_early(self):
        with pytest.raises(ValueError, match="routing_engine"):
            FlowOptions(routing_engine="mase")
        with pytest.raises(ValueError, match="place_engine"):
            FlowOptions(place_engine="analitic")

    def test_flow_options_validate_knob_values(self):
        with pytest.raises(ValueError, match="gcell_um"):
            FlowOptions(gcell_um=-1.0)
        with pytest.raises(ValueError, match="routing_layers"):
            FlowOptions(routing_layers=1)
        with pytest.raises(ValueError, match="utilization"):
            FlowOptions(utilization=0.0)

    def test_flow_options_canonicalize_alias(self):
        with pytest.deprecated_call():
            opts = FlowOptions(routing_engine="lee")
        assert opts.routing_engine == "maze"


# ----------------------------------------------------------------------
# RoutingResult schema parity


class TestResultSchema:
    @pytest.mark.parametrize("engine", ["batched", "maze",
                                        "line_search"])
    def test_schema_fields(self, engine):
        res = route_placement(small_placement(), engine=engine,
                              gcell_um=2.0, max_iterations=2)
        assert res.schema_version == ROUTE_SCHEMA_VERSION
        assert res.engine == engine
        assert len(res.net_names) == len(res.paths)
        assert res.net_wirelength.dtype == np.int64
        assert res.net_overflow.dtype == np.int64
        assert int(res.net_wirelength.sum()) == res.wirelength
        assert res.summary().startswith(f"{engine}: wl=")
        legal(res)

    def test_batched_reports_phase_timings(self):
        res = route_placement(small_placement(), engine="batched",
                              gcell_um=2.0)
        assert "route_expand" in res.phase_ms
        assert "route_commit" in res.phase_ms
        assert "route_decompose" in res.phase_ms


# ----------------------------------------------------------------------
# Both-engine parity


route_params = st.tuples(
    st.integers(min_value=60, max_value=220),     # gates
    st.integers(min_value=0, max_value=10_000),   # seed
)


class TestParity:
    @given(route_params)
    @settings(max_examples=8, deadline=None)
    def test_batched_matches_maze(self, params):
        gates, seed = params
        pl = small_placement(gates=gates, seed=seed)
        maze = route_placement(pl, engine="maze", gcell_um=2.0,
                               max_iterations=3, seed=seed)
        bat = route_placement(pl, engine="batched", gcell_um=2.0,
                              max_iterations=3, seed=seed)
        legal(maze)
        legal(bat)
        assert not bat.failed
        assert bat.overflow <= maze.overflow
        # 2% wirelength parity, with an absolute floor so the gate is
        # meaningful on tiny designs where 2% rounds to zero edges.
        assert bat.wirelength <= maze.wirelength * 1.02 + 2

    def test_bit_reproducible(self):
        pl = small_placement(gates=200, seed=3)
        a = route_placement(pl, engine="batched", gcell_um=2.0, seed=5)
        b = route_placement(pl, engine="batched", gcell_um=2.0, seed=5)
        assert a.wirelength == b.wirelength
        assert a.overflow == b.overflow
        assert a.paths.keys() == b.paths.keys()
        for net in a.paths:
            assert len(a.paths[net]) == len(b.paths[net])
            for p, q in zip(a.paths[net], b.paths[net]):
                np.testing.assert_array_equal(p, q)
        np.testing.assert_array_equal(a.net_wirelength,
                                      b.net_wirelength)


# ----------------------------------------------------------------------
# Flow integration: engine knob and cache-key sensitivity


FLOW_OPTS = dict(utilization=0.4, routing_iterations=2, gcell_um=2.0,
                 spreading_passes=1, detailed_passes=0)


def flow_design():
    return logic_cloud(8, 8, 120, LIB, seed=11, locality=0.9)


class TestFlowIntegration:
    @pytest.mark.parametrize("engine", ["batched", "maze"])
    def test_flow_runs_with_engine(self, engine):
        result = run(flow_design(), LIB,
                     FlowOptions(routing_engine=engine, **FLOW_OPTS))
        assert result.status == "ok"
        assert result.routing.engine == engine
        assert result.routed_wirelength > 0

    def test_cache_key_includes_engine(self):
        cache = ResultCache()

        def routing_span(engine):
            sink = TelemetrySink()
            run(flow_design(), LIB,
                FlowOptions(routing_engine=engine, **FLOW_OPTS),
                cache=cache, telemetry=sink)
            return next(s for s in sink.spans
                        if s.stage == "routing")

        assert routing_span("maze").cache != "hit"
        # Same options again: the routing stage must come from cache.
        assert routing_span("maze").cache == "hit"
        # Switching engines must miss — the knob is in the stage key.
        assert routing_span("batched").cache != "hit"
        assert routing_span("batched").cache == "hit"
