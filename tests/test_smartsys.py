"""Tests for smart-system components, packaging, energy, co-design."""

import pytest

from repro.smartsys import (
    COMPONENT_CATALOG,
    Component,
    ComponentKind,
    SystemSpec,
    catalog_variants,
    codesign_flow,
    plan_package,
    separate_tools_flow,
    simulate_energy,
)


def pick(name):
    return next(c for c in COMPONENT_CATALOG if c.name == name)


class TestComponents:
    def test_catalog_covers_all_kinds(self):
        kinds = {c.kind for c in COMPONENT_CATALOG}
        for required in (ComponentKind.SENSOR, ComponentKind.ADC,
                         ComponentKind.MCU, ComponentKind.RADIO,
                         ComponentKind.PMU, ComponentKind.BATTERY,
                         ComponentKind.HARVESTER):
            assert required in kinds

    def test_catalog_has_variants_per_kind(self):
        assert len(catalog_variants(ComponentKind.MCU)) >= 3
        assert len(catalog_variants(ComponentKind.RADIO)) >= 3

    def test_heterogeneous_technologies(self):
        techs = {c.tech for c in COMPONENT_CATALOG}
        assert "mems" in techs
        assert any(t.startswith("cmos") for t in techs)
        assert len(techs) >= 4  # genuinely multi-domain (Macii)

    def test_component_validation(self):
        with pytest.raises(ValueError):
            Component("bad", ComponentKind.MCU, "cmos", -1, 0, 1, 1)
        with pytest.raises(ValueError):
            Component("bad", ComponentKind.MCU, "cmos", 1, 0, 0, 1)


class TestPackaging:
    def test_soc_requires_single_domain(self):
        mixed = [pick("accel_lp"), pick("mcu_m3_55")]
        with pytest.raises(ValueError, match="impossible"):
            plan_package(mixed, style="soc")

    def test_soc_legal_for_single_domain(self):
        same = [pick("mcu_m3_55"), pick("dsp_lite"), pick("adc_sar12")]
        plan = plan_package(same, style="soc")
        assert plan.style == "soc"
        assert plan.tsv_count == 0

    def test_sip_fits_mixed_domains(self):
        mixed = [pick("accel_lp"), pick("mcu_m3_55"), pick("ble_radio")]
        plan = plan_package(mixed, style="sip_2d")
        assert plan.footprint_mm2 > sum(c.area_mm2 for c in mixed)
        assert plan.bond_wires > 0

    def test_3d_stack_smaller_footprint_higher_cost(self):
        mixed = [pick("accel_hi"), pick("mcu_m4_28"),
                 pick("multi_radio"), pick("env_combo")]
        sip = plan_package(mixed, style="sip_2d")
        stack = plan_package(mixed, style="stack_3d")
        assert stack.footprint_mm2 < sip.footprint_mm2
        assert stack.package_cost_usd > sip.package_cost_usd
        assert stack.tsv_count > 0

    def test_auto_picks_soc_for_single_domain(self):
        same = [pick("mcu_m3_55"), pick("dsp_lite")]
        assert plan_package(same).style == "soc"

    def test_batteries_ride_outside_the_package(self):
        comps = [pick("mcu_m3_55"), pick("dsp_lite"), pick("lipo_small")]
        plan = plan_package(comps)
        assert "lipo_small" not in plan.dies

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            plan_package([])
        with pytest.raises(ValueError):
            plan_package([pick("coin_cell")])

    def test_unknown_style(self):
        with pytest.raises(ValueError):
            plan_package([pick("mcu_m3_55")], style="vacuum_tube")


class TestEnergy:
    def _system(self, battery="lipo_small", harvester="none_harv"):
        return [pick("accel_lp"), pick("adc_sar10"), pick("mcu_m0_180"),
                pick("ble_radio"), pick("pmu_buck"), pick(battery),
                pick(harvester)]

    def test_duty_cycle_drives_average(self):
        lo = simulate_energy(self._system(), duty_cycle=0.005)
        hi = simulate_energy(self._system(), duty_cycle=0.2)
        assert hi.average_mw > lo.average_mw

    def test_battery_life_scales_with_capacity(self):
        small = simulate_energy(self._system(battery="coin_cell"))
        big = simulate_energy(self._system(battery="lipo_small"))
        assert big.battery_life_hours > small.battery_life_hours

    def test_harvesting_can_reach_autonomy(self):
        harvested = simulate_energy(
            self._system(harvester="solar_cm2"), duty_cycle=0.002)
        assert harvested.energy_autonomous

    def test_buck_beats_ldo(self):
        with_buck = simulate_energy(self._system())
        with_ldo = simulate_energy(
            [pick("accel_lp"), pick("adc_sar10"), pick("mcu_m0_180"),
             pick("ble_radio"), pick("pmu_ldo"), pick("lipo_small"),
             pick("none_harv")])
        assert with_buck.average_mw < with_ldo.average_mw

    def test_bad_duty_cycle(self):
        with pytest.raises(ValueError):
            simulate_energy(self._system(), duty_cycle=0.0)

    def test_summary_mentions_battery(self):
        assert "battery" in simulate_energy(self._system()).summary()


class TestCodesign:
    def test_codesign_beats_separate_tools(self):
        # E6: cost down, time-to-market shortened.
        spec = SystemSpec()
        separate = separate_tools_flow(spec)
        joint = codesign_flow(spec)
        assert joint.met_spec
        assert joint.time_to_market_weeks < separate.time_to_market_weeks
        assert joint.engineering_cost_usd < separate.engineering_cost_usd
        if separate.met_spec:
            assert joint.unit_cost_usd <= separate.unit_cost_usd + 1e-9

    def test_separate_tools_pays_handoff_iterations(self):
        outcome = separate_tools_flow(SystemSpec())
        assert outcome.iterations >= 2  # at least one re-entry

    def test_codesign_explores_more(self):
        spec = SystemSpec()
        separate = separate_tools_flow(spec)
        joint = codesign_flow(spec)
        assert joint.evaluations > separate.evaluations * 10

    def test_infeasible_spec_reported(self):
        spec = SystemSpec(min_battery_hours=1e9,
                          max_unit_cost_usd=0.5)
        joint = codesign_flow(spec)
        assert not joint.met_spec
        assert joint.violations

    def test_tight_cost_spec_still_solvable_jointly(self):
        spec = SystemSpec(max_unit_cost_usd=4.5)
        joint = codesign_flow(spec)
        assert joint.met_spec
        assert joint.unit_cost_usd <= 4.5

    def test_outcome_summary(self):
        out = codesign_flow(SystemSpec())
        assert "codesign" in out.summary()
