"""Tests for the incremental timing engine, the netlist change
journal, and the memoized netlist views."""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import Netlist, build_library
from repro.netlist.generators import registered_cloud
from repro.orchestrate.telemetry import TelemetrySink, kernel_span
from repro.tech import get_node
from repro.timing import (
    IncrementalTimingAnalyzer,
    TimingAnalyzer,
    WireModel,
)

LIB = build_library(get_node("28nm"), vt_flavors=("lvt", "rvt", "hvt"))
WM = WireModel(cap_per_fanout_ff=0.8)
T = 150.0


def assert_matches_full(nl, inc, context=""):
    """The incremental report must equal a from-scratch scalar STA
    bit for bit: arrivals, requireds, WNS, slacks."""
    ref = TimingAnalyzer(nl, WM, T).analyze()
    got = inc.update()
    assert got.arrival_ps == ref.arrival_ps, context
    assert got.required_ps == ref.required_ps, context
    assert got.wns_ps == ref.wns_ps, context
    assert got.slacks() == {n: ref.slack_ps(n)
                            for n in ref.arrival_ps}, context
    assert got.critical_path == ref.critical_path, context


class TestIncrementalMatchesFull:
    """Randomized equivalence: any journaled edit sequence leaves the
    incremental engine bit-identical to a full scalar analysis."""

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_random_edit_sequences(self, data):
        seed = data.draw(st.integers(0, 999), label="design seed")
        nl = registered_cloud(6, 8, 60, LIB, seed=seed)
        inc = IncrementalTimingAnalyzer(nl, WM, T)
        inc.analyze()
        try:
            n_edits = data.draw(st.integers(1, 10), label="edits")
            for step in range(n_edits):
                op = data.draw(st.sampled_from(
                    ["resize", "resize", "rewire", "remove", "add"]),
                    label=f"op{step}")
                if op == "resize":
                    combs = nl.combinational_gates()
                    g = combs[data.draw(
                        st.integers(0, len(combs) - 1))]
                    base = g.cell.name.rsplit("_", 2)[0]
                    drive = data.draw(
                        st.sampled_from(["X1", "X2", "X4"]))
                    vt = data.draw(
                        st.sampled_from(["lvt", "rvt", "hvt"]))
                    cand = LIB.cells.get(f"{base}_{drive}_{vt}")
                    if cand is None:
                        continue
                    nl.resize_gate(g.name, cand)
                elif op == "rewire":
                    combs = nl.combinational_gates()
                    g = combs[data.draw(
                        st.integers(0, len(combs) - 1))]
                    pin = data.draw(st.sampled_from(sorted(g.pins)))
                    # PIs and flop Qs cannot create comb cycles.
                    safe = list(nl.primary_inputs) + [
                        f.output for f in nl.sequential_gates()]
                    tgt = safe[data.draw(
                        st.integers(0, len(safe) - 1))]
                    nl.rewire_pin(g.name, pin, tgt)
                elif op == "remove":
                    dead = [g for g in nl.combinational_gates()
                            if not nl.loads_of(g.output)
                            and g.output not in nl.primary_outputs]
                    if not dead:
                        continue
                    g = dead[data.draw(
                        st.integers(0, len(dead) - 1))]
                    nl.remove_gate(g.name)
                else:
                    src = nl.primary_inputs[data.draw(
                        st.integers(0, len(nl.primary_inputs) - 1))]
                    nl.add_gate("INV_X1_rvt", [src])
                assert_matches_full(nl, inc, f"{op} at step {step}")
        finally:
            inc.close()

    def test_many_resizes_then_repropagate(self):
        nl = registered_cloud(8, 12, 150, LIB, seed=5)
        with IncrementalTimingAnalyzer(nl, WM, T) as inc:
            inc.analyze()
            for g in nl.combinational_gates()[::3]:
                bigger = LIB.cells.get(
                    g.cell.name.replace("_X1_", "_X4_"))
                if bigger is not None:
                    nl.resize_gate(g.name, bigger)
            ref = TimingAnalyzer(nl, WM, T).analyze()
            got = inc.repropagate()
            assert got.arrival_ps == ref.arrival_ps
            assert got.required_ps == ref.required_ps
            assert got.wns_ps == ref.wns_ps

    def test_legacy_changed_gates_argument(self):
        # Cell mutated outside the journal: update(changed_gates=...)
        # still converges to the full answer.
        nl = registered_cloud(6, 8, 80, LIB, seed=2)
        with IncrementalTimingAnalyzer(nl, WM, T) as inc:
            inc.analyze()
            gate = nl.combinational_gates()[10]
            gate.cell = LIB.cells[
                gate.cell.name.replace("_X1_", "_X2_")]
            ref = TimingAnalyzer(nl, WM, T).analyze()
            got = inc.update(changed_gates=[gate.name])
            assert got.arrival_ps == ref.arrival_ps
            assert got.wns_ps == ref.wns_ps

    def test_flop_resize_updates_setup_and_launch(self):
        nl = registered_cloud(6, 8, 80, LIB, seed=9)
        flop = nl.sequential_gates()[0]
        other = None
        for cell in LIB:
            if (cell.is_sequential and cell.inputs == flop.cell.inputs
                    and cell is not flop.cell):
                other = cell
                break
        if other is None:
            pytest.skip("library has a single compatible flop")
        with IncrementalTimingAnalyzer(nl, WM, T) as inc:
            inc.analyze()
            nl.resize_gate(flop.name, other)
            assert_matches_full(nl, inc, "flop resize")

    def test_report_api_mirrors_timing_report(self):
        nl = registered_cloud(6, 8, 60, LIB, seed=1)
        ref = TimingAnalyzer(nl, WM, T).analyze()
        with IncrementalTimingAnalyzer(nl, WM, T) as inc:
            got = inc.analyze()
        assert got.clock_period_ps == T
        assert got.critical_delay_ps == ref.critical_delay_ps
        assert got.fmax_ghz() == ref.fmax_ghz()
        some_net = next(iter(ref.arrival_ps))
        assert got.slack_ps(some_net) == ref.slack_ps(some_net)
        with pytest.raises(KeyError):
            got.slack_ps("no_such_net")


class TestChangeJournal:
    def test_subscribe_and_unsubscribe(self):
        nl = Netlist("j", LIB)
        seen = []
        unsub = nl.subscribe(seen.append)
        a = nl.add_input("a")
        g = nl.add_gate("INV_X1_rvt", [a])
        nl.resize_gate(g.name, "INV_X2_rvt")
        assert [e.kind for e in seen] == ["add_input", "add_gate",
                                         "resize"]
        assert seen[1].fanins == ("a",)
        unsub()
        nl.add_output(g.output)
        assert len(seen) == 3

    def test_structural_flag_and_version(self):
        nl = Netlist("v", LIB)
        a = nl.add_input("a")
        v0 = nl.struct_version
        g = nl.add_gate("INV_X1_rvt", [a])
        assert nl.struct_version > v0
        v1 = nl.struct_version
        nl.resize_gate(g.name, "INV_X2_rvt")   # non-structural
        assert nl.struct_version == v1
        nl.remove_gate(g.name)
        assert nl.struct_version > v1

    def test_resize_rejects_incompatible_footprint(self):
        nl = Netlist("r", LIB)
        a = nl.add_input("a")
        g = nl.add_gate("INV_X1_rvt", [a])
        with pytest.raises(ValueError):
            nl.resize_gate(g.name, "AND2_X1_rvt")

    def test_remove_gate_journal_snapshots_fanins(self):
        nl = Netlist("s", LIB)
        a = nl.add_input("a")
        b = nl.add_input("b")
        g = nl.add_gate("AND2_X1_rvt", [a, b])
        seen = []
        nl.subscribe(seen.append)
        nl.remove_gate(g.name)
        assert seen[-1].kind == "remove_gate"
        assert set(seen[-1].fanins) == {"a", "b"}


class TestMemoizedViews:
    def test_fanout_map_cached_until_structural_edit(self):
        nl = registered_cloud(4, 4, 20, LIB, seed=0)
        fan1 = nl.fanout_map()
        assert nl.fanout_map() is fan1
        assert nl.topological_gates() is nl.topological_gates()
        g = nl.combinational_gates()[0]
        nl.resize_gate(g.name, g.cell)      # no-op resize
        bigger = LIB.cells.get(g.cell.name.replace("_X1_", "_X2_"))
        if bigger is not None:
            nl.resize_gate(g.name, bigger)  # resize keeps views
        assert nl.fanout_map() is fan1
        nl.add_gate("INV_X1_rvt", [nl.primary_inputs[0]])
        assert nl.fanout_map() is not fan1

    def test_loads_of_reflects_rewires(self):
        nl = Netlist("l", LIB)
        a = nl.add_input("a")
        b = nl.add_input("b")
        g = nl.add_gate("INV_X1_rvt", [a])
        assert [p for _, p in nl.loads_of(a)] == ["A"]
        nl.rewire_pin(g.name, "A", b)
        assert nl.loads_of(a) == []
        assert [p for _, p in nl.loads_of(b)] == ["A"]

    def test_pickle_drops_acceleration_state(self):
        nl = registered_cloud(4, 4, 20, LIB, seed=0)
        fresh_blob = pickle.dumps(nl)
        nl.fanout_map()
        nl.topological_gates()
        with IncrementalTimingAnalyzer(nl, WM, T) as inc:
            inc.analyze()
            used_blob = pickle.dumps(nl)
        # Usage history (memos, subscribers) must not leak into the
        # pickled form, or flow-cache keys would stop matching.
        assert fresh_blob == used_blob
        clone = pickle.loads(used_blob)
        assert clone._view_cache == {} and clone._subscribers == []


class TestKernelSpan:
    def test_records_ok_span(self):
        sink = TelemetrySink()
        with kernel_span(sink, "sta_cold"):
            pass
        assert len(sink.spans) == 1
        span = sink.spans[0]
        assert span.stage == "sta_cold" and span.status == "ok"
        assert span.wall_s >= 0

    def test_failed_span_reraises(self):
        sink = TelemetrySink()
        with pytest.raises(RuntimeError):
            with kernel_span(sink, "boom"):
                raise RuntimeError("kernel died")
        assert sink.spans[0].status == "failed"


class TestRetimingBridge:
    def test_netlist_to_retiming_graph(self):
        from repro.synthesis.retiming import (
            HOST, retiming_graph_from_netlist)
        nl = registered_cloud(6, 8, 60, LIB, seed=4)
        g = retiming_graph_from_netlist(nl, wire_model=WM)
        g.validate()                 # every cycle carries a register
        assert HOST in g.delays and g.delays[HOST] == 0.0
        comb_names = {gt.name for gt in nl.combinational_gates()}
        assert set(g.delays) == comb_names | {HOST}
        # Node delays come from the timing engine's cached cell delays.
        with IncrementalTimingAnalyzer(nl, WM, T) as inc:
            delays = inc.gate_delays_ps()
        for name in comb_names:
            assert g.delays[name] == delays[name]
        assert g.clock_period() > 0

    def test_bridge_min_period_feasible(self):
        from repro.synthesis.retiming import retiming_graph_from_netlist
        nl = registered_cloud(4, 6, 30, LIB, seed=8)
        g = retiming_graph_from_netlist(nl, wire_model=WM)
        period, labels = g.min_period()
        assert period <= g.clock_period() + 1e-9
        assert g.apply(labels).clock_period() <= period + 1e-9
