"""Tests for the SAT solver, SAT-based EC, and logic BIST."""

import numpy as np
import pytest

from repro.dft.bist import BistResult, lfsr_patterns, run_bist, signature_detects
from repro.dft.compression import Lfsr
from repro.dft.faults import Fault
from repro.netlist import build_library, logic_cloud, random_aig, registered_cloud
from repro.synthesis import map_aig, trivial_map
from repro.synthesis.bdd import check_equivalence
from repro.synthesis.sat import Cnf, SatSolver, sat_check_equivalence, tseitin_netlist
from repro.tech import get_node


@pytest.fixture(scope="module")
def lib():
    return build_library(get_node("28nm"), vt_flavors=("lvt", "rvt",
                                                       "hvt"))


class TestSatSolver:
    def test_simple_sat(self):
        cnf = Cnf()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause(a, b)
        cnf.add_clause(-a, b)
        model = SatSolver(cnf).solve()
        assert model is not None
        assert model[b] is True or model[a] is True

    def test_simple_unsat(self):
        cnf = Cnf()
        a = cnf.new_var()
        cnf.add_clause(a)
        cnf.add_clause(-a)
        assert SatSolver(cnf).solve() is None

    def test_model_satisfies_all_clauses(self):
        rng = np.random.default_rng(3)
        cnf = Cnf()
        for _ in range(8):
            cnf.new_var()
        for _ in range(25):
            clause = []
            for _ in range(3):
                v = int(rng.integers(1, 9))
                clause.append(v if rng.random() < 0.5 else -v)
            cnf.add_clause(*clause)
        model = SatSolver(cnf).solve()
        if model is not None:
            for clause in cnf.clauses:
                assert any(
                    (lit > 0) == model.get(abs(lit), False)
                    for lit in clause)

    def test_pigeonhole_unsat(self):
        # 3 pigeons, 2 holes: classic small UNSAT instance.
        cnf = Cnf()
        p = [[cnf.new_var() for _ in range(2)] for _ in range(3)]
        for bird in p:
            cnf.add_clause(*bird)
        for hole in range(2):
            for i in range(3):
                for j in range(i + 1, 3):
                    cnf.add_clause(-p[i][hole], -p[j][hole])
        assert SatSolver(cnf).solve() is None

    def test_clause_validation(self):
        cnf = Cnf()
        cnf.new_var()
        with pytest.raises(ValueError):
            cnf.add_clause()
        with pytest.raises(ValueError):
            cnf.add_clause(5)


class TestSatEquivalence:
    def test_agrees_with_bdd_on_equivalent(self, lib):
        aig = random_aig(8, 100, 4, seed=21)
        n1 = map_aig(aig, lib)
        n2 = trivial_map(aig, lib)
        assert sat_check_equivalence(n1, n2)["equivalent"]
        assert check_equivalence(n1, n2)["equivalent"]

    def test_agrees_with_bdd_on_buggy(self, lib):
        aig = random_aig(8, 100, 4, seed=23)
        n1 = map_aig(aig, lib)
        n2 = trivial_map(aig, lib)
        for g in n2.combinational_gates():
            if g.cell.name.startswith("AND2"):
                g.cell = lib["NAND2_X1_rvt"]
                break
        sat_rep = sat_check_equivalence(n1, n2)
        bdd_rep = check_equivalence(n1, n2)
        assert not sat_rep["equivalent"]
        assert not bdd_rep["equivalent"]
        # The SAT counterexample must really distinguish them.
        cex = sat_rep["counterexample"]
        vec = np.array([[cex[p] for p in n1.primary_inputs]],
                       dtype=bool)
        assert not np.array_equal(n1.simulate(vec), n2.simulate(vec))

    def test_tseitin_encoding_consistent(self, lib):
        nl = logic_cloud(6, 4, 60, lib, seed=5)
        cnf = Cnf()
        var_of = tseitin_netlist(nl, cnf)
        model = SatSolver(cnf).solve()
        assert model is not None
        # The model must agree with real simulation of those inputs.
        vec = np.array([[model.get(var_of[p], False)
                         for p in nl.primary_inputs]], dtype=bool)
        out = nl.simulate(vec)[0]
        for k, po in enumerate(nl.primary_outputs):
            assert model.get(var_of[po], False) == bool(out[k])

    def test_sequential_rejected(self, lib):
        nl = registered_cloud(4, 4, 30, lib, seed=1)
        cnf = Cnf()
        with pytest.raises(ValueError):
            tseitin_netlist(nl, cnf)

    def test_interface_mismatch(self, lib):
        a = logic_cloud(4, 4, 30, lib, seed=1)
        b = logic_cloud(5, 4, 30, lib, seed=1)
        with pytest.raises(ValueError):
            sat_check_equivalence(a, b)


class TestBist:
    def test_lfsr_patterns_shape_and_variety(self):
        pats = lfsr_patterns(Lfsr(16), 32, 8)
        assert pats.shape == (32, 8)
        assert len({tuple(int(b) for b in row) for row in pats}) > 16

    def test_bist_coverage_reasonable(self, lib):
        nl = registered_cloud(8, 16, 120, lib, seed=9)
        result = run_bist(nl, patterns=96)
        assert 0.3 <= result.coverage <= 1.0
        assert result.detected <= result.total_faults
        assert result.golden_signature != 0

    def test_more_patterns_more_coverage(self, lib):
        nl = registered_cloud(8, 16, 120, lib, seed=9)
        few = run_bist(nl, patterns=16)
        many = run_bist(nl, patterns=128)
        assert many.coverage >= few.coverage - 1e-9

    def test_signature_deterministic(self, lib):
        nl = logic_cloud(8, 6, 80, lib, seed=11)
        a = run_bist(nl, patterns=64)
        b = run_bist(nl, patterns=64)
        assert a.golden_signature == b.golden_signature

    def test_signature_flags_observable_fault(self, lib):
        nl = logic_cloud(8, 6, 80, lib, seed=13)
        # A fault right on an output is surely observable.
        po = nl.primary_outputs[0]
        assert signature_detects(nl, Fault(po, 0)) or \
            signature_detects(nl, Fault(po, 1))

    def test_escape_risk_monotone_in_coverage(self):
        hi = BistResult(64, 0.95, 1, 24, 95, 100)
        lo = BistResult(64, 0.60, 1, 24, 60, 100)
        assert hi.escape_risk < lo.escape_risk

    def test_validation(self, lib):
        from repro.netlist import Netlist
        empty = Netlist("t", lib)
        with pytest.raises(ValueError):
            run_bist(empty)
        with pytest.raises(ValueError):
            lfsr_patterns(Lfsr(8), 0, 4)
