"""Tests for routing: grid, maze, line-search, global route, layers."""

import numpy as np
import pytest

from repro.netlist import build_library, logic_cloud
from repro.place import global_place
from repro.route import (
    RoutingGrid,
    assign_layers,
    line_search_route,
    maze_route,
    route_placement,
)
from repro.route.layers import minimum_layers
from repro.route.linesearch import count_probe_cells
from repro.tech import get_node


def small_grid(cap=4):
    return RoutingGrid(8, 8, h_capacity=cap, v_capacity=cap)


class TestRoutingGrid:
    def test_validation(self):
        with pytest.raises(ValueError):
            RoutingGrid(1, 8, h_capacity=1, v_capacity=1)
        with pytest.raises(ValueError):
            RoutingGrid(4, 4, h_capacity=0, v_capacity=1)

    def test_edge_between(self):
        g = small_grid()
        assert g.edge_between((0, 0), (1, 0)) == ("h", 0, 0)
        assert g.edge_between((3, 2), (3, 3)) == ("v", 2, 3)
        with pytest.raises(ValueError):
            g.edge_between((0, 0), (2, 0))

    def test_add_and_rip_path(self):
        g = small_grid()
        path = [(0, 0), (1, 0), (1, 1)]
        g.add_path(path)
        assert g.wirelength() == 2
        g.add_path(path, delta=-1)
        assert g.wirelength() == 0

    def test_overflow_accounting(self):
        g = small_grid(cap=1)
        path = [(0, 0), (1, 0)]
        g.add_path(path)
        assert g.total_overflow() == 0
        g.add_path(path)
        assert g.total_overflow() == 1
        assert g.max_utilization() == 2.0

    def test_edge_cost_rises_with_congestion(self):
        g = small_grid(cap=1)
        edge = ("h", 0, 0)
        base = g.edge_cost(edge)
        g.add_path([(0, 0), (1, 0)])
        assert g.edge_cost(edge) > base

    def test_for_die_scales_capacity_with_layers(self):
        node = get_node("28nm")
        g4 = RoutingGrid.for_die(100, 100, node, layers=4)
        g8 = RoutingGrid.for_die(100, 100, node, layers=8)
        assert g8.h_capacity > g4.h_capacity
        assert g8.v_capacity > g4.v_capacity

    def test_congestion_map_shape(self):
        g = small_grid()
        g.add_path([(0, 0), (1, 0), (1, 1)])
        assert g.congestion_map().shape == (8, 8)


class TestMazeRoute:
    def test_straight_path(self):
        g = small_grid()
        path = maze_route(g, (0, 0), (5, 0))
        assert path[0] == (0, 0) and path[-1] == (5, 0)
        assert len(path) == 6

    def test_manhattan_optimal_when_empty(self):
        g = small_grid()
        path = maze_route(g, (1, 1), (6, 5))
        assert len(path) - 1 == 5 + 4

    def test_avoids_congestion(self):
        g = small_grid(cap=1)
        # Fill the direct corridor.
        for y in (0,):
            for x in range(7):
                g.add_path([(x, y), (x + 1, y)])
        path = maze_route(g, (0, 0), (7, 0))
        # Must detour off row 0 somewhere.
        assert any(cell[1] != 0 for cell in path)

    def test_same_cell(self):
        g = small_grid()
        assert maze_route(g, (2, 2), (2, 2)) == [(2, 2)]

    def test_outside_grid_rejected(self):
        g = small_grid()
        with pytest.raises(ValueError):
            maze_route(g, (0, 0), (99, 0))

    def test_budget_exhaustion_returns_none(self):
        g = small_grid()
        assert maze_route(g, (0, 0), (7, 7), max_expansions=2) is None


class TestLineSearch:
    def test_l_shaped_path(self):
        g = small_grid()
        path = line_search_route(g, (0, 0), (5, 4))
        assert path is not None
        assert path[0] == (0, 0) and path[-1] == (5, 4)
        # Unit steps only.
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_same_cell(self):
        g = small_grid()
        assert line_search_route(g, (3, 3), (3, 3)) == [(3, 3)]

    def test_blocked_returns_none_or_detour(self):
        g = small_grid(cap=1)
        # Wall of full vertical edges across the middle column pair.
        for y in range(7):
            for x in range(8):
                g.v_usage[y, x] = 1
        for y in range(8):
            g.h_usage[y, 3] = 1
        path = line_search_route(g, (0, 0), (7, 0))
        assert path is None  # fully walled

    def test_probe_cell_count_less_than_grid(self):
        g = RoutingGrid(30, 30, h_capacity=4, v_capacity=4)
        probes = count_probe_cells(g, (3, 3), (25, 20))
        assert probes < 30 * 30 / 2  # line probes touch far fewer cells


class TestGlobalRouting:
    @pytest.fixture(scope="class")
    def placed(self):
        lib = build_library(get_node("28nm"))
        nl = logic_cloud(16, 16, 400, lib, seed=1, locality=0.9)
        return global_place(nl, seed=0, utilization=0.35)

    def test_routes_all_nets(self, placed):
        result = route_placement(placed, gcell_um=2.0)
        assert not result.failed
        assert result.wirelength > 0
        assert result.paths

    def test_line_search_engine_runs(self, placed):
        result = route_placement(placed, engine="line_search",
                                 gcell_um=2.0)
        assert not result.failed

    def test_rip_up_reduces_overflow(self, placed):
        one = route_placement(placed, gcell_um=2.0, max_iterations=1)
        many = route_placement(placed, gcell_um=2.0, max_iterations=5)
        assert many.overflow <= one.overflow

    def test_more_layers_less_overflow(self, placed):
        few = route_placement(placed, gcell_um=2.0, layers=2)
        lots = route_placement(placed, gcell_um=2.0, layers=8)
        assert lots.overflow <= few.overflow

    def test_bad_engine_rejected(self, placed):
        from repro.route import GlobalRouter
        with pytest.raises(ValueError):
            GlobalRouter(placed, engine="quantum")

    def test_net_lengths_reported(self, placed):
        result = route_placement(placed, gcell_um=2.0)
        lengths = result.net_lengths_gcells()
        assert lengths
        assert all(v >= 1 for v in lengths.values())

    def test_summary(self, placed):
        result = route_placement(placed, gcell_um=2.0)
        assert "wl=" in result.summary()


class TestLayerAssignment:
    def test_waterfill_conserves_demand(self):
        g = small_grid(cap=8)
        for _ in range(5):
            g.add_path([(0, 0), (1, 0), (1, 1), (2, 1)])
        la = assign_layers(g, 4, per_layer_capacity=2)
        assert la.h_layer_usage.sum() + la.v_layer_usage.sum() + \
            la.overflow == g.h_usage.sum() + g.v_usage.sum()

    def test_infeasible_when_too_few_layers(self):
        g = small_grid(cap=16)
        for _ in range(10):
            g.add_path([(0, 0), (1, 0)])
        la = assign_layers(g, 2, per_layer_capacity=4)
        assert not la.feasible
        la8 = assign_layers(g, 8, per_layer_capacity=4)
        assert la8.feasible

    def test_utilization_per_layer_ordering(self):
        g = small_grid(cap=8)
        for _ in range(6):
            g.add_path([(0, 0), (1, 0)])
        la = assign_layers(g, 4, per_layer_capacity=4)
        utils = la.utilization_per_layer()
        assert len(utils) == 4
        assert la.peak_utilization() <= 1.0

    def test_minimum_layers_monotone_with_density(self):
        lib = build_library(get_node("28nm"))
        sparse_nl = logic_cloud(8, 8, 100, lib, seed=2, locality=0.95)
        sparse_pl = global_place(sparse_nl, seed=0, utilization=0.25)
        min_sparse = minimum_layers(sparse_pl, max_layers=10)
        assert 2 <= min_sparse <= 11

    def test_bad_layer_count(self):
        g = small_grid()
        with pytest.raises(ValueError):
            assign_layers(g, 1)
