"""Tests for Verilog and BLIF interchange."""

import numpy as np
import pytest

from repro.netlist import (
    build_library,
    logic_cloud,
    random_aig,
    registered_cloud,
    ripple_carry_adder,
)
from repro.netlist.io import (
    read_blif,
    read_verilog,
    write_blif,
    write_verilog,
)
from repro.synthesis.network import LogicNetwork
from repro.tech import get_node


@pytest.fixture(scope="module")
def lib():
    return build_library(get_node("28nm"))


class TestVerilog:
    def test_roundtrip_combinational(self, lib):
        nl = logic_cloud(8, 8, 120, lib, seed=1)
        back = read_verilog(write_verilog(nl), lib)
        back.validate()
        assert back.primary_inputs == nl.primary_inputs
        assert back.primary_outputs == nl.primary_outputs
        assert back.num_instances() == nl.num_instances()
        pats = np.random.default_rng(0).random((32, 8)) < 0.5
        assert np.array_equal(back.simulate(pats), nl.simulate(pats))

    def test_roundtrip_sequential(self, lib):
        nl = registered_cloud(6, 10, 80, lib, seed=2)
        back = read_verilog(write_verilog(nl), lib)
        back.validate()
        n_ff = len(nl.sequential_gates())
        pats = np.random.default_rng(1).random((16, 6)) < 0.5
        state = np.random.default_rng(2).random((16, n_ff)) < 0.5
        assert np.array_equal(back.simulate(pats, state),
                              nl.simulate(pats, state))
        assert np.array_equal(back.next_state(pats, state),
                              nl.next_state(pats, state))

    def test_arithmetic_roundtrip(self, lib):
        nl = ripple_carry_adder(4, lib)
        back = read_verilog(write_verilog(nl), lib)
        vec = np.array([[1, 0, 1, 0, 0, 1, 1, 0, 1]], dtype=bool)
        assert np.array_equal(back.simulate(vec), nl.simulate(vec))

    def test_output_contains_module_structure(self, lib):
        nl = logic_cloud(4, 4, 20, lib, seed=3)
        text = write_verilog(nl)
        assert text.startswith("module ")
        assert "endmodule" in text
        assert text.count("input ") == 4
        assert text.count("output ") == 4

    def test_escaped_names(self, lib):
        from repro.netlist import Netlist
        nl = Netlist("top", lib)
        a = nl.add_input("a.weird[0]")
        nl.add_gate("INV_X1_rvt", [a], "y")
        nl.add_output("y")
        back = read_verilog(write_verilog(nl), lib)
        assert "a.weird[0]" in back.primary_inputs

    def test_unknown_cell_rejected(self, lib):
        text = """module t (a, y);
          input a; output y;
          MAGIC_GATE u1 (.A(a), .Y(y));
        endmodule"""
        with pytest.raises(KeyError):
            read_verilog(text, lib)

    def test_missing_output_pin_rejected(self, lib):
        text = """module t (a, y);
          input a; output y;
          INV_X1_rvt u1 (.A(a));
        endmodule"""
        with pytest.raises(ValueError, match="no .Y"):
            read_verilog(text, lib)

    def test_comments_ignored(self, lib):
        nl = logic_cloud(4, 4, 10, lib, seed=4)
        text = "// header comment\n/* block */\n" + write_verilog(nl)
        back = read_verilog(text, lib)
        assert back.num_instances() == 10

    def test_keyword_named_nets_escaped(self, lib):
        # A net or instance named like a Verilog keyword must be
        # written escaped, or the reader mistakes it for a declaration.
        from repro.netlist import Netlist
        nl = Netlist("top", lib)
        a = nl.add_input("wire")
        nl.add_gate("INV_X1_rvt", [a], "endmodule", name="output")
        nl.add_output("endmodule")
        text = write_verilog(nl)
        assert "\\wire " in text
        assert "\\endmodule " in text
        assert "\\output " in text
        back = read_verilog(text, lib)
        back.validate()
        assert back.primary_inputs == ["wire"]
        assert back.primary_outputs == ["endmodule"]
        assert "output" in back.gates
        vec = np.array([[True], [False]])
        assert np.array_equal(back.simulate(vec), nl.simulate(vec))

    def test_escaped_names_with_comment_starters(self, lib):
        # ``//`` and ``/*`` inside an escaped identifier are part of
        # the name, not comments — the tokenizer must not strip them.
        from repro.netlist import Netlist
        nl = Netlist("top", lib)
        a = nl.add_input("a//b")
        b = nl.add_input("c/*d*/e")
        nl.add_gate("NAND2_X1_rvt", [a, b], "y/**/z")
        nl.add_output("y/**/z")
        back = read_verilog(write_verilog(nl), lib)
        back.validate()
        assert back.primary_inputs == ["a//b", "c/*d*/e"]
        assert back.primary_outputs == ["y/**/z"]
        pats = np.random.default_rng(5).random((8, 2)) < 0.5
        assert np.array_equal(back.simulate(pats), nl.simulate(pats))

    def test_digit_leading_and_bus_names(self, lib):
        from repro.netlist import Netlist
        nl = Netlist("top", lib)
        a = nl.add_input("1badname")
        b = nl.add_input("bus[3]")
        nl.add_gate("NOR2_X1_rvt", [a, b], "out.net")
        nl.add_output("out.net")
        text = write_verilog(nl)
        assert "\\1badname " in text
        assert "\\bus[3] " in text
        back = read_verilog(text, lib)
        back.validate()
        assert back.primary_inputs == ["1badname", "bus[3]"]
        assert back.primary_outputs == ["out.net"]

    def test_packed_writer_byte_identical(self, lib):
        # The packed-form writer must emit exactly the object-form
        # text, including for designs that need escaping.
        from repro.netlist import Netlist
        nl = Netlist("top", lib)
        a = nl.add_input("wire")
        b = nl.add_input("b//c")
        nl.add_gate("NAND2_X1_rvt", [a, b], "mid$1")
        nl.add_gate("INV_X1_rvt", ["mid$1"], "module")
        nl.add_output("module")
        assert write_verilog(nl.to_packed()) == write_verilog(nl)


class TestBlif:
    def _xor_network(self):
        net = LogicNetwork("xor2")
        net.add_input("a")
        net.add_input("b")
        net.add_node("y", [frozenset({("a", True), ("b", False)}),
                          frozenset({("a", False), ("b", True)})])
        net.set_output("y")
        return net

    def test_write_format(self):
        text = write_blif(self._xor_network())
        assert ".model xor2" in text
        assert ".inputs a b" in text
        assert ".outputs y" in text
        assert ".names a b y" in text
        assert ".end" in text

    def test_roundtrip_semantics(self):
        net = self._xor_network()
        back = read_blif(write_blif(net))
        a1 = net.to_aig().simulate_all()
        a2 = back.to_aig().simulate_all()
        assert np.array_equal(a1, a2)

    def test_roundtrip_random_network(self):
        net = LogicNetwork.from_aig(random_aig(6, 80, 4, seed=5))
        back = read_blif(write_blif(net))
        assert np.array_equal(back.to_aig().simulate_all(),
                              net.to_aig().simulate_all())

    def test_roundtrip_after_optimization(self):
        net = LogicNetwork.from_aig(random_aig(6, 60, 3, seed=6))
        net.optimize("high")
        back = read_blif(write_blif(net))
        assert np.array_equal(back.to_aig().simulate_all(),
                              net.to_aig().simulate_all())

    def test_type_check(self):
        with pytest.raises(TypeError):
            write_blif("not a network")

    def test_bad_cover_value_rejected(self):
        text = (".model t\n.inputs a\n.outputs y\n"
                ".names a y\n1 0\n.end\n")
        with pytest.raises(ValueError, match="on-set"):
            read_blif(text)

    def test_unsupported_construct_rejected(self):
        text = ".model t\n.inputs a\n.outputs y\n.latch a y\n.end\n"
        with pytest.raises(ValueError, match="latch"):
            read_blif(text)

    def test_comments_and_continuations(self):
        text = (".model t  # comment\n.inputs a \\\nb\n.outputs y\n"
                ".names a b y\n11 1\n.end\n")
        net = read_blif(text)
        assert net.inputs == ["a", "b"]
        aig = net.to_aig()
        out = aig.simulate_all()[:, 0]
        assert list(out) == [False, False, False, True]
