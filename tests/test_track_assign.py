"""Tests for detailed track assignment and the routing->litho bridge."""

import pytest

from repro.netlist import build_library, logic_cloud
from repro.place import global_place
from repro.route import RoutingGrid, route_placement
from repro.route.global_route import RoutingResult
from repro.route.track_assign import (
    TrackAssignment,
    assign_tracks,
    decompose_routed_layer,
)
from repro.tech import get_node


def _routed(node_name="28nm", seed=1):
    node = get_node(node_name)
    lib = build_library(node)
    nl = logic_cloud(16, 16, 300, lib, seed=seed, locality=0.9)
    placement = global_place(nl, seed=0, utilization=0.35)
    return node, route_placement(placement, gcell_um=2.0)


def _manual_result(usage_pattern):
    grid = RoutingGrid(6, 4, h_capacity=8, v_capacity=8)
    for y, row in enumerate(usage_pattern):
        for x, u in enumerate(row):
            grid.h_usage[y, x] = u
    return RoutingResult(grid=grid, paths={}, failed=[], wirelength=0,
                         overflow=0, iterations=1, runtime_s=0.0,
                         engine="maze")


class TestAssignTracks:
    def test_no_same_track_overlap(self):
        result = _manual_result([[2, 2, 2, 0, 1], [0] * 5, [0] * 5,
                                 [0] * 5])
        assignment = assign_tracks(result, layers=2,
                                   tracks_per_gcell=4)
        for wires in assignment.layer_wires.values():
            by_track = {}
            for w in wires:
                by_track.setdefault(w.track, []).append(w)
            for track_wires in by_track.values():
                track_wires.sort(key=lambda w: w.start)
                for a, b in zip(track_wires, track_wires[1:]):
                    assert a.end <= b.start + 1e-9

    def test_stacked_usage_becomes_parallel_wires(self):
        result = _manual_result([[3, 3, 3, 0, 0], [0] * 5, [0] * 5,
                                 [0] * 5])
        assignment = assign_tracks(result, layers=2,
                                   tracks_per_gcell=4)
        assert assignment.total_wires() == 3
        assert assignment.failed == 0

    def test_overflow_counted_when_tracks_exhausted(self):
        result = _manual_result([[5, 5, 5, 5, 5], [0] * 5, [0] * 5,
                                 [0] * 5])
        assignment = assign_tracks(result, layers=2,
                                   tracks_per_gcell=2)
        assert assignment.failed > 0

    def test_default_tracks_match_grid_capacity(self):
        node, result = _routed()
        assignment = assign_tracks(result)
        assert assignment.failed == 0

    def test_layers_alternate(self):
        result = _manual_result([[2, 2, 0, 0, 0], [0] * 5, [0] * 5,
                                 [0] * 5])
        assignment = assign_tracks(result, layers=6,
                                   tracks_per_gcell=4)
        # H layers are metal 2, 4, 6.
        assert set(assignment.layer_wires) <= {2, 4, 6}


class TestRoutedDecomposition:
    def test_28nm_single_patterning(self):
        node, result = _routed("28nm")
        stats = decompose_routed_layer(result, node=node)
        assert stats["k"] == 1
        assert stats["success"]
        assert stats["conflict_edges"] == 0

    def test_20nm_double_patterning_decomposes(self):
        node, result = _routed("20nm")
        stats = decompose_routed_layer(result, node=node)
        assert stats["k"] == 2
        assert stats["conflict_edges"] > 0
        assert stats["success"]

    def test_node_required(self):
        _, result = _routed()
        with pytest.raises(ValueError, match="node"):
            decompose_routed_layer(result)
