"""Full-stack integration: every subsystem on one design, one flow.

The closest thing to a tapeout dry-run the suite has: synthesize,
place, insert scan layout-aware, synthesize the clock, route, check
multi-corner timing, verify equivalence against a reference mapping,
run BIST, decompose the routed metal, and price the die.
"""

import numpy as np
import pytest

from repro.core import FlowOptions, implement, signoff
from repro.dft.bist import run_bist
from repro.learn import RunDatabase
from repro.mfg import die_cost
from repro.netlist import build_library, registered_cloud
from repro.route.track_assign import decompose_routed_layer
from repro.tech import get_node


@pytest.fixture(scope="module")
def full_run():
    node = get_node("28nm")
    lib = build_library(node, vt_flavors=("lvt", "rvt", "hvt"))
    design = registered_cloud(12, 32, 400, lib, seed=77)
    db = RunDatabase()
    options = FlowOptions.advanced()
    options.scan = True
    options.cts = True
    result = implement(design, lib, options, run_db=db)
    return node, lib, result, db


class TestFullStack:
    def test_flow_completes_with_all_stages(self, full_run):
        _, _, result, _ = full_run
        assert result.instances > 400  # scan + design
        assert result.routed_wirelength > 0
        assert all(t >= 0 for t in result.stage_runtimes.values())

    def test_scan_inserted_and_functional(self, full_run):
        _, _, result, _ = full_run
        nl = result.netlist
        assert all(g.cell.is_scan for g in nl.sequential_gates())
        assert "scan_en" in nl.primary_inputs
        # Shift works.
        state = np.zeros((1, len(nl.sequential_gates())), dtype=bool)
        vec = np.zeros((1, len(nl.primary_inputs)), dtype=bool)
        vec[0, nl.primary_inputs.index("scan_en")] = True
        vec[0, nl.primary_inputs.index("scan_in0")] = True
        assert nl.next_state(vec, state).sum() == 1

    def test_clock_tree_built_and_bounded(self, full_run):
        _, _, result, _ = full_run
        assert result.clock_tree is not None
        assert result.clock_skew_ps < 5.0  # small die, small skew
        flops = {g.name for g in result.netlist.sequential_gates()}
        assert set(result.clock_tree.sink_delays) == flops

    def test_multi_corner_signoff_runs(self, full_run):
        _, _, result, _ = full_run
        report = signoff(result.netlist,
                         clock_period_ps=result.delay_ps * 2.0)
        assert len(report.corners) == 9
        assert report.clean

    def test_bist_on_the_implemented_design(self, full_run):
        _, _, result, _ = full_run
        bist = run_bist(result.netlist, patterns=48)
        assert bist.coverage > 0.3
        assert bist.golden_signature != 0

    def test_routed_metal_decomposes(self, full_run):
        node, _, result, _ = full_run
        stats = decompose_routed_layer(result.routing, node=node)
        assert stats["success"]

    def test_die_priced(self, full_run):
        node, _, result, _ = full_run
        area_mm2 = max(result.area_um2 * 1e-6 / 0.6, 0.01)
        cost = die_cost(node, area_mm2, volume=1_000_000)
        assert cost.total_usd > 0

    def test_self_monitoring_logged(self, full_run):
        _, _, result, db = full_run
        assert len(db) == 1
        assert db.records[0].qor["hpwl_um"] == pytest.approx(
            result.hpwl_um)
