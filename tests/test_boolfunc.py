"""Tests for truth tables, cubes, and covers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.boolfunc import (
    TruthTable,
    tt_and2,
    tt_nand2,
    tt_nor2,
    tt_or2,
    tt_xor2,
)
from repro.netlist.cubes import (
    ABSENT,
    Cover,
    Cube,
    cover_covers_cube,
)


def random_tt(draw, nvars):
    bits = draw(st.integers(min_value=0, max_value=(1 << (1 << nvars)) - 1))
    return TruthTable(nvars, bits)


tts = st.integers(min_value=2, max_value=4).flatmap(
    lambda n: st.builds(
        TruthTable,
        st.just(n),
        st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
    )
)


class TestTruthTable:
    def test_const(self):
        assert TruthTable.const(True, 3).is_tautology()
        assert TruthTable.const(False, 3).is_contradiction()

    def test_var_projection(self):
        a = TruthTable.var(0, 3)
        for m in range(8):
            assert a.evaluate(m) == bool(m & 1)

    def test_basic_gates(self):
        assert tt_and2().minterms() == [3]
        assert tt_or2().minterms() == [1, 2, 3]
        assert tt_xor2().minterms() == [1, 2]
        assert (~tt_and2()).bits == tt_nand2().bits
        assert (~tt_or2()).bits == tt_nor2().bits

    def test_operators_match_semantics(self):
        a = TruthTable.var(0, 2)
        b = TruthTable.var(1, 2)
        assert (a & b).bits == tt_and2().bits
        assert (a | b).bits == tt_or2().bits
        assert (a ^ b).bits == tt_xor2().bits

    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            TruthTable.var(0, 2) & TruthTable.var(0, 3)

    def test_from_string_roundtrip(self):
        s = "0111"
        assert TruthTable.from_string(s).to_binary_string() == s

    def test_from_string_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            TruthTable.from_string("011")

    def test_from_minterms_bounds(self):
        with pytest.raises(ValueError):
            TruthTable.from_minterms([4], 2)

    def test_cofactor_and_support(self):
        f = tt_and2()
        # Cofactor keeps arity: f(a=1) = b, true wherever bit b is set.
        assert f.cofactor(0, True).minterms() == [2, 3]
        assert f.cofactor(0, False).is_contradiction()
        assert f.support() == [0, 1]
        g = TruthTable.var(0, 3)
        assert g.support() == [0]

    def test_expand_vars(self):
        a = TruthTable.var(0, 1)
        wide = a.expand_vars(3, mapping=[2])
        assert wide.bits == TruthTable.var(2, 3).bits

    def test_expand_vars_rejects_shrink(self):
        with pytest.raises(ValueError):
            tt_and2().expand_vars(1)

    def test_var_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.var(2, 2)

    @given(tts)
    @settings(max_examples=60)
    def test_double_negation(self, f):
        assert (~~f).bits == f.bits

    @given(tts)
    @settings(max_examples=60)
    def test_excluded_middle(self, f):
        assert (f | ~f).is_tautology()
        assert (f & ~f).is_contradiction()

    @given(tts)
    @settings(max_examples=60)
    def test_shannon_expansion(self, f):
        # f = x*f_x + x'*f_x'
        x = TruthTable.var(0, f.nvars)
        rebuilt = (x & f.cofactor(0, True)) | (~x & f.cofactor(0, False))
        assert rebuilt.bits == f.bits

    @given(tts)
    @settings(max_examples=60)
    def test_minterm_count_consistency(self, f):
        assert len(f.minterms()) == f.count_ones()


class TestCube:
    def test_universe_covers_everything(self):
        u = Cube.universe(3)
        assert all(u.contains_minterm(m) for m in range(8))
        assert u.literal_count() == 0

    def test_from_minterm(self):
        c = Cube.from_minterm(5, 3)
        assert c.literals == (1, 0, 1)
        assert c.minterms() == [5]

    def test_containment(self):
        big = Cube((1, ABSENT, ABSENT))
        small = Cube((1, 0, ABSENT))
        assert big.covers(small)
        assert not small.covers(big)

    def test_intersection(self):
        a = Cube((1, ABSENT))
        b = Cube((ABSENT, 0))
        assert a.intersect(b).literals == (1, 0)
        assert a.intersect(Cube((0, ABSENT))) is None

    def test_distance_and_consensus(self):
        a = Cube((1, 1, ABSENT))
        b = Cube((0, 1, ABSENT))
        assert a.distance(b) == 1
        cons = a.consensus(b)
        assert cons.literals == (ABSENT, 1, ABSENT)
        # Distance 2: no consensus.
        c = Cube((0, 0, ABSENT))
        assert a.consensus(c) is None

    def test_consensus_is_implied(self):
        # The consensus of two cubes is covered by their union.
        a = Cube((1, 1))
        b = Cube((0, 1))
        cons = a.consensus(b)
        cover = Cover([a, b], 2)
        assert all(cover.evaluate(m) for m in cons.minterms())

    def test_bad_literals_rejected(self):
        with pytest.raises(ValueError):
            Cube((3, 1))

    def test_minterms_enumeration(self):
        c = Cube((ABSENT, 1, ABSENT))
        assert c.minterms() == [2, 3, 6, 7]


class TestCover:
    def test_from_truth_table_roundtrip(self):
        f = tt_xor2()
        cov = Cover.from_truth_table(f)
        assert cov.to_truth_table().bits == f.bits

    def test_literal_and_cube_count(self):
        cov = Cover([Cube((1, 1)), Cube((0, ABSENT))], 2)
        assert cov.cube_count() == 2
        assert cov.literal_count() == 3

    def test_deduplicate_removes_contained(self):
        big = Cube((1, ABSENT))
        small = Cube((1, 0))
        cov = Cover([big, small, big], 2).deduplicate()
        assert cov.cube_count() == 1
        assert cov.cubes[0] == big

    def test_tautology_detection(self):
        assert Cover([Cube((1,)), Cube((0,))], 1).is_tautology()
        assert not Cover([Cube((1,))], 1).is_tautology()
        assert Cover([Cube.universe(3)], 3).is_tautology()
        assert not Cover.empty(2).is_tautology()

    def test_tautology_binate_split(self):
        # x*y + x*y' + x'  is a tautology needing a binate split.
        cov = Cover([Cube((1, 1)), Cube((1, 0)), Cube((0, ABSENT))], 2)
        assert cov.is_tautology()

    def test_cover_covers_cube(self):
        # x + x'y covers the cube y (since x + x'y = x + y).
        cov = Cover([Cube((1, ABSENT)), Cube((0, 1))], 2)
        assert cover_covers_cube(cov, Cube((ABSENT, 1)))
        assert not cover_covers_cube(cov, Cube((ABSENT, 0)))

    def test_add_without(self):
        cov = Cover.empty(2).add(Cube((1, 1)))
        assert cov.cube_count() == 1
        assert cov.without(0).cube_count() == 0

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            Cover([Cube((1, 1, 1))], 2)
        with pytest.raises(ValueError):
            Cover.empty(2).add(Cube((1,)))

    @given(tts)
    @settings(max_examples=40)
    def test_minterm_cover_equivalence(self, f):
        assert Cover.from_truth_table(f).to_truth_table().bits == f.bits
