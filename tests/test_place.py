"""Tests for placement: global, detailed, buffering, flat-vs-hier."""

import numpy as np
import pytest

from repro.netlist import (
    build_library,
    hierarchical_soc,
    logic_cloud,
)
from repro.place import (
    Placement,
    buffer_long_nets,
    detailed_place,
    estimate_buffers,
    global_place,
)
from repro.place.buffering import optimal_buffer_segment_um
from repro.place.flows import flat_vs_hierarchical
from repro.place.placement import die_for_netlist
from repro.tech import get_node


@pytest.fixture(scope="module")
def lib():
    return build_library(get_node("28nm"))


@pytest.fixture(scope="module")
def cloud(lib):
    return logic_cloud(16, 16, 400, lib, seed=1, locality=0.9)


class TestGlobalPlace:
    def test_all_cells_placed_and_legal(self, cloud):
        pl = global_place(cloud, seed=0)
        pl.validate()
        assert len(pl.positions) == cloud.num_instances()

    def test_row_alignment(self, cloud):
        pl = global_place(cloud, seed=0)
        ys = {round(y / pl.row_height_um - 0.5, 6) % 1
              for _, y in pl.positions.values()}
        assert all(abs(v) < 1e-3 or abs(v - 1) < 1e-3 for v in ys)

    def test_connected_cells_near_each_other(self, lib):
        # Two cliques joined by one net should separate spatially.
        nl = logic_cloud(8, 8, 200, lib, seed=3, locality=0.95)
        pl = global_place(nl, seed=0)
        # Average net HPWL must be far below die diagonal.
        lengths = [v for v in pl.net_lengths().values() if v > 0]
        assert np.mean(lengths) < 0.5 * (pl.die_w_um + pl.die_h_um)

    def test_determinism(self, cloud):
        a = global_place(cloud, seed=5)
        b = global_place(cloud, seed=5)
        assert a.positions == b.positions

    def test_empty_netlist_rejected(self, lib):
        from repro.netlist import Netlist
        nl = Netlist("empty", lib)
        with pytest.raises(ValueError):
            global_place(nl)

    def test_die_sizing(self, cloud):
        w, h = die_for_netlist(cloud, utilization=0.5)
        assert w * h == pytest.approx(cloud.area_um2() / 0.5, rel=0.01)
        with pytest.raises(ValueError):
            die_for_netlist(cloud, utilization=0.0)

    def test_density_spread(self, cloud):
        pl = global_place(cloud, seed=0, utilization=0.5,
                          spreading_passes=4)
        density = pl.density_map(6)
        occupied = density[density > 0]
        # No bin should be catastrophically denser than the mean.
        assert occupied.max() < 6 * occupied.mean()


class TestMetrics:
    def test_hpwl_positive_and_stable(self, cloud):
        pl = global_place(cloud, seed=0)
        total = pl.total_hpwl()
        assert total > 0
        assert total == pytest.approx(pl.total_hpwl())

    def test_hpwl_of_two_pin_net(self, lib):
        from repro.netlist import Netlist
        nl = Netlist("t", lib)
        a = nl.add_input("a")
        nl.add_gate("INV_X1_rvt", [a], "y")
        nl.add_output("y")
        pl = Placement(nl, 10, 10,
                       positions={next(iter(nl.gates)): (2.0, 3.0)},
                       pad_positions={"a": (0.0, 0.0), "y": (9.0, 3.0)})
        assert pl.net_hpwl("a") == pytest.approx(5.0)

    def test_congestion_map_shape(self, cloud):
        pl = global_place(cloud, seed=0)
        cmap = pl.congestion_map(8)
        assert cmap.shape == (8, 8)
        assert pl.peak_congestion(8) == pytest.approx(cmap.max())


class TestDetailedPlace:
    def test_improves_hpwl(self, cloud):
        pl = global_place(cloud, seed=0)
        before = pl.total_hpwl()
        gain = detailed_place(pl, passes=2, seed=0)
        after = pl.total_hpwl()
        assert gain >= 0
        assert after == pytest.approx(before - gain, rel=0.01)

    def test_keeps_legality(self, cloud):
        pl = global_place(cloud, seed=0)
        detailed_place(pl, passes=1, seed=0)
        pl.validate()


class TestBuffering:
    def test_optimal_segment_scales_with_node(self):
        seg28 = optimal_buffer_segment_um(get_node("28nm"))
        seg180 = optimal_buffer_segment_um(get_node("180nm"))
        assert seg28 > 0 and seg180 > 0
        # Wires get worse per um at small nodes: shorter segments.
        assert seg28 < seg180

    def test_estimate_counts_long_nets(self, cloud):
        pl = global_place(cloud, seed=0)
        report = estimate_buffers(pl, segment_um=1.0)
        assert report.buffers_added > 0
        none = estimate_buffers(pl, segment_um=1e9)
        assert none.buffers_added == 0

    def test_bad_segment_rejected(self, cloud):
        pl = global_place(cloud, seed=0)
        with pytest.raises(ValueError):
            estimate_buffers(pl, segment_um=0.0)

    def test_insertion_adds_gates_and_places_them(self, lib):
        nl = logic_cloud(8, 8, 100, lib, seed=7)
        pl = global_place(nl, seed=0)
        before = nl.num_instances()
        report = buffer_long_nets(pl, segment_um=1.0)
        assert nl.num_instances() == before + report.buffers_added
        for name in nl.gates:
            assert name in pl.positions
        nl.validate()


class TestFlatVsHierarchical:
    def test_flat_beats_hierarchical(self, lib):
        soc = hierarchical_soc(4, 120, lib, seed=5)
        res = flat_vs_hierarchical(soc, seed=0)
        flat, hier = res["flat"], res["hierarchical"]
        assert flat.instances < hier.instances
        assert flat.area_um2 < hier.area_um2
        assert flat.power_uw < hier.power_uw
        # The delta is exactly the boundary buffers.
        assert hier.buffers - flat.buffers == soc.boundary_port_count()

    def test_summaries(self, lib):
        soc = hierarchical_soc(2, 60, lib, seed=6)
        res = flat_vs_hierarchical(soc, seed=0)
        assert "flat" in res["flat"].summary()
        assert "hier" in res["hierarchical"].summary()
