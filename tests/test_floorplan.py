"""Tests for slicing floorplans, power-grid synthesis, and retrofit."""

import random

import pytest

from repro.floorplan import (
    Block,
    SlicingTree,
    anneal_floorplan,
    retrofit_floorplan,
    synthesize_power_grid,
)
from repro.floorplan.pgrid import grid_from_spec
import numpy as np


def blocks(n=5, base=100.0):
    return [Block(f"b{i}", base * (1 + 0.3 * i)) for i in range(n)]


class TestBlock:
    def test_validation(self):
        with pytest.raises(ValueError):
            Block("x", -1.0)
        with pytest.raises(ValueError):
            Block("x", 1.0, min_aspect=2.0, max_aspect=1.0)

    def test_shapes_cover_aspect_range(self):
        b = Block("x", 100.0, min_aspect=0.5, max_aspect=2.0)
        shapes = b.shapes()
        for w, h in shapes:
            assert w * h == pytest.approx(100.0)
            assert 0.49 <= w / h <= 2.01


class TestSlicingTree:
    def test_default_expression_valid(self):
        tree = SlicingTree(blocks(4))
        fp = tree.realize()
        assert len(fp.positions) == 4

    def test_malformed_expression_rejected(self):
        bs = blocks(2)
        with pytest.raises(ValueError):
            SlicingTree(bs, ["b0", "H", "b1"])
        with pytest.raises(ValueError):
            SlicingTree(bs, ["b0", "b1"])
        with pytest.raises(ValueError):
            SlicingTree(bs, ["b0", "ghost", "V"])

    def test_realization_no_overlaps(self):
        tree = SlicingTree(blocks(6))
        fp = tree.realize()
        assert fp.overlaps() == []

    def test_realization_covers_all_area(self):
        bs = blocks(5)
        fp = SlicingTree(bs).realize()
        assert fp.block_area() == pytest.approx(sum(b.area for b in bs),
                                                rel=0.01)
        assert fp.area >= fp.block_area()

    def test_blocks_inside_die(self):
        fp = SlicingTree(blocks(7)).realize()
        for x, y, w, h in fp.positions.values():
            assert x >= -1e-9 and y >= -1e-9
            assert x + w <= fp.width + 1e-6
            assert y + h <= fp.height + 1e-6

    def test_perturb_keeps_validity(self):
        tree = SlicingTree(blocks(5))
        rng = random.Random(0)
        for _ in range(50):
            tree = tree.perturb(rng)
            fp = tree.realize()
            assert fp.overlaps() == []
            assert len(fp.positions) == 5

    def test_needs_two_blocks(self):
        with pytest.raises(ValueError):
            SlicingTree(blocks(1))


class TestAnnealing:
    def test_anneal_improves_over_initial(self):
        bs = blocks(8)
        initial = SlicingTree(bs).realize()
        _, best = anneal_floorplan(bs, seed=0, iterations=800)
        assert best.area <= initial.area * 1.05

    def test_anneal_reasonable_whitespace(self):
        _, fp = anneal_floorplan(blocks(8), seed=1, iterations=1500)
        assert fp.whitespace_fraction < 0.25

    def test_anneal_controls_aspect(self):
        _, fp = anneal_floorplan(blocks(8), seed=2, iterations=1500)
        aspect = max(fp.width, fp.height) / min(fp.width, fp.height)
        assert aspect < 3.0

    def test_wirelength_cost_pulls_connected_blocks_together(self):
        bs = blocks(8, base=50)
        nets = [["b0", "b7"], ["b0", "b7"], ["b0", "b7"]]
        _, with_nets = anneal_floorplan(
            bs, nets, seed=3, iterations=1500, wirelength_weight=1.0)
        _, without = anneal_floorplan(bs, seed=3, iterations=1500)
        def dist(fp):
            (x0, y0), (x1, y1) = fp.center_of("b0"), fp.center_of("b7")
            return abs(x0 - x1) + abs(y0 - y1)
        assert dist(with_nets) <= dist(without) * 1.5

    def test_deterministic_given_seed(self):
        _, a = anneal_floorplan(blocks(6), seed=7, iterations=300)
        _, b = anneal_floorplan(blocks(6), seed=7, iterations=300)
        assert a.positions == b.positions


class TestPowerGridSynthesis:
    def test_spec_meets_utilization_cap(self):
        spec = synthesize_power_grid(
            1000, 1000, total_power_w=5, vdd=0.9)
        assert spec.metal_utilization <= 0.25
        assert spec.strap_width_um > 0

    def test_more_power_needs_more_metal(self):
        lo = synthesize_power_grid(1000, 1000, total_power_w=1, vdd=0.9)
        hi = synthesize_power_grid(1000, 1000, total_power_w=10, vdd=0.9)
        assert hi.metal_utilization >= lo.metal_utilization

    def test_impossible_budget_raises(self):
        with pytest.raises(ValueError):
            synthesize_power_grid(1000, 1000, total_power_w=2000,
                                  vdd=0.9, drop_budget_fraction=0.001)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            synthesize_power_grid(100, 100, total_power_w=0, vdd=1.0)

    def test_grid_from_spec_solves(self):
        spec = synthesize_power_grid(500, 500, total_power_w=2, vdd=0.9)
        pm = np.full((8, 8), 2e6 / 64)
        grid = grid_from_spec(spec, 500, 500, vdd=0.9, power_map_uw=pm)
        report = grid.solve()
        assert report.worst_drop_mv >= 0

    def test_summary(self):
        spec = synthesize_power_grid(500, 500, total_power_w=2, vdd=0.9)
        assert "straps" in spec.summary()


class TestRetrofit:
    def test_retrofit_reaches_clean_or_improves(self):
        bs = blocks(5, base=10000)  # ~100x100 um blocks
        power = {b.name: 0.4 + 0.2 * i for i, b in enumerate(bs)}
        result = retrofit_floorplan(bs, power, vdd=0.9, seed=0,
                                    max_passes=4)
        assert result.iterations >= 1
        assert result.history
        if not result.clean:
            assert result.history[-1] <= result.history[0]

    def test_retrofit_requires_power_for_all_blocks(self):
        bs = blocks(3)
        with pytest.raises(ValueError, match="without power"):
            retrofit_floorplan(bs, {"b0": 1.0}, seed=0)

    def test_retrofit_history_recorded(self):
        bs = blocks(4, base=5000)
        power = {b.name: 0.1 for b in bs}
        result = retrofit_floorplan(bs, power, seed=1, max_passes=3)
        assert len(result.history) >= 1
        assert result.improvement() >= 0.5
