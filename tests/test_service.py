"""Tests for repro.service: the multi-tenant flow job service.

Covers the shared-memory design transport (zero-copy framing, leak
registry and sweep), the sharded LRU job cache (eviction, corruption
quarantine, telemetry), tenancy (token buckets, quotas, backpressure
with honest ``retry_after``, fair queuing), the concurrent-writer
:class:`~repro.learn.rundb.RunLog`, and the scheduler itself —
including the acceptance centerpiece: SIGKILL a worker mid-job and
the job resumes on another worker with bit-identical QoR.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.core import FlowOptions
from repro.learn.rundb import RunDatabase, RunLog, ServiceRecord
from repro.netlist import build_library, registered_cloud
from repro.netlist.packed import PackedNetlist
from repro.orchestrate import run, run_sweep
from repro.orchestrate.cache import CorruptEntry, stable_hash
from repro.service import (DesignSegment, FairQueue, FlowService,
                           JobCancelled, JobFailed, QueueFull,
                           QuotaExceeded, RateLimited, SegmentError,
                           ShardedResultCache, TenantLedger,
                           TenantPolicy, TokenBucket, job_cache_key,
                           pack_design, service_sweep,
                           sweep_leaked_segments, unpack_design)
from repro.service import shm as shm_mod
from repro.tech import get_node


@pytest.fixture(scope="module")
def lib():
    return build_library(get_node("28nm"))


@pytest.fixture(scope="module")
def design(lib):
    return registered_cloud(6, 12, 60, lib, seed=3)


@pytest.fixture(scope="module")
def design2(lib):
    return registered_cloud(6, 12, 80, lib, seed=4)


@pytest.fixture(autouse=True)
def _isolated_registry(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SHM_REGISTRY",
                       str(tmp_path / "shm-registry"))


def _qor(result):
    return (result.delay_ps, result.power_uw, result.hpwl_um,
            result.routed_wirelength, result.overflow,
            result.instances, result.area_um2)


# ----------------------------------------------------------------------
# Shared-memory transport


class TestDesignTransport:
    def test_pack_unpack_roundtrip(self, design, lib):
        subject, library = unpack_design(pack_design(design, lib))
        assert library is not lib            # a fresh unpickle
        assert subject.to_packed().content_digest() == \
            design.to_packed().content_digest()

    def test_pack_is_raw_pnl(self, design, lib):
        # The frame body must be the uncompressed layout a worker can
        # map in place; a compressed body would force a copy.
        frame = pack_design(design, lib)
        raw = design.to_packed().to_bytes(compress=False,
                                          shuffle=False)
        assert raw in frame

    def test_pickle_fallback_for_non_netlist(self, lib):
        frame = pack_design({"rtl": "adder"}, lib)
        subject, library = unpack_design(frame)
        assert subject == {"rtl": "adder"}

    def test_unpack_rejects_garbage(self):
        with pytest.raises(SegmentError):
            unpack_design(b"not a frame at all")
        with pytest.raises(SegmentError):
            unpack_design(b"RSH1")              # truncated header

    def test_segment_roundtrip(self, design, lib):
        seg = DesignSegment.create_design(design, lib)
        try:
            reader = DesignSegment.attach(seg.name, seg.size)
            subject, _ = reader.read_design()
            assert subject.to_packed().content_digest() == \
                design.to_packed().content_digest()
            reader.close()
        finally:
            seg.unlink()

    def test_attach_vanished_raises(self):
        with pytest.raises(SegmentError):
            DesignSegment.attach("rpnl_0_doesnotexist", 16)

    def test_unlink_idempotent(self, design, lib):
        seg = DesignSegment.create_design(design, lib)
        seg.unlink()
        seg.unlink()                            # second time is a no-op

    def test_from_buffer_is_zero_copy(self, design):
        raw = design.to_packed().to_bytes(compress=False,
                                          shuffle=False)
        packed = PackedNetlist.from_buffer(memoryview(raw))
        # Arrays must view the buffer, not copy it.
        assert packed.pin_net.base is not None


class TestLeakRegistry:
    def test_registry_lists_live_segments(self, design, lib):
        seg = DesignSegment.create_design(design, lib)
        reg = shm_mod.registry_dir() / f"{os.getpid()}.json"
        assert seg.name in json.loads(reg.read_text())
        seg.unlink()
        assert not reg.exists() or \
            seg.name not in json.loads(reg.read_text())

    def test_sweep_ignores_live_owners(self, design, lib):
        seg = DesignSegment.create_design(design, lib)
        try:
            assert sweep_leaked_segments() == 0
            DesignSegment.attach(seg.name, seg.size).close()
        finally:
            seg.unlink()

    def test_sweep_reclaims_dead_owner(self, design, lib):
        # A child creates a segment and dies without unlinking (the
        # SIGKILL shape); the parent's sweep must reclaim it.
        def child(conn):
            seg = DesignSegment.create_design(design, lib)
            conn.send((seg.name, seg.size))
            os._exit(0)              # skips atexit, like a SIGKILL

        parent, remote = multiprocessing.Pipe()
        proc = multiprocessing.Process(target=child, args=(remote,))
        proc.start()
        name, size = parent.recv()
        proc.join()
        assert sweep_leaked_segments() >= 1
        with pytest.raises(SegmentError):
            DesignSegment.attach(name, size)


# ----------------------------------------------------------------------
# Sharded job cache


class TestShardedCache:
    def test_roundtrip_and_telemetry(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c", shards=4)
        key = stable_hash({"job": 1})
        assert cache.get_bytes(key) is None
        cache.put_bytes(key, b"payload")
        assert cache.get_bytes(key) == b"payload"
        tele = cache.telemetry()
        assert tele["hits"] == 1 and tele["misses"] == 1
        assert tele["puts"] == 1
        assert 0.0 < tele["hit_rate"] < 1.0
        assert len(tele["per_shard"]) == 4

    def test_value_api_returns_fresh_copies(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c", shards=2)
        value = {"metrics": [1, 2, 3]}
        cache.put("k" * 16, value)
        hit, out = cache.get("k" * 16)
        assert hit and out == value and out is not value

    def test_keys_spread_over_shards(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c", shards=4)
        for i in range(32):
            cache.put_bytes(stable_hash({"i": i}), b"x" * 10)
        used = sum(1 for s in cache._shards
                   if list(s.dir.glob("*.blob")))
        assert used >= 3             # hash spread, not one hot shard

    def test_lru_eviction_under_budget(self, tmp_path):
        blob = b"z" * 512
        cache = ShardedResultCache(tmp_path / "c", shards=1,
                                   max_bytes=4 * 1024)
        keys = [stable_hash({"i": i}) for i in range(16)]
        for i, key in enumerate(keys):
            cache.put_bytes(key, blob)
            if i == 3:
                time.sleep(0.01)
                # A hit refreshes recency: key 0 must survive.
                assert cache.get_bytes(keys[0]) == blob
        tele = cache.telemetry()
        assert tele["evictions"] > 0
        assert tele["bytes_stored"] <= 4 * 1024
        assert cache.get_bytes(keys[-1]) == blob   # newest survives

    def test_corruption_quarantines_not_crashes(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "c", shards=1)
        key = stable_hash({"x": 1})
        cache.put_bytes(key, b"good")
        path = cache.entry_path(key)
        path.write_bytes(b"\x00" * 32)
        assert cache.get_bytes(key) is None
        assert cache.telemetry()["corrupt"] == 1
        assert (path.parent / "quarantine" / path.name).exists()

    def test_shared_dir_cross_instance(self, tmp_path):
        # Two instances (two processes in real life) share entries.
        a = ShardedResultCache(tmp_path / "c", shards=2)
        b = ShardedResultCache(tmp_path / "c", shards=2)
        a.put_bytes(stable_hash({"k": 1}), b"from-a")
        assert b.get_bytes(stable_hash({"k": 1})) == b"from-a"


# ----------------------------------------------------------------------
# Tenancy


class TestTokenBucket:
    def test_burst_then_drain(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3,
                             clock=lambda: now[0])
        assert [bucket.try_take() for _ in range(3)] == [None] * 3
        wait = bucket.try_take()
        assert wait == pytest.approx(0.5)
        now[0] += wait               # honour the hint exactly
        assert bucket.try_take() is None
        now[0] += 10.0               # refills cap at the burst
        assert [bucket.try_take() for _ in range(3)] == [None] * 3
        assert bucket.try_take() is not None


class TestTenantLedger:
    def test_rate_limit_carries_retry_after(self):
        now = [0.0]
        ledger = TenantLedger(
            {"t": TenantPolicy(rate=1.0, burst=1)},
            clock=lambda: now[0])
        ledger.admit("t")
        with pytest.raises(RateLimited) as exc:
            ledger.admit("t")
        assert exc.value.retry_after == pytest.approx(1.0)
        now[0] += exc.value.retry_after
        ledger.admit("t")            # the hint was honest

    def test_lifetime_quota_exhausts_mid_stream(self):
        ledger = TenantLedger({"t": TenantPolicy(quota=2)})
        ledger.admit("t")
        ledger.admit("t")
        with pytest.raises(QuotaExceeded) as exc:
            ledger.admit("t")
        assert exc.value.retry_after is None   # waiting cannot help
        assert ledger.account("t").rejected == 1

    def test_max_active_frees_as_jobs_finish(self):
        ledger = TenantLedger({"t": TenantPolicy(max_active=1)})
        acct = ledger.admit("t")
        with pytest.raises(QuotaExceeded) as exc:
            ledger.admit("t")
        assert exc.value.retry_after is not None
        acct.queued -= 1             # the job completed
        acct.completed += 1
        ledger.admit("t")

    def test_global_backpressure(self):
        ledger = TenantLedger(max_queued_total=2)
        ledger.admit("a")
        ledger.admit("b")
        with pytest.raises(QueueFull) as exc:
            ledger.admit("c")
        assert exc.value.retry_after is not None

    def test_isolated_tenants(self):
        ledger = TenantLedger({"slow": TenantPolicy(rate=0.001,
                                                    burst=1)})
        ledger.admit("slow")
        with pytest.raises(RateLimited):
            ledger.admit("slow")
        for _ in range(5):           # others are unaffected
            ledger.admit("fast")


class TestFairQueue:
    def test_round_robin_across_tenants(self):
        q = FairQueue()
        for i in range(3):
            q.push("flood", f"f{i}")
        q.push("tiny", "t0")
        order = [q.pop() for _ in range(4)]
        tenants = [t for t, _ in order]
        # The single-job tenant is served before the flood drains.
        assert tenants.index("tiny") <= 1
        assert len(q) == 0 and q.pop() is None

    def test_push_front_jumps_the_line(self):
        q = FairQueue()
        q.push("a", "a0")
        q.push("b", "b0")
        q.push_front("b", "recovered")
        tenant, item = q.pop()
        assert (tenant, item) == ("b", "recovered")

    def test_remove_for_cancel(self):
        q = FairQueue()
        q.push("a", "a0")
        q.push("a", "a1")
        assert q.remove("a", lambda x: x == "a0")
        assert not q.remove("a", lambda x: x == "zz")
        assert q.pop() == ("a", "a1")


# ----------------------------------------------------------------------
# Concurrent run log


def _log_writer(path, wid, count):
    log = RunLog(path)
    for i in range(count):
        log.append("service", {
            "job_id": f"w{wid}-{i}", "tenant": f"t{wid}",
            "design": "d", "state": "done"})
    log.close()


class TestRunLog:
    def test_concurrent_writers_lose_nothing(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        writers, per = 8, 50
        procs = [multiprocessing.Process(
            target=_log_writer, args=(path, wid, per))
            for wid in range(writers)]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        entries = RunLog(path).entries()
        assert len(entries) == writers * per
        ids = {e["job_id"] for e in entries}
        assert len(ids) == writers * per        # no torn/merged lines

    def test_from_log_folds_and_profiles(self, tmp_path):
        log = RunLog(tmp_path / "runs.jsonl")
        log.append("service", {"job_id": "j1", "tenant": "a",
                               "design": "d", "state": "done",
                               "exec_s": 1.0, "cache": "job-hit"})
        log.append("service", {"job_id": "j2", "tenant": "a",
                               "design": "d", "state": "failed"})
        log.append("telemetry", {"design": "d", "stage": "place",
                                 "wall_s": 0.5})
        db = RunDatabase.from_log(log)
        assert len(db.service) == 2 and len(db.telemetry) == 1
        profile = db.service_profile()
        assert profile["a"]["jobs"] == 2
        assert profile["a"]["cache_hits"] == 1
        assert profile["a"]["failed"] == 1

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        log = RunLog(tmp_path / "runs.jsonl")
        log.append("service", {"job_id": "j1", "tenant": "a",
                               "design": "d", "state": "done"})
        with open(log.path, "ab") as fh:
            fh.write(b'{"kind": "service", "job_id"')   # writer died
        assert len(log.entries()) == 1

    def test_unknown_kind_rejected_on_write(self, tmp_path):
        log = RunLog(tmp_path / "runs.jsonl")
        with pytest.raises(ValueError):
            log.append("nonsense", {})

    def test_service_record_roundtrip_via_save(self, tmp_path):
        db = RunDatabase()
        db.log_service(ServiceRecord(job_id="j", tenant="t",
                                     design="d", state="done"))
        db.save(tmp_path / "db.json")
        again = RunDatabase.load(tmp_path / "db.json")
        assert again.service[0].job_id == "j"


# ----------------------------------------------------------------------
# The service


@pytest.fixture
def service(tmp_path):
    svc = FlowService(workers=2, cache_root=tmp_path / "cache",
                      journal_root=tmp_path / "journals",
                      rundb_log=tmp_path / "runs.jsonl")
    yield svc
    svc.close(drain=False)


class TestFlowService:
    def test_submit_result_matches_direct_run(self, service, design,
                                              lib):
        options = FlowOptions(seed=11)
        job = service.submit(design, lib, options)
        result = service.result(job, timeout=240)
        assert _qor(result) == _qor(run(design, lib, options))
        assert service.status(job)["state"] == "done"

    def test_identical_jobs_coalesce_or_hit_cache(self, service,
                                                  design, lib):
        options = FlowOptions(seed=12)
        jobs = [service.submit(design, lib, options)
                for _ in range(6)]
        results = [service.result(j, timeout=240) for j in jobs]
        assert len({_qor(r) for r in results}) == 1
        stats = service.stats()
        saved = (stats["coalesced"] + stats["parent_hits"]
                 + stats["worker_hits"])
        assert saved >= 4            # at most 2 of 6 actually ran

    def test_cache_hit_after_drain(self, service, design, lib):
        options = FlowOptions(seed=13)
        first = service.submit(design, lib, options)
        service.result(first, timeout=240)
        again = service.submit(design, lib, options)
        service.result(again, timeout=240)
        assert service.status(again)["cache"] in ("parent-hit",
                                                  "job-hit")

    def test_failed_job_reports_error(self, service, lib):
        job = service.submit({"not": "a design"}, lib,
                             FlowOptions(seed=1))
        with pytest.raises(JobFailed):
            service.result(job, timeout=240)
        assert service.status(job)["state"] == "failed"
        assert service.status(job)["error"]

    def test_cancel_queued_running_completed(self, service, design,
                                             design2, lib):
        # Saturate both workers so later jobs stay queued.
        blockers = [service.submit(design if i % 2 else design2, lib,
                                   FlowOptions(seed=20 + i))
                    for i in range(2)]
        queued = service.submit(design, lib, FlowOptions(seed=30))
        assert service.cancel(queued)
        with pytest.raises(JobCancelled):
            service.result(queued, timeout=60)
        assert service.status(queued)["state"] == "cancelled"

        # Cancel of a running job kills its worker and respawns.
        deadline = time.time() + 60
        cancelled_running = False
        while time.time() < deadline and not cancelled_running:
            for job_id, _pid in service.running_jobs():
                cancelled_running = service.cancel(job_id)
                break
            time.sleep(0.002)
        for job_id in blockers:
            try:
                service.result(job_id, timeout=240)
            except JobCancelled:
                pass
        if cancelled_running:
            states = {service.status(j)["state"] for j in blockers}
            assert "cancelled" in states

        # Completed jobs cannot be cancelled.
        done = service.submit(design, lib, FlowOptions(seed=31))
        service.result(done, timeout=240)
        assert service.cancel(done) is False

    def test_tenant_accounting_in_stats(self, service, design, lib):
        service.result(service.submit(design, lib,
                                      FlowOptions(seed=40),
                                      tenant="acme"), timeout=240)
        tenants = {t["tenant"]: t for t in service.stats()["tenants"]}
        assert tenants["acme"]["completed"] == 1

    def test_telemetry_lands_in_run_log(self, service, design, lib,
                                        tmp_path):
        service.result(service.submit(design, lib,
                                      FlowOptions(seed=41)),
                       timeout=240)
        db = RunDatabase.from_log(tmp_path / "runs.jsonl")
        assert len(db.service) == 1
        assert db.service[0].state == "done"

    def test_backpressure_rejects_with_retry_after(self, tmp_path,
                                                   design, lib):
        svc = FlowService(
            workers=1, cache_root=tmp_path / "c2",
            policies={"t": TenantPolicy(max_queued=1)})
        with svc:
            first = svc.submit(design, lib, FlowOptions(seed=50),
                               tenant="t")
            retry_after = None
            for i in range(20):      # the first may dispatch quickly
                try:
                    svc.submit(design, lib, FlowOptions(seed=51 + i),
                               tenant="t")
                except QueueFull as rej:
                    retry_after = rej.retry_after
                    break
            assert retry_after is not None and retry_after > 0
            svc.result(first, timeout=240)

    def test_quota_exhaustion_mid_stream(self, tmp_path, design, lib):
        svc = FlowService(
            workers=1, cache_root=tmp_path / "c3",
            policies={"t": TenantPolicy(quota=2)})
        with svc:
            for i in range(2):
                svc.submit(design, lib, FlowOptions(seed=60 + i),
                           tenant="t")
            with pytest.raises(QuotaExceeded):
                svc.submit(design, lib, FlowOptions(seed=62),
                           tenant="t")
            svc.submit(design, lib, FlowOptions(seed=62),
                       tenant="other")
            svc.drain(timeout=240)

    def test_rate_limit_burst_then_drain(self, tmp_path, design, lib):
        svc = FlowService(
            workers=1, cache_root=tmp_path / "c4",
            policies={"t": TenantPolicy(rate=4.0, burst=2)})
        with svc:
            svc.submit(design, lib, FlowOptions(seed=70), tenant="t")
            svc.submit(design, lib, FlowOptions(seed=71), tenant="t")
            with pytest.raises(RateLimited) as exc:
                svc.submit(design, lib, FlowOptions(seed=72),
                           tenant="t")
            assert exc.value.retry_after is not None
            time.sleep(exc.value.retry_after + 0.01)
            svc.submit(design, lib, FlowOptions(seed=72), tenant="t")
            svc.drain(timeout=240)


class TestCrashRecovery:
    def test_sigkill_mid_job_resumes_bit_identical(self, tmp_path,
                                                   design, design2,
                                                   lib):
        subjects = [design, design2] * 2
        options = [FlowOptions(seed=80 + i) for i in range(4)]
        expected = [_qor(run(s, lib, o))
                    for s, o in zip(subjects, options)]
        svc = FlowService(workers=2, cache_root=tmp_path / "cache",
                          journal_root=tmp_path / "journals")
        with svc:
            jobs = [svc.submit(s, lib, o)
                    for s, o in zip(subjects, options)]
            deadline = time.time() + 60
            killed = False
            while time.time() < deadline and not killed:
                running = svc.running_jobs()
                if running:
                    os.kill(running[0][1], signal.SIGKILL)
                    killed = True
                time.sleep(0.002)
            assert killed, "no job was ever observed running"
            results = [svc.result(j, timeout=240) for j in jobs]
            stats = svc.stats()
        assert [_qor(r) for r in results] == expected
        assert stats["completed"] == 4 and stats["failed"] == 0
        assert stats["respawns"] >= 1

    def test_no_segments_leak_after_kill_and_close(self, tmp_path,
                                                   design, lib):
        svc = FlowService(workers=1, cache_root=tmp_path / "cache",
                          journal_root=tmp_path / "journals")
        with svc:
            job = svc.submit(design, lib, FlowOptions(seed=90))
            deadline = time.time() + 60
            while time.time() < deadline:
                running = svc.running_jobs()
                if running:
                    os.kill(running[0][1], signal.SIGKILL)
                    break
                time.sleep(0.002)
            svc.result(job, timeout=240)
        reg = shm_mod.registry_dir() / f"{os.getpid()}.json"
        assert not reg.exists()      # every segment was unlinked


class TestServiceSweep:
    def test_matches_run_sweep_results(self, tmp_path, design,
                                       design2, lib):
        subjects = [design, design2, design, design2]
        options = [FlowOptions(seed=100 + i % 2) for i in range(4)]
        baseline = run_sweep(subjects, lib, options)
        sweep = service_sweep(subjects, lib, options, workers=2,
                              cache_root=tmp_path / "cache")
        assert [_qor(r) for r in sweep.results] == \
            [_qor(r) for r in baseline.results]

    def test_run_sweep_service_scheduler(self, tmp_path, design, lib):
        options = [FlowOptions(seed=110 + i) for i in range(2)]
        via_service = run_sweep(design, lib, options, jobs=2,
                                scheduler="service",
                                cache_dir=tmp_path / "cache")
        direct = run_sweep(design, lib, options)
        assert [_qor(r) for r in via_service.results] == \
            [_qor(r) for r in direct.results]

    def test_run_sweep_rejects_bad_scheduler(self, design, lib):
        with pytest.raises(ValueError):
            run_sweep(design, lib, [FlowOptions()],
                      scheduler="quantum")
        with pytest.raises(ValueError):
            run_sweep(design, lib, [FlowOptions()],
                      scheduler="service", flow_fn=lambda *a: None)

    def test_backpressure_retry_lets_big_sweeps_finish(self, tmp_path,
                                                       design, lib):
        svc = FlowService(workers=1, cache_root=tmp_path / "cache",
                          max_queued_total=2)
        with svc:
            options = [FlowOptions(seed=120 + i) for i in range(6)]
            sweep = service_sweep(design, lib, options,
                                  service=svc)
            assert len(sweep.results) == 6


class TestJobCacheKey:
    def test_sensitive_to_all_inputs(self, design, design2, lib):
        digest = design.to_packed().content_digest()
        digest2 = design2.to_packed().content_digest()
        base = job_cache_key(digest, 0, lib, FlowOptions(seed=1),
                             "warn")
        assert base == job_cache_key(digest, 0, lib,
                                     FlowOptions(seed=1), "warn")
        assert base != job_cache_key(digest2, 0, lib,
                                     FlowOptions(seed=1), "warn")
        assert base != job_cache_key(digest, 1, lib,
                                     FlowOptions(seed=1), "warn")
        assert base != job_cache_key(digest, 0, lib,
                                     FlowOptions(seed=2), "warn")
        assert base != job_cache_key(digest, 0, lib,
                                     FlowOptions(seed=1), "strict")
