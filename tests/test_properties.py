"""Cross-cutting property-based tests over the whole flow stack.

These pin down the invariants individual unit tests cannot: functional
equivalence through arbitrary optimization/mapping pipelines, resource
conservation in routing, and legality of placements — on
hypothesis-generated designs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import build_library, random_aig
from repro.netlist.aig import Aig
from repro.place import global_place
from repro.route import route_placement
from repro.synthesis import map_aig
from repro.synthesis.mig import mig_from_aig
from repro.synthesis.rewrite import balance, refactor, rewrite
from repro.tech import get_node

LIB = build_library(get_node("28nm"), vt_flavors=("lvt", "rvt", "hvt"))

aig_params = st.tuples(
    st.integers(min_value=3, max_value=8),    # inputs
    st.integers(min_value=10, max_value=120),  # ands
    st.integers(min_value=1, max_value=6),    # outputs
    st.integers(min_value=0, max_value=10_000),  # seed
)


class TestSynthesisPipelineEquivalence:
    @given(aig_params)
    @settings(max_examples=20, deadline=None)
    def test_optimization_stack_preserves_function(self, params):
        n, a, o, seed = params
        aig = random_aig(n, a, o, seed=seed)
        golden = aig.simulate_all()
        g = balance(rewrite(refactor(aig)))
        assert np.array_equal(g.simulate_all(), golden)

    @given(aig_params)
    @settings(max_examples=12, deadline=None)
    def test_mapping_preserves_function(self, params):
        n, a, o, seed = params
        aig = random_aig(n, a, o, seed=seed)
        nl = map_aig(aig, LIB, mode="area")
        nl.validate()
        pats = np.random.default_rng(seed).random((32, n)) < 0.5
        assert np.array_equal(nl.simulate(pats), aig.simulate(pats))

    @given(aig_params)
    @settings(max_examples=15, deadline=None)
    def test_mig_conversion_equivalent_and_no_larger(self, params):
        n, a, o, seed = params
        aig = random_aig(n, a, o, seed=seed)
        mig = mig_from_aig(aig)
        assert mig.num_majs <= aig.num_ands
        assert np.array_equal(mig.simulate_all(), aig.simulate_all())

    @given(aig_params)
    @settings(max_examples=15, deadline=None)
    def test_optimization_never_increases_size(self, params):
        n, a, o, seed = params
        aig = random_aig(n, a, o, seed=seed)
        cleaned = aig.cleanup()
        assert rewrite(cleaned).num_ands <= cleaned.num_ands
        assert balance(cleaned).num_ands <= cleaned.num_ands


class TestPhysicalInvariants:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_placement_legality(self, seed):
        from repro.netlist import logic_cloud
        nl = logic_cloud(8, 8, 150, LIB, seed=seed)
        placement = global_place(nl, seed=seed % 17,
                                 utilization=0.5)
        placement.validate()
        # Row alignment and no same-row overlap beyond epsilon.
        rows: dict = {}
        for name, (x, y) in placement.positions.items():
            rows.setdefault(round(y, 6), []).append(
                (x, nl.gates[name].cell.area_um2
                 / placement.row_height_um))
        for cells in rows.values():
            cells.sort()
            for (x1, w1), (x2, _w2) in zip(cells, cells[1:]):
                assert x2 - x1 >= (w1 / 2) * 0.5 - 1e-6

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=6, deadline=None)
    def test_routing_conserves_wirelength(self, seed):
        from repro.netlist import logic_cloud
        nl = logic_cloud(8, 8, 120, LIB, seed=seed, locality=0.9)
        placement = global_place(nl, seed=0, utilization=0.4)
        result = route_placement(placement, gcell_um=2.0,
                                 max_iterations=2)
        # Grid usage must equal the sum of the committed path lengths.
        total = sum(len(p) - 1 for paths in result.paths.values()
                    for p in paths)
        assert total == result.wirelength

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=6, deadline=None)
    def test_rip_up_never_negative_usage(self, seed):
        from repro.netlist import logic_cloud
        nl = logic_cloud(8, 8, 120, LIB, seed=seed, locality=0.9)
        placement = global_place(nl, seed=0, utilization=0.4)
        result = route_placement(placement, gcell_um=2.0,
                                 max_iterations=4)
        assert (result.grid.h_usage >= 0).all()
        assert (result.grid.v_usage >= 0).all()


class TestTimingMonotonicity:
    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=12, deadline=None)
    def test_longer_chain_never_faster(self, n):
        from repro.netlist import Netlist
        from repro.timing import critical_path

        def chain(k):
            nl = Netlist("c", LIB)
            net = nl.add_input("a")
            for i in range(k):
                net = nl.add_gate("INV_X1_rvt", [net], f"n{i}").output
            nl.add_output(net)
            return critical_path(nl).critical_delay_ps

        assert chain(n + 1) > chain(n)
