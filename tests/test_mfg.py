"""Tests for yield, cost, and NRE models."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mfg import (
    death_spiral_index,
    design_cost,
    die_cost,
    dies_per_wafer,
    layer_cost_model,
    mask_set_cost,
    murphy_yield,
    negative_binomial_yield,
    poisson_yield,
    wafer_cost,
)
from repro.mfg.nre import NreModel
from repro.mfg.yield_model import systematic_limited_yield
from repro.tech import get_node


class TestYieldModels:
    def test_zero_defects_perfect_yield(self):
        for model in (poisson_yield, murphy_yield,
                      negative_binomial_yield):
            assert model(100.0, 0.0) == pytest.approx(1.0)

    @given(st.floats(min_value=1.0, max_value=800.0),
           st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=50)
    def test_yield_in_unit_interval(self, area, d0):
        for model in (poisson_yield, murphy_yield,
                      negative_binomial_yield):
            y = model(area, d0)
            assert 0.0 < y <= 1.0

    @given(st.floats(min_value=1.0, max_value=400.0),
           st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=50)
    def test_model_ordering(self, area, d0):
        # Poisson is the most pessimistic of the three.
        assert poisson_yield(area, d0) <= murphy_yield(area, d0) + 1e-12
        assert murphy_yield(area, d0) <= \
            negative_binomial_yield(area, d0) + 1e-12

    def test_yield_decreases_with_area(self):
        assert murphy_yield(200, 0.25) < murphy_yield(50, 0.25)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            poisson_yield(-1, 0.1)
        with pytest.raises(ValueError):
            negative_binomial_yield(100, 0.1, alpha=0)

    def test_systematic_layer_loss(self):
        base = 0.9
        assert systematic_limited_yield(base, 0) == base
        assert systematic_limited_yield(base, 10) < base
        with pytest.raises(ValueError):
            systematic_limited_yield(1.5, 2)


class TestDiesPerWafer:
    def test_small_die_many_dies(self):
        assert dies_per_wafer(1.0) > 40000
        assert dies_per_wafer(600.0) < 100

    def test_monotone_in_area(self):
        prev = float("inf")
        for area in (10, 50, 100, 400):
            n = dies_per_wafer(area)
            assert n < prev
            prev = n

    def test_bad_area(self):
        with pytest.raises(ValueError):
            dies_per_wafer(0.0)


class TestCostModels:
    def test_wafer_cost_matches_book_at_typical_stack(self):
        n = get_node("28nm")
        assert wafer_cost(n) == pytest.approx(n.wafer_cost_usd, rel=0.01)

    def test_fewer_layers_cheaper(self):
        n = get_node("130nm")
        assert wafer_cost(n, metal_layers=4) < \
            wafer_cost(n, metal_layers=6)

    def test_six_to_four_layer_saving_in_panel_band(self):
        # Domic/E14: "moving from a 6-layer 130nm A&M/S process variant
        # to a 4-layer slashes 15-20% from the cost."  Use a 6-layer-
        # typical process variant, as the quote describes.
        variant = dataclasses.replace(get_node("130nm"),
                                      metal_layers_typical=6)
        costs = layer_cost_model(variant, 50.0, [6, 4])
        saving = 1 - costs[4].total_usd / costs[6].total_usd
        assert 0.13 <= saving <= 0.22

    def test_multi_patterned_nodes_pay_litho_premium(self):
        n20 = get_node("20nm")
        # Removing the same relaxed layer saves less than a critical
        # multi-patterned layer would cost.
        full = wafer_cost(n20)
        assert full == pytest.approx(n20.wafer_cost_usd, rel=0.01)

    def test_mask_set_scales_with_stack(self):
        n = get_node("28nm")
        assert mask_set_cost(n, metal_layers=12) > \
            mask_set_cost(n, metal_layers=8)

    def test_die_cost_breakdown_consistent(self):
        n = get_node("28nm")
        b = die_cost(n, 50.0, volume=1_000_000)
        assert b.total_usd == pytest.approx(
            b.die_cost_usd + b.amortized_mask_usd)
        assert 0 < b.yield_fraction <= 1
        assert "mm2" in b.summary()

    def test_volume_amortizes_masks(self):
        n = get_node("28nm")
        low = die_cost(n, 50.0, volume=10_000)
        high = die_cost(n, 50.0, volume=10_000_000)
        assert low.amortized_mask_usd > high.amortized_mask_usd
        assert low.die_cost_usd == pytest.approx(high.die_cost_usd)

    def test_oversized_die_rejected(self):
        with pytest.raises(ValueError):
            die_cost(get_node("28nm"), 80000.0)

    def test_bad_volume(self):
        with pytest.raises(ValueError):
            die_cost(get_node("28nm"), 50.0, volume=0)


class TestNre:
    def test_nre_grows_with_node_advancement(self):
        costs = [design_cost(get_node(n), 5.0)
                 for n in ("180nm", "65nm", "28nm", "7nm")]
        assert costs == sorted(costs)

    def test_design_efficiency_cuts_nre(self):
        n = get_node("28nm")
        brute = design_cost(n, 5.0, design_efficiency=1.0)
        efficient = design_cost(n, 5.0, design_efficiency=0.5)
        assert efficient < brute

    def test_death_spiral_structure(self):
        # High-volume wireless pays back brute force; a mid-volume
        # product at 7nm does not, unless design efficiency bends it.
        n7 = get_node("7nm")
        wireless = death_spiral_index(n7, 50.0, unit_volume=300_000_000,
                                      unit_margin_usd=4.0)
        niche = death_spiral_index(n7, 50.0, unit_volume=2_000_000,
                                   unit_margin_usd=4.0)
        assert wireless < 1.0 < niche
        rescued = death_spiral_index(n7, 50.0, unit_volume=2_000_000,
                                     unit_margin_usd=4.0,
                                     design_efficiency=0.05)
        assert rescued < niche

    def test_engineering_years_positive_and_validated(self):
        model = NreModel()
        assert model.engineering_years(get_node("28nm"), 10.0) > 0
        with pytest.raises(ValueError):
            model.engineering_years(get_node("28nm"), 0.0)

    def test_death_spiral_validation(self):
        with pytest.raises(ValueError):
            death_spiral_index(get_node("28nm"), 5.0, unit_volume=0,
                               unit_margin_usd=1.0)
