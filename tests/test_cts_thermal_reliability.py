"""Tests for clock-tree synthesis, thermal analysis, and reliability."""

import numpy as np
import pytest

from repro.mfg.reliability import (
    ScreeningPlan,
    arrhenius_acceleration,
    automotive_mission_failures,
    fit_rate,
    screen_for_target_ppm,
    shipped_ppm,
)
from repro.netlist import Netlist, build_library, registered_cloud
from repro.place import global_place
from repro.power.thermal import (
    derate_for_temperature,
    solve_thermal,
)
from repro.tech import get_node
from repro.timing import naive_clock_spine, synthesize_clock_tree


@pytest.fixture(scope="module")
def lib():
    return build_library(get_node("28nm"))


@pytest.fixture(scope="module")
def placed(lib):
    nl = registered_cloud(8, 64, 400, lib, seed=5)
    return global_place(nl, seed=0)


class TestClockTree:
    def test_all_sinks_reached(self, placed):
        tree = synthesize_clock_tree(placed)
        flops = {g.name for g in placed.netlist.sequential_gates()}
        assert set(tree.sink_delays) == flops

    def test_balanced_tree_beats_spine_on_skew(self, placed):
        tree = synthesize_clock_tree(placed)
        spine = naive_clock_spine(placed)
        assert tree.skew_ps < spine.skew_ps

    def test_tree_wirelength_below_spine(self, placed):
        tree = synthesize_clock_tree(placed)
        spine = naive_clock_spine(placed)
        assert tree.wirelength_um < spine.wirelength_um * 1.5

    def test_insertion_delay_nonnegative(self, placed):
        tree = synthesize_clock_tree(placed)
        assert all(d >= 0 for d in tree.sink_delays.values())
        assert tree.insertion_delay_ps >= tree.skew_ps

    def test_clock_power_positive(self, placed, lib):
        tree = synthesize_clock_tree(placed)
        assert tree.clock_power_uw(lib.node, 1.0) > 0
        # Power scales with frequency.
        assert tree.clock_power_uw(lib.node, 2.0) == pytest.approx(
            2 * tree.clock_power_uw(lib.node, 1.0))

    def test_leaf_size_controls_tree_depth(self, placed):
        fine = synthesize_clock_tree(placed, max_leaf=2)
        coarse = synthesize_clock_tree(placed, max_leaf=16)
        assert len(fine.segments) > len(coarse.segments)

    def test_no_flops_rejected(self, lib):
        nl = Netlist("comb", lib)
        a = nl.add_input("a")
        nl.add_gate("INV_X1_rvt", [a], "y")
        nl.add_output("y")
        placement = global_place(nl, seed=0)
        with pytest.raises(ValueError):
            synthesize_clock_tree(placement)


class TestThermal:
    def _map(self, hot=0.5, base=0.05):
        pm = np.full((10, 10), base)
        pm[4:6, 4:6] = hot
        return pm

    def test_peak_above_ambient(self):
        report = solve_thermal(self._map())
        assert report.peak_c > report.ambient_c

    def test_hotspot_at_the_hot_tiles(self):
        report = solve_thermal(self._map(hot=1.0))
        y, x = np.unravel_index(np.argmax(report.temperature_c),
                                report.temperature_c.shape)
        assert 3 <= y <= 6 and 3 <= x <= 6

    def test_more_power_hotter(self):
        cool = solve_thermal(self._map(hot=0.2))
        warm = solve_thermal(self._map(hot=1.0))
        assert warm.peak_c > cool.peak_c

    def test_better_package_cooler(self):
        bad = solve_thermal(self._map(), rth_package_c_per_w=16.0)
        good = solve_thermal(self._map(), rth_package_c_per_w=4.0)
        assert good.peak_c < bad.peak_c

    def test_leakage_feedback_raises_temperature(self):
        base = solve_thermal(self._map())
        fed = solve_thermal(self._map(), leakage_feedback=0.05)
        assert fed.peak_c > base.peak_c
        assert fed.iterations > 1

    def test_runaway_detected(self):
        with pytest.raises(RuntimeError, match="runaway"):
            solve_thermal(self._map(hot=5.0), leakage_feedback=0.8,
                          rth_package_c_per_w=60.0)

    def test_hotspot_listing(self):
        report = solve_thermal(self._map(hot=1.5))
        hs = report.hotspots(report.ambient_c + 1.0)
        assert hs
        assert hs[0][2] == pytest.approx(report.peak_c)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            solve_thermal(np.full((4, 4), -1.0))
        with pytest.raises(ValueError):
            solve_thermal(np.zeros(5))

    def test_derating_factors(self):
        d = derate_for_temperature(get_node("28nm"), 125.0)
        assert d["delay_factor"] > 1.0
        assert d["leakage_factor"] == pytest.approx(16.0)
        cold = derate_for_temperature(get_node("28nm"), 25.0)
        assert cold["delay_factor"] == 1.0
        assert cold["leakage_factor"] == 1.0


class TestReliability:
    def test_arrhenius_monotone(self):
        assert arrhenius_acceleration(125.0) > \
            arrhenius_acceleration(85.0) > 1.0
        assert arrhenius_acceleration(55.0) == pytest.approx(1.0)

    def test_fit_scales_with_area_and_temp(self):
        n = get_node("28nm")
        assert fit_rate(n, 100) > fit_rate(n, 50)
        assert fit_rate(n, 50, temp_c=125) > fit_rate(n, 50, temp_c=55)
        with pytest.raises(ValueError):
            fit_rate(n, 0)

    def test_newer_nodes_higher_fit(self):
        assert fit_rate(get_node("7nm"), 50) > \
            fit_rate(get_node("28nm"), 50)

    def test_screening_plan_validation(self):
        with pytest.raises(ValueError):
            ScreeningPlan(1.5)
        with pytest.raises(ValueError):
            ScreeningPlan(0.9, burn_in_hours=-1)

    def test_burn_in_reduces_ppm(self):
        n = get_node("28nm")
        none = shipped_ppm(n, 50, ScreeningPlan(0.99))
        burned = shipped_ppm(n, 50, ScreeningPlan(0.99,
                                                  burn_in_hours=48))
        assert burned < none

    def test_coverage_reduces_ppm(self):
        n = get_node("28nm")
        low = shipped_ppm(n, 50, ScreeningPlan(0.95))
        high = shipped_ppm(n, 50, ScreeningPlan(0.999))
        assert high < low

    def test_zero_ppm_needs_both_levers(self):
        """The ADAS tension: a near-zero-PPM target is reachable only
        with high DFT coverage plus burn-in."""
        n = get_node("28nm")
        weak = screen_for_target_ppm(n, 50, target_ppm=3.0,
                                     coverage=0.95)
        strong = screen_for_target_ppm(n, 50, target_ppm=3.0,
                                       coverage=0.999)
        assert weak is None
        assert strong is not None
        assert strong.burn_in_hours > 0

    def test_mission_failures_scale_with_temperature(self):
        n = get_node("28nm")
        cool = automotive_mission_failures(n, 50, temp_c=55)
        hot = automotive_mission_failures(n, 50, temp_c=125)
        assert hot > cool

    def test_mission_validation(self):
        with pytest.raises(ValueError):
            automotive_mission_failures(get_node("28nm"), 50, years=0)
