"""Tests for retiming and event-driven simulation."""

import numpy as np
import pytest

from repro.netlist import Netlist, build_library, logic_cloud
from repro.sim import EventSimulator, glitch_power_uw
from repro.synthesis.retiming import RetimingGraph, unbalanced_ring_example
from repro.tech import get_node


@pytest.fixture(scope="module")
def lib():
    return build_library(get_node("28nm"))


class TestRetimingGraph:
    def test_ring_example_period(self):
        g = unbalanced_ring_example(4)
        # One zero-register path through all stages.
        assert g.clock_period() == pytest.approx(13.0)

    def test_min_period_hits_slowest_stage(self):
        g = unbalanced_ring_example(4, slow_delay=10.0, fast_delay=1.0)
        period, labels = g.min_period()
        assert period == pytest.approx(10.0)
        retimed = g.apply(labels)
        assert retimed.clock_period() == pytest.approx(10.0)

    def test_retiming_preserves_cycle_registers(self):
        g = unbalanced_ring_example(5)
        _, labels = g.min_period()
        retimed = g.apply(labels)
        assert sum(w for _, _, w in retimed.edges) == \
            sum(w for _, _, w in g.edges)

    def test_retimed_weights_legal(self):
        g = unbalanced_ring_example(6)
        _, labels = g.min_period()
        retimed = g.apply(labels)
        assert all(w >= 0 for _, _, w in retimed.edges)

    def test_infeasible_target_returns_none(self):
        g = unbalanced_ring_example(3, slow_delay=10.0)
        assert g.retime(5.0) is None

    def test_already_feasible_target_trivial(self):
        g = unbalanced_ring_example(3)
        labels = g.retime(g.clock_period())
        assert labels is not None
        assert g.apply(labels).clock_period() <= g.clock_period()

    def test_combinational_cycle_detected(self):
        g = RetimingGraph()
        g.add_node("a", 1.0)
        g.add_node("b", 1.0)
        g.add_edge("a", "b", 0)
        g.add_edge("b", "a", 0)
        with pytest.raises(ValueError, match="cycle"):
            g.clock_period()

    def test_validation(self):
        g = RetimingGraph()
        with pytest.raises(ValueError):
            g.add_node("a", -1.0)
        g.add_node("a", 1.0)
        with pytest.raises(KeyError):
            g.add_edge("a", "ghost", 1)
        with pytest.raises(ValueError):
            g.add_edge("a", "a", -1)

    def test_ring_size_validation(self):
        with pytest.raises(ValueError):
            unbalanced_ring_example(1)


class TestEventSimulation:
    def _glitch_circuit(self, lib, chain=4):
        nl = Netlist("glitchy", lib)
        a = nl.add_input("a")
        net = a
        for i in range(chain):
            net = nl.add_gate("INV_X1_rvt", [net], f"d{i}").output
        nl.add_gate("XOR2_X1_rvt", [a, net], "y")
        nl.add_output("y")
        return nl

    def test_final_values_match_zero_delay(self, lib):
        nl = logic_cloud(6, 6, 80, lib, seed=7)
        sim = EventSimulator(nl)
        rng = np.random.default_rng(0)
        before = {p: bool(rng.integers(0, 2))
                  for p in nl.primary_inputs}
        after = {p: bool(rng.integers(0, 2)) for p in nl.primary_inputs}
        trace = sim.simulate_transition(before, after)
        vec = np.array([[after[p] for p in nl.primary_inputs]],
                       dtype=bool)
        golden = nl.simulate(vec)[0]
        for k, po in enumerate(nl.primary_outputs):
            assert trace.final_value(po) == golden[k]

    def test_unbalanced_xor_glitches(self, lib):
        nl = self._glitch_circuit(lib)
        sim = EventSimulator(nl)
        trace = sim.simulate_transition({"a": False}, {"a": True})
        # y must end where it started (a ^ a = 0) but pulse in between.
        assert trace.final_value("y") is False
        assert trace.glitches("y") >= 2

    def test_longer_skew_wider_pulse(self, lib):
        short = self._glitch_circuit(lib, chain=2)
        long = self._glitch_circuit(lib, chain=8)
        t_short = EventSimulator(short).simulate_transition(
            {"a": False}, {"a": True})
        t_long = EventSimulator(long).simulate_transition(
            {"a": False}, {"a": True})
        assert t_long.settle_time_ps > t_short.settle_time_ps

    def test_no_input_change_no_events(self, lib):
        nl = self._glitch_circuit(lib)
        trace = EventSimulator(nl).simulate_transition(
            {"a": True}, {"a": True})
        assert trace.total_transitions() == 0
        assert trace.total_glitches() == 0

    def test_glitch_power_positive_only_with_glitches(self, lib):
        nl = self._glitch_circuit(lib)
        sim = EventSimulator(nl)
        glitchy = sim.simulate_transition({"a": False}, {"a": True})
        quiet = sim.simulate_transition({"a": True}, {"a": True})
        assert glitch_power_uw(nl, glitchy) > 0
        assert glitch_power_uw(nl, quiet) == 0

    def test_missing_input_rejected(self, lib):
        nl = self._glitch_circuit(lib)
        with pytest.raises(ValueError, match="missing"):
            EventSimulator(nl).simulate_transition({}, {"a": True})

    def test_inertial_filters_subthreshold_pulses(self, lib):
        # A pulse narrower than the driven gate's delay must vanish
        # under inertial filtering.  Build a near-balanced XOR whose
        # skew is one inverter delay.
        nl = Netlist("narrow", lib)
        a = nl.add_input("a")
        d1 = nl.add_gate("INV_X4_rvt", [a], "d1").output
        d2 = nl.add_gate("INV_X4_rvt", [d1], "d2").output
        nl.add_gate("XOR2_X1_rvt", [a, d2], "y")
        nl.add_output("y")
        transport = EventSimulator(nl).simulate_transition(
            {"a": False}, {"a": True})
        inertial = EventSimulator(nl, inertial=True).simulate_transition(
            {"a": False}, {"a": True})
        assert inertial.total_glitches() <= transport.total_glitches()

    def test_glitches_cost_real_power(self, lib):
        """The power-integrity story: glitch power is material on
        skewed logic and absent on a balanced buffer chain."""
        nl = self._glitch_circuit(lib, chain=6)
        sim = EventSimulator(nl)
        trace = sim.simulate_transition({"a": False}, {"a": True})
        uw = glitch_power_uw(nl, trace, freq_ghz=1.0)
        assert uw > 0.01
