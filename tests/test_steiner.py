"""Tests for rectilinear Steiner trees and the router topology option."""

import pytest

from repro.netlist import build_library, logic_cloud
from repro.place import global_place
from repro.route import route_placement
from repro.route.steiner import (
    hanan_points,
    manhattan,
    mst_edges,
    steiner_tree,
    tree_length,
)
from repro.tech import get_node


class TestMst:
    def test_two_points(self):
        edges = mst_edges([(0, 0), (3, 4)])
        assert edges == [((0, 0), (3, 4))]
        assert tree_length(edges) == 7

    def test_spanning_and_length(self):
        pts = [(0, 0), (4, 0), (2, 3), (5, 5)]
        edges = mst_edges(pts)
        assert len(edges) == 3
        # Connectivity: union-find over edges.
        parent = {p: p for p in pts}

        def find(x):
            while parent[x] != x:
                x = parent[x]
            return x

        for a, b in edges:
            parent[find(a)] = find(b)
        assert len({find(p) for p in pts}) == 1

    def test_duplicates_collapsed(self):
        assert mst_edges([(1, 1), (1, 1)]) == []


class TestSteiner:
    def test_classic_three_pin_l(self):
        # Three corners of a rectangle: MST = 2 sides + detour, Steiner
        # point at the corner saves nothing; but an off-corner trio
        # does save.
        pts = [(0, 0), (4, 4), (0, 4)]
        assert tree_length(steiner_tree(pts)) <= \
            tree_length(mst_edges(pts))

    def test_cross_saves_wire(self):
        # Four pins in a plus shape: the center Steiner point wins.
        pts = [(2, 0), (2, 4), (0, 2), (4, 2)]
        mst = tree_length(mst_edges(pts))
        st = tree_length(steiner_tree(pts))
        assert st < mst
        assert st == 8  # star from the center

    def test_never_worse_than_mst(self):
        import numpy as np
        rng = np.random.default_rng(5)
        for _ in range(20):
            pts = [(int(rng.integers(0, 12)), int(rng.integers(0, 12)))
                   for _ in range(int(rng.integers(3, 7)))]
            assert tree_length(steiner_tree(pts)) <= \
                tree_length(mst_edges(pts))

    def test_hanan_grid(self):
        pts = [(0, 0), (2, 3)]
        assert hanan_points(pts) == {(0, 3), (2, 0)}

    def test_collinear_needs_no_steiner(self):
        pts = [(0, 0), (3, 0), (7, 0)]
        st = steiner_tree(pts)
        assert tree_length(st) == 7

    def test_manhattan(self):
        assert manhattan((1, 2), (4, 6)) == 7


class TestRouterTopology:
    @pytest.fixture(scope="class")
    def placed(self):
        lib = build_library(get_node("28nm"))
        nl = logic_cloud(16, 16, 300, lib, seed=3, locality=0.8)
        return global_place(nl, seed=0, utilization=0.35)

    def test_steiner_topology_no_worse(self, placed):
        mst = route_placement(placed, gcell_um=2.0, topology="mst",
                              max_iterations=2)
        steiner = route_placement(placed, gcell_um=2.0,
                                  topology="steiner",
                                  max_iterations=2)
        assert not steiner.failed
        assert steiner.wirelength <= mst.wirelength * 1.02

    def test_bad_topology_rejected(self, placed):
        with pytest.raises(ValueError):
            route_placement(placed, topology="quantum")
