"""Tests for the And-Inverter Graph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import AIG_FALSE, AIG_TRUE, Aig
from repro.netlist.aig import aig_from_truth_table, lit_not, lit_var
from repro.netlist.boolfunc import TruthTable
from repro.netlist.generators import random_aig


class TestConstruction:
    def test_constant_folding(self):
        g = Aig(2)
        a = g.input_lit(0)
        assert g.and_(a, AIG_FALSE) == AIG_FALSE
        assert g.and_(a, AIG_TRUE) == a
        assert g.and_(a, a) == a
        assert g.and_(a, lit_not(a)) == AIG_FALSE
        assert g.num_ands == 0

    def test_structural_hashing(self):
        g = Aig(2)
        a, b = g.input_lit(0), g.input_lit(1)
        x = g.and_(a, b)
        y = g.and_(b, a)  # commuted
        assert x == y
        assert g.num_ands == 1

    def test_inputs_before_ands(self):
        g = Aig(1)
        g.and_(g.input_lit(0), g.input_lit(0))
        # no AND created (folding), so adding input still fine
        g2 = Aig(2)
        a, b = g2.input_lit(0), g2.input_lit(1)
        g2.and_(a, b)
        with pytest.raises(ValueError):
            g2.add_input("late")

    def test_bad_literal_rejected(self):
        g = Aig(1)
        with pytest.raises(ValueError):
            g.and_(g.input_lit(0), 999)

    def test_input_names(self):
        g = Aig(2, ["x", "y"])
        assert g.input_names == ["x", "y"]
        with pytest.raises(ValueError):
            Aig(2, ["onlyone"])


class TestSemantics:
    def test_or_xor_mux(self):
        g = Aig(3)
        a, b, s = (g.input_lit(i) for i in range(3))
        g.add_output(g.or_(a, b), "or")
        g.add_output(g.xor_(a, b), "xor")
        g.add_output(g.mux_(s, a, b), "mux")
        out = g.simulate_all()
        for m in range(8):
            av, bv, sv = m & 1, (m >> 1) & 1, (m >> 2) & 1
            assert out[m, 0] == bool(av | bv)
            assert out[m, 1] == bool(av ^ bv)
            assert out[m, 2] == bool(av if sv else bv)

    def test_simulate_shape_check(self):
        g = Aig(2)
        g.add_output(g.input_lit(0))
        with pytest.raises(ValueError):
            g.simulate(np.zeros((4, 3), dtype=bool))

    def test_depth_and_levels(self):
        g = Aig(4)
        lits = [g.input_lit(i) for i in range(4)]
        x = g.and_(lits[0], lits[1])
        y = g.and_(lits[2], lits[3])
        z = g.and_(x, y)
        g.add_output(z)
        assert g.depth() == 2
        levels = g.levels()
        assert levels[lit_var(z)] == 2

    def test_fanout_counts(self):
        g = Aig(2)
        a, b = g.input_lit(0), g.input_lit(1)
        x = g.and_(a, b)
        g.add_output(x)
        g.add_output(x)
        counts = g.fanout_counts()
        assert counts[lit_var(x)] == 2
        assert counts[lit_var(a)] == 1


class TestCleanup:
    def test_cleanup_drops_dead_nodes(self):
        g = Aig(3)
        a, b, c = (g.input_lit(i) for i in range(3))
        live = g.and_(a, b)
        g.and_(a, c)  # dead
        g.add_output(live)
        assert g.num_ands == 2
        h = g.cleanup()
        assert h.num_ands == 1
        assert np.array_equal(h.simulate_all(), g.simulate_all())

    def test_cleanup_preserves_semantics_random(self):
        g = random_aig(6, 80, 4, seed=7)
        h = g.cleanup()
        assert h.num_ands <= g.num_ands
        assert np.array_equal(h.simulate_all(), g.simulate_all())

    def test_copy_independent(self):
        g = Aig(2)
        a, b = g.input_lit(0), g.input_lit(1)
        g.add_output(g.and_(a, b))
        h = g.copy()
        h.add_output(h.or_(a, b))
        assert len(g.outputs) == 1
        assert len(h.outputs) == 2


class TestFromTruthTable:
    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=60)
    def test_tt_roundtrip_3vars(self, bits):
        tt = TruthTable(3, bits)
        aig, lit = aig_from_truth_table(tt)
        aig.add_output(lit)
        out = aig.simulate_all()[:, 0]
        for m in range(8):
            assert out[m] == tt.evaluate(m)

    def test_const_functions(self):
        aig, lit = aig_from_truth_table(TruthTable.const(True, 2))
        assert lit == AIG_TRUE
        aig, lit = aig_from_truth_table(TruthTable.const(False, 2))
        assert lit == AIG_FALSE

    def test_type_check(self):
        with pytest.raises(TypeError):
            aig_from_truth_table("0110")
