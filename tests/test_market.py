"""Tests for design starts, IoT archetypes, and the two-path forecast."""

import pytest

from repro.market import (
    DESIGN_STARTS_2015,
    DesignStartModel,
    IOT_ARCHETYPES,
    IotArchetype,
    infrastructure_demand,
    two_path_forecast,
)


class TestDesignStarts:
    def test_2015_anchors(self):
        # Domic: >90% at 32/28nm and above; 180nm >25% and the leader.
        model = DesignStartModel()
        assert model.established_share() >= 0.90
        assert model.share_of("180nm") >= 0.25
        assert model.most_designed_node() == "180nm"

    def test_shares_sum_to_one(self):
        assert sum(DESIGN_STARTS_2015.values()) == pytest.approx(1.0)

    def test_step_preserves_total(self):
        model = DesignStartModel()
        model.step_year()
        assert sum(model.shares.values()) == pytest.approx(1.0)

    def test_decade_forecast_stays_dominant(self):
        # "This won't change significantly over the next decade."
        model = DesignStartModel()
        snapshots = model.forecast(10)
        assert len(snapshots) == 11
        final_year, established, share180 = snapshots[-1]
        assert final_year == 10
        assert established >= 0.80
        assert share180 >= 0.15
        assert model.most_designed_node() == "180nm"

    def test_migration_moves_share_downward(self):
        fast = DesignStartModel(migration_rate=0.2,
                                established_influx=0.0)
        before = fast.established_share()
        for _ in range(5):
            fast.step_year()
        assert fast.established_share() < before

    def test_bad_shares_rejected(self):
        with pytest.raises(ValueError):
            DesignStartModel(shares={"180nm": 0.5})

    def test_forecast_validation(self):
        with pytest.raises(ValueError):
            DesignStartModel().forecast(-1)


class TestIotArchetypes:
    def test_three_panel_examples_present(self):
        names = {a.name for a in IOT_ARCHETYPES}
        assert names == {"wearable", "car_gateway", "industrial"}

    def test_archetypes_use_established_nodes(self):
        # Sawicki: IoT "does not require the next technology node".
        for arch in IOT_ARCHETYPES:
            assert float(arch.node.rstrip("nm")) >= 28

    def test_units_grow(self):
        arch = IOT_ARCHETYPES[0]
        assert arch.units_in_year(5) > arch.units_in_year(0)
        with pytest.raises(ValueError):
            arch.units_in_year(-1)


class TestInfrastructure:
    def test_demand_scales_with_data(self):
        small = infrastructure_demand(1.0)
        big = infrastructure_demand(100.0)
        assert big["servers"] == pytest.approx(100 * small["servers"])
        assert big["wafers_300mm"] > small["wafers_300mm"]

    def test_advanced_node_used(self):
        assert infrastructure_demand(1.0)["node"] == "14nm"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            infrastructure_demand(-1.0)


class TestTwoPathForecast:
    def test_both_paths_grow(self):
        fc = two_path_forecast(8)
        assert fc.iot_wafers_300mm[-1] > fc.iot_wafers_300mm[0]
        assert fc.infra_wafers_300mm[-1] > fc.infra_wafers_300mm[0]

    def test_infrastructure_compounds_faster(self):
        # Sawicki: accumulated IoT data "will drive increased transistor
        # densities for years to come" — the advanced path compounds
        # faster than the device path because data installs cumulatively.
        fc = two_path_forecast(10)
        iot_growth = fc.iot_wafers_300mm[-1] / fc.iot_wafers_300mm[0]
        infra_growth = (fc.infra_wafers_300mm[-1] /
                        fc.infra_wafers_300mm[0])
        assert infra_growth > iot_growth > 1.0

    def test_years_labeled_from_2015(self):
        fc = two_path_forecast(3)
        assert fc.years == [2015, 2016, 2017, 2018]

    def test_custom_archetypes(self):
        only_wearable = [IotArchetype("w", "65nm", 10.0, 50.0, 0.1, 5.0)]
        fc = two_path_forecast(2, archetypes=only_wearable)
        assert len(fc.iot_wafers_300mm) == 3
