"""Tests for repro.place.analytic: the vectorized CSR-native placer.

Covers the perf-tentpole acceptance claims: both engines produce legal
placements (cells on rows, no overlaps, inside the die) over random
circuits, seeded runs are bit-reproducible, the analytic engine's HPWL
is no worse than 1.02x the baseline on the fixture designs, and the
packed-input path never rehydrates an object ``Netlist``.  Also the
star-model regression: big nets hub on their driving gate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FlowOptions, FlowStatus
from repro.netlist import (
    PackedNetlist,
    build_library,
    logic_cloud,
    registered_cloud,
)
from repro.orchestrate import run
from repro.place import (
    PackedPlacement,
    Placement,
    analytic_place,
    detailed_place,
    global_place,
    star_pairs,
)
from repro.place.timing_driven import timing_driven_place
from repro.tech import get_node

LIB = build_library(get_node("28nm"))


@pytest.fixture(scope="module")
def cloud():
    return logic_cloud(16, 16, 400, LIB, seed=1, locality=0.9)


@pytest.fixture(scope="module")
def reg():
    return registered_cloud(8, 24, 300, LIB, seed=7)


def assert_on_rows(placement: Placement) -> dict:
    """Inside the die and on row centers; returns cells grouped by row."""
    placement.validate()
    row_h = placement.row_height_um
    rows: dict[int, list] = {}
    for name, (x, y) in placement.positions.items():
        r = (y - row_h / 2) / row_h
        assert abs(r - round(r)) < 1e-6, f"{name} off-row at y={y}"
        gate = placement.netlist.gates[name]
        width = max(gate.cell.area_um2 / row_h, 0.05)
        rows.setdefault(int(round(r)), []).append(
            (x - width / 2, x + width / 2, name))
    return rows


def assert_legal(placement: Placement) -> None:
    """Cells on row centers, inside the die, no overlaps within rows.

    The full predicate; the baseline ``detailed_place`` can violate
    the overlap clause by swapping unequal-width cells in place, so it
    only applies to the baseline at its legalized (pre-detailed)
    state.  The analytic engine's detailed sweep re-spaces swapped
    cells and must satisfy it always.
    """
    for cells in assert_on_rows(placement).values():
        cells.sort()
        for (_, ra, na), (lb, _, nb) in zip(cells, cells[1:]):
            assert lb >= ra - 1e-6, f"{na} overlaps {nb}"


# ----------------------------------------------------------------------
# Star-model regression (satellite): hub on the driver, not the
# alphabetically-first member.


class TestStarPairs:
    def test_hub_is_driver(self):
        pairs = star_pairs([3, 5, 9, 12], driver=9)
        assert pairs == [(9, 3), (9, 5), (9, 12)]

    def test_driverless_net_falls_back_to_first(self):
        # PI-driven nets have no gate driver.
        pairs = star_pairs([4, 7, 8], driver=None)
        assert pairs == [(4, 7), (4, 8)]

    def test_foreign_driver_falls_back(self):
        # A driver index not in the member list (defensive) hubs on
        # the first member rather than introducing a phantom node.
        pairs = star_pairs([2, 6], driver=99)
        assert pairs == [(2, 6)]

    def test_global_place_handles_big_fanout(self):
        # >10 fanout takes the star path; the driver must stay near
        # its fanout cloud rather than drifting to the die center.
        nl = logic_cloud(4, 4, 60, LIB, seed=2, locality=0.2)
        fan = [g for g in nl.gates.values()][:12]
        driver = fan[0]
        for g in fan[1:]:
            nl.rewire_pin(g.name, list(g.pins)[0], driver.output)
        pl = global_place(nl, seed=0)
        dx, dy = pl.positions[driver.name]
        sinks = np.array([pl.positions[g.name] for g in fan[1:]])
        cx, cy = sinks.mean(axis=0)
        diag = (pl.die_w_um**2 + pl.die_h_um**2) ** 0.5
        assert ((dx - cx) ** 2 + (dy - cy) ** 2) ** 0.5 < 0.5 * diag


# ----------------------------------------------------------------------
# Electrostatic field orientation regression: a density stripe must
# push cells away from itself, not along itself.  Legalization hides a
# transposed field from the legality tests, so pin the axis convention
# of the (Ex, Ey) pair directly.


class TestPoissonField:
    DIE = 100.0

    def _field(self, density, xs, ys):
        from repro.place.analytic import _field_at, _poisson_field
        ex, ey = _poisson_field(density)
        return _field_at(ex, ey, np.asarray(xs, dtype=float),
                         np.asarray(ys, dtype=float),
                         self.DIE, self.DIE)

    def test_vertical_stripe_pushes_along_x(self):
        density = np.zeros((32, 32))
        density[:, 14:18] = 10.0      # dense at mid-x, all y
        gx, gy = self._field(density, [30.0, 70.0], [50.0, 50.0])
        assert gx[0] < 0 < gx[1], "cells must move away from the stripe"
        assert np.abs(gy).max() < 0.05 * np.abs(gx).max()

    def test_horizontal_stripe_pushes_along_y(self):
        density = np.zeros((32, 32))
        density[14:18, :] = 10.0      # dense at mid-y, all x
        gx, gy = self._field(density, [50.0, 50.0], [30.0, 70.0])
        assert gy[0] < 0 < gy[1], "cells must move away from the stripe"
        assert np.abs(gx).max() < 0.05 * np.abs(gy).max()


# ----------------------------------------------------------------------
# Legality of both engines, object and packed forms.


class TestLegality:
    def test_analytic_object_form_is_legal(self, cloud):
        pl = analytic_place(cloud, seed=0)
        assert isinstance(pl, Placement)
        assert len(pl.positions) == cloud.num_instances()
        assert_legal(pl)

    def test_analytic_packed_form_is_legal(self, cloud):
        pp = analytic_place(cloud.to_packed(), library=LIB, seed=0)
        assert isinstance(pp, PackedPlacement)
        pp.validate()
        assert np.all(pp.row_of >= 0)
        # Same legality predicate through the object bridge.
        assert_legal(pp.to_placement(cloud))

    @given(st.integers(0, 10_000), st.integers(30, 150))
    @settings(max_examples=8, deadline=None)
    def test_both_engines_legal_on_random_circuits(self, seed, gates):
        nl = registered_cloud(6, 10, gates, LIB, seed=seed)
        assert_legal(analytic_place(nl, seed=seed))
        assert_legal(global_place(nl, seed=seed))

    def test_sequential_design_legal(self, reg):
        assert_legal(analytic_place(reg, seed=3))


# ----------------------------------------------------------------------
# Determinism: equal seeds give bit-identical placements.


class TestDeterminism:
    def test_object_form_bit_reproducible(self, cloud):
        a = analytic_place(cloud, seed=5)
        b = analytic_place(cloud, seed=5)
        assert a.positions == b.positions

    def test_packed_form_bit_reproducible(self, cloud):
        packed = cloud.to_packed()
        a = analytic_place(packed, library=LIB, seed=5)
        b = analytic_place(packed, library=LIB, seed=5)
        assert np.array_equal(a.xs, b.xs)
        assert np.array_equal(a.ys, b.ys)
        assert np.array_equal(a.row_of, b.row_of)

    def test_seed_changes_placement(self, cloud):
        a = analytic_place(cloud, seed=0)
        b = analytic_place(cloud, seed=1)
        assert a.positions != b.positions


# ----------------------------------------------------------------------
# QoR: analytic HPWL within 2% of (usually better than) the baseline.


class TestQor:
    @pytest.mark.parametrize("seed,gates", [(1, 400), (11, 200)])
    def test_hpwl_not_worse_than_baseline(self, seed, gates):
        nl = logic_cloud(16, 16, gates, LIB, seed=seed, locality=0.9)
        base = global_place(nl, seed=0)
        detailed_place(base, passes=2, seed=0)
        new = analytic_place(nl, seed=0)
        assert new.total_hpwl() <= base.total_hpwl() * 1.02

    def test_packed_hpwl_matches_object_bridge(self, cloud):
        pp = analytic_place(cloud.to_packed(), library=LIB, seed=0)
        bridged = pp.to_placement(cloud)
        assert pp.total_hpwl() == pytest.approx(
            bridged.total_hpwl(), rel=1e-9)


# ----------------------------------------------------------------------
# The packed path never rehydrates an object netlist (acceptance).


class TestNoRehydration:
    def test_packed_place_never_calls_to_netlist(self, cloud,
                                                 monkeypatch):
        packed = cloud.to_packed()

        def boom(self, library):
            raise AssertionError("to_netlist() on the hot path")

        monkeypatch.setattr(PackedNetlist, "to_netlist", boom)
        pp = analytic_place(packed, library=LIB, seed=0)
        pp.validate()
        assert pp.total_hpwl() > 0

    def test_packed_place_without_library(self, cloud):
        # A bare packed design places with unit cell footprints.
        pp = analytic_place(cloud.to_packed(), seed=0)
        pp.validate()
        assert np.all(pp.row_of >= 0)


# ----------------------------------------------------------------------
# Engine knob wiring: orchestrate flows and timing-driven placement.


class TestEngineKnob:
    def test_flow_default_engine_is_analytic(self, reg):
        assert FlowOptions().place_engine == "analytic"
        result = run(reg, LIB, FlowOptions(utilization=0.6))
        assert result.status is FlowStatus.OK
        assert_legal(result.placement)

    def test_flow_quadratic_engine_still_runs(self, reg):
        result = run(reg, LIB, FlowOptions(utilization=0.6,
                                           place_engine="quadratic"))
        assert result.status is FlowStatus.OK
        # The baseline detailed pass may overlap unequal-width swaps;
        # rows and die bounds still hold.
        assert_on_rows(result.placement)

    def test_unknown_engine_rejected(self, reg):
        with pytest.raises(Exception):
            run(reg, LIB, FlowOptions(place_engine="annealing"),
                strict=True)

    def test_timing_driven_both_engines(self, reg):
        for engine in ("analytic", "quadratic"):
            pl = timing_driven_place(reg, utilization=0.5, seed=0,
                                     engine=engine)
            assert_legal(pl)

    def test_net_weights_contract_weighted_nets(self, cloud):
        unweighted = analytic_place(cloud, seed=0)
        lengths = unweighted.net_lengths()
        hot = sorted(lengths, key=lengths.get, reverse=True)[:10]
        weighted = analytic_place(
            cloud, seed=0, net_weights={n: 8.0 for n in hot})
        before = sum(lengths[n] for n in hot)
        after_lengths = weighted.net_lengths()
        after = sum(after_lengths[n] for n in hot)
        assert after < before
