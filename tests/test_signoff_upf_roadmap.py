"""Tests for multi-corner signoff, UPF I/O, and roadmap projection."""

import pytest

from repro.core.signoff import (
    PROCESS_CORNERS,
    signoff,
    signoff_frequency_ghz,
)
from repro.market.roadmap import (
    cost_scaling_stalls,
    density_doubling_years,
    project_roadmap,
)
from repro.netlist import build_library, logic_cloud
from repro.power.intent import PowerDomain, PowerIntent, scores_of_domains_intent
from repro.power.upf import read_upf, write_upf
from repro.tech import get_node


@pytest.fixture(scope="module")
def design():
    lib = build_library(get_node("28nm"))
    return logic_cloud(8, 8, 150, lib, seed=1)


class TestSignoff:
    def test_corner_count(self, design):
        report = signoff(design, clock_period_ps=5000.0)
        assert len(report.corners) == 9  # 3 process x 3 temps

    def test_slow_hot_is_worst_for_timing(self, design):
        report = signoff(design, clock_period_ps=5000.0)
        worst = report.worst_corner()
        assert worst.corner == "ss"
        assert worst.temp_c == max(c.temp_c for c in report.corners)

    def test_leakage_explodes_with_temperature(self, design):
        report = signoff(design, clock_period_ps=5000.0)
        lo, hi = report.leakage_range_uw()
        assert hi > lo * 8  # 0C -> 125C spans ~2^5 in leakage

    def test_clean_iff_every_corner_clean(self, design):
        loose = signoff(design, clock_period_ps=100_000.0)
        assert loose.clean
        tight = signoff(design, clock_period_ps=1.0)
        assert not tight.clean

    def test_signoff_frequency_consistent(self, design):
        f = signoff_frequency_ghz(design)
        period = 1000.0 / f
        assert signoff(design, clock_period_ps=period * 1.001).clean
        assert not signoff(design, clock_period_ps=period * 0.9).clean

    def test_unknown_corner_rejected(self, design):
        with pytest.raises(ValueError):
            signoff(design, clock_period_ps=1000.0, corners=("xx",))

    def test_rows_render(self, design):
        rows = signoff(design, clock_period_ps=5000.0).to_rows()
        assert len(rows) == 9
        assert all("ps" in r for r in rows)

    def test_corner_table_sane(self):
        assert PROCESS_CORNERS["ss"] > PROCESS_CORNERS["tt"] > \
            PROCESS_CORNERS["ff"]


class TestUpf:
    def test_roundtrip(self):
        intent = scores_of_domains_intent(8)
        intent.auto_protect()
        back = read_upf(write_upf(intent))
        assert set(back.domains) == set(intent.domains)
        assert back.crossings == intent.crossings
        assert back.isolation == intent.isolation
        assert back.level_shifters == intent.level_shifters
        assert back.check() == []

    def test_roundtrip_preserves_violations(self):
        intent = PowerIntent()
        intent.add_domain(PowerDomain("cpu", 0.9, switchable=True))
        intent.add_domain(PowerDomain("aon", 0.9, always_on=True))
        intent.connect("cpu", "aon")
        back = read_upf(write_upf(intent))
        assert len(back.check()) == 1

    def test_format_keywords(self):
        intent = PowerIntent()
        intent.add_domain(PowerDomain("pd", 1.2, switchable=True))
        text = write_upf(intent)
        assert "create_power_domain pd -vdd 1.2 -switchable" in text

    def test_parse_errors(self):
        with pytest.raises(ValueError, match="unknown command"):
            read_upf("destroy_everything now\n")
        with pytest.raises(ValueError, match="-vdd"):
            read_upf("create_power_domain pd -switchable\n")
        with pytest.raises(ValueError, match="expected option"):
            read_upf("create_power_domain pd vdd 1.0\n")

    def test_comments_and_blanks_ignored(self):
        text = ("# power intent\n\n"
                "create_power_domain pd -vdd 1.0  # inline\n")
        intent = read_upf(text)
        assert "pd" in intent.domains


class TestRoadmap:
    def test_projection_extends_table(self):
        points = project_roadmap(3)
        projected = [p for p in points if p.projected]
        assert len(projected) == 3
        assert projected[0].node.drawn_nm < get_node("5nm").drawn_nm

    def test_density_keeps_rising(self):
        points = project_roadmap(3)
        densities = [p.node.density_mtr_per_mm2 for p in points]
        assert all(a < b for a, b in zip(densities, densities[1:]))

    def test_cost_per_transistor_fell_through_28nm(self):
        points = project_roadmap(0)
        by_name = {p.node.name: p for p in points}
        assert by_name["28nm"].cost_per_mtr < \
            by_name["90nm"].cost_per_mtr / 5

    def test_cost_scaling_eventually_stalls(self):
        # Project far enough and wafer-cost growth beats the shrink.
        points = project_roadmap(6, shrink=0.85)
        assert cost_scaling_stalls(points) is not None

    def test_density_doubling_cadence(self):
        points = project_roadmap(0)
        years = density_doubling_years(points)
        assert 1.0 <= years <= 3.5   # Moore-ish cadence

    def test_validation(self):
        with pytest.raises(ValueError):
            project_roadmap(-1)
