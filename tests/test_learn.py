"""Tests for the self-learning engine: run DB, predictor, tuner."""

import numpy as np
import pytest

from repro.learn import (
    KnobSpace,
    QorPredictor,
    RunDatabase,
    RunRecord,
    design_features,
    tune_knobs,
)
from repro.netlist import build_library, logic_cloud
from repro.tech import get_node


def record(instances, knob_a, score):
    return RunRecord(
        design=f"d{instances}",
        features={"instances": instances, "avg_fanout": 2.0,
                  "seq_ratio": 0.1, "area_um2": instances * 0.1},
        knobs={"a": knob_a},
        qor={"score": score},
    )


class TestRunDatabase:
    def test_log_and_len(self):
        db = RunDatabase()
        db.log(record(100, 1, 5.0))
        assert len(db) == 1

    def test_similar_runs_orders_by_distance(self):
        db = RunDatabase()
        db.log(record(100, 1, 5.0))
        db.log(record(10000, 2, 4.0))
        near = db.similar_runs({"instances": 120, "avg_fanout": 2.0,
                                "seq_ratio": 0.1, "area_um2": 12.0})
        assert near[0].features["instances"] == 100

    def test_best_knobs_picks_lowest_metric(self):
        db = RunDatabase()
        db.log(record(100, 1, 5.0))
        db.log(record(110, 2, 2.0))
        best = db.best_knobs({"instances": 105}, "score")
        assert best == {"a": 2}

    def test_best_knobs_none_when_empty(self):
        db = RunDatabase()
        assert db.best_knobs({"instances": 100}, "score") is None

    def test_save_load_roundtrip(self, tmp_path):
        db = RunDatabase()
        db.log(record(100, 1, 5.0))
        db.log(record(200, 2, 3.0))
        path = tmp_path / "runs.json"
        db.save(path)
        loaded = RunDatabase.load(path)
        assert len(loaded) == 2
        assert loaded.records[0].knobs == {"a": 1}

    def test_design_features_from_netlist(self):
        lib = build_library(get_node("28nm"))
        nl = logic_cloud(8, 8, 120, lib, seed=0)
        feats = design_features(nl)
        assert feats["instances"] == 120
        assert feats["avg_fanout"] > 0
        assert feats["area_um2"] > 0


class TestPredictor:
    def _db(self, n=40, seed=0):
        rng = np.random.default_rng(seed)
        db = RunDatabase()
        for _ in range(n):
            size = float(rng.integers(100, 2000))
            knob = float(rng.integers(1, 5))
            # Ground truth: score = size/100 - 2*knob + noise.
            score = size / 100.0 - 2.0 * knob + rng.normal(0, 0.1)
            rec = record(size, knob, score)
            db.log(rec)
        return db

    def test_fit_and_predict_recovers_trend(self):
        db = self._db()
        pred = QorPredictor(
            ["instances", "avg_fanout", "seq_ratio", "area_um2"],
            ["a"], "score")
        n = pred.fit(db)
        assert n == 40
        lo = pred.predict({"instances": 1000, "avg_fanout": 2.0,
                           "seq_ratio": 0.1, "area_um2": 100.0},
                          {"a": 4})
        hi = pred.predict({"instances": 1000, "avg_fanout": 2.0,
                           "seq_ratio": 0.1, "area_um2": 100.0},
                          {"a": 1})
        assert lo < hi  # bigger knob -> lower score in ground truth

    def test_rank_knob_options(self):
        db = self._db()
        pred = QorPredictor(
            ["instances", "avg_fanout", "seq_ratio", "area_um2"],
            ["a"], "score")
        pred.fit(db)
        feats = {"instances": 500, "avg_fanout": 2.0, "seq_ratio": 0.1,
                 "area_um2": 50.0}
        ranked = pred.rank_knob_options(
            feats, [{"a": 1}, {"a": 4}, {"a": 2}])
        assert ranked[0] == {"a": 4}

    def test_unfitted_predict_raises(self):
        pred = QorPredictor(["instances"], ["a"], "score")
        with pytest.raises(RuntimeError):
            pred.predict({"instances": 1}, {"a": 1})

    def test_needs_two_runs(self):
        db = RunDatabase()
        db.log(record(100, 1, 5.0))
        pred = QorPredictor(["instances"], ["a"], "score")
        with pytest.raises(ValueError):
            pred.fit(db)

    def test_bad_ridge(self):
        with pytest.raises(ValueError):
            QorPredictor(["x"], ["a"], "score", ridge=0.0)


class TestKnobSpace:
    def test_grid_is_cross_product(self):
        space = KnobSpace({"a": [1, 2], "b": [10, 20, 30]})
        assert len(space.grid()) == 6

    def test_sample_bounded(self):
        space = KnobSpace({"a": [1, 2, 3], "b": [1, 2, 3]})
        assert len(space.sample(4, seed=0)) == 4
        assert len(space.sample(100, seed=0)) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            KnobSpace({})
        with pytest.raises(ValueError):
            KnobSpace({"a": []})


class TestTuner:
    def _objective(self, knobs):
        # Quadratic bowl: best at a=3, b=2.
        return (knobs["a"] - 3) ** 2 + (knobs["b"] - 2) ** 2

    def test_finds_optimum_on_grid(self):
        space = KnobSpace({"a": [1, 2, 3, 4], "b": [1, 2, 3]})
        result = tune_knobs(self._objective, space, budget=12,
                            seed=0)
        assert result.best_knobs == {"a": 3, "b": 2}
        assert result.best_score == 0.0

    def test_warm_start_from_db(self):
        db = RunDatabase()
        db.log(RunRecord("prev", {"instances": 100},
                         {"a": 3, "b": 2}, {"score": 0.0}))
        space = KnobSpace({"a": [1, 2, 3, 4], "b": [1, 2, 3]})
        result = tune_knobs(self._objective, space, budget=3,
                            db=db, design_features={"instances": 100},
                            metric="score", seed=1)
        assert result.warm_started
        assert result.best_knobs == {"a": 3, "b": 2}

    def test_logs_back_to_db(self):
        db = RunDatabase()
        space = KnobSpace({"a": [1, 3], "b": [2]})
        tune_knobs(self._objective, space, budget=2, db=db,
                   design_features={"instances": 10}, seed=0)
        assert len(db) == 1
        assert "tuner" in db.records[0].tags

    def test_budget_validation(self):
        space = KnobSpace({"a": [1]})
        with pytest.raises(ValueError):
            tune_knobs(self._objective, space, budget=1)

    def test_history_recorded(self):
        space = KnobSpace({"a": [1, 2, 3], "b": [1, 2, 3]})
        result = tune_knobs(self._objective, space, budget=6, seed=2)
        assert result.evaluations == len(result.history)
        assert result.evaluations >= 6
