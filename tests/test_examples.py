"""Smoke tests: every shipped example must run to completion.

Examples are deliverables; this keeps them from rotting as the library
evolves.  Each main() runs in-process with stdout captured.
"""

import importlib.util
import io
import pathlib
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    module = _load(name)
    assert hasattr(module, "main"), f"{name} must expose main()"
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    output = buffer.getvalue()
    assert len(output) > 100, f"{name} produced almost no output"


def test_expected_examples_present():
    assert set(EXAMPLES) >= {
        "quickstart",
        "networking_asic",
        "iot_edge_node",
        "retrospective_roadmap",
        "new_logic_abstractions",
        "verification_flow",
    }
