"""Tests for networks, AIG optimization, mapping, sizing, and flows."""

import numpy as np
import pytest

from repro.netlist import Aig, build_library, random_aig
from repro.netlist.generators import logic_cloud
from repro.synthesis import (
    LogicNetwork,
    SynthesisFlow,
    balance,
    map_aig,
    refactor,
    rewrite,
    size_gates,
    assign_vt,
    trivial_map,
)
from repro.synthesis.cuts import cut_function, cut_volume, enumerate_cuts
from repro.synthesis.flow import decade_comparison
from repro.synthesis.rewrite import optimize_aig
from repro.tech import get_node
from repro.timing import TimingAnalyzer, WireModel


@pytest.fixture(scope="module")
def lib():
    return build_library(get_node("28nm"), vt_flavors=("lvt", "rvt", "hvt"))


def make_test_aig(seed=1, n=100):
    return random_aig(8, n, 6, seed=seed)


class TestCuts:
    def test_trivial_cut_present(self):
        aig = make_test_aig()
        cuts = enumerate_cuts(aig, 4)
        for n in range(aig.num_inputs + 1, aig.num_nodes):
            assert (n,) in cuts[n]

    def test_cut_sizes_bounded(self):
        aig = make_test_aig()
        cuts = enumerate_cuts(aig, 3)
        for n, cl in cuts.items():
            for c in cl:
                assert len(c) <= 3

    def test_cut_function_matches_simulation(self):
        aig = Aig(3)
        a, b, c = (aig.input_lit(i) for i in range(3))
        x = aig.and_(a, b)
        y = aig.or_(x, c)
        aig.add_output(y)
        node = y >> 1
        tt = cut_function(aig, node, (1, 2, 3))
        for m in range(8):
            av, bv, cv = m & 1, (m >> 1) & 1, (m >> 2) & 1
            want = bool((av and bv) or cv)
            # y is negated in the AIG (OR via De Morgan), so the node
            # function is the complement of the output.
            assert tt.evaluate(m) == (not want) or not (y & 1)

    def test_cut_volume(self):
        aig = Aig(4)
        lits = [aig.input_lit(i) for i in range(4)]
        x = aig.and_(lits[0], lits[1])
        y = aig.and_(lits[2], lits[3])
        z = aig.and_(x, y)
        assert cut_volume(aig, z >> 1, (1, 2, 3, 4)) == 3
        assert cut_volume(aig, z >> 1, (x >> 1, y >> 1)) == 1

    def test_small_k_rejected(self):
        with pytest.raises(ValueError):
            enumerate_cuts(make_test_aig(), 1)


class TestAigOptimization:
    @pytest.mark.parametrize("opt", [balance, rewrite, refactor])
    def test_semantics_preserved(self, opt):
        aig = make_test_aig(seed=3)
        ref = aig.simulate_all()
        out = opt(aig)
        assert np.array_equal(out.simulate_all(), ref)

    def test_balance_reduces_chain_depth(self):
        aig = Aig(8)
        acc = aig.input_lit(0)
        for i in range(1, 8):
            acc = aig.and_(acc, aig.input_lit(i))
        aig.add_output(acc)
        assert aig.depth() == 7
        bal = balance(aig)
        assert bal.depth() == 3
        assert np.array_equal(bal.simulate_all(), aig.simulate_all())

    def test_rewrite_never_grows(self):
        aig = make_test_aig(seed=5, n=200)
        out = rewrite(aig)
        assert out.num_ands <= aig.num_ands

    def test_optimize_script_levels(self):
        aig = make_test_aig(seed=9, n=150)
        ref = aig.simulate_all()
        low = optimize_aig(aig.copy(), "low")
        med = optimize_aig(aig.copy(), "medium")
        high = optimize_aig(aig.copy(), "high")
        for g in (low, med, high):
            assert np.array_equal(g.simulate_all(), ref)
        assert high.num_ands <= med.num_ands <= low.num_ands

    def test_optimize_bad_effort(self):
        with pytest.raises(ValueError):
            optimize_aig(make_test_aig(), "extreme")


class TestLogicNetwork:
    def _xor_network(self):
        net = LogicNetwork("xor")
        net.add_input("a")
        net.add_input("b")
        net.add_node("y", [frozenset({("a", True), ("b", False)}),
                          frozenset({("a", False), ("b", True)})])
        net.set_output("y")
        return net

    def test_to_aig_semantics(self):
        net = self._xor_network()
        aig = net.to_aig()
        out = aig.simulate_all()[:, 0]
        assert list(out) == [False, True, True, False]

    def test_from_aig_roundtrip(self):
        aig = make_test_aig(seed=11)
        net = LogicNetwork.from_aig(aig)
        back = net.to_aig()
        assert np.array_equal(back.simulate_all(), aig.simulate_all())

    def test_sweep_removes_buffers(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_node("buf", [frozenset({("a", True)})])
        net.add_node("y", [frozenset({("buf", True)})])
        net.set_output("y")
        removed = net.sweep()
        assert removed >= 1
        assert "buf" not in net.nodes

    def test_eliminate_inlines_small_nodes(self):
        net = LogicNetwork()
        for n in "abcd":
            net.add_input(n)
        net.add_node("t", [frozenset({("a", True), ("b", True)})])
        net.add_node("y", [frozenset({("t", True), ("c", True)})])
        net.set_output("y")
        net.eliminate()
        assert "t" not in net.nodes
        aig = net.to_aig()
        out = aig.simulate_all()[:, 0]
        # y = a & b & c over inputs a,b,c,d
        for m in range(16):
            a, b, c = m & 1, (m >> 1) & 1, (m >> 2) & 1
            assert out[m] == bool(a and b and c)

    def test_extract_shares_kernels(self):
        net = LogicNetwork()
        for n in "abxy":
            net.add_input(n)
        ab = [frozenset({("a", True)}), frozenset({("b", True)})]
        net.add_node("f", [frozenset({("a", True), ("x", True)}),
                          frozenset({("b", True), ("x", True)})])
        net.add_node("g", [frozenset({("a", True), ("y", True)}),
                          frozenset({("b", True), ("y", True)})])
        net.set_output("f")
        net.set_output("g")
        before = net.literal_count()
        created = net.extract()
        assert created >= 1
        assert net.literal_count() < before

    def test_optimize_preserves_semantics(self):
        aig = make_test_aig(seed=13)
        net = LogicNetwork.from_aig(aig)
        net.optimize("high")
        out = net.to_aig()
        assert np.array_equal(out.simulate_all(), aig.simulate_all())

    def test_duplicate_names_rejected(self):
        net = LogicNetwork()
        net.add_input("a")
        with pytest.raises(ValueError):
            net.add_input("a")
        with pytest.raises(ValueError):
            net.add_node("a", [])

    def test_cycle_detection(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_node("x", [frozenset({("y", True)})])
        net.add_node("y", [frozenset({("x", True)})])
        net.set_output("y")
        with pytest.raises(ValueError):
            net.topological_order()


class TestMapping:
    def test_area_map_equivalence(self, lib):
        aig = make_test_aig(seed=17)
        nl = map_aig(aig, lib, mode="area")
        nl.validate()
        pats = np.random.default_rng(0).random((32, 8)) < 0.5
        assert np.array_equal(nl.simulate(pats), aig.simulate(pats))

    def test_delay_map_equivalence(self, lib):
        aig = make_test_aig(seed=19)
        nl = map_aig(aig, lib, mode="delay")
        nl.validate()
        pats = np.random.default_rng(1).random((32, 8)) < 0.5
        assert np.array_equal(nl.simulate(pats), aig.simulate(pats))

    def test_delay_map_faster_area_map_smaller(self, lib):
        aig = make_test_aig(seed=23, n=300)
        na = map_aig(aig, lib, mode="area")
        nd = map_aig(aig, lib, mode="delay")
        ra = TimingAnalyzer(na).analyze()
        rd = TimingAnalyzer(nd).analyze()
        assert na.area_um2() <= nd.area_um2() * 1.05
        assert rd.critical_delay_ps <= ra.critical_delay_ps * 1.05

    def test_trivial_map_equivalence(self, lib):
        aig = make_test_aig(seed=29)
        nl = trivial_map(aig, lib)
        nl.validate()
        pats = np.random.default_rng(2).random((32, 8)) < 0.5
        assert np.array_equal(nl.simulate(pats), aig.simulate(pats))

    def test_mapped_beats_trivial(self, lib):
        aig = make_test_aig(seed=31, n=300)
        assert map_aig(aig, lib).area_um2() < trivial_map(aig, lib).area_um2()

    def test_constant_output_uses_tie(self, lib):
        aig = Aig(2)
        aig.add_output(0, "zero")
        aig.add_output(1, "one")
        nl = map_aig(aig, lib)
        pats = np.zeros((1, 2), dtype=bool)
        out = nl.simulate(pats)
        assert out[0, 0] == False and out[0, 1] == True  # noqa: E712

    def test_bad_mode(self, lib):
        with pytest.raises(ValueError):
            map_aig(make_test_aig(), lib, mode="power")


class TestSizingAndVt:
    def test_size_gates_improves_or_holds_delay(self, lib):
        aig = make_test_aig(seed=37, n=250)
        nl = map_aig(aig, lib, mode="area",
                     cell_filter=lambda c: "_X1_" in c.name or
                     c.num_inputs == 0)
        report = size_gates(nl)
        assert report["after_ps"] <= report["before_ps"]

    def test_sizing_preserves_function(self, lib):
        aig = make_test_aig(seed=41)
        nl = map_aig(aig, lib, mode="area")
        pats = np.random.default_rng(3).random((16, 8)) < 0.5
        before = nl.simulate(pats)
        size_gates(nl)
        assert np.array_equal(nl.simulate(pats), before)

    def test_assign_vt_cuts_leakage_keeps_timing(self, lib):
        aig = make_test_aig(seed=43, n=250)
        nl = map_aig(aig, lib, mode="delay")
        slack_target = TimingAnalyzer(nl).analyze().critical_delay_ps * 2
        report = assign_vt(nl, clock_period_ps=slack_target)
        assert report["leak_after_nw"] < report["leak_before_nw"]
        final = TimingAnalyzer(nl, clock_period_ps=slack_target).analyze()
        assert final.wns_ps >= 0

    def test_assign_vt_requires_hvt(self):
        rvt_only = build_library(get_node("28nm"), vt_flavors=("rvt",))
        aig = make_test_aig()
        nl = map_aig(aig, rvt_only)
        with pytest.raises(ValueError):
            assign_vt(nl)


class TestEraFlows:
    def test_decade_comparison_monotone(self, lib):
        res = decade_comparison(
            lambda: random_aig(10, 220, 8, seed=47), lib,
            clock_period_ps=450)
        assert res["2016"].area_um2 <= res["2006"].area_um2
        # Delay: within noise on a single workload (the decade-level
        # geomean improvement is asserted by bench E1).
        assert res["2016"].delay_ps <= res["2006"].delay_ps * 1.05
        assert res["2016"].leakage_nw <= res["2006"].leakage_nw
        assert res["2006"].area_um2 <= res["1996"].area_um2 * 1.05

    def test_flows_functionally_equivalent(self, lib):
        res = decade_comparison(
            lambda: random_aig(9, 150, 5, seed=53), lib)
        pats = np.random.default_rng(4).random((32, 9)) < 0.5
        outs = [res[e].netlist.simulate(pats) for e in res]
        assert all(np.array_equal(outs[0], o) for o in outs[1:])

    def test_bad_era(self, lib):
        with pytest.raises(ValueError):
            SynthesisFlow(lib, era="2026")

    def test_summary_format(self, lib):
        res = SynthesisFlow(lib, "2006").run(random_aig(8, 80, 4, seed=59))
        s = res.summary()
        assert "2006" in s and "um2" in s
