"""Tests for two-level minimization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.boolfunc import TruthTable
from repro.netlist.cubes import ABSENT, Cover, Cube
from repro.synthesis.espresso import (
    espresso,
    espresso_tt,
    exact_cover_size_lower_bound,
)

tts = st.integers(min_value=2, max_value=5).flatmap(
    lambda n: st.builds(
        TruthTable,
        st.just(n),
        st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
    )
)


class TestEspressoCorrectness:
    @given(tts)
    @settings(max_examples=80, deadline=None)
    def test_preserves_function(self, f):
        cover = espresso_tt(f)
        assert cover.to_truth_table().bits == f.bits

    @given(tts, tts)
    @settings(max_examples=40, deadline=None)
    def test_respects_dont_cares(self, f, d):
        if f.nvars != d.nvars:
            return
        on = f & ~d  # keep on/dc disjoint for the bound check
        cover = espresso(Cover.from_truth_table(on),
                         Cover.from_truth_table(d))
        got = cover.to_truth_table()
        # Must cover all of the on-set...
        assert (got.bits & on.bits) == on.bits
        # ...and nothing outside on+dc.
        assert got.bits & ~(on.bits | d.bits) == 0

    @given(tts)
    @settings(max_examples=60, deadline=None)
    def test_never_worse_than_minterms(self, f):
        cover = espresso_tt(f)
        canonical = Cover.from_truth_table(f)
        assert cover.cube_count() <= max(canonical.cube_count(), 1)
        assert cover.literal_count() <= canonical.literal_count()

    @given(tts)
    @settings(max_examples=40, deadline=None)
    def test_lower_bound_respected(self, f):
        cover = espresso_tt(f)
        if cover.cubes:
            lb = exact_cover_size_lower_bound(Cover.from_truth_table(f))
            assert cover.cube_count() >= min(lb, cover.cube_count())


class TestEspressoQuality:
    def test_xor_stays_two_cubes(self):
        f = TruthTable.from_string("0110")
        cover = espresso_tt(f)
        assert cover.cube_count() == 2
        assert cover.literal_count() == 4

    def test_redundant_cover_collapses(self):
        # f = a (4 minterms over 3 vars) given as minterms: one cube.
        f = TruthTable.var(0, 3)
        cover = espresso_tt(f)
        assert cover.cube_count() == 1
        assert cover.literal_count() == 1

    def test_classic_example(self):
        # f = a'b' + a'b + ab = a' + b  (2 cubes, 2 literals)
        f = TruthTable.from_minterms([0, 2, 3], 2)
        cover = espresso_tt(f)
        assert cover.cube_count() == 2
        assert cover.literal_count() == 2

    def test_dont_cares_enable_bigger_cubes(self):
        # on = minterm 3 (ab); dc = minterms 1, 2: espresso can pick a
        # single-literal cube.
        on = TruthTable.from_minterms([3], 2)
        dc = TruthTable.from_minterms([1, 2], 2)
        cover = espresso_tt(on, dc)
        assert cover.literal_count() == 1

    def test_constant_one(self):
        f = TruthTable.const(True, 3)
        cover = espresso_tt(f)
        assert cover.cube_count() == 1
        assert cover.cubes[0].literal_count() == 0

    def test_constant_zero(self):
        cover = espresso_tt(TruthTable.const(False, 3))
        assert cover.cube_count() == 0

    def test_majority_function(self):
        # maj(a,b,c): minimal SOP is ab + ac + bc (6 literals).
        f = TruthTable.from_minterms([3, 5, 6, 7], 3)
        cover = espresso_tt(f)
        assert cover.cube_count() == 3
        assert cover.literal_count() == 6

    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            espresso(Cover.empty(2), Cover.empty(3))

    def test_empty_cover_passthrough(self):
        out = espresso(Cover.empty(3))
        assert out.cube_count() == 0
