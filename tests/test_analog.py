"""Tests for the analog IP models and porting timeline."""

import pytest

from repro.analog import (
    IpPortingModel,
    SerdesSpec,
    TcamSpec,
    adc_area_mm2,
    adc_power_mw,
    node_readiness_years,
    readiness_timeline,
    serdes_feasible,
    serdes_power_mw,
    tcam_metrics,
)
from repro.analog.serdes import max_line_rate_gbps
from repro.tech import get_node


class TestSerdes:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SerdesSpec(0.0)
        with pytest.raises(ValueError):
            SerdesSpec(10.0, modulation="qam")

    def test_pam4_halves_baud(self):
        assert SerdesSpec(56.0, modulation="pam4").baud_gbd == 28.0
        assert SerdesSpec(56.0).baud_gbd == 56.0

    def test_feasibility_improves_with_node(self):
        spec = SerdesSpec(25.0)
        assert not serdes_feasible("65nm", spec)
        assert serdes_feasible("16nm", spec)
        assert serdes_feasible("7nm", spec)

    def test_pam4_extends_older_nodes(self):
        # 25G PAM4 (12.5 GBd) closes where 25G NRZ cannot.
        assert not serdes_feasible("28nm", SerdesSpec(25.0))
        assert serdes_feasible("28nm", SerdesSpec(25.0,
                                                  modulation="pam4"))

    def test_infeasible_power_raises(self):
        with pytest.raises(ValueError, match="cannot close"):
            serdes_power_mw("65nm", SerdesSpec(25.0))

    def test_power_scales_with_loss_and_rate(self):
        lossy = serdes_power_mw("7nm", SerdesSpec(25.0,
                                                  channel_loss_db=30))
        clean = serdes_power_mw("7nm", SerdesSpec(25.0,
                                                  channel_loss_db=10))
        assert lossy > clean
        assert serdes_power_mw("7nm", SerdesSpec(40.0)) > \
            serdes_power_mw("7nm", SerdesSpec(10.0))

    def test_max_rate_monotone_down_roadmap(self):
        rates = [max_line_rate_gbps(n)
                 for n in ("65nm", "28nm", "16nm", "7nm")]
        assert rates == sorted(rates)


class TestAdc:
    def test_power_scales_with_bits_and_rate(self):
        base = adc_power_mw("28nm", bits=10, msps=100)
        assert adc_power_mw("28nm", bits=12, msps=100) > base
        assert adc_power_mw("28nm", bits=10, msps=500) > base

    def test_newer_nodes_more_efficient(self):
        assert adc_power_mw("16nm", bits=12, msps=100) < \
            adc_power_mw("90nm", bits=12, msps=100)

    def test_analog_area_scales_slower_than_digital(self):
        a65 = adc_area_mm2("65nm", bits=12)
        a16 = adc_area_mm2("16nm", bits=12)
        analog_shrink = a65 / a16
        digital_shrink = (get_node("16nm").density_mtr_per_mm2
                          / get_node("65nm").density_mtr_per_mm2)
        assert analog_shrink < digital_shrink / 3

    def test_validation(self):
        with pytest.raises(ValueError):
            adc_power_mw("28nm", bits=0, msps=100)
        with pytest.raises(ValueError):
            adc_area_mm2("28nm", bits=0)


class TestTcam:
    def test_metrics_positive(self):
        m = tcam_metrics("28nm", TcamSpec(1024, 64))
        assert m["area_mm2"] > 0
        assert m["power_w"] > 0

    def test_search_energy_scales_with_bits(self):
        small = tcam_metrics("28nm", TcamSpec(1024, 64))
        big = tcam_metrics("28nm", TcamSpec(4096, 64))
        assert big["search_energy_pj"] > small["search_energy_pj"]

    def test_newer_node_denser(self):
        a28 = tcam_metrics("28nm", TcamSpec(4096, 128))["area_mm2"]
        a14 = tcam_metrics("14nm", TcamSpec(4096, 128))["area_mm2"]
        assert a14 < a28

    def test_validation(self):
        with pytest.raises(ValueError):
            TcamSpec(0, 64)


class TestPorting:
    def test_effort_grows_with_node_gap(self):
        model = IpPortingModel()
        short = model.port_effort_years("serdes", "28nm", "20nm")
        long = model.port_effort_years("serdes", "28nm", "10nm")
        assert long > short

    def test_effort_grows_with_litho_complexity(self):
        model = IpPortingModel()
        easy = model.port_effort_years("adc", "28nm", "28nm")
        hard = model.port_effort_years("adc", "28nm", "7nm")
        assert hard > easy

    def test_wrong_direction_rejected(self):
        with pytest.raises(ValueError):
            IpPortingModel().port_effort_years("serdes", "14nm", "28nm")

    def test_unknown_ip_rejected(self):
        with pytest.raises(KeyError, match="catalogue"):
            IpPortingModel().port_effort_years("flux_cap", "28nm",
                                               "14nm")

    def test_parallel_teams_shorten_catalogue(self):
        slow = IpPortingModel(team_parallelism=1)
        fast = IpPortingModel(team_parallelism=3)
        assert fast.catalogue_years("28nm", "14nm") < \
            slow.catalogue_years("28nm", "14nm")

    def test_productivity_tooling_shortens_readiness(self):
        brute = node_readiness_years("10nm")
        tooled = node_readiness_years("10nm", productivity=0.5)
        assert tooled < brute

    def test_timeline_orders_ready_after_process(self):
        timeline = readiness_timeline()
        for name, (process_year, ready_year) in timeline.items():
            assert ready_year > process_year
