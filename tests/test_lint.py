"""Tests for repro.lint: netlist rules, flow rules, purity, gating.

Covers the full static-analysis surface: the fixture sweep over every
generator/benchmark circuit (all must be error-clean), seeded
violations for each netlist rule, waivers and report export, flow
static verification, the AST purity checker, the orchestrator's
pre-run gate and stage-boundary sanitizer, and the invariant that the
shipped implement DAG is itself lint-clean.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import (
    INVARIANT_RULE_IDS,
    LintConfig,
    LintGateError,
    REGISTRY,
    Severity,
    Waivers,
    check_stage_purity,
    find_netlists,
    lint_design,
    lint_flow,
    lint_netlist,
)
from repro.netlist import build_library
from repro.netlist.benchmark_circuits import all_benchmark_circuits
from repro.netlist.circuit import Netlist
from repro.netlist.generators import (
    carry_lookahead_adder,
    crossbar_switch,
    hierarchical_soc,
    lfsr,
    logic_cloud,
    multiplier,
    registered_cloud,
    ripple_carry_adder,
)
from repro.orchestrate import FlowDAG, FlowOptions, Stage
from repro.orchestrate.flows import build_implement_dag
from repro.tech import get_node


LIB = build_library(get_node("28nm"),
                    vt_flavors=("lvt", "rvt", "hvt"))


@pytest.fixture(scope="module")
def lib():
    return LIB


def _all_generator_circuits(lib):
    yield "rca16", ripple_carry_adder(16, lib)
    yield "cla16", carry_lookahead_adder(16, lib)
    yield "mult8", multiplier(8, lib)
    yield "cloud", logic_cloud(16, 8, 300, lib, seed=3)
    yield "regcloud", registered_cloud(12, 16, 250, lib, seed=5)
    yield "xbar", crossbar_switch(4, 4, lib)
    yield "lfsr16", lfsr(16, lib)


# ----------------------------------------------------------------------
# Satellite: fixture sweep — every shipped circuit is error-clean.


class TestFixtureSweep:
    def test_generators_error_clean(self, lib):
        for name, nl in _all_generator_circuits(lib):
            report = lint_netlist(nl)
            assert not report.errors, \
                f"{name}: {[str(f) for f in report.errors]}"

    def test_benchmarks_error_and_warning_clean(self, lib):
        for name, nl in all_benchmark_circuits(lib).items():
            report = lint_netlist(nl)
            assert not report.errors, \
                f"{name}: {[str(f) for f in report.errors]}"
            # The hand-built benchmark circuits carry no dead logic
            # either (the priority encoder used to).
            assert not report.warnings, \
                f"{name}: {[str(f) for f in report.warnings]}"

    def test_hierarchical_soc_clean(self, lib):
        soc = hierarchical_soc(3, 80, lib, seed=2)
        report = lint_design(soc)
        assert not report.errors, \
            [str(f) for f in report.errors]

    def test_clean_report_renders(self, lib):
        report = lint_netlist(lfsr(8, lib))
        assert report.ok
        assert "0 errors" in report.summary()


# ----------------------------------------------------------------------
# Netlist rules, one seeded violation each.


class TestNetlistRules:
    def test_net001_undriven_pin(self, lib):
        nl = lfsr(8, lib)
        gate = next(iter(nl.gates.values()))
        gate.pins[next(iter(gate.pins))] = "ghost_net"
        report = lint_netlist(nl)
        assert any(f.rule_id == "NET-001" for f in report.errors)

    def test_net002_multi_driven(self, lib):
        nl = lfsr(8, lib)
        gates = list(nl.gates.values())
        gates[4].output = gates[2].output   # bypasses the API guard
        report = lint_netlist(nl)
        finding = next(f for f in report.errors
                       if f.rule_id == "NET-002")
        assert gates[2].output in finding.message

    def test_net004_dangling_po(self, lib):
        nl = lfsr(8, lib)
        nl.primary_outputs.append("no_such_net")
        report = lint_netlist(nl)
        assert any(f.rule_id == "NET-004" for f in report.errors)

    def test_net004_duplicate_po_downgrades(self, lib):
        nl = lfsr(8, lib)
        nl.primary_outputs.append(nl.primary_outputs[0])
        report = lint_netlist(nl)
        dupes = [f for f in report.findings if f.rule_id == "NET-004"]
        assert dupes and all(f.severity is Severity.WARNING
                             for f in dupes)

    def test_net005_combinational_cycle(self, lib):
        nl = Netlist("loop", lib)
        a = nl.add_input("a")
        g1 = nl.add_gate("NAND2_X1_rvt", [a, a])
        g2 = nl.add_gate("NAND2_X1_rvt", [g1.output, a])
        nl.add_output(g2.output)
        g1.pins["B"] = g2.output            # close the comb loop
        report = lint_netlist(nl)
        assert any(f.rule_id == "NET-005" for f in report.errors)

    def test_net006_fanout_overload(self, lib):
        nl = Netlist("fan", lib)
        a = nl.add_input("a")
        src = nl.add_gate("INV_X1_rvt", [a]).output
        for _ in range(10):
            nl.add_output(nl.add_gate("INV_X1_rvt", [src]).output)
        report = lint_netlist(nl, config=LintConfig(max_fanout=4))
        assert any(f.rule_id == "NET-006" for f in report.warnings)

    def test_net007_dead_cone(self, lib):
        nl = Netlist("dead", lib)
        a = nl.add_input("a")
        live = nl.add_gate("INV_X1_rvt", [a]).output
        nl.add_output(live)
        nl.add_gate("INV_X1_rvt", [a])      # output never consumed
        report = lint_netlist(nl)
        assert any(f.rule_id == "NET-007" for f in report.warnings)

    def test_net008_hierarchy_port_mismatch(self, lib):
        soc = hierarchical_soc(2, 60, lib, seed=1)
        # Point one instance port map at a nonexistent module port.
        inst = soc.instances[0]
        port = next(iter(inst.input_map))
        inst.input_map["bogus_port"] = inst.input_map.pop(port)
        report = lint_design(soc, lint_modules=False)
        finding = next(f for f in report.errors
                       if f.rule_id == "NET-008")
        assert "bogus_port" in finding.message

    def test_finding_cap_truncates(self, lib):
        nl = Netlist("dead", lib)
        a = nl.add_input("a")
        nl.add_output(nl.add_gate("INV_X1_rvt", [a]).output)
        for _ in range(30):
            nl.add_gate("INV_X1_rvt", [a])
        config = LintConfig(max_findings_per_rule=5)
        report = lint_netlist(nl, config=config)
        dead = [f for f in report.findings if f.rule_id == "NET-007"]
        assert len(dead) == 5
        assert report.truncated.get("NET-007", 0) >= 25


# ----------------------------------------------------------------------
# Waivers and report export.


class TestReports:
    def test_waiver_marks_not_drops(self, lib):
        nl = lfsr(8, lib)
        nl.primary_outputs.append("no_such_net")
        waivers = Waivers()
        waivers.add("NET-004", "*", reason="known dangling")
        report = lint_netlist(nl, waivers=waivers)
        assert report.ok                     # waived => gate passes
        waived = [f for f in report.findings if f.waived]
        assert waived and waived[0].waive_reason == "known dangling"

    def test_waiver_file_roundtrip(self, lib, tmp_path):
        path = tmp_path / "waivers.txt"
        path.write_text("# project waivers\n"
                        "NET-007 u_inv* # scaffold cones\n")
        waivers = Waivers.load(path)
        nl = Netlist("dead", lib)
        a = nl.add_input("a")
        nl.add_output(nl.add_gate("INV_X1_rvt", [a]).output)
        nl.add_gate("INV_X1_rvt", [a])
        report = lint_netlist(nl, waivers=waivers)
        assert all(f.waived for f in report.findings
                   if f.rule_id == "NET-007")

    def test_json_export_shape(self, lib):
        nl = lfsr(8, lib)
        nl.primary_outputs.append("no_such_net")
        payload = json.loads(lint_netlist(nl).to_json())
        assert payload["schema_version"] >= 1
        assert payload["counts"]["errors"] >= 1
        finding = payload["findings"][0]
        assert {"rule_id", "severity", "message",
                "location"} <= set(finding)

    def test_sarif_export_shape(self, lib):
        nl = lfsr(8, lib)
        nl.primary_outputs.append("no_such_net")
        sarif = lint_netlist(nl).to_sarif()
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        rule_ids = {r["id"] for r in
                    run["tool"]["driver"]["rules"]}
        assert "NET-004" in rule_ids
        assert any(r["ruleId"] == "NET-004"
                   for r in run["results"])

    def test_registry_ids_unique_and_scoped(self):
        ids = REGISTRY.ids()
        assert len(ids) == len(set(ids))
        assert {"NET-001", "NET-002", "FLOW-001"} <= set(ids)


# ----------------------------------------------------------------------
# Satellite: the driver guards behind the linter's back.


class TestDriverGuards:
    def test_add_gate_rejects_second_driver(self, lib):
        nl = lfsr(8, lib)
        victim = next(iter(nl.gates.values())).output
        with pytest.raises(ValueError, match="already driven"):
            nl.add_gate("INV_X1_rvt", [nl.primary_inputs[0]],
                        output=victim)

    def test_add_gate_rejects_phantom_pins(self, lib):
        nl = Netlist("t", lib)
        a = nl.add_input("a")
        b = nl.add_input("b")
        with pytest.raises(ValueError, match="no pins"):
            nl.add_gate("INV_X1_rvt", {"A": a, "Z": b})

    def test_rewire_pin_rejects_unknown_net(self, lib):
        nl = lfsr(8, lib)
        gate = next(iter(nl.gates.values()))
        pin = next(iter(gate.pins))
        with pytest.raises(ValueError, match="does not exist"):
            nl.rewire_pin(gate.name, pin, "phantom_net")

    def test_rewire_pin_to_driven_net_still_works(self, lib):
        nl = lfsr(8, lib)
        gates = list(nl.gates.values())
        pin = next(iter(gates[0].pins))
        nl.rewire_pin(gates[0].name, pin, gates[-1].output)
        assert gates[0].pins[pin] == gates[-1].output


# ----------------------------------------------------------------------
# Flow static verification.


def _stage_ok(ctx):
    return ctx["subject"]


def _stage_reads_synth(ctx):
    return ctx["synthesis"]


def _stage_typo(ctx):
    return ctx["sythesis"]          # deliberate ctx-key typo


class TestFlowRules:
    def test_missing_producer(self):
        dag = FlowDAG()
        dag.add(Stage("a", _stage_ok, params=("subject",)))
        dag.add(Stage("b", _stage_ok, deps=("nonexistent",)))
        report = lint_flow(dag, purity=False)
        assert any(f.rule_id == "FLOW-001" for f in report.errors)

    def test_dead_stage_behind_missing_producer(self):
        dag = FlowDAG()
        dag.add(Stage("a", _stage_ok, deps=("nonexistent",)))
        dag.add(Stage("b", _stage_ok, deps=("a",)))
        report = lint_flow(dag, purity=False)
        dead = [f for f in report.warnings
                if f.rule_id == "FLOW-003"]
        assert dead and dead[0].location == "b"

    def test_stage_cycle(self):
        dag = FlowDAG()
        dag.add(Stage("a", _stage_ok, deps=("b",)))
        dag.add(Stage("b", _stage_ok, deps=("a",)))
        report = lint_flow(dag, purity=False)
        assert any(f.rule_id == "FLOW-002" for f in report.errors)

    def test_unknown_knob(self):
        dag = FlowDAG()
        dag.add(Stage("a", _stage_ok, params=("options",),
                      knobs=("utilizatoin",)))   # typo
        report = lint_flow(dag, FlowOptions(), purity=False)
        finding = next(f for f in report.errors
                       if f.rule_id == "FLOW-004")
        assert "utilizatoin" in finding.message

    def test_unprovided_param(self):
        dag = FlowDAG()
        dag.add(Stage("a", _stage_ok, params=("no_such_param",)))
        report = lint_flow(dag, purity=False)
        assert any(f.rule_id == "FLOW-005" for f in report.errors)

    def test_undeclared_ctx_read(self):
        dag = FlowDAG()
        dag.add(Stage("synthesis", _stage_ok, params=("subject",)))
        dag.add(Stage("place", _stage_typo, deps=("synthesis",)))
        report = lint_flow(dag, purity=False)
        finding = next(f for f in report.errors
                       if f.rule_id == "FLOW-006")
        assert "sythesis" in finding.message

    def test_unread_declared_input_is_info(self):
        dag = FlowDAG()
        dag.add(Stage("synthesis", _stage_ok, params=("subject",)))
        dag.add(Stage("b", _stage_ok,
                      deps=("synthesis",), params=("subject",)))
        report = lint_flow(dag, purity=False)
        infos = [f for f in report.findings
                 if f.rule_id == "FLOW-007"]
        assert infos and infos[0].severity is Severity.INFO

    def test_implement_dag_is_clean(self):
        # Satellite: the shipped registry passes its own gate —
        # flow rules AND the purity checker.
        report = lint_flow(build_implement_dag(), FlowOptions())
        assert not report.errors, [str(f) for f in report.errors]
        assert not report.warnings, \
            [str(f) for f in report.warnings]

    def test_flow_lint_overhead_under_50ms(self):
        report = lint_flow(build_implement_dag(), FlowOptions())
        assert report.wall_s < 0.050


# ----------------------------------------------------------------------
# Purity checker.


class TestPurity:
    def test_unseeded_random_flagged(self):
        from _lint_stage_samples import draws_random
        findings = check_stage_purity(draws_random)
        assert any(f.rule_id == "PURE-002" and
                   f.severity is Severity.ERROR for f in findings)

    def test_wall_clock_flagged(self):
        from _lint_stage_samples import reads_clock
        findings = check_stage_purity(reads_clock)
        assert any(f.rule_id == "PURE-001" for f in findings)

    def test_environ_read_flagged(self):
        from _lint_stage_samples import reads_env
        findings = check_stage_purity(reads_env)
        assert any(f.rule_id == "PURE-003" for f in findings)

    def test_global_mutation_flagged(self):
        from _lint_stage_samples import mutates_global
        findings = check_stage_purity(mutates_global)
        assert any(f.rule_id == "PURE-004" for f in findings)

    def test_seeded_rng_is_clean(self):
        from _lint_stage_samples import seeded_rng
        findings = check_stage_purity(seeded_rng)
        assert not [f for f in findings
                    if f.severity is Severity.ERROR]

    def test_inline_waiver_marks_finding(self):
        from _lint_stage_samples import waived_clock
        findings = check_stage_purity(waived_clock)
        flagged = [f for f in findings if f.rule_id == "PURE-001"]
        assert flagged and all(f.waived for f in flagged)

    def test_noncacheable_stage_downgrades(self):
        from _lint_stage_samples import draws_random
        findings = check_stage_purity(draws_random, cacheable=False)
        assert all(f.severity is not Severity.ERROR
                   for f in findings)

    def test_location_names_module_and_line(self):
        from _lint_stage_samples import draws_random
        finding = next(f for f in check_stage_purity(draws_random)
                       if f.rule_id == "PURE-002")
        assert "_lint_stage_samples" in finding.location
        assert ":" in finding.location


# ----------------------------------------------------------------------
# Orchestrator integration: the gate and the sanitizer.


def _passthrough(ctx):
    return ctx["subject"]


def _corrupt_netlist(ctx):
    netlist = ctx["synthesis"]
    gates = list(netlist.gates.values())
    gates[4].output = gates[2].output
    return netlist


def _summarize(ctx):
    return {"gates": len(ctx["mangle"].gates)}


def _three_stage_dag():
    dag = FlowDAG()
    dag.add(Stage("synthesis", _passthrough,
                  params=("subject", "library", "options"),
                  cacheable=False))
    dag.add(Stage("mangle", _corrupt_netlist, deps=("synthesis",),
                  cacheable=False))
    dag.add(Stage("summary", _summarize, deps=("mangle",),
                  cacheable=False))
    return dag


class TestGateIntegration:
    def test_strict_refuses_multi_driven_netlist(self, lib):
        from repro.orchestrate import run
        nl = lfsr(8, lib)
        gates = list(nl.gates.values())
        gates[4].output = gates[2].output
        with pytest.raises(LintGateError) as exc:
            run(nl, lib, FlowOptions(), lint="strict")
        report = exc.value.report
        assert any(f.rule_id == "NET-002" for f in report.errors)
        assert "NET-002" in str(exc.value)

    def test_strict_refuses_impure_stage(self, lib):
        from repro.orchestrate import run
        from _lint_stage_samples import draws_random
        dag = FlowDAG()
        dag.add(Stage("synthesis", draws_random,
                      params=("subject", "library", "options")))
        with pytest.raises(LintGateError) as exc:
            run(lfsr(8, lib), lib, FlowOptions(), dag=dag,
                lint="strict")
        assert any(f.rule_id == "PURE-002"
                   for f in exc.value.report.errors)

    def test_warn_mode_runs_and_records(self, lib):
        from repro.orchestrate import TelemetrySink, run
        nl = lfsr(8, lib)
        nl.primary_outputs.append("no_such_net")   # NET-004 error
        sink = TelemetrySink()
        run(nl, lib, FlowOptions(), telemetry=sink, lint="warn",
            strict=False)
        span = next(s for s in sink.spans if s.stage == "lint")
        assert span.status == "failed"
        assert any("NET-004" in note for note in span.notes)

    def test_off_mode_skips_gate(self, lib):
        from repro.orchestrate import TelemetrySink, run
        sink = TelemetrySink()
        result = run(lfsr(8, lib), lib, FlowOptions(),
                     telemetry=sink, lint="off")
        assert not [s for s in sink.spans if s.stage == "lint"]
        assert result.lint is None

    def test_clean_run_attaches_report(self, lib):
        from repro.orchestrate import run
        result = run(lfsr(8, lib), lib, FlowOptions(), lint="warn")
        assert result.lint is not None and result.lint.ok

    def test_invalid_mode_rejected(self, lib):
        from repro.orchestrate import run
        with pytest.raises(ValueError, match="lint must be"):
            run(lfsr(8, lib), lib, FlowOptions(), lint="loud")

    def test_sanitizer_names_corrupting_stage(self, lib):
        from repro.orchestrate import TelemetrySink, run
        sink = TelemetrySink()
        run(lfsr(8, lib), lib, FlowOptions(), dag=_three_stage_dag(),
            telemetry=sink, lint="off", sanitize=True, strict=False)
        failed = [s for s in sink.spans
                  if s.stage.startswith("sanitize:")
                  and s.status == "failed"]
        assert [s.stage for s in failed] == ["sanitize:mangle"]
        assert any("NET-002" in note for note in failed[0].notes)
        assert "sanitize:mangle" in sink.report().by_stage

    def test_sanitizer_strict_aborts_at_stage(self, lib):
        from repro.orchestrate import run
        with pytest.raises(LintGateError) as exc:
            run(lfsr(8, lib), lib, FlowOptions(),
                dag=_three_stage_dag(), lint="strict",
                sanitize=True)
        assert exc.value.report.subject == "sanitize:mangle"

    def test_sanitizer_baseline_excludes_preexisting(self, lib):
        from repro.orchestrate import TelemetrySink, run
        nl = lfsr(8, lib)
        nl.primary_outputs.append("no_such_net")   # pre-existing
        dag = FlowDAG()
        dag.add(Stage("synthesis", _passthrough,
                      params=("subject", "library", "options"),
                      cacheable=False))
        sink = TelemetrySink()
        run(nl, lib, FlowOptions(), dag=dag, telemetry=sink,
            lint="off", sanitize=True, strict=False)
        spans = [s for s in sink.spans
                 if s.stage == "sanitize:synthesis"]
        assert spans and spans[0].status == "ok"

    def test_find_netlists_discovers_nested(self, lib):
        nl = lfsr(4, lib)

        class Bundle:
            netlist = nl

        assert [n for _, n in find_netlists(nl)] == [nl]
        assert [n for _, n in find_netlists(Bundle())] == [nl]
        assert [n for _, n in
                find_netlists({"placement": Bundle()})] == [nl]

    def test_span_notes_roundtrip_jsonl(self, tmp_path):
        from repro.orchestrate import Span, TelemetrySink
        sink = TelemetrySink()
        sink.record(Span("lint", 0.01, status="failed",
                         notes=("ERROR NET-002 [q2]: boom",)))
        path = tmp_path / "spans.jsonl"
        sink.emit_jsonl(path)
        loaded = TelemetrySink.load_jsonl(path)
        assert loaded.spans[0].notes == \
            ("ERROR NET-002 [q2]: boom",)

    def test_rundb_accepts_noted_spans(self, lib):
        from repro.learn.rundb import RunDatabase
        from repro.orchestrate import Span
        db = RunDatabase()
        db.log_telemetry("d", [Span("lint", 0.01,
                                    notes=("finding",))])
        assert db.telemetry[0].stage == "lint"


# ----------------------------------------------------------------------
# Property: optimization passes preserve lint cleanliness.


class TestLintPreservation:
    @given(st.tuples(
        st.integers(min_value=3, max_value=8),       # inputs
        st.integers(min_value=10, max_value=100),    # ands
        st.integers(min_value=1, max_value=5),       # outputs
        st.integers(min_value=0, max_value=10_000),  # seed
    ))
    @settings(max_examples=12, deadline=None)
    def test_synthesis_sizing_placement_stay_clean(self, params):
        from repro.netlist import random_aig
        from repro.place import global_place
        from repro.synthesis import map_aig
        from repro.synthesis.sizing import assign_vt, size_gates
        n, a, o, seed = params
        nl = map_aig(random_aig(n, a, o, seed=seed), LIB,
                     mode="area")
        invariants = list(INVARIANT_RULE_IDS)
        assert not lint_netlist(nl, only=invariants).findings, \
            "mapping produced a lint-dirty netlist"
        size_gates(nl)
        assign_vt(nl)
        assert not lint_netlist(nl, only=invariants).findings, \
            "sizing/Vt assignment broke a netlist invariant"
        placement = global_place(nl, seed=0, utilization=0.5)
        assert not lint_netlist(placement.netlist,
                                only=invariants).findings, \
            "placement broke a netlist invariant"


# ----------------------------------------------------------------------
# Full-flow gate on the real implement DAG stays green end to end.


class TestFullFlowStrict:
    def test_real_flow_under_strict_gate(self, lib):
        from repro.orchestrate import run
        from repro.core.flow import FlowStatus
        result = run(ripple_carry_adder(8, lib), lib,
                     FlowOptions(detailed_passes=0,
                                 routing_iterations=2),
                     lint="strict", sanitize=True)
        assert result.status in (FlowStatus.OK, FlowStatus.DEGRADED)
        assert result.lint is not None
