"""Tests for majority-inverter graphs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import random_aig
from repro.synthesis.mig import (
    MIG_FALSE,
    MIG_TRUE,
    Mig,
    aig_adder,
    lit_not,
    mig_adder,
    mig_from_aig,
)


class TestConstruction:
    def test_omega_majority_rules(self):
        g = Mig(2)
        a, b = g.input_lit(0), g.input_lit(1)
        assert g.maj_(a, a, b) == a
        assert g.maj_(b, a, b) == b
        assert g.maj_(a, lit_not(a), b) == b
        assert g.maj_(b, lit_not(b), a) == a
        assert g.num_majs == 0

    def test_constant_absorption(self):
        g = Mig(2)
        a, b = g.input_lit(0), g.input_lit(1)
        # AND and OR via constants both create one node each.
        x = g.and_(a, b)
        y = g.or_(a, b)
        assert g.num_majs == 2
        g.add_output(x)
        g.add_output(y)
        out = g.simulate_all()
        for m in range(4):
            av, bv = bool(m & 1), bool(m >> 1 & 1)
            assert out[m, 0] == (av and bv)
            assert out[m, 1] == (av or bv)

    def test_strash_canonical_under_permutation(self):
        g = Mig(3)
        a, b, c = (g.input_lit(i) for i in range(3))
        assert g.maj_(a, b, c) == g.maj_(c, a, b)
        assert g.num_majs == 1

    def test_inputs_before_majs(self):
        g = Mig(2)
        g.maj_(g.input_lit(0), g.input_lit(1), MIG_FALSE)
        with pytest.raises(ValueError):
            g.add_input("late")

    def test_bad_literal(self):
        g = Mig(1)
        with pytest.raises(ValueError):
            g.maj_(g.input_lit(0), 999, MIG_FALSE)


class TestSemantics:
    def test_majority_truth_table(self):
        g = Mig(3)
        a, b, c = (g.input_lit(i) for i in range(3))
        g.add_output(g.maj_(a, b, c))
        out = g.simulate_all()[:, 0]
        for m in range(8):
            bits = [(m >> i) & 1 for i in range(3)]
            assert out[m] == (sum(bits) >= 2)

    def test_xor_semantics(self):
        g = Mig(2)
        a, b = g.input_lit(0), g.input_lit(1)
        g.add_output(g.xor_(a, b))
        out = g.simulate_all()[:, 0]
        assert list(out) == [False, True, True, False]

    def test_constants(self):
        g = Mig(1)
        a = g.input_lit(0)
        assert g.maj_(a, MIG_FALSE, MIG_FALSE) == MIG_FALSE
        assert g.maj_(a, MIG_TRUE, MIG_TRUE) == MIG_TRUE

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=1))
    @settings(max_examples=40)
    def test_adder_correct(self, a, b, cin):
        w = 8
        mig = mig_adder(w)
        vec = np.array([[(a >> i) & 1 for i in range(w)]
                        + [(b >> i) & 1 for i in range(w)] + [cin]],
                       dtype=bool)
        out = mig.simulate(vec)[0]
        got = sum(int(v) << i for i, v in enumerate(out))
        assert got == a + b + cin


class TestConversion:
    def test_from_aig_preserves_semantics(self):
        aig = random_aig(7, 120, 5, seed=11)
        mig = mig_from_aig(aig)
        assert np.array_equal(mig.simulate_all(), aig.simulate_all())

    def test_from_aig_never_larger(self):
        aig = random_aig(8, 200, 6, seed=13)
        assert mig_from_aig(aig).num_majs <= aig.num_ands

    def test_type_check(self):
        with pytest.raises(TypeError):
            mig_from_aig("nope")


class TestDepthAndCleanup:
    def test_adder_depth_advantage(self):
        for w in (8, 16):
            assert mig_adder(w).depth() < aig_adder(w).depth() / 2

    def test_cleanup_drops_dead_nodes(self):
        g = Mig(3)
        a, b, c = (g.input_lit(i) for i in range(3))
        live = g.maj_(a, b, c)
        g.and_(a, c)  # dead
        g.add_output(live)
        assert g.num_majs == 2
        h = g.cleanup()
        assert h.num_majs == 1
        assert np.array_equal(h.simulate_all(), g.simulate_all())

    def test_levels_consistent(self):
        g = mig_adder(4)
        levels = g.levels()
        assert max(levels) == g.depth()

    def test_adder_validation(self):
        with pytest.raises(ValueError):
            mig_adder(0)
        with pytest.raises(ValueError):
            aig_adder(0)
