"""Tests for EUV economics, 3-D stack thermal, and flow self-monitoring."""

import pytest

from repro.core import FlowOptions, implement
from repro.learn import RunDatabase
from repro.litho.euv_economics import (
    compare_euv,
    euv_insertion_node,
    still_needs_opc,
)
from repro.netlist import build_library, logic_cloud
from repro.smartsys import COMPONENT_CATALOG
from repro.smartsys.stack_thermal import (
    best_stacking_order,
    stack_temperatures,
)
from repro.tech import get_node


def pick(name):
    return next(c for c in COMPONENT_CATALOG if c.name == name)


class TestEuvEconomics:
    def test_euv_loses_to_double_patterning(self):
        cmp = compare_euv("20nm")
        assert not cmp.euv_wins  # LELE is cheaper than an EUV pass

    def test_euv_wins_against_deep_multipatterning(self):
        cmp = compare_euv("7nm")
        assert cmp.euv_wins     # SAQP (4.2x) loses to EUV (3.0x)
        assert compare_euv("5nm").euv_wins

    def test_insertion_node_matches_history(self):
        # Industry inserted EUV around 7 nm; the cost model agrees.
        assert euv_insertion_node() in ("7nm", "10nm")

    def test_cheaper_euv_moves_insertion_earlier(self):
        early = euv_insertion_node(euv_cost_multiplier=2.0)
        late = euv_insertion_node(euv_cost_multiplier=4.0)
        assert get_node(early).drawn_nm >= get_node(late).drawn_nm

    def test_computational_litho_survives_euv(self):
        # Sawicki: OPC continues "even after the eventual introduction
        # of EUV" — the smallest nodes still need it.
        assert still_needs_opc("5nm")
        assert not still_needs_opc("90nm")


class TestStackThermal:
    def _dies(self):
        return [pick("mcu_m4_28"), pick("dsp_vec"), pick("accel_hi"),
                pick("adc_sar12")]

    def test_deeper_die_hotter(self):
        report = stack_temperatures(self._dies())
        order = report.order
        temps = [report.temperatures_c[n] for n in order]
        assert all(a <= b + 1e-9 for a, b in zip(temps, temps[1:]))

    def test_peak_above_ambient(self):
        report = stack_temperatures(self._dies(), ambient_c=40.0)
        assert report.peak_c > 40.0

    def test_duty_cycle_cools_the_stack(self):
        hot = stack_temperatures(self._dies(), duty_cycle=1.0)
        cool = stack_temperatures(self._dies(), duty_cycle=0.1)
        assert cool.peak_c < hot.peak_c

    def test_best_order_puts_hot_dies_near_sink(self):
        order, report = best_stacking_order(self._dies(), limit_c=200.0)
        # The hottest consumer should not sit at the bottom.
        powers = {c.name: c.active_mw for c in self._dies()}
        hottest = max(powers, key=powers.get)
        assert order.index(hottest) < len(order) - 1

    def test_best_order_beats_worst(self):
        dies = self._dies()
        _, best = best_stacking_order(dies, limit_c=500.0)
        # Reverse of the best order should be no better.
        worst = stack_temperatures(dies, list(reversed(best.order)))
        assert best.peak_c <= worst.peak_c + 1e-9

    def test_impossible_limit_raises(self):
        with pytest.raises(ValueError, match="no stacking order"):
            best_stacking_order(self._dies(), ambient_c=100.0,
                                limit_c=85.0)

    def test_order_validation(self):
        with pytest.raises(ValueError):
            stack_temperatures(self._dies(), ["mcu_m4_28"])
        with pytest.raises(ValueError):
            stack_temperatures([pick("coin_cell")])


class TestFlowSelfMonitoring:
    def test_implement_logs_to_run_db(self):
        lib = build_library(get_node("28nm"))
        db = RunDatabase()
        nl = logic_cloud(8, 8, 100, lib, seed=1)
        implement(nl, lib, FlowOptions.basic(), run_db=db)
        assert len(db) == 1
        record = db.records[0]
        assert record.qor["hpwl_um"] > 0
        assert record.knobs["era"] == "2006"
        assert "flow" in record.tags

    def test_logged_features_enable_warm_start(self):
        lib = build_library(get_node("28nm"))
        db = RunDatabase()
        for seed in (1, 2):
            nl = logic_cloud(8, 8, 100, lib, seed=seed)
            implement(nl, lib, FlowOptions.basic(), run_db=db)
        nl = logic_cloud(8, 8, 100, lib, seed=3)
        from repro.learn import design_features
        best = db.best_knobs(design_features(nl), "hpwl_um")
        assert best is not None
        assert "spreading_passes" in best
