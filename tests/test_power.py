"""Tests for power analysis, techniques, intent, grid, and dark silicon."""

import numpy as np
import pytest

from repro.netlist import Netlist, build_library, registered_cloud
from repro.netlist.generators import logic_cloud
from repro.power import (
    ActivityEstimator,
    DarkSiliconModel,
    PowerGrid,
    PowerDomain,
    PowerIntent,
    dark_silicon_fraction,
    insert_decaps,
    power_report,
    technique_ladder,
)
from repro.power.grid import power_density_map, spread_hotspots
from repro.power.intent import scores_of_domains_intent
from repro.power.techniques import (
    apply_clock_gating,
    apply_dvfs,
    apply_power_gating,
)
from repro.tech import get_node


@pytest.fixture(scope="module")
def lib65():
    return build_library(get_node("65nm"), vt_flavors=("rvt", "hvt"))


@pytest.fixture(scope="module")
def design(lib65):
    return registered_cloud(8, 32, 250, lib65, seed=1)


class TestActivity:
    def test_rates_in_unit_interval(self, design):
        rates = ActivityEstimator(design, patterns=64).estimate()
        assert rates
        assert all(0.0 <= r <= 1.0 for r in rates.values())

    def test_input_activity_zero_means_no_toggles(self, lib65):
        nl = logic_cloud(8, 4, 60, lib65, seed=2)
        rates = ActivityEstimator(nl, input_activity=0.0,
                                  patterns=64).estimate()
        assert all(r == 0.0 for r in rates.values())

    def test_higher_input_activity_more_toggles(self, lib65):
        nl = logic_cloud(8, 4, 60, lib65, seed=2)
        low = ActivityEstimator(nl, input_activity=0.1,
                                patterns=256).estimate()
        high = ActivityEstimator(nl, input_activity=0.9,
                                 patterns=256).estimate()
        assert sum(high.values()) > sum(low.values())

    def test_bad_activity_rejected(self, design):
        with pytest.raises(ValueError):
            ActivityEstimator(design, input_activity=1.5)


class TestPowerReport:
    def test_components_positive(self, design):
        rep = power_report(design, freq_ghz=0.5)
        assert rep.dynamic_uw > 0
        assert rep.leakage_uw > 0
        assert rep.clock_uw > 0
        assert rep.total_uw == pytest.approx(
            rep.dynamic_uw + rep.leakage_uw + rep.clock_uw)

    def test_dynamic_scales_with_frequency(self, design):
        r1 = power_report(design, freq_ghz=0.5, seed=3)
        r2 = power_report(design, freq_ghz=1.0, seed=3)
        assert r2.dynamic_uw == pytest.approx(2 * r1.dynamic_uw, rel=0.01)
        assert r2.leakage_uw == pytest.approx(r1.leakage_uw)

    def test_vdd_scaling_quadratic_on_dynamic(self, design, lib65):
        nominal = lib65.node.vdd
        r1 = power_report(design, freq_ghz=0.5, vdd=nominal, seed=3)
        r2 = power_report(design, freq_ghz=0.5, vdd=nominal / 2, seed=3)
        assert r2.dynamic_uw == pytest.approx(r1.dynamic_uw / 4, rel=0.01)

    def test_clock_gating_reduces_clock_power(self, design):
        r0 = power_report(design, freq_ghz=0.5, seed=3)
        r1 = power_report(design, freq_ghz=0.5, seed=3,
                          clock_gated_fraction=0.5)
        assert r1.clock_uw == pytest.approx(r0.clock_uw / 2, rel=0.01)

    def test_static_fraction_rises_at_leaky_nodes(self, lib65):
        lib180 = build_library(get_node("180nm"))
        old = logic_cloud(8, 4, 150, lib180, seed=4)
        new = logic_cloud(8, 4, 150, lib65, seed=4)
        f_old = power_report(old, freq_ghz=0.2).static_fraction
        f_new = power_report(new, freq_ghz=0.2).static_fraction
        assert f_new > f_old  # the 130 nm-era leakage explosion

    def test_summary_string(self, design):
        assert "uW" in power_report(design).summary()


class TestTechniques:
    def test_ladder_monotone_nonincreasing(self, design):
        ladder = technique_ladder(design)
        totals = [uw for _, uw in ladder.totals()]
        assert all(a >= b - 1e-9 for a, b in zip(totals, totals[1:]))
        assert ladder.reduction_factor() >= 1.0

    def test_ladder_names(self, design):
        names = [n for n, _ in technique_ladder(design).totals()]
        assert names == ["baseline", "clock_gating", "dvfs",
                         "power_gating"]

    def test_power_gating_bounds(self):
        assert apply_power_gating(0.0) == pytest.approx(1.0, abs=0.02)
        assert apply_power_gating(1.0) < 0.1
        with pytest.raises(ValueError):
            apply_power_gating(1.5)

    def test_dvfs_lowers_voltage_when_slack(self):
        f, v = apply_dvfs(0.5, 2.0, vdd_nominal=1.0)
        assert f == 0.5
        assert v < 1.0
        f2, v2 = apply_dvfs(3.0, 2.0, vdd_nominal=1.0)
        assert (f2, v2) == (2.0, 1.0)

    def test_dvfs_respects_vmin(self):
        _, v = apply_dvfs(0.01, 10.0, vdd_nominal=1.0, vdd_min=0.6)
        assert v == 0.6

    def test_clock_gating_fraction_bounds(self, design):
        cg = apply_clock_gating(design)
        assert 0.0 <= cg["gated_fraction"] <= 1.0
        assert 0.0 < cg["effective_clock_scale"] <= 1.0


class TestPowerIntent:
    def test_domain_validation(self):
        with pytest.raises(ValueError):
            PowerDomain("bad", -1.0)
        with pytest.raises(ValueError):
            PowerDomain("bad", 1.0, switchable=True, always_on=True)

    def test_isolation_required_for_switchable_source(self):
        intent = PowerIntent()
        intent.add_domain(PowerDomain("cpu", 1.0, switchable=True))
        intent.add_domain(PowerDomain("aon", 1.0, always_on=True))
        intent.connect("cpu", "aon")
        violations = intent.check()
        assert len(violations) == 1
        assert violations[0].kind == "isolation"

    def test_level_shifter_required_for_voltage_gap(self):
        intent = PowerIntent()
        intent.add_domain(PowerDomain("hi", 1.2))
        intent.add_domain(PowerDomain("lo", 0.8))
        intent.connect("hi", "lo")
        violations = intent.check()
        assert any(v.kind == "level_shifter" for v in violations)

    def test_small_gap_needs_no_shifter(self):
        intent = PowerIntent()
        intent.add_domain(PowerDomain("a", 1.00))
        intent.add_domain(PowerDomain("b", 0.95))
        intent.connect("a", "b")
        assert intent.check() == []

    def test_auto_protect_clears_all(self):
        intent = scores_of_domains_intent(24)
        assert intent.domain_count() == 24
        assert len(intent.check()) > 0
        intent.auto_protect()
        assert intent.check() == []

    def test_duplicate_domain_rejected(self):
        intent = PowerIntent()
        intent.add_domain(PowerDomain("a", 1.0))
        with pytest.raises(ValueError):
            intent.add_domain(PowerDomain("a", 1.0))

    def test_unknown_domain_in_connect(self):
        intent = PowerIntent()
        intent.add_domain(PowerDomain("a", 1.0))
        with pytest.raises(KeyError):
            intent.connect("a", "ghost")

    def test_overhead_counts_protections(self):
        intent = scores_of_domains_intent(10)
        intent.auto_protect()
        assert intent.protection_cell_overhead() > 0


class TestPowerGrid:
    def _grid(self, watts=3e6, hot=((5, 5), (6, 6))):
        pm = power_density_map(12, 12, watts, hotspot_tiles=list(hot),
                               hotspot_multiplier=6, seed=0)
        g = PowerGrid(12, 12, vdd=0.9)
        g.set_current_from_power(pm)
        return g

    def test_solve_produces_positive_drops(self):
        report = self._grid().solve()
        assert report.worst_drop_mv > 0
        assert report.drop_mv.shape == (12, 12)

    def test_hotspots_at_hot_tiles(self):
        report = self._grid(watts=4e6).solve()
        assert report.violation_count > 0
        worst = report.worst_tile()
        assert abs(worst[0] - 5.5) <= 2 and abs(worst[1] - 5.5) <= 2

    def test_more_power_more_drop(self):
        r1 = self._grid(watts=2e6).solve()
        r2 = self._grid(watts=6e6).solve()
        assert r2.worst_drop_mv > r1.worst_drop_mv

    def test_decap_insertion_reduces_violations(self):
        g = self._grid(watts=4e6)
        before = g.solve()
        plan = insert_decaps(g, budget_ff=300000, step_ff=5000)
        after = g.solve()
        assert plan.count() > 0
        assert after.violation_count <= before.violation_count
        assert after.worst_drop_mv < before.worst_drop_mv

    def test_spreading_reduces_drop(self):
        g = self._grid(watts=5e6)
        before = g.solve()
        moves = spread_hotspots(g, iterations=100)
        after = g.solve()
        assert moves > 0
        assert after.worst_drop_mv < before.worst_drop_mv

    def test_decap_budget_respected(self):
        g = self._grid(watts=6e6)
        plan = insert_decaps(g, budget_ff=10000, step_ff=5000)
        assert plan.total_cap_ff <= 10000

    def test_shape_mismatch_rejected(self):
        g = PowerGrid(4, 4, vdd=1.0)
        with pytest.raises(ValueError):
            g.set_current_from_power(np.zeros((3, 3)))

    def test_degenerate_grid_rejected(self):
        with pytest.raises(ValueError):
            PowerGrid(1, 5, vdd=1.0)


class TestDarkSilicon:
    def test_dark_fraction_grows_at_advanced_nodes(self):
        model = DarkSiliconModel(tdp_w_per_mm2=0.15, activity=0.25)
        dark = {n: model.dark_fraction(n)
                for n in ("90nm", "28nm", "10nm", "5nm")}
        assert dark["5nm"] > dark["10nm"] >= dark["28nm"]

    def test_techniques_recover_lit_area(self):
        raw = dark_silicon_fraction("10nm", tdp_w_per_mm2=0.15,
                                    activity=0.25)
        helped = dark_silicon_fraction("10nm", tdp_w_per_mm2=0.15,
                                       activity=0.25,
                                       power_technique_factor=0.25)
        assert helped < raw

    def test_lit_fraction_bounds(self):
        model = DarkSiliconModel(tdp_w_per_mm2=100.0)
        assert model.lit_fraction("180nm") == 1.0
        with pytest.raises(ValueError):
            model.lit_fraction("28nm", power_technique_factor=0)
