"""Tests for the whole-flow engine registry (PR 10).

Every flow stage — synthesis, placement, CTS, routing, sizing — now
resolves through :mod:`repro.engines`.  Covered here: registry
round-trips for all five stages, deprecation aliases and did-you-mean
hints for the new stages, ``FlowOptions`` construction-time validation
of the new knobs, bit-identical default-flow results versus the
pre-refactor hard-coded paths (replicated inline), stage cache-key
sensitivity to each new engine knob, journal resume across an engine
rename, the ``axes()``/``engine_space()``/``engine_grid_options()``
ablation-grid plumbing, and the ``python -m repro.engines`` CLI.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.flow import FlowOptions
from repro.engines import (
    UnknownEngineError,
    axes,
    default_engine,
    engine_names,
    get_engine,
    resolve_engine,
    stage_aliases,
    stage_names,
)
from repro.learn.tuner import engine_space
from repro.netlist import build_library, registered_cloud
from repro.netlist.generators import random_aig
from repro.orchestrate import (
    ChaosPolicy,
    ResultCache,
    TelemetrySink,
    WorkerCrash,
    engine_grid_options,
    resume_run,
    run,
    run_sweep,
)
from repro.synthesis.flow import SynthesisFlow
from repro.tech import get_node

ALL_STAGES = ("synthesis", "placement", "cts", "routing", "sizing")

QUICK = dict(spreading_passes=1, detailed_passes=0,
             routing_iterations=1)


@pytest.fixture(scope="module")
def lib():
    return build_library(get_node("28nm"),
                         vt_flavors=("lvt", "rvt", "hvt"))


def seq_design(lib, seed=3, flops=16, gates=120):
    # Fresh per call: the flow mutates its subject (scan insertion).
    return registered_cloud(8, flops, gates, lib, seed=seed)


def qor(result):
    return (result.delay_ps, result.power_uw, result.hpwl_um,
            result.routed_wirelength, result.overflow,
            result.instances, result.area_um2)


# ----------------------------------------------------------------------
# Registry round-trip: all five stages


class TestFiveStages:
    def test_every_stage_registered(self):
        assert set(ALL_STAGES) <= set(stage_names())
        assert axes() == {s: engine_names(s) for s in stage_names()}

    def test_expected_engines_and_defaults(self):
        assert engine_names("synthesis") == ("area", "delay",
                                             "trivial")
        assert engine_names("cts") == ("htree", "spine")
        assert engine_names("sizing") == ("incremental", "scalar")
        assert default_engine("synthesis") == "area"
        assert default_engine("cts") == "htree"
        assert default_engine("sizing") == "incremental"

    @pytest.mark.parametrize("stage", ALL_STAGES)
    def test_round_trip_every_engine(self, stage):
        for name in engine_names(stage):
            spec = get_engine(stage, name)
            assert spec.stage == stage and spec.name == name
            assert callable(spec.load())
            assert resolve_engine(stage, name) is spec
        assert default_engine(stage) in engine_names(stage)

    @pytest.mark.parametrize("stage", ALL_STAGES)
    def test_lenient_fallback_per_stage(self, stage):
        with pytest.warns(DeprecationWarning):
            spec = resolve_engine(stage, "engine-retired-long-ago")
        assert spec.name == default_engine(stage)


# ----------------------------------------------------------------------
# Aliases, hints, and early FlowOptions validation


class TestAliasesAndValidation:
    @pytest.mark.parametrize("stage,old,new", [
        ("synthesis", "min_area", "area"),
        ("synthesis", "min_delay", "delay"),
        ("cts", "naive_spine", "spine"),
        ("cts", "bisection", "htree"),
        ("sizing", "journaled", "incremental"),
        ("sizing", "full_sta", "scalar"),
    ])
    def test_alias_resolves_with_deprecation(self, stage, old, new):
        assert stage_aliases(stage)[old] == new
        with pytest.deprecated_call(match=new):
            assert get_engine(stage, old).name == new

    def test_typo_gets_did_you_mean_hint(self):
        with pytest.raises(UnknownEngineError,
                           match=r"did you mean 'htree'"):
            get_engine("cts", "h-tree")
        with pytest.raises(UnknownEngineError,
                           match=r"did you mean 'incremental'"):
            get_engine("sizing", "incrmental")
        with pytest.raises(UnknownEngineError,
                           match=r"did you mean 'trivial'"):
            get_engine("synthesis", "trivail")

    def test_flow_options_reject_typos_early(self):
        with pytest.raises(ValueError, match="synth_engine"):
            FlowOptions(synth_engine="aera")
        with pytest.raises(ValueError, match="cts_engine"):
            FlowOptions(cts_engine="h-tree")
        with pytest.raises(ValueError, match="sizing_engine"):
            FlowOptions(sizing_engine="scaler")

    def test_flow_options_canonicalize_new_aliases(self):
        with pytest.deprecated_call():
            opts = FlowOptions(cts_engine="naive_spine",
                               sizing_engine="journaled",
                               synth_engine="min_area")
        assert opts.cts_engine == "spine"
        assert opts.sizing_engine == "incremental"
        assert opts.synth_engine == "area"

    def test_synthesis_flow_rejects_typo_in_constructor(self, lib):
        with pytest.raises(UnknownEngineError, match="synthesis"):
            SynthesisFlow(lib, engine="aera")
        with pytest.raises(UnknownEngineError, match="sizing"):
            SynthesisFlow(lib, sizing_engine="scaler")


# ----------------------------------------------------------------------
# Bit-identical default paths (before/after the refactor)


class TestDefaultParity:
    def test_default_mapper_matches_legacy_map_aig(self, lib):
        """The registry's default synthesis path reproduces the old
        hard-coded ``map_aig``/``size_gates``/``assign_vt`` sequence
        bit-for-bit (compared by canonical content digest)."""
        from repro.synthesis.mapping import map_aig
        from repro.synthesis.sizing import assign_vt, size_gates
        from repro.synthesis.rewrite import optimize_aig
        from repro.synthesis.network import LogicNetwork
        from repro.timing import WireModel

        def subject():
            return random_aig(8, 80, 4, seed=17)

        # The pre-refactor 2016-era body, replicated inline.
        wm = WireModel.for_node(lib.node)
        network = LogicNetwork.from_aig(subject())
        network.optimize(effort="high")
        aig = optimize_aig(network.to_aig(), effort="high")
        legacy = map_aig(aig, lib, mode="area", cut_size=4)
        size_gates(legacy, wire_model=wm, clock_period_ps=2000.0)
        assign_vt(legacy, wire_model=wm, clock_period_ps=2000.0)

        res = SynthesisFlow(lib, "2016", 2000.0).run(subject())
        assert res.netlist.to_packed().content_digest() == \
            legacy.to_packed().content_digest()

    def test_default_cts_matches_legacy_call(self, lib):
        from repro.place import global_place
        from repro.timing.cts import synthesize_clock_tree
        placed = global_place(seq_design(lib, flops=24, gates=160),
                              seed=0)
        kernel = resolve_engine("cts", "htree").load()
        via_registry = kernel(placed)
        direct = synthesize_clock_tree(placed)
        assert via_registry.sink_delays == direct.sink_delays
        assert via_registry.wirelength_um == direct.wirelength_um

    def test_default_flow_identical_to_explicit_engines(self, lib):
        """Named-default engines and implicit defaults are the same
        flow: sign-off-identical FlowResults."""
        implicit = run(seq_design(lib), lib,
                       FlowOptions(scan=True, cts=True, **QUICK))
        explicit = run(seq_design(lib), lib,
                       FlowOptions(scan=True, cts=True,
                                   synth_engine="area",
                                   place_engine="analytic",
                                   cts_engine="htree",
                                   routing_engine="batched",
                                   sizing_engine="incremental",
                                   **QUICK))
        assert qor(implicit) == qor(explicit)
        assert implicit.clock_skew_ps == explicit.clock_skew_ps

    def test_sizing_engines_bit_identical(self, lib):
        inc = SynthesisFlow(lib, "2016", 1000.0,
                            sizing_engine="incremental") \
            .run(random_aig(8, 80, 4, seed=9))
        sca = SynthesisFlow(lib, "2016", 1000.0,
                            sizing_engine="scalar") \
            .run(random_aig(8, 80, 4, seed=9))
        assert inc.netlist.to_packed().content_digest() == \
            sca.netlist.to_packed().content_digest()
        assert inc.delay_ps == sca.delay_ps

    def test_cts_engines_actually_differ(self, lib):
        opts = dict(cts=True, **QUICK)
        htree = run(seq_design(lib, flops=32, gates=200), lib,
                    FlowOptions(cts_engine="htree", **opts))
        spine = run(seq_design(lib, flops=32, gates=200), lib,
                    FlowOptions(cts_engine="spine", **opts))
        assert htree.clock_tree is not None
        assert spine.clock_tree is not None
        assert htree.clock_skew_ps < spine.clock_skew_ps


# ----------------------------------------------------------------------
# Cache keys: each new knob invalidates exactly its stage


class TestCacheKeys:
    def _span(self, lib, cache, stage, **kw):
        sink = TelemetrySink()
        run(seq_design(lib), lib, FlowOptions(cts=True, **QUICK, **kw),
            cache=cache, telemetry=sink)
        return next(s for s in sink.spans if s.stage == stage)

    @pytest.mark.parametrize("stage,knob,other", [
        ("synthesis", "synth_engine", "delay"),
        ("synthesis", "sizing_engine", "scalar"),
        ("cts", "cts_engine", "spine"),
    ])
    def test_engine_knob_in_stage_cache_key(self, lib, stage, knob,
                                            other):
        cache = ResultCache()
        assert self._span(lib, cache, stage).cache != "hit"
        # Same options again: the stage must replay from cache.
        assert self._span(lib, cache, stage).cache == "hit"
        # Flipping the engine knob must miss — then hit once cached.
        assert self._span(lib, cache, stage,
                          **{knob: other}).cache != "hit"
        assert self._span(lib, cache, stage,
                          **{knob: other}).cache == "hit"


# ----------------------------------------------------------------------
# Journal resume across an engine rename


class TestJournalResume:
    def test_resume_executes_retired_alias_leniently(self, lib,
                                                     tmp_path):
        """A journal written when ``naive_spine`` was the canonical
        name must resume after the rename: the cut stage re-executes
        through the alias shim instead of failing the replay."""
        options = FlowOptions(cts=True, **QUICK)
        # Simulate the old build's record: bypass construction-time
        # canonicalization the way an unpickled journal blob does.
        options.cts_engine = "naive_spine"
        with pytest.raises(WorkerCrash, match="cts"):
            run(seq_design(lib), lib, options,
                journal_root=tmp_path, run_id="renamed",
                chaos=ChaosPolicy(seed=1, crash_stages=("cts",)))
        with pytest.warns(DeprecationWarning, match="spine"):
            resumed = resume_run("renamed", journal_root=tmp_path)
        assert str(resumed.status) in ("ok", "resumed")
        assert resumed.clock_tree is not None
        # The lenient path produced the successor engine's tree.
        clean = run(seq_design(lib), lib,
                    FlowOptions(cts=True, cts_engine="spine",
                                **QUICK))
        assert resumed.clock_skew_ps == clean.clock_skew_ps

    def test_fully_unknown_engine_falls_back_to_default(self, lib):
        options = FlowOptions(cts=True, **QUICK)
        options.cts_engine = "engine-nobody-remembers"
        with pytest.warns(DeprecationWarning, match="htree"):
            result = run(seq_design(lib), lib, options)
        clean = run(seq_design(lib), lib,
                    FlowOptions(cts=True, **QUICK))
        assert result.clock_skew_ps == clean.clock_skew_ps


# ----------------------------------------------------------------------
# The ablation grid: axes() -> engine_space -> run_sweep


class TestAblationGrid:
    def test_engine_space_grid_shape(self):
        space = engine_space(("synthesis", "cts", "sizing"))
        grid = space.grid()
        assert len(grid) == 3 * 2 * 2
        assert {tuple(sorted(g)) for g in grid} == {
            ("cts_engine", "sizing_engine", "synth_engine")}
        # Entries splat straight into FlowOptions.
        for knobs in grid:
            FlowOptions(**knobs)

    def test_engine_space_unknown_stage_raises(self):
        with pytest.raises(ValueError):
            engine_space(("no-such-stage",))

    def test_sweep_ablates_synthesis_x_cts_x_sizing(self, lib):
        """The acceptance-criteria sweep: every synthesis×CTS×sizing
        combination runs through ``run_sweep`` from one
        ``axes()``-derived grid."""
        options_list = engine_grid_options(
            stages=("synthesis", "cts", "sizing"), cts=True, **QUICK)
        assert len(options_list) == 12
        aig = random_aig(8, 60, 4, seed=5)
        sweep = run_sweep(aig, lib, options_list)
        assert len(sweep.results) == 12
        assert all(str(r.status) == "ok" for r in sweep.results)
        # The synthesis axis is a real ablation: different mappers
        # give different mapped netlists.
        by_mapper = {}
        for opts, res in zip(options_list, sweep.results):
            by_mapper.setdefault(opts.synth_engine,
                                 set()).add(res.instances)
        assert len({min(v) for v in by_mapper.values()}) >= 2


# ----------------------------------------------------------------------
# The catalog CLI


class TestEnginesCli:
    def _run(self, *args):
        src = str(Path(__file__).resolve().parent.parent / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.engines", *args],
            capture_output=True, text=True, env={"PYTHONPATH": src})

    def test_text_lists_all_stages_and_aliases(self):
        proc = self._run()
        assert proc.returncode == 0
        for stage in ALL_STAGES:
            assert stage in proc.stdout
        assert "naive_spine" in proc.stdout
        assert "deprecated" in proc.stdout
        assert "* htree" in proc.stdout       # default marker

    def test_json_catalog_matches_registry(self):
        proc = self._run("--json")
        assert proc.returncode == 0
        data = json.loads(proc.stdout)
        assert set(ALL_STAGES) <= set(data)
        assert data["cts"]["default"] == "htree"
        names = [e["name"] for e in data["sizing"]["engines"]]
        assert names == list(engine_names("sizing"))
        aliases = {a["name"]: a["use"]
                   for a in data["cts"]["aliases"]}
        assert aliases["naive_spine"] == "spine"
        assert all(a["deprecated"]
                   for a in data["cts"]["aliases"])

    def test_single_stage_and_unknown_stage(self):
        proc = self._run("sizing")
        assert proc.returncode == 0
        assert "incremental" in proc.stdout
        assert "placement" not in proc.stdout
        bad = self._run("no-such-stage")
        assert bad.returncode == 2
        assert "unknown stage" in bad.stderr
