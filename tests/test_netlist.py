"""Tests for cell libraries, netlists, generators, and hierarchy."""

import numpy as np
import pytest

from repro.netlist import (
    Netlist,
    build_library,
    carry_lookahead_adder,
    crossbar_switch,
    flatten,
    hierarchical_soc,
    implement_by_block,
    lfsr,
    logic_cloud,
    multiplier,
    registered_cloud,
    ripple_carry_adder,
)
from repro.tech import get_node


@pytest.fixture(scope="module")
def lib28():
    return build_library(get_node("28nm"), vt_flavors=("lvt", "rvt", "hvt"))


@pytest.fixture(scope="module")
def lib180():
    return build_library(get_node("180nm"))


class TestCellLibrary:
    def test_drive_variants_scale_cap_and_resistance(self, lib28):
        x1 = lib28["NAND2_X1_rvt"]
        x4 = lib28["NAND2_X4_rvt"]
        assert x4.input_cap_ff == pytest.approx(4 * x1.input_cap_ff)
        assert x4.drive_res_kohm < x1.drive_res_kohm
        assert x4.area_um2 > x1.area_um2

    def test_vt_flavors_trade_speed_for_leakage(self, lib28):
        lvt = lib28["INV_X1_lvt"]
        rvt = lib28["INV_X1_rvt"]
        hvt = lib28["INV_X1_hvt"]
        assert lvt.leak_nw > rvt.leak_nw > hvt.leak_nw
        assert lvt.drive_res_kohm < rvt.drive_res_kohm < hvt.drive_res_kohm

    def test_delay_model_monotone_in_load(self, lib28):
        c = lib28["NAND2_X1_rvt"]
        assert c.delay_ps(10) > c.delay_ps(1) > 0
        with pytest.raises(ValueError):
            c.delay_ps(-1)

    def test_cell_functions_correct(self, lib28):
        nand = lib28["NAND2_X1_rvt"].function
        assert nand.minterms() == [0, 1, 2]
        aoi = lib28["AOI21_X1_rvt"].function
        # Y = !((A&B) | C): true minterms are c=0 and not(a&b).
        assert aoi.minterms() == [0, 1, 2]
        mux = lib28["MUX2_X1_rvt"].function
        assert mux.minterms() == [1, 3, 6, 7]

    def test_sequential_cells(self, lib28):
        dff = lib28.flop()
        sdff = lib28.flop(scan=True)
        assert dff.is_sequential and not dff.is_scan
        assert sdff.is_scan
        assert sdff.area_um2 > dff.area_um2
        assert set(sdff.inputs) == {"D", "SI", "SE"}

    def test_scaling_across_nodes(self, lib28, lib180):
        a28 = lib28["NAND2_X1_rvt"].area_um2
        a180 = lib180["NAND2_X1_rvt"].area_um2
        assert a180 / a28 > 10  # cells shrink dramatically

    def test_cheapest_and_variants(self, lib28):
        vs = lib28.variants("INV")
        assert len(vs) == 9  # 3 drives x 3 vts
        cheapest = lib28.cheapest("INV")
        assert all(cheapest.area_um2 <= v.area_um2 for v in vs)

    def test_unknown_cell_raises(self, lib28):
        with pytest.raises(KeyError, match="28nm"):
            lib28["FOO_X1"]


class TestNetlistStructure:
    def test_duplicate_driver_rejected(self, lib28):
        nl = Netlist("t", lib28)
        a = nl.add_input("a")
        b = nl.add_input("b")
        nl.add_gate("AND2_X1_rvt", [a, b], "y")
        with pytest.raises(ValueError):
            nl.add_gate("OR2_X1_rvt", [a, b], "y")
        with pytest.raises(ValueError):
            nl.add_input("a")

    def test_wrong_input_count(self, lib28):
        nl = Netlist("t", lib28)
        a = nl.add_input("a")
        with pytest.raises(ValueError):
            nl.add_gate("AND2_X1_rvt", [a])

    def test_validate_catches_undriven(self, lib28):
        nl = Netlist("t", lib28)
        a = nl.add_input("a")
        g = nl.add_gate("INV_X1_rvt", [a], "y")
        g.pins["A"] = "ghost"
        with pytest.raises(ValueError, match="ghost"):
            nl.validate()

    def test_topological_order_respects_deps(self, lib28):
        nl = Netlist("t", lib28)
        a = nl.add_input("a")
        y1 = nl.add_gate("INV_X1_rvt", [a], "y1").output
        y2 = nl.add_gate("INV_X1_rvt", [y1], "y2").output
        nl.add_gate("INV_X1_rvt", [y2], "y3")
        order = [g.output for g in nl.topological_gates()]
        assert order.index("y1") < order.index("y2") < order.index("y3")

    def test_cycle_detection(self, lib28):
        nl = Netlist("t", lib28)
        a = nl.add_input("a")
        g1 = nl.add_gate("AND2_X1_rvt", [a, a], "x")
        g2 = nl.add_gate("INV_X1_rvt", ["x"], "y")
        nl.rewire_pin(g1.name, "B", "y")
        with pytest.raises(ValueError, match="cycle"):
            nl.topological_gates()

    def test_loads_and_fanout_map(self, lib28):
        nl = Netlist("t", lib28)
        a = nl.add_input("a")
        nl.add_gate("INV_X1_rvt", [a], "y1")
        nl.add_gate("INV_X1_rvt", [a], "y2")
        assert len(nl.loads_of("a")) == 2
        assert len(nl.fanout_map()["a"]) == 2

    def test_area_and_leakage_sums(self, lib28):
        nl = Netlist("t", lib28)
        a = nl.add_input("a")
        g = nl.add_gate("INV_X1_rvt", [a], "y")
        assert nl.area_um2() == pytest.approx(g.cell.area_um2)
        assert nl.leakage_nw() == pytest.approx(g.cell.leak_nw)

    def test_remove_gate_frees_net(self, lib28):
        nl = Netlist("t", lib28)
        a = nl.add_input("a")
        g = nl.add_gate("INV_X1_rvt", [a], "y")
        nl.remove_gate(g.name)
        nl.add_gate("BUF_X1_rvt", [a], "y")  # net y is free again


class TestArithmeticGenerators:
    @pytest.mark.parametrize("width", [1, 4, 8])
    def test_rca_adds_correctly(self, lib28, width):
        nl = ripple_carry_adder(width, lib28)
        nl.validate()
        rng = np.random.default_rng(0)
        for _ in range(10):
            a = int(rng.integers(0, 1 << width))
            b = int(rng.integers(0, 1 << width))
            cin = int(rng.integers(0, 2))
            vec = np.array([[(a >> i) & 1 for i in range(width)]
                            + [(b >> i) & 1 for i in range(width)]
                            + [cin]], dtype=bool)
            out = nl.simulate(vec)[0]
            got = sum(int(v) << i for i, v in enumerate(out))
            assert got == a + b + cin

    @pytest.mark.parametrize("width,group", [(8, 4), (8, 2), (12, 4)])
    def test_cla_matches_rca(self, lib28, width, group):
        cla = carry_lookahead_adder(width, lib28, group=group)
        cla.validate()
        rng = np.random.default_rng(1)
        for _ in range(10):
            a = int(rng.integers(0, 1 << width))
            b = int(rng.integers(0, 1 << width))
            vec = np.array([[(a >> i) & 1 for i in range(width)]
                            + [(b >> i) & 1 for i in range(width)]
                            + [0]], dtype=bool)
            out = cla.simulate(vec)[0]
            got = sum(int(v) << i for i, v in enumerate(out))
            assert got == a + b

    def test_multiplier_correct(self, lib28):
        nl = multiplier(4, lib28)
        nl.validate()
        for a in range(0, 16, 3):
            for b in range(0, 16, 5):
                vec = np.array([[(a >> i) & 1 for i in range(4)]
                                + [(b >> i) & 1 for i in range(4)]],
                               dtype=bool)
                out = nl.simulate(vec)[0]
                got = sum(int(v) << i for i, v in enumerate(out))
                assert got == a * b

    def test_generators_reject_degenerate(self, lib28):
        with pytest.raises(ValueError):
            ripple_carry_adder(0, lib28)
        with pytest.raises(ValueError):
            multiplier(0, lib28)
        with pytest.raises(ValueError):
            logic_cloud(1, 1, 10, lib28)


class TestCloudGenerators:
    def test_cloud_deterministic_given_seed(self, lib28):
        a = logic_cloud(8, 8, 100, lib28, seed=3)
        b = logic_cloud(8, 8, 100, lib28, seed=3)
        assert [g.cell.name for g in a.gates.values()] == \
               [g.cell.name for g in b.gates.values()]

    def test_cloud_different_seeds_differ(self, lib28):
        a = logic_cloud(8, 8, 100, lib28, seed=3)
        b = logic_cloud(8, 8, 100, lib28, seed=4)
        assert [g.cell.name for g in a.gates.values()] != \
               [g.cell.name for g in b.gates.values()]

    def test_cloud_size(self, lib28):
        nl = logic_cloud(16, 8, 250, lib28, seed=0)
        assert nl.num_instances() == 250
        assert len(nl.primary_outputs) == 8
        nl.validate()

    def test_registered_cloud_has_flops(self, lib28):
        nl = registered_cloud(8, 32, 200, lib28, seed=0)
        nl.validate()
        assert len(nl.sequential_gates()) == 32

    def test_registered_cloud_next_state_runs(self, lib28):
        nl = registered_cloud(4, 8, 50, lib28, seed=0)
        vec = np.zeros((3, 4), dtype=bool)
        state = np.zeros((3, 8), dtype=bool)
        nxt = nl.next_state(vec, state)
        assert nxt.shape == (3, 8)

    def test_crossbar_routes_data(self, lib28):
        # With all select lines 0 every output should mirror input port 0.
        nl = crossbar_switch(4, 4, lib28)
        nl.validate()
        npins = len(nl.primary_inputs)
        vec = np.zeros((2, npins), dtype=bool)
        # Set input port 0 data to 1010.
        for b, v in enumerate([1, 0, 1, 0]):
            idx = nl.primary_inputs.index(f"in0_{b}")
            vec[0, idx] = bool(v)
        out = nl.simulate(vec)
        # Outputs are grouped per port; port o bit b at position o*4+b.
        for o in range(4):
            got = [int(out[0, o * 4 + b]) for b in range(4)]
            assert got == [1, 0, 1, 0]

    def test_lfsr_cycles(self, lib28):
        nl = lfsr(4, lib28)
        nl.validate()
        state = np.array([[1, 0, 0, 0]], dtype=bool)
        seen = set()
        vec = np.zeros((1, 1), dtype=bool)
        for _ in range(20):
            seen.add(tuple(int(v) for v in state[0]))
            state = nl.next_state(vec, state)
        assert len(seen) > 4  # walks through multiple states


class TestHierarchy:
    def test_flat_equals_hier_minus_buffers(self, lib28):
        soc = hierarchical_soc(3, 60, lib28, seed=9, bus_width=8)
        flat = flatten(soc)
        hier = implement_by_block(soc)
        flat.validate()
        hier.validate()
        boundary = soc.boundary_port_count()
        assert hier.num_instances() == flat.num_instances() + boundary
        assert hier.area_um2() > flat.area_um2()

    def test_flat_and_hier_functionally_equivalent(self, lib28):
        soc = hierarchical_soc(2, 40, lib28, seed=11, bus_width=4)
        flat = flatten(soc)
        hier = implement_by_block(soc)
        rng = np.random.default_rng(0)
        vec = rng.random((16, len(flat.primary_inputs))) < 0.5
        assert np.array_equal(flat.simulate(vec), hier.simulate(vec))

    def test_duplicate_module_rejected(self, lib28):
        from repro.netlist import Design, Module
        soc = Design("d", lib28)
        m = Module("m", logic_cloud(4, 4, 10, lib28, seed=0))
        soc.add_module(m)
        with pytest.raises(ValueError):
            soc.add_module(m)

    def test_unknown_module_rejected(self, lib28):
        from repro.netlist import Design, Instance
        soc = Design("d", lib28)
        with pytest.raises(KeyError):
            soc.add_instance(Instance("u", "nope", {}, {}))
