"""Tests for static timing analysis."""

import pytest

from repro.netlist import Netlist, build_library
from repro.netlist.generators import registered_cloud, ripple_carry_adder
from repro.tech import get_node
from repro.timing import TimingAnalyzer, TimingReport, WireModel, critical_path


@pytest.fixture(scope="module")
def lib():
    return build_library(get_node("28nm"))


def inv_chain(lib, n):
    nl = Netlist("chain", lib)
    net = nl.add_input("a")
    for i in range(n):
        net = nl.add_gate("INV_X1_rvt", [net], f"n{i}").output
    nl.add_output(net)
    return nl


class TestArrivalPropagation:
    def test_chain_delay_additive(self, lib):
        r1 = critical_path(inv_chain(lib, 1))
        r5 = critical_path(inv_chain(lib, 5))
        assert r5.critical_delay_ps == pytest.approx(
            5 * r1.critical_delay_ps, rel=0.3)
        assert r5.critical_delay_ps > r1.critical_delay_ps

    def test_critical_path_is_the_chain(self, lib):
        nl = inv_chain(lib, 4)
        report = critical_path(nl)
        assert len(report.critical_path) == 4

    def test_parallel_paths_max(self, lib):
        nl = Netlist("t", lib)
        a = nl.add_input("a")
        b = nl.add_input("b")
        # Long path from a, short from b, joined at an AND.
        net = a
        for i in range(4):
            net = nl.add_gate("INV_X1_rvt", [net], f"p{i}").output
        nl.add_gate("AND2_X1_rvt", [net, b], "y")
        nl.add_output("y")
        report = critical_path(nl)
        # Critical path must come through the inverter chain.
        assert any("inv" in g for g in report.critical_path)

    def test_load_increases_delay(self, lib):
        nl1 = Netlist("light", lib)
        a = nl1.add_input("a")
        nl1.add_gate("INV_X1_rvt", [a], "y")
        nl1.add_output("y")

        nl2 = Netlist("heavy", lib)
        a = nl2.add_input("a")
        nl2.add_gate("INV_X1_rvt", [a], "y")
        for i in range(8):
            nl2.add_gate("INV_X1_rvt", ["y"], f"l{i}")
        nl2.add_output("y")
        d1 = critical_path(nl1).arrival_ps["y"]
        d2 = critical_path(nl2).arrival_ps["y"]
        assert d2 > d1

    def test_bigger_drive_faster_under_load(self, lib):
        def fanout_tree(drive):
            nl = Netlist("t", lib)
            a = nl.add_input("a")
            nl.add_gate(f"INV_{drive}_rvt", [a], "y")
            for i in range(12):
                nl.add_gate("INV_X1_rvt", ["y"], f"l{i}")
            nl.add_output("y")
            return critical_path(nl).arrival_ps["y"]
        assert fanout_tree("X4") < fanout_tree("X1")


class TestSequentialTiming:
    def test_flop_to_flop_paths(self, lib):
        nl = registered_cloud(8, 16, 150, lib, seed=1)
        report = critical_path(nl, clock_period_ps=10000)
        assert report.wns_ps > 0  # easy period
        assert report.critical_delay_ps > 0

    def test_wns_goes_negative_at_tight_period(self, lib):
        nl = registered_cloud(8, 16, 150, lib, seed=1)
        loose = critical_path(nl, clock_period_ps=100000)
        tight = TimingAnalyzer(nl, clock_period_ps=0.001).analyze()
        assert loose.wns_ps > tight.wns_ps
        assert tight.wns_ps < 0

    def test_fmax_consistent_with_delay(self, lib):
        nl = ripple_carry_adder(8, lib)
        report = critical_path(nl)
        assert report.fmax_ghz() == pytest.approx(
            1000.0 / report.critical_delay_ps)


class TestWireModel:
    def test_default_lumped_cap(self):
        wm = WireModel(cap_per_fanout_ff=2.0)
        assert wm.net_cap_ff("n", 3) == 6.0
        assert wm.net_cap_ff("n", 0) == 2.0

    def test_placed_net_uses_length(self):
        wm = WireModel(cap_per_fanout_ff=1.0, cwire_ff_per_um=0.2,
                       rwire_ohm_per_um=1.0,
                       net_lengths_um={"long": 100.0})
        assert wm.net_cap_ff("long", 1) == pytest.approx(20.0)
        assert wm.net_cap_ff("other", 1) == 1.0
        assert wm.net_delay_ps("long") > 0
        assert wm.net_delay_ps("other") == 0.0

    def test_for_node_scales(self):
        wm28 = WireModel.for_node(get_node("28nm"))
        assert wm28.cwire_ff_per_um == get_node("28nm").cwire_ff_per_um

    def test_wire_delay_affects_critical_path(self, lib):
        nl = inv_chain(lib, 2)
        node = get_node("28nm")
        fast = critical_path(nl, WireModel.for_node(node))
        slow = critical_path(
            nl, WireModel.for_node(node, {"n0": 5000.0}))
        assert slow.critical_delay_ps > fast.critical_delay_ps

    def test_slack_lookup(self, lib):
        nl = inv_chain(lib, 2)
        report = critical_path(nl, clock_period_ps=500)
        for net in ("a", "n0", "n1"):
            assert report.slack_ps(net) == pytest.approx(
                report.required_ps[net] - report.arrival_ps[net])


class TestCriticalTrace:
    def test_pi_to_po_path_stops_at_primary_input(self, lib):
        # A purely combinational PI -> gates -> PO path: the trace must
        # walk the full chain and terminate at the primary input
        # explicitly, never looping or truncating.
        nl = inv_chain(lib, 3)
        report = critical_path(nl)
        expected = [nl.driver_of(f"n{i}").name for i in range(3)]
        assert report.critical_path == expected
        first = nl.gates[report.critical_path[0]]
        assert first.pins["A"] in nl.primary_inputs

    def test_feedthrough_po_gives_empty_path(self, lib):
        # A PO that IS a PI: the endpoint is already a startpoint.
        nl = Netlist("feed", lib)
        nl.add_input("a")
        nl.add_output("a")
        nl.add_gate("INV_X1_rvt", ["a"], "y")  # side logic, not a PO
        report = critical_path(nl)
        assert report.critical_path == []

    def test_trace_stops_at_undriven_net(self, lib):
        # A gate reading a net whose driver was removed: the walk
        # breaks at the undriven net instead of raising.
        from repro.timing import trace_critical
        nl = inv_chain(lib, 2)
        report = critical_path(nl)
        last = nl.driver_of("n1").name
        from_gate = {"n1": last}  # n0's driver "forgotten"
        path = trace_critical(nl, report.arrival_ps,
                              report.required_ps, from_gate)
        assert path == [last]
