"""Tests for algebraic division, kernels, and factoring."""

import pytest

from repro.netlist.boolfunc import TruthTable
from repro.netlist.cubes import Cover
from repro.synthesis.division import (
    algebraic_divide,
    best_common_kernel,
    factor,
    factor_literal_count,
    kernel_value,
    kernels,
    make_cube,
    sop_from_cover,
    sop_is_algebraic,
    sop_literal_count,
    sop_support,
    sop_to_cover,
)


def lit(name, phase=True):
    return (name, phase)


def sop(*cubes):
    return [frozenset(c) for c in cubes]


class TestSopBasics:
    def test_literal_count_and_support(self):
        f = sop({lit("a"), lit("b")}, {lit("c")})
        assert sop_literal_count(f) == 3
        assert sop_support(f) == {"a", "b", "c"}

    def test_cover_roundtrip(self):
        f = TruthTable.from_minterms([1, 2], 2)  # xor
        cov = Cover.from_truth_table(f)
        s = sop_from_cover(cov, ["a", "b"])
        back = sop_to_cover(s, ["a", "b"])
        assert back.to_truth_table().bits == f.bits

    def test_is_algebraic(self):
        assert sop_is_algebraic(sop({lit("a")}, {lit("b"), lit("c")}))
        assert not sop_is_algebraic(sop({lit("a")}, {lit("a"), lit("b")}))


class TestDivision:
    def test_textbook_division(self):
        # f = ac + ad + bc + bd + e;  d = a + b
        f = sop({lit("a"), lit("c")}, {lit("a"), lit("d")},
                {lit("b"), lit("c")}, {lit("b"), lit("d")}, {lit("e")})
        d = sop({lit("a")}, {lit("b")})
        q, r = algebraic_divide(f, d)
        assert set(q) == {frozenset({lit("c")}), frozenset({lit("d")})}
        assert r == [frozenset({lit("e")})]

    def test_division_no_quotient(self):
        f = sop({lit("a"), lit("c")})
        d = sop({lit("b")})
        q, r = algebraic_divide(f, d)
        assert q == []
        assert r == f

    def test_division_by_empty_raises(self):
        with pytest.raises(ValueError):
            algebraic_divide(sop({lit("a")}), [])

    def test_algebraic_condition(self):
        # f = ab; dividing by a gives b, but dividing by ab-sharing
        # divisor must not produce variable overlap.
        f = sop({lit("a"), lit("b")})
        q, r = algebraic_divide(f, sop({lit("a")}))
        assert q == [frozenset({lit("b")})]
        assert r == []


class TestKernels:
    def test_textbook_kernels(self):
        # f = adf + aef + bdf + bef + cdf + cef + g
        #   = (a+b+c)(d+e)f + g
        names = "abcdefg"
        f = sop(*({lit(x), lit(y), lit("f")}
                  for x in "abc" for y in "de"),
                {lit("g")})
        ks = kernels(f)
        kernel_sets = [frozenset(frozenset(c) for c in k) for _, k in ks]
        # (d + e) must be among the kernels.
        de = frozenset({frozenset({lit("d")}), frozenset({lit("e")})})
        abc = frozenset({frozenset({lit("a")}), frozenset({lit("b")}),
                         frozenset({lit("c")})})
        assert de in kernel_sets
        assert abc in kernel_sets

    def test_cube_free_f_is_its_own_kernel(self):
        f = sop({lit("a")}, {lit("b")})
        ks = kernels(f)
        assert any(ck == frozenset() and
                   set(k) == set(f) for ck, k in ks)

    def test_no_kernels_in_single_cube(self):
        assert kernels(sop({lit("a"), lit("b")})) == []

    def test_kernel_value(self):
        k = sop({lit("a")}, {lit("b")})  # 2 cubes, 2 literals
        one_lit_ck = frozenset({lit("x")})
        # Each 1-literal-cokernel use saves 2 + 2*1 - 2 = 2 literals;
        # the body costs 2 once.
        assert kernel_value(k, [one_lit_ck, one_lit_ck]) == 2
        assert kernel_value(k, [one_lit_ck]) == 0
        # An empty-cokernel use saves body-1 literals.
        assert kernel_value(k, [frozenset()]) == -1

    def test_best_common_kernel(self):
        shared = [{lit("a"), lit("x")}, {lit("b"), lit("x")}]
        f1 = sop(*shared, {lit("c")})
        f2 = sop({lit("a"), lit("y")}, {lit("b"), lit("y")}, {lit("d")})
        best = best_common_kernel({"f1": f1, "f2": f2})
        assert best is not None
        kernel, value, users = best
        assert set(kernel) == {frozenset({lit("a")}),
                               frozenset({lit("b")})}
        assert set(users) == {"f1", "f2"}

    def test_best_common_kernel_none(self):
        f1 = sop({lit("a")})
        f2 = sop({lit("b")})
        assert best_common_kernel({"f1": f1, "f2": f2}) is None


class TestFactoring:
    def _eval_tree(self, tree, env):
        kind = tree[0]
        if kind == "const":
            return tree[1]
        if kind == "lit":
            _, name, phase = tree
            return env[name] if phase else not env[name]
        vals = [self._eval_tree(t, env) for t in tree[1]]
        return all(vals) if kind == "and" else any(vals)

    def _eval_sop(self, f, env):
        return any(
            all(env[n] if p else not env[n] for n, p in cube)
            for cube in f
        )

    def test_factor_equivalence_exhaustive(self):
        f = sop({lit("a"), lit("c")}, {lit("a"), lit("d")},
                {lit("b"), lit("c")}, {lit("b"), lit("d")},
                {lit("e", False)})
        tree = factor(f)
        names = sorted(sop_support(f))
        for m in range(1 << len(names)):
            env = {n: bool(m >> i & 1) for i, n in enumerate(names)}
            assert self._eval_tree(tree, env) == self._eval_sop(f, env)

    def test_factor_reduces_literals(self):
        # (a+b)(c+d) expanded has 8 literals; factored has 4.
        f = sop({lit("a"), lit("c")}, {lit("a"), lit("d")},
                {lit("b"), lit("c")}, {lit("b"), lit("d")})
        assert sop_literal_count(f) == 8
        assert factor_literal_count(f) <= 5

    def test_factor_constants(self):
        assert factor([]) == ("const", False)
        assert factor([frozenset()]) == ("const", True)

    def test_factor_single_literal(self):
        assert factor(sop({lit("a")})) == ("lit", "a", True)

    def test_factor_negative_literal(self):
        tree = factor(sop({lit("a", False)}))
        assert tree == ("lit", "a", False)
