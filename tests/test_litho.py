"""Tests for aerial imaging, OPC, wires, and multi-patterning."""

import numpy as np
import pytest

import networkx as nx

from repro.litho import (
    LithoSystem,
    WireSegment,
    aerial_image,
    apply_opc,
    build_conflict_graph,
    decompose,
    dense_line_mask,
    edge_placement_errors,
    print_image,
    random_track_wires,
)
from repro.litho.aerial import (
    EUV_135,
    IMMERSION_193,
    pattern_fidelity,
    printability,
)
from repro.litho.mpd import decomposition_rate, min_masks_needed
from repro.litho.wires import wires_to_mask


class TestAerialImage:
    def test_blur_preserves_mean(self):
        mask = dense_line_mask(120)
        img = aerial_image(mask, 2.0)
        assert img.mean() == pytest.approx(mask.mean(), abs=0.02)

    def test_intensity_in_unit_range(self):
        img = aerial_image(dense_line_mask(100), 2.0)
        assert img.min() >= -1e-9 and img.max() <= 1 + 1e-9

    def test_finer_pitch_lower_contrast(self):
        hi = aerial_image(dense_line_mask(160), 2.0)
        lo = aerial_image(dense_line_mask(60), 2.0)
        assert hi.max() - hi.min() > lo.max() - lo.min()

    def test_bad_pixel_rejected(self):
        with pytest.raises(ValueError):
            aerial_image(np.zeros((4, 4)), 0.0)

    def test_print_threshold_validation(self):
        with pytest.raises(ValueError):
            print_image(np.zeros((4, 4)), 0.0)

    def test_psf_scales_with_wavelength(self):
        assert EUV_135.psf_sigma_nm < IMMERSION_193.psf_sigma_nm

    def test_rayleigh_pitch_matches_panel(self):
        # Single-patterning 193i limit ~80 nm pitch (Domic).
        assert 70 <= IMMERSION_193.rayleigh_pitch_nm <= 90


class TestEpe:
    def test_perfect_print_zero_epe(self):
        t = dense_line_mask(200)
        epe = edge_placement_errors(t, t, 2.0)
        assert np.all(epe == 0)

    def test_shifted_print_measures_shift(self):
        t = dense_line_mask(200)
        shifted = np.roll(t, 2, axis=1)
        epe = edge_placement_errors(t, shifted, 2.0)
        assert np.median(np.abs(epe)) == pytest.approx(4.0, abs=1.0)

    def test_missing_feature_catastrophic(self):
        t = dense_line_mask(200)
        empty = np.zeros_like(t)
        epe = edge_placement_errors(t, empty, 2.0)
        assert np.all(epe >= t.shape[1] * 2.0 - 1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            edge_placement_errors(np.zeros((4, 4), dtype=bool),
                                  np.zeros((5, 5), dtype=bool), 1.0)

    def test_fidelity_bounds(self):
        t = dense_line_mask(100)
        assert pattern_fidelity(t, t) == 1.0
        assert pattern_fidelity(t, np.zeros_like(t)) == 0.0


class TestPrintabilityCliff:
    """The panel's anchor: 193i single patterning dies near 80 nm pitch."""

    def test_passes_above_80nm_pitch(self):
        for pitch in (160, 120, 100, 90):
            assert printability(dense_line_mask(pitch), 2.0)["passes"], pitch

    def test_fails_below_80nm_pitch(self):
        for pitch in (78, 70, 64, 50):
            assert not printability(dense_line_mask(pitch), 2.0)["passes"], \
                pitch

    def test_double_patterning_rescues_64nm(self):
        # The per-mask pattern of a LELE split has twice the pitch.
        assert not printability(dense_line_mask(64), 2.0,
                                epe_spec_nm=6.4)["passes"]
        assert printability(dense_line_mask(128), 2.0,
                            epe_spec_nm=6.4)["passes"]

    def test_euv_prints_sub_40nm_directly(self):
        r = printability(dense_line_mask(32, pixel_nm=1.0), 1.0, EUV_135,
                         epe_spec_nm=3.2)
        assert r["passes"]

    def test_dose_window_tightens_result(self):
        tight = printability(dense_line_mask(84), 2.0, dose_latitude=0.3)
        loose = printability(dense_line_mask(84), 2.0, dose_latitude=0.02)
        assert tight["max_epe_nm"] >= loose["max_epe_nm"]


class TestOpc:
    def _line_end_pattern(self):
        img = np.zeros((200, 160), dtype=bool)
        for r0 in range(10, 190, 50):
            img[r0:r0 + 22, 10:70] = True
            img[r0:r0 + 22, 85:150] = True
        return img

    def test_opc_improves_line_ends(self):
        target = self._line_end_pattern()
        base = printability(target, 2.0)
        opc = apply_opc(target, 2.0, iterations=15)
        corrected = printability(target, 2.0, mask=opc.mask)
        assert corrected["rms_epe_nm"] < base["rms_epe_nm"] / 3
        assert opc.improvement > 3

    def test_opc_reports_iterations(self):
        opc = apply_opc(self._line_end_pattern(), 2.0, iterations=5)
        assert 1 <= opc.iterations <= 5

    def test_opc_noop_on_easy_pattern(self):
        easy = dense_line_mask(200)
        opc = apply_opc(easy, 2.0, converge_nm=5.0)
        assert opc.converged
        assert opc.iterations <= 2


class TestWires:
    def test_segment_validation(self):
        with pytest.raises(ValueError):
            WireSegment(0, 5.0, 5.0)

    def test_overlap_logic(self):
        a = WireSegment(0, 0, 10)
        b = WireSegment(1, 5, 15)
        c = WireSegment(1, 11, 15)
        assert a.overlaps(b)
        assert not a.overlaps(c)
        assert a.overlaps(c, margin=2.0)

    def test_random_wires_density(self):
        wires = random_track_wires(20, 200, density=0.5, seed=0)
        fill = sum(w.length for w in wires) / (20 * 200)
        assert 0.25 <= fill <= 0.75

    def test_random_wires_deterministic(self):
        a = random_track_wires(10, 100, seed=3)
        b = random_track_wires(10, 100, seed=3)
        assert a == b

    def test_bad_density(self):
        with pytest.raises(ValueError):
            random_track_wires(10, 100, density=0.0)

    def test_wires_to_mask_rasterizes(self):
        wires = [WireSegment(0, 0, 10), WireSegment(2, 5, 15)]
        img = wires_to_mask(wires, 80.0, pixel_nm=4.0)
        assert img.any()
        assert img.dtype == bool


class TestConflictGraph:
    def test_no_conflicts_above_limit_pitch(self):
        wires = random_track_wires(20, 100, seed=1)
        g = build_conflict_graph(wires, pitch_nm=90.0)
        assert g.number_of_edges() == 0

    def test_adjacent_tracks_conflict_below_limit(self):
        wires = [WireSegment(0, 0, 10), WireSegment(1, 0, 10)]
        g = build_conflict_graph(wires, pitch_nm=45.0)
        assert g.number_of_edges() == 1

    def test_reach_grows_as_pitch_shrinks(self):
        wires = random_track_wires(20, 100, seed=1)
        e64 = build_conflict_graph(wires, pitch_nm=64).number_of_edges()
        e20 = build_conflict_graph(wires, pitch_nm=20).number_of_edges()
        assert e20 > e64

    def test_non_overlapping_spans_no_conflict(self):
        wires = [WireSegment(0, 0, 5), WireSegment(1, 6, 10)]
        g = build_conflict_graph(wires, pitch_nm=40.0)
        assert g.number_of_edges() == 0


class TestDecomposition:
    def test_bipartite_two_coloring(self):
        wires = [WireSegment(t, 0, 10) for t in range(6)]
        g = build_conflict_graph(wires, pitch_nm=45.0)  # chain graph
        result = decompose(g, 2)
        assert result.success
        for i, j in g.edges:
            assert result.colors[i] != result.colors[j]

    def test_odd_cycle_defeats_two_masks(self):
        g = nx.cycle_graph(5)
        for n in g.nodes:
            g.nodes[n]["wire"] = WireSegment(n, 0, 10)
        result = decompose(g, 2)
        assert not result.success
        assert decompose(g, 3).success

    def test_fully_overlapping_triangle_needs_three_masks_even_stitched(self):
        # A geometric 3-clique (all spans coincide) is NOT stitch-
        # resolvable: every fragment still sees both neighbors.
        wires = [WireSegment(0, 0, 10), WireSegment(1, 0, 10),
                 WireSegment(2, 0, 10)]
        g = build_conflict_graph(wires, pitch_nm=30.0)  # reach 2: triangle
        assert not decompose(g, 2).success
        assert not decompose(g, 2, allow_stitches=True).success
        assert decompose(g, 3).success

    def test_stitching_resolves_disjoint_span_odd_cycle(self):
        # w0 conflicts w1 on its left span and w2 on its right span;
        # a tip-to-tip rule makes w1-w2 conflict too (odd cycle).  The
        # stitch splits the long wire and the cycle falls apart.
        w0 = WireSegment(1, 0, 10)
        w1 = WireSegment(0, 0, 4)
        w2 = WireSegment(2, 6, 10)
        g = nx.Graph()
        for n, w in enumerate((w0, w1, w2)):
            g.add_node(n, wire=w)
        g.add_edges_from([(0, 1), (0, 2), (1, 2)])
        assert not decompose(g, 2).success
        stitched = decompose(g, 2, allow_stitches=True)
        assert stitched.success
        assert len(stitched.stitches) >= 1

    def test_min_masks_tracks_pitch(self):
        wires = random_track_wires(24, 120, density=0.6, seed=2)
        m90 = min_masks_needed(build_conflict_graph(wires, pitch_nm=90))
        m64 = min_masks_needed(build_conflict_graph(wires, pitch_nm=64))
        m28 = min_masks_needed(build_conflict_graph(wires, pitch_nm=28))
        assert m90 == 1
        assert m64 == 2
        assert m28 >= 3

    def test_mask_balance_sums_to_wires(self):
        wires = random_track_wires(20, 100, density=0.6, seed=4)
        g = build_conflict_graph(wires, pitch_nm=40)
        result = decompose(g, 2, allow_stitches=True)
        assert sum(result.mask_balance()) == len(result.colors)

    def test_decomposition_rate_summary(self):
        wires = random_track_wires(16, 80, density=0.5, seed=5)
        stats = decomposition_rate(wires, pitch_nm=40, k=2)
        assert stats["wires"] == len(wires)
        assert "stitches" in stats

    def test_bad_k(self):
        with pytest.raises(ValueError):
            decompose(nx.Graph(), 0)
