"""Setup shim: enables legacy editable installs on environments without
the ``wheel`` package (pip's PEP 660 editable path needs bdist_wheel).
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
