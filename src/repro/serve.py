"""``python -m repro.serve`` — command-line front end of the flow
service.

Three subcommands:

``sweep``
    Stand up a service, drive a synthetic multi-tenant job sweep
    through it, and print the service's telemetry as JSON — the
    quickest way to see the scheduler, cache shards, and tenancy
    accounting in motion without writing code.

``clean``
    Unlink shared-memory design segments whose owning process is dead
    (the same sweep every service start performs) and report how many
    were reclaimed.

``log``
    Summarize a :class:`~repro.learn.rundb.RunLog` written by a
    service: per-tenant utilization and the stage cost profile.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path


def _cmd_sweep(args) -> int:
    from repro.core import FlowOptions
    from repro.netlist import build_library, registered_cloud
    from repro.service import FlowService
    from repro.tech import get_node

    lib = build_library(get_node(args.node))
    designs = [registered_cloud(6, 12, 60 + 20 * i, lib, seed=3 + i)
               for i in range(args.designs)]
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        root = Path(tmp)
        service = FlowService(
            workers=args.workers,
            cache_root=root / "cache",
            journal_root=root / "journals" if args.journal else None,
            rundb_log=args.log or (root / "service.jsonl"),
            use_shm=not args.no_shm)
        with service:
            job_ids = []
            for i in range(args.jobs):
                design = designs[i % len(designs)]
                options = FlowOptions(
                    seed=args.seed + (i % args.variants),
                    utilization=0.55 + 0.05 * (i % 3))
                job_ids.append(service.submit(
                    design, lib, options,
                    tenant=f"tenant{i % args.tenants}"))
            for job_id in job_ids:
                service.result(job_id, timeout=600)
            stats = service.stats()
    json.dump(stats, sys.stdout, indent=1, default=str)
    print()
    return 0


def _cmd_clean(args) -> int:
    from repro.service import sweep_leaked_segments
    removed = sweep_leaked_segments()
    print(f"reclaimed {removed} leaked design segment(s)")
    return 0


def _cmd_log(args) -> int:
    from repro.learn.rundb import RunDatabase
    db = RunDatabase.from_log(args.path)
    json.dump({
        "records": {"runs": len(db.records),
                    "telemetry": len(db.telemetry),
                    "recovery": len(db.recovery),
                    "service": len(db.service)},
        "service_profile": db.service_profile(),
        "stage_profile": db.stage_profile(),
    }, sys.stdout, indent=1)
    print()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="multi-tenant flow job service front end")
    sub = parser.add_subparsers(dest="command", required=True)

    p_sweep = sub.add_parser(
        "sweep", help="run a synthetic sweep through a service")
    p_sweep.add_argument("--workers", type=int, default=2)
    p_sweep.add_argument("--jobs", type=int, default=24)
    p_sweep.add_argument("--designs", type=int, default=4)
    p_sweep.add_argument("--variants", type=int, default=3,
                         help="distinct option seeds (controls the "
                              "job-cache hit rate)")
    p_sweep.add_argument("--tenants", type=int, default=3)
    p_sweep.add_argument("--node", default="28nm")
    p_sweep.add_argument("--seed", type=int, default=7)
    p_sweep.add_argument("--journal", action="store_true",
                         help="journal every job (enables resume)")
    p_sweep.add_argument("--no-shm", action="store_true",
                         help="send designs through pipes instead of "
                              "shared memory")
    p_sweep.add_argument("--log", default=None,
                         help="append service telemetry to this "
                              "RunLog path")
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_clean = sub.add_parser(
        "clean", help="unlink design segments of dead processes")
    p_clean.set_defaults(fn=_cmd_clean)

    p_log = sub.add_parser("log", help="summarize a service RunLog")
    p_log.add_argument("path")
    p_log.set_defaults(fn=_cmd_log)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
