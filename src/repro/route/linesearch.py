"""Line-search (Hightower-style line-probe) routing.

Domic: "more efficient 'line-search' routing algorithms have resulted
in much better routers under 'simpler' design rules."  The line-probe
router shoots horizontal/vertical probe lines from both terminals,
recursing through escape points; it touches far fewer cells than a
maze wave, trading guaranteed shortest paths for speed — measured
head-to-head in experiment E4.
"""

from __future__ import annotations

from repro.route.grid import RoutingGrid


def line_search_route(grid: RoutingGrid, src: tuple, dst: tuple, *,
                      blocked_utilization: float = 1.0,
                      max_depth: int = 12):
    """Route by alternating H/V probe lines with escape points.

    An edge is traversable while its utilization is below
    ``blocked_utilization``.  Returns a gcell path or ``None``.
    """
    for cell in (src, dst):
        if not grid.contains(cell):
            raise ValueError(f"gcell {cell} outside the grid")
    if src == dst:
        return [src]

    def passable(a, b) -> bool:
        edge = grid.edge_between(a, b)
        return grid.usage_of(edge) < grid.capacity_of(edge) * \
            blocked_utilization

    def probe_line(cell, horizontal: bool) -> list:
        """All cells reachable along one free line through ``cell``."""
        out = [cell]
        for step in (1, -1):
            cur = cell
            while True:
                x, y = cur
                nxt = (x + step, y) if horizontal else (x, y + step)
                if not grid.contains(nxt) or not passable(cur, nxt):
                    break
                out.append(nxt)
                cur = nxt
        return out

    # Bidirectional line expansion: keep the probe "trees" of both
    # terminals; when lines intersect, walk the parents back.
    src_lines = {src: (None, None)}   # cell -> (parent cell, via cell)
    dst_lines = {dst: (None, None)}
    src_frontier = [(src, True), (src, False)]
    dst_frontier = [(dst, True), (dst, False)]

    def expand(frontier, tree, other_tree):
        new_frontier = []
        meet = None
        for origin, horizontal in frontier:
            for cell in probe_line(origin, horizontal):
                if cell not in tree:
                    tree[cell] = (origin, None)
                    new_frontier.append((cell, not horizontal))
                if cell in other_tree:
                    meet = cell
                    return new_frontier, meet
        return new_frontier, meet

    meet = None
    for _ in range(max_depth):
        src_frontier, meet = expand(src_frontier, src_lines, dst_lines)
        if meet is not None:
            break
        dst_frontier, meet = expand(dst_frontier, dst_lines, src_lines)
        if meet is not None:
            break
        if not src_frontier and not dst_frontier:
            break
    if meet is None:
        return None

    left = _walk_back(src_lines, meet)
    right = _walk_back(dst_lines, meet)
    path = left[::-1] + right[1:]
    return _expand_to_unit_steps(path)


def _walk_back(tree: dict, cell) -> list:
    out = [cell]
    while True:
        parent, _ = tree[cell]
        if parent is None:
            break
        out.append(parent)
        cell = parent
    return out


def _expand_to_unit_steps(waypoints: list) -> list:
    """Turn probe waypoints (colinear jumps) into unit gcell steps."""
    path = [waypoints[0]]
    for target in waypoints[1:]:
        x, y = path[-1]
        tx, ty = target
        if x != tx and y != ty:
            raise ValueError("waypoints must be axis-aligned")
        while (x, y) != (tx, ty):
            x += (1 if tx > x else -1) if x != tx else 0
            y += (1 if ty > y else -1) if y != ty else 0
            path.append((x, y))
    return path


def count_probe_cells(grid: RoutingGrid, src: tuple, dst: tuple) -> int:
    """Cells a line probe would touch — the efficiency metric vs maze.

    A single bidirectional probe pass; used by the E4 runtime
    comparison without timing noise.
    """
    touched = set()

    def probe(cell, horizontal):
        touched.add(cell)
        for step in (1, -1):
            cur = cell
            while True:
                x, y = cur
                nxt = (x + step, y) if horizontal else (x, y + step)
                if not grid.contains(nxt):
                    break
                touched.add(nxt)
                cur = nxt

    probe(src, True)
    probe(src, False)
    probe(dst, True)
    probe(dst, False)
    return len(touched)
