"""Track assignment: from gcell routes to per-layer wire segments.

The bridge between global routing and the lithography experiments:
each layer's horizontal (or vertical) usage is assigned to physical
tracks, producing the :class:`~repro.litho.WireSegment` geometry the
multi-patterning decomposer colors.  Greedy left-edge assignment per
panel (the classic channel-routing algorithm) keeps same-track overlap
at zero and neighboring-track adjacency realistic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.litho.wires import WireSegment


@dataclass
class TrackAssignment:
    """Per-layer assigned wires."""

    layer_wires: dict = field(default_factory=dict)  # layer -> [WireSegment]
    failed: int = 0

    def all_wires(self, layer: int) -> list:
        return self.layer_wires.get(layer, [])

    def total_wires(self) -> int:
        return sum(len(v) for v in self.layer_wires.values())


def _extract_runs(usage_row, y: int) -> list:
    """Maximal runs of used edges in one gcell row: [(start, end, copies)].

    Each unit of usage over a span becomes one horizontal wire; stacked
    usage becomes parallel wires that need distinct tracks.
    """
    runs = []
    x = 0
    n = len(usage_row)
    while x < n:
        if usage_row[x] > 0:
            start = x
            level = usage_row[x]
            while x < n and usage_row[x] > 0:
                level = min(level, usage_row[x])
                x += 1
            # Peel the row level by level so overlapping spans become
            # separate parallel wires.
            runs.append((start, x, int(level)))
        else:
            x += 1
    return runs


def assign_tracks(result, *, layers: int = 6,
                  tracks_per_gcell: int | None = None) -> TrackAssignment:
    """Assign a routing result's horizontal usage to layer tracks.

    H layers take the horizontal edge demand round-robin; within a
    layer each gcell row owns ``tracks_per_gcell`` tracks filled by
    left-edge greedy packing.  Wires that do not fit count as
    ``failed`` (the detailed-routing overflow).
    """
    grid = result.grid
    n_h_layers = (layers + 1) // 2
    if tracks_per_gcell is None:
        # Match the global grid's per-layer track capacity.
        tracks_per_gcell = max(1, -(-grid.h_capacity // n_h_layers))
    assignment = TrackAssignment()
    wire_id = 0
    for y in range(grid.ny):
        row = grid.h_usage[y]
        # Expand stacked usage into individual spans.
        spans = []
        remaining = row.astype(int).copy()
        while remaining.max() > 0:
            for start, end, _level in _extract_runs(remaining, y):
                spans.append((start, end))
                remaining[start:end] -= 1
        # Distribute spans over layers, then left-edge pack per layer.
        per_layer: dict = {k: [] for k in range(n_h_layers)}
        for i, span in enumerate(sorted(spans)):
            per_layer[i % n_h_layers].append(span)
        for layer_idx, layer_spans in per_layer.items():
            tracks_end = [None] * tracks_per_gcell
            for start, end in layer_spans:
                placed = False
                for t in range(tracks_per_gcell):
                    if tracks_end[t] is None or tracks_end[t] <= start:
                        tracks_end[t] = end
                        seg = WireSegment(
                            y * tracks_per_gcell + t,
                            float(start), float(end) + 0.5,
                            f"w{wire_id}")
                        assignment.layer_wires.setdefault(
                            2 + 2 * layer_idx, []).append(seg)
                        wire_id += 1
                        placed = True
                        break
                if not placed:
                    assignment.failed += 1
    return assignment


def decompose_routed_layer(result, *, layer: int = 2, node=None,
                           layers: int = 6,
                           tracks_per_gcell: int | None = None,
                           allow_stitches: bool = True) -> dict:
    """End-to-end: route -> track-assign -> multi-patterning decompose.

    Returns the decomposition statistics for one metal layer of a real
    routed design — the production version of E3's synthetic-texture
    study.
    """
    from repro.litho.mpd import decomposition_rate

    if node is None:
        raise ValueError("pass the technology node (pitch source)")
    assignment = assign_tracks(result, layers=layers,
                               tracks_per_gcell=tracks_per_gcell)
    wires = assignment.all_wires(layer)
    colors = max(1, math.ceil(80.0 / node.metal1_pitch_nm))
    stats = decomposition_rate(
        wires, pitch_nm=node.metal1_pitch_nm, k=colors,
        allow_stitches=allow_stitches)
    stats["layer"] = layer
    stats["track_overflow"] = assignment.failed
    return stats
