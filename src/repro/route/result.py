"""The routing result contract shared by every routing engine.

``RoutingResult`` is the one shape bench, signoff, and downstream
stages (layer/track assignment) consume — engines differ in how they
search, not in what they report.  Schema v2 adds per-net numpy arrays
(``net_wirelength`` / ``net_overflow``) and a ``phase_ms`` breakdown so
parity harnesses compare engines without poking engine-specific
attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.route.grid import RoutingGrid

#: Version of the RoutingResult field layout.  v2: ``schema_version``,
#: ``net_names`` + per-net ``net_wirelength``/``net_overflow`` arrays,
#: and the ``phase_ms`` kernel-phase breakdown.
ROUTE_SCHEMA_VERSION = 2

IntArray = Any  # numpy int64 ndarray (mypy --strict w/o numpy stubs)


def _empty_i64() -> Any:
    return np.zeros(0, dtype=np.int64)


@dataclass
class RoutingResult:
    """Outcome of one global-routing run (any engine)."""

    grid: RoutingGrid
    #: net -> list of gcell paths (2-pin segs).  Each path is a
    #: sequence of (x, y) gcells: a list of tuples (sequential
    #: engines) or an (L, 2) int64 array (batched engine) — consumers
    #: index/len/np.asarray either shape identically.
    paths: dict
    failed: list                 # nets with no path found
    wirelength: int
    overflow: int
    iterations: int
    runtime_s: float
    engine: str
    schema_version: int = ROUTE_SCHEMA_VERSION
    net_names: tuple = ()        # sorted net order of the arrays below
    net_wirelength: IntArray = field(default_factory=_empty_i64)
    net_overflow: IntArray = field(default_factory=_empty_i64)
    phase_ms: dict = field(default_factory=dict)

    @property
    def success(self) -> bool:
        """Clean routing: everything connected, no overflow."""
        return not self.failed and self.overflow == 0

    def net_lengths_gcells(self) -> dict:
        """net -> routed length in gcell units."""
        return {
            net: sum(len(p) - 1 for p in segs)
            for net, segs in self.paths.items()
        }

    def summary(self) -> str:
        """One-line report; identical format for every engine."""
        return (
            f"{self.engine}: wl={self.wirelength} gcells, "
            f"overflow={self.overflow}, failed={len(self.failed)}, "
            f"iters={self.iterations}, {self.runtime_s * 1000:.0f} ms"
        )

    # ------------------------------------------------------------------

    @classmethod
    def assemble(cls, *, grid: RoutingGrid, paths: dict, failed: list,
                 iterations: int, runtime_s: float, engine: str,
                 phase_ms: dict | None = None,
                 net_wirelength: "np.ndarray | None" = None,
                 net_overflow: "np.ndarray | None" = None,
                 ) -> "RoutingResult":
        """Build a result with the per-net arrays filled in.

        Totals come from the grid (the ground truth for usage);
        per-net wirelength counts committed path edges and per-net
        overflow counts path edges lying on currently-overflowed grid
        edges — the quantities the parity gates compare.  An engine
        that already tracks flat edge indices may pass the per-net
        arrays precomputed (ordered by ``sorted(paths)``) to skip the
        per-path accumulation.
        """
        net_names = tuple(sorted(paths))
        if net_wirelength is not None and net_overflow is not None:
            nwl = np.asarray(net_wirelength, dtype=np.int64)
            nof = np.asarray(net_overflow, dtype=np.int64)
        else:
            index = {net: i for i, net in enumerate(net_names)}
            nwl = np.zeros(len(net_names), dtype=np.int64)
            nof = np.zeros(len(net_names), dtype=np.int64)
            h_over = grid.h_usage > grid.h_capacity
            v_over = grid.v_usage > grid.v_capacity
            for net, segs in paths.items():
                i = index[net]
                for p in segs:
                    if len(p) < 2:
                        continue
                    arr = np.asarray(p, dtype=np.int64)
                    x, y = arr[:, 0], arr[:, 1]
                    horiz = y[1:] == y[:-1]
                    nwl[i] += arr.shape[0] - 1
                    nof[i] += int(
                        h_over[y[1:][horiz],
                               np.minimum(x[1:], x[:-1])[horiz]]
                        .sum())
                    nof[i] += int(
                        v_over[np.minimum(y[1:], y[:-1])[~horiz],
                               x[1:][~horiz]].sum())
        return cls(
            grid=grid,
            paths=paths,
            failed=failed,
            wirelength=grid.wirelength(),
            overflow=grid.total_overflow(),
            iterations=iterations,
            runtime_s=runtime_s,
            engine=engine,
            net_names=net_names,
            net_wirelength=nwl,
            net_overflow=nof,
            phase_ms=dict(phase_ms or {}),
        )
