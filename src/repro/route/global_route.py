"""Global routing: net decomposition, ordering, rip-up and reroute.

This module holds the *sequential* engines (maze A* and line-probe),
the original per-net reference implementations the vectorized engine
(:mod:`repro.route.batched`) is gated against.  The shared result
contract lives in :mod:`repro.route.result`; engine selection goes
through :mod:`repro.engines`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.place.placement import Placement
from repro.route.grid import RoutingGrid
from repro.route.linesearch import line_search_route
from repro.route.maze import maze_route
from repro.route.result import ROUTE_SCHEMA_VERSION, RoutingResult

__all__ = [
    "ROUTE_SCHEMA_VERSION",
    "RoutingResult",
    "GlobalRouter",
    "sequential_route",
    "route_placement",
]


class GlobalRouter:
    """Route a placement on a gcell grid, one net segment at a time.

    Multi-pin nets are decomposed into 2-pin segments with Prim's MST
    over pin locations; segments are routed in ascending-length order;
    overflowed nets are ripped up and rerouted with negotiated
    congestion (PathFinder-lite) for up to ``max_iterations`` rounds.
    """

    def __init__(self, placement: Placement, *, gcell_um: float = 5.0,
                 layers: int = 6, engine: str = "maze",
                 topology: str = "mst",
                 max_iterations: int = 4):
        if engine not in ("maze", "line_search"):
            raise ValueError("engine must be 'maze' or 'line_search'")
        if topology not in ("mst", "steiner"):
            raise ValueError("topology must be 'mst' or 'steiner'")
        self.placement = placement
        self.engine = engine
        self.topology = topology
        self.max_iterations = max_iterations
        node = placement.netlist.library.node
        self.grid = RoutingGrid.for_die(
            placement.die_w_um, placement.die_h_um, node,
            gcell_um=gcell_um, layers=layers)
        self.gcell_um = gcell_um

    # ------------------------------------------------------------------

    def _gcell(self, xy: tuple) -> tuple:
        x = int(np.clip(xy[0] / self.placement.die_w_um * self.grid.nx,
                        0, self.grid.nx - 1))
        y = int(np.clip(xy[1] / self.placement.die_h_um * self.grid.ny,
                        0, self.grid.ny - 1))
        return (x, y)

    def _net_segments(self) -> list:
        """All 2-pin segments: [(net, src_gcell, dst_gcell)]."""
        from repro.route.steiner import mst_edges, steiner_tree

        segments = []
        for net, pts in self.placement.net_pins().items():
            cells = sorted({self._gcell(p) for p in pts})
            if len(cells) < 2:
                continue
            use_steiner = (self.topology == "steiner"
                           and 3 <= len(cells) <= 8)
            edges = steiner_tree(cells) if use_steiner else \
                mst_edges(cells)
            for a, b in edges:
                segments.append((net, a, b))
        return segments

    def _route_segment(self, src, dst):
        if self.engine == "maze":
            return maze_route(self.grid, src, dst)
        path = line_search_route(self.grid, src, dst)
        if path is None:  # line probes blocked: fall back to maze
            path = maze_route(self.grid, src, dst)
        return path

    def route(self) -> RoutingResult:
        """Run the full flow; returns a :class:`RoutingResult`."""
        t0 = time.perf_counter()
        segments = self._net_segments()
        segments.sort(key=lambda s: abs(s[1][0] - s[2][0]) +
                      abs(s[1][1] - s[2][1]))
        paths: dict[str, list] = {}
        seg_paths: list = [None] * len(segments)
        failed: list = []
        for i, (net, src, dst) in enumerate(segments):
            path = self._route_segment(src, dst)
            if path is None:
                failed.append(net)
                continue
            self.grid.add_path(path)
            seg_paths[i] = path

        iterations = 1
        for _ in range(self.max_iterations - 1):
            if self.grid.total_overflow() == 0:
                break
            self.grid.bump_history()
            # Rip up segments through overflowed edges and reroute.
            for i, (net, src, dst) in enumerate(segments):
                path = seg_paths[i]
                if path is None or not self._overflowed(path):
                    continue
                self.grid.add_path(path, delta=-1)
                new = maze_route(self.grid, src, dst,
                                 congestion_weight=5.0)
                if new is None:
                    new = path
                self.grid.add_path(new)
                seg_paths[i] = new
            iterations += 1

        for (net, _, _), path in zip(segments, seg_paths):
            if path is not None:
                paths.setdefault(net, []).append(path)
        return RoutingResult.assemble(
            grid=self.grid,
            paths=paths,
            failed=sorted(set(failed)),
            iterations=iterations,
            runtime_s=time.perf_counter() - t0,
            engine=self.engine,
        )

    def _overflowed(self, path: list) -> bool:
        for a, b in zip(path, path[1:]):
            edge = self.grid.edge_between(a, b)
            if self.grid.usage_of(edge) > self.grid.capacity_of(edge):
                return True
        return False


def sequential_route(placement: Placement, *, layers: int = 6,
                     gcell_um: float = 5.0, topology: str = "mst",
                     max_iterations: int = 4, seed: int = 0,
                     telemetry=None,
                     engine: str = "maze") -> RoutingResult:
    """Uniform-kernel adapter over :class:`GlobalRouter`.

    This is the callable the engine registry loads for the ``maze``
    and ``line_search`` engines; it matches the routing-kernel
    signature.  ``seed`` is accepted for signature parity — the
    sequential engines are deterministic without it.  When a
    ``telemetry`` sink is given the whole run is recorded as one
    ``route_<engine>`` kernel span (the batched engine reports
    per-phase spans instead).
    """
    del seed
    router = GlobalRouter(placement, engine=engine, layers=layers,
                          gcell_um=gcell_um, topology=topology,
                          max_iterations=max_iterations)
    if telemetry is None:
        return router.route()
    from repro.orchestrate.telemetry import kernel_span
    with kernel_span(telemetry, f"route_{engine}"):
        return router.route()


def route_placement(placement: Placement, *, engine: str = "maze",
                    layers: int = 6, gcell_um: float = 5.0,
                    topology: str = "mst", max_iterations: int = 4,
                    seed: int = 0, telemetry=None) -> RoutingResult:
    """One-call global routing of a placement.

    ``engine`` resolves through the :mod:`repro.engines` registry
    (strict: a typo raises :class:`~repro.engines.UnknownEngineError`
    naming the known engines; deprecated aliases resolve with a
    warning).  All engines share this signature, so swapping engines
    is a string change.
    """
    from repro.engines import get_engine

    kernel = get_engine("routing", engine).load()
    return kernel(placement, layers=layers, gcell_um=gcell_um,
                  topology=topology, max_iterations=max_iterations,
                  seed=seed, telemetry=telemetry)
