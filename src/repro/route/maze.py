"""Maze routing: A* (Lee with a priority frontier) on the gcell grid."""

from __future__ import annotations

import heapq

from repro.route.grid import RoutingGrid


def maze_route(grid: RoutingGrid, src: tuple, dst: tuple, *,
               congestion_weight: float = 2.0,
               max_expansions: int | None = None):
    """Shortest congestion-aware path from ``src`` to ``dst``.

    A* with Manhattan-distance admissible heuristic over
    :meth:`RoutingGrid.edge_cost`.  Returns the gcell path (inclusive)
    or ``None`` when the search budget is exhausted.

    The Lee router's breadth-first wave is the ``congestion_weight=0``
    special case; the default behaves like a negotiated-congestion
    router step.
    """
    for cell in (src, dst):
        if not grid.contains(cell):
            raise ValueError(f"gcell {cell} outside the grid")
    if src == dst:
        return [src]
    if max_expansions is None:
        max_expansions = 40 * grid.nx * grid.ny

    def h(cell):
        return abs(cell[0] - dst[0]) + abs(cell[1] - dst[1])

    frontier = [(h(src), 0.0, src)]
    g_cost = {src: 0.0}
    parent = {src: None}
    expansions = 0
    while frontier and expansions < max_expansions:
        _, g, cell = heapq.heappop(frontier)
        if g > g_cost.get(cell, float("inf")):
            continue
        expansions += 1
        if cell == dst:
            path = []
            while cell is not None:
                path.append(cell)
                cell = parent[cell]
            path.reverse()
            return path
        for nxt in grid.neighbors(cell):
            edge = grid.edge_between(cell, nxt)
            ng = g + grid.edge_cost(
                edge, congestion_weight=congestion_weight)
            if ng < g_cost.get(nxt, float("inf")):
                g_cost[nxt] = ng
                parent[nxt] = cell
                heapq.heappush(frontier, (ng + h(nxt), ng, nxt))
    return None
