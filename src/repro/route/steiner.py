"""Rectilinear Steiner trees: the router's multi-pin net topology.

The MST decomposition every simple router uses wastes wire on multi-pin
nets; the 1-Steiner heuristic (greedily add the Hanan-grid point that
shrinks the MST most) recovers most of the gap to the optimal RSMT at
trivial cost — one of the "more efficient routing algorithms" behind
Domic's layer-reduction claim (E4 ablation).
"""

from __future__ import annotations

import itertools


def manhattan(a: tuple, b: tuple) -> int:
    """L1 distance between two grid points."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def mst_edges(points: list) -> list:
    """Prim's MST over points with Manhattan weights.

    Returns [(p, q)] edges; deterministic for fixed input order.
    """
    pts = list(dict.fromkeys(points))
    if len(pts) < 2:
        return []
    in_tree = {pts[0]}
    rest = set(pts[1:])
    edges = []
    while rest:
        best = None
        for r in sorted(rest):
            for t in sorted(in_tree):
                d = manhattan(r, t)
                if best is None or d < best[0]:
                    best = (d, t, r)
        _, t, r = best
        edges.append((t, r))
        in_tree.add(r)
        rest.remove(r)
    return edges


def tree_length(edges: list) -> int:
    """Total Manhattan length of an edge list."""
    return sum(manhattan(a, b) for a, b in edges)


def hanan_points(points: list) -> set:
    """The Hanan grid: crossings of the pins' x and y coordinates."""
    xs = sorted({p[0] for p in points})
    ys = sorted({p[1] for p in points})
    return {(x, y) for x in xs for y in ys} - set(points)


def steiner_tree(points: list, *, max_steiner: int | None = None) -> list:
    """1-Steiner heuristic RSMT approximation.

    Repeatedly adds the Hanan point that most reduces the MST length,
    until no candidate helps (or ``max_steiner`` points were added).
    Returns the final edge list over pins plus Steiner points.
    """
    pts = list(dict.fromkeys(points))
    if len(pts) < 3:
        return mst_edges(pts)
    if max_steiner is None:
        max_steiner = len(pts) - 2  # RSMT never needs more
    current = pts
    best_edges = mst_edges(current)
    best_len = tree_length(best_edges)
    for _ in range(max_steiner):
        candidates = hanan_points(current)
        improved = None
        for cand in sorted(candidates):
            trial = mst_edges(current + [cand])
            # Drop degree-1 Steiner points (useless).
            length = tree_length(_prune(trial, set(pts)))
            if length < best_len:
                best_len = length
                improved = cand
        if improved is None:
            break
        current = current + [improved]
        best_edges = _prune(mst_edges(current), set(pts))
    return best_edges


def _prune(edges: list, pins: set) -> list:
    """Remove degree-1 non-pin leaves iteratively."""
    edges = list(edges)
    while True:
        degree: dict = {}
        for a, b in edges:
            degree[a] = degree.get(a, 0) + 1
            degree[b] = degree.get(b, 0) + 1
        dead = {n for n, d in degree.items()
                if d == 1 and n not in pins}
        if not dead:
            return edges
        edges = [(a, b) for a, b in edges
                 if a not in dead and b not in dead]


def net_segments_steiner(points: list) -> list:
    """2-pin segments of the Steiner topology (for the router)."""
    return steiner_tree(points)
