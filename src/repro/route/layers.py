"""Layer assignment: expand 2-D global routes onto a metal stack.

Horizontal wire goes to H layers (M2, M4, ...), vertical to V layers
(M3, M5, ...).  Segments are assigned greedily to the least-used legal
layer; per-layer utilization then answers the E4 question: how few
layers can carry the design, and what does each removed layer save?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.route.grid import RoutingGrid


@dataclass
class LayerAssignment:
    """Per-layer usage after assignment."""

    layers: int
    h_layer_usage: np.ndarray    # (n_h_layers, ny, nx-1)
    v_layer_usage: np.ndarray    # (n_v_layers, ny-1, nx)
    per_layer_capacity: int
    overflow: int

    @property
    def feasible(self) -> bool:
        return self.overflow == 0

    def utilization_per_layer(self) -> list:
        """Mean utilization per metal layer (H layers then V layers)."""
        out = []
        for k in range(self.h_layer_usage.shape[0]):
            out.append(float(self.h_layer_usage[k].mean()
                             / self.per_layer_capacity))
        for k in range(self.v_layer_usage.shape[0]):
            out.append(float(self.v_layer_usage[k].mean()
                             / self.per_layer_capacity))
        return out

    def peak_utilization(self) -> float:
        peaks = []
        if self.h_layer_usage.size:
            peaks.append(self.h_layer_usage.max() / self.per_layer_capacity)
        if self.v_layer_usage.size:
            peaks.append(self.v_layer_usage.max() / self.per_layer_capacity)
        return float(max(peaks)) if peaks else 0.0


def assign_layers(grid: RoutingGrid, layers: int, *,
                  per_layer_capacity: int | None = None) -> LayerAssignment:
    """Distribute the grid's 2-D usage across a ``layers``-deep stack.

    Each edge's wires are spread over the legal layers water-filling
    style (least-loaded first); whatever exceeds the stack's total
    capacity is overflow.
    """
    if layers < 2:
        raise ValueError("need at least 2 layers")
    n_h = (layers + 1) // 2
    n_v = layers // 2
    if per_layer_capacity is None:
        per_layer_capacity = max(1, grid.h_capacity // max(n_h, 1))
    h_usage = np.zeros((n_h,) + grid.h_usage.shape, dtype=np.int32)
    v_usage = np.zeros((n_v,) + grid.v_usage.shape, dtype=np.int32)
    overflow = 0
    overflow += _waterfill(grid.h_usage, h_usage, per_layer_capacity)
    overflow += _waterfill(grid.v_usage, v_usage, per_layer_capacity)
    return LayerAssignment(layers, h_usage, v_usage,
                           per_layer_capacity, int(overflow))


def _waterfill(demand: np.ndarray, layer_usage: np.ndarray,
               cap: int) -> int:
    """Spread demand across layers up to cap each; returns overflow."""
    nlayers = layer_usage.shape[0]
    if nlayers == 0:
        return int(demand.sum())
    remaining = demand.astype(np.int64).copy()
    for k in range(nlayers):
        take = np.minimum(remaining, cap)
        layer_usage[k] = take
        remaining -= take
    return int(remaining.sum())


def minimum_layers(placement, *, max_layers: int = 12,
                   engine: str = "maze", gcell_um: float = 2.0,
                   max_iterations: int = 4) -> int:
    """Smallest stack depth at which the design routes cleanly.

    Each candidate depth gets its own routing run (capacity scales with
    the stack), matching how a real flow explores layer reduction.
    Returns ``max_layers + 1`` when even the deepest stack overflows.
    """
    from repro.route.global_route import route_placement

    for layers in range(2, max_layers + 1):
        result = route_placement(
            placement, engine=engine, layers=layers, gcell_um=gcell_um,
            max_iterations=max_iterations)
        if result.success:
            return layers
    return max_layers + 1
