"""Vectorized batched global routing on the gcell cost grid.

The sequential engines (:mod:`repro.route.global_route`) pop one gcell
at a time from a heapq per 2-pin segment; at the 50k-gate tier that is
millions of Python-level expansions and routing dominates the flow
(``BENCH_perf.json``).  This engine gives routing the treatment the
analytic placer gave placement in PR 7 — the whole pipeline is numpy
array ops:

* **decompose** — pins are binned to gcells in one vectorized pass and
  multi-pin nets are decomposed with a *batched* Prim MST: nets of the
  same pin count form a ``(B, n, n)`` Manhattan distance tensor and
  the n-1 Prim steps run across all B nets at once.
* **pattern fast path** — straight segments price their single line
  with one prefix-sum gather; bent segments price their *entire*
  monotone L/Z family (every H-V-H / V-H-V bend position) as three
  prefix-sum differences per candidate and commit the cheapest when
  it beats ``manhattan + slack``.  On a sane placement this settles
  the overwhelming majority of segments without any search.
* **expand** — the remainder get a quantized window around their bbox
  (clipped *and shifted* inside the grid, so every window cell is
  real) and same-shape windows route together: a Bellman–Ford round
  is four directional *min-plus scans*, where sweeping with prefix
  sums ``S`` of the edge costs turns the weighted relaxation into a
  plain running minimum — ``dist = min(dist, S + cummin(dist - S))``
  — over the whole ``(K, H, W)`` batch.  Rounds repeat to a fixed
  point (one round per direction change of the shortest path).
* **commit** — every route lands on the usage arrays as flat edge
  indices via ``np.add.at``, plus a one-byte *descriptor*
  (``_KIND_*`` and a bend coordinate) instead of a materialized cell
  path; only wavefront backtraces — vectorized greedy strict-descent,
  fixed neighbor order — and the rare maze fallback store explicit
  cells.  Survivors' geometric paths are rebuilt in bulk once, in
  :meth:`_BatchedRouter._emit`.
* **negotiate** — PathFinder-style: history accumulates on overflowed
  edges (:meth:`RoutingGrid.bump_history`); each round first
  *relocates* segments with profitable equal-length escapes (free
  moves priced newcomer-vs-incumbent, accepted in quota-ranked
  sub-waves), then rips the per-edge excess — plus movers whose every
  escape is blocked — with one ``bincount`` over flattened edge
  indices and forces it back through the pattern tail at the round's
  raised congestion weight.

The cost model is *exactly* the sequential engines' negotiated cost
(:meth:`RoutingGrid.cost_arrays` is the vectorized twin of
:meth:`RoutingGrid.edge_cost`); a seeded jitter on candidate scores
and seeded shuffles on acceptance order break ties deterministically,
so a fixed seed gives a bit-identical run while QoR is seed-robust.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from itertools import chain
from typing import Any, Iterator

import numpy as np

from repro.place.placement import Placement
from repro.route.grid import RoutingGrid
from repro.route.maze import maze_route
from repro.route.result import RoutingResult

FloatArray = Any   # numpy float64 ndarray
IntArray = Any     # numpy int64 ndarray
BoolArray = Any    # numpy bool ndarray

#: Target cells (K * H * W) per expansion batch; bounds peak memory.
_WAVE_CELLS = 1 << 21
#: Max segments per chunk on the first pass.  Chunks share one cost
#: snapshot, so the cap bounds how much demand can land between cost
#: refreshes; on the 50k-gate bench 256 buys ~30% less first-pass
#: overflow than 2048 for ~0.15 s — chunks are cheap now that the
#: pattern fast path prices whole candidate families per chunk.
_CHUNK_CAP = 256
#: First-pass caps per fast path.  Straight lines barely interact
#: within a chunk (one line per segment, spread across the die), so
#: they tolerate a much staler cost snapshot than the bent patterns
#: that pick bends from it; the negotiation rounds converge to the
#: same overflow while the bigger chunks cut the per-chunk pricing
#: overhead.
_STRAIGHT_CHUNK_CAP = 4096
_PATTERN_CHUNK_CAP = 512
#: Route descriptors: how a routed segment's gcell path is
#: reconstructed at emit time.  During routing only the flat edge
#: arrays are committed (negotiation rips and recommits thousands of
#: routes; materializing throw-away paths dominated the commit
#: phase), so every straight or pattern route is stored as its
#: descriptor — endpoints plus bend — and the survivors' paths are
#: built in bulk exactly once in :meth:`_BatchedRouter._emit`.  Only
#: wavefront/maze routes (non-monotone detours) store explicit cells.
_KIND_NONE = 0
_KIND_EXPLICIT = 1
_KIND_STRAIGHT = 2
_KIND_HVH = 3
_KIND_VHV = 4
#: Per-round negotiation schedules (last entry repeats): keepers
#: evicted per overflowed edge (see
#: :meth:`_BatchedRouter._overflowed_ids`) and the congestion weight
#: of the sequential tail.  Early rounds evict few segments at the
#: sequential engine's weight; later rounds evict more keepers and
#: price congestion harder, pushing chronic traffic out of corridors
#: the fixed-weight tail leaves pinned at capacity.
_NEG_MARGIN = (1, 2, 4)
_NEG_CW = (5.0, 8.0, 12.0)

#: Acceptance sub-waves per relocation pricing (see ``_relocate``):
#: how many times vacancies opened by the wave just committed may
#: unlock further accepts before the pass pays for a full re-pricing.
_ACCEPT_WAVES = 4

#: Full pricing passes per ``_relocate`` call; later passes move ever
#: fewer segments, so a small cap keeps the tail of the loop cheap.
_RELOC_PASSES = 4
#: Cost slack (over manhattan) below which a straight segment commits
#: without windowed expansion.  Zero means "every edge on the line is
#: penalty-free": a line with any congestion pays the full wavefront
#: search instead, because the tiny per-wire overflow penalty would
#: otherwise let wide buses stack far past capacity before the slack
#: is used up.
_STRAIGHT_SLACK = 0.0
#: Cost slack (over manhattan) below which a bent segment commits its
#: best monotone L/Z pattern instead of running windowed expansion.
_PATTERN_SLACK = 0.0
#: Min-plus rounds before a window is declared non-converged.
_SWEEP_LIMIT = 64
#: Detour margin around a segment's bbox on the first pass — the grid
#: is near-empty, so shortest paths barely leave the bbox.
_FIRST_PAD = 2
#: Detour margin while negotiating: rerouted segments must be able to
#: sidestep whole contested corridors.
_WINDOW_PAD = 8
#: Quantized window dims — few distinct shapes means big batches.
_WINDOW_SIZES = (8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512,
                 768, 1024)


@contextmanager
def _phase(sink: Any, phases: dict, name: str) -> Iterator[None]:
    """Accumulate wall ms into ``phases[name]`` and (when a telemetry
    sink is given) record the block as a kernel span."""
    t0 = time.perf_counter()
    try:
        if sink is None:
            yield
        else:
            from repro.orchestrate.telemetry import kernel_span
            with kernel_span(sink, name):
                yield
    finally:
        phases[name] = (phases.get(name, 0.0)
                        + (time.perf_counter() - t0) * 1e3)


# ----------------------------------------------------------------------
# Decompose: pins -> gcells -> 2-pin segments.


def _batched_prim(xs: IntArray, ys: IntArray) -> tuple:
    """Prim MST over B equal-size point sets at once.

    ``xs``/``ys`` are (B, n); returns ``(ea, eb)`` local point-index
    arrays of shape (B, n-1), one tree edge per step.  Deterministic:
    argmin ties resolve to the lowest index.
    """
    B, n = xs.shape
    d = (np.abs(xs[:, :, None] - xs[:, None, :])
         + np.abs(ys[:, :, None] - ys[:, None, :]))
    big = np.iinfo(np.int64).max
    rows = np.arange(B)
    in_tree = np.zeros((B, n), dtype=bool)
    in_tree[:, 0] = True
    min_d = d[:, :, 0].astype(np.int64)
    min_d[:, 0] = big
    parent = np.zeros((B, n), dtype=np.int64)
    ea = np.empty((B, n - 1), dtype=np.int64)
    eb = np.empty((B, n - 1), dtype=np.int64)
    for step in range(n - 1):
        j = np.argmin(min_d, axis=1)
        ea[:, step] = parent[rows, j]
        eb[:, step] = j
        in_tree[rows, j] = True
        dj = d[rows, :, j].astype(np.int64)
        parent = np.where(dj < min_d, j[:, None], parent)
        min_d = np.minimum(min_d, dj)
        min_d[in_tree] = big
    return ea, eb


def _decompose(placement: Placement, grid: RoutingGrid,
               topology: str) -> tuple:
    """Vectorized net decomposition.

    Returns ``(net_names, seg_net, sx, sy, dx, dy)`` — segment
    endpoint gcell arrays plus the index of each segment's net in
    ``net_names`` (net_pins iteration order).
    """
    pins = placement.net_pins()
    names = list(pins)
    counts = np.fromiter((len(p) for p in pins.values()),
                         dtype=np.int64, count=len(names))
    empty = np.zeros(0, dtype=np.int64)
    if not counts.sum():
        return names, empty, empty, empty, empty, empty

    n_arr = np.repeat(np.arange(len(names), dtype=np.int64), counts)
    xy = np.asarray(list(chain.from_iterable(pins.values())),
                    dtype=np.float64)
    # Same binning expression as GlobalRouter._gcell, elementwise.
    gx = np.clip(xy[:, 0] / placement.die_w_um * grid.nx,
                 0, grid.nx - 1).astype(np.int64)
    gy = np.clip(xy[:, 1] / placement.die_h_um * grid.ny,
                 0, grid.ny - 1).astype(np.int64)

    # Per-net unique gcells, (x, y)-sorted within each net.
    order = np.lexsort((gy, gx, n_arr))
    n_arr, gx, gy = n_arr[order], gx[order], gy[order]
    keep = np.ones(n_arr.size, dtype=bool)
    keep[1:] = ((n_arr[1:] != n_arr[:-1]) | (gx[1:] != gx[:-1])
                | (gy[1:] != gy[:-1]))
    n_arr, gx, gy = n_arr[keep], gx[keep], gy[keep]

    starts = np.flatnonzero(np.r_[True, n_arr[1:] != n_arr[:-1]])
    counts = np.diff(np.r_[starts, n_arr.size])
    net_of_run = n_arr[starts]

    seg_net: list = []
    seg_sx: list = []
    seg_sy: list = []
    seg_dx: list = []
    seg_dy: list = []

    def _emit(nets: IntArray, ax: IntArray, ay: IntArray,
              bx: IntArray, by: IntArray) -> None:
        seg_net.append(nets)
        seg_sx.append(ax)
        seg_sy.append(ay)
        seg_dx.append(bx)
        seg_dy.append(by)

    two = np.flatnonzero(counts == 2)
    if two.size:
        s = starts[two]
        _emit(net_of_run[two], gx[s], gy[s], gx[s + 1], gy[s + 1])

    multi = np.flatnonzero(counts >= 3)
    steiner_runs: list = []
    if topology == "steiner":
        small = multi[counts[multi] <= 8]
        steiner_runs = list(small)
        multi = multi[counts[multi] > 8]
    for c in np.unique(counts[multi]) if multi.size else ():
        runs = multi[counts[multi] == c]
        rows = starts[runs][:, None] + np.arange(c)[None, :]
        bx, by = gx[rows], gy[rows]
        ea, eb = _batched_prim(bx, by)
        B = runs.size
        nets = np.repeat(net_of_run[runs], c - 1)
        r = np.repeat(np.arange(B), c - 1)
        _emit(nets, bx[r, ea.ravel()], by[r, ea.ravel()],
              bx[r, eb.ravel()], by[r, eb.ravel()])
    for run in steiner_runs:  # small multi-pin nets, exact topology
        from repro.route.steiner import steiner_tree
        s, c = starts[run], counts[run]
        cells = [(int(gx[s + k]), int(gy[s + k])) for k in range(c)]
        for (ax, ay), (bx_, by_) in steiner_tree(cells):
            _emit(np.asarray([net_of_run[run]]),
                  np.asarray([ax]), np.asarray([ay]),
                  np.asarray([bx_]), np.asarray([by_]))

    if not seg_net:
        return names, empty, empty, empty, empty, empty
    net_i = np.concatenate(seg_net)
    sx = np.concatenate(seg_sx).astype(np.int64)
    sy = np.concatenate(seg_sy).astype(np.int64)
    dx = np.concatenate(seg_dx).astype(np.int64)
    dy = np.concatenate(seg_dy).astype(np.int64)
    # Ascending Manhattan length, like the sequential engines.
    order = np.argsort(np.abs(sx - dx) + np.abs(sy - dy),
                       kind="stable")
    return (names, net_i[order], sx[order], sy[order], dx[order],
            dy[order])


# ----------------------------------------------------------------------
# Expand: batched min-plus scan Bellman-Ford over per-segment windows.


def _quantize(v: IntArray) -> IntArray:
    """Round window dims up to the nearest canonical size."""
    sizes = np.asarray(_WINDOW_SIZES, dtype=np.int64)
    idx = np.searchsorted(sizes, v)
    return np.where(idx < sizes.size,
                    sizes[np.minimum(idx, sizes.size - 1)], v)


def _windows(grid: RoutingGrid, sx: IntArray, sy: IntArray,
             dx: IntArray, dy: IntArray,
             pad: int = _WINDOW_PAD) -> tuple:
    """Per-segment quantized windows ``(x0, y0, W, H)``.

    Windows are clipped to the grid by *shifting*, never by padding —
    every cell of every window is a real gcell, so the cost gathers
    need no sentinel values.
    """
    bw = np.abs(sx - dx) + 1
    bh = np.abs(sy - dy) + 1
    w = np.minimum(grid.nx, _quantize(bw + 2 * pad))
    h = np.minimum(grid.ny, _quantize(bh + 2 * pad))
    x0 = np.clip(np.minimum(sx, dx) - (w - bw) // 2, 0, grid.nx - w)
    y0 = np.clip(np.minimum(sy, dy) - (h - bh) // 2, 0, grid.ny - h)
    return x0, y0, w, h


def _expand_chunk(h_cost: FloatArray, v_cost: FloatArray,
                  x0: IntArray, y0: IntArray, w: int, h: int,
                  sxw: IntArray, syw: IntArray) -> tuple:
    """Shortest-path distances for K same-shape windows at once.

    Returns ``(dist, hw, vw)`` — the (K, H, W) distance field from
    each window's source plus the gathered edge-cost slabs (reused by
    the backtrace).
    """
    k = x0.shape[0]
    ys = (y0[:, None] + np.arange(h))[:, :, None]     # (K, H, 1)
    xs = (x0[:, None] + np.arange(w))[:, None, :]     # (K, 1, W)
    hw = h_cost[ys, xs[:, :, :w - 1]]                 # (K, H, W-1)
    vw = v_cost[ys[:, :h - 1, :], xs]                 # (K, H-1, W)
    full = np.full((k, h, w), np.inf)
    full[np.arange(k), syw, sxw] = 0.0
    sh_full = np.concatenate(
        [np.zeros((k, h, 1)), np.cumsum(hw, axis=2)], axis=2)
    sv_full = np.concatenate(
        [np.zeros((k, 1, w)), np.cumsum(vw, axis=1)], axis=1)
    # Sweep only the windows that are still changing: converged ones
    # are scattered back into ``full`` and dropped from the batch, so
    # a few straggler windows stop costing whole-batch sweeps.
    act = np.arange(k)
    dist, sh, sv = full, sh_full, sv_full
    for _ in range(_SWEEP_LIMIT):
        prev = dist.copy()
        t = dist - sh                                  # rightward
        np.minimum.accumulate(t, axis=2, out=t)
        np.minimum(dist, t + sh, out=dist)
        t = np.flip(np.minimum.accumulate(              # leftward
            np.flip(dist + sh, axis=2), axis=2), axis=2)
        np.minimum(dist, t - sh, out=dist)
        t = dist - sv                                  # downward (+y)
        np.minimum.accumulate(t, axis=1, out=t)
        np.minimum(dist, t + sv, out=dist)
        t = np.flip(np.minimum.accumulate(              # upward (-y)
            np.flip(dist + sv, axis=1), axis=1), axis=1)
        np.minimum(dist, t - sv, out=dist)
        # Tolerant check: prefix-sum arithmetic can keep flipping the
        # last ulp forever; improvements below 1e-9 are far smaller
        # than any real cost difference (>= 0.1) and cannot change a
        # backtrace, so treat them as converged.
        changed = (dist < prev - 1e-9).any(axis=(1, 2))
        n_changed = int(changed.sum())
        if n_changed == 0:
            break
        if n_changed <= act.size // 2:
            settled = ~changed
            full[act[settled]] = dist[settled]
            act = act[changed]
            dist = dist[changed]
            sh = sh[changed]
            sv = sv[changed]
    if dist is not full:
        full[act] = dist
    return full, hw, vw


def _backtrace(dist: FloatArray, hw: FloatArray, vw: FloatArray,
               sxw: IntArray, syw: IntArray, dxw: IntArray,
               dyw: IntArray, rng: Any) -> tuple:
    """Walk dst -> src by greedy strict descent, whole batch at once.

    Below capacity the negotiated cost is flat, so many staircase
    paths tie exactly; a deterministic tie-break would send every
    segment of a batch down the same canonical corridor and stack
    usage far past capacity before the next cost refresh could react.
    Instead, ties break on a per-segment, per-step ~1e-4 perturbation
    drawn from ``rng`` — tied neighbors all lie on shortest paths, so
    this diffuses the batch across the whole equal-cost corridor
    ensemble (the batched analogue of the sequential engines filling
    corridors one segment at a time) while the strict-descent check
    keeps every walk a true shortest path.

    Returns ``(px, py, done, ok)``: step-stacked window coordinates
    (K, S+1), per-segment final step index, and a success mask (a
    window that did not converge cannot descend and falls back to the
    sequential maze router).
    """
    k, h, w = dist.shape
    rows = np.arange(k)
    cx, cy = dxw.astype(np.int64), dyw.astype(np.int64)
    steps_x, steps_y = [cx.copy()], [cy.copy()]
    active = (cx != sxw) | (cy != syw)
    ok = np.ones(k, dtype=bool)
    done = np.zeros(k, dtype=np.int64)
    moves_x = np.asarray([-1, 1, 0, 0])
    moves_y = np.asarray([0, 0, -1, 1])
    cap = h * w
    step = 0
    while active.any() and step < cap:
        step += 1
        cur_d = dist[rows, cy, cx]
        cand = np.full((4, k), np.inf)
        m = cx > 0
        cand[0, m] = (dist[rows[m], cy[m], cx[m] - 1]
                      + hw[rows[m], cy[m], cx[m] - 1])
        m = cx < w - 1
        cand[1, m] = (dist[rows[m], cy[m], cx[m] + 1]
                      + hw[rows[m], cy[m], cx[m]])
        m = cy > 0
        cand[2, m] = (dist[rows[m], cy[m] - 1, cx[m]]
                      + vw[rows[m], cy[m] - 1, cx[m]])
        m = cy < h - 1
        cand[3, m] = (dist[rows[m], cy[m] + 1, cx[m]]
                      + vw[rows[m], cy[m], cx[m]])
        cand += rng.random((4, k)) * 1e-4
        choice = np.argmin(cand, axis=0)
        nx_ = np.clip(cx + moves_x[choice], 0, w - 1)
        ny_ = np.clip(cy + moves_y[choice], 0, h - 1)
        good = active & (dist[rows, ny_, nx_] < cur_d)
        ok &= ~(active & ~good)
        cx = np.where(good, nx_, cx)
        cy = np.where(good, ny_, cy)
        steps_x.append(cx.copy())
        steps_y.append(cy.copy())
        done = np.where(good, step, done)
        active = good & ((cx != sxw) | (cy != syw))
    ok &= ~active  # hit the step cap while still walking
    return np.stack(steps_x, axis=1), np.stack(steps_y, axis=1), \
        done, ok


# ----------------------------------------------------------------------
# Commit / negotiate.


_EMPTY_I64 = np.empty(0, dtype=np.int64)


def _ragged_runs(starts: IntArray, steps: IntArray,
                 lens: IntArray) -> IntArray:
    """Concatenated arithmetic runs: ``out[off_i + t] = starts[i] +
    steps[i] * t`` for ``t < lens[i]`` — the ragged analogue of
    ``arange``, used to materialize whole batches of path legs and
    edge runs without per-segment loops."""
    tot = int(lens.sum())
    off = np.repeat(np.cumsum(lens) - lens, lens)
    t = np.arange(tot) - off
    return np.repeat(starts, lens) + np.repeat(steps, lens) * t


def _pattern_family(hp: Any, vp: Any, sx: IntArray, sy: IntArray,
                    dx: IntArray, dy: IntArray) -> tuple:
    """Price every monotone L/Z route of each segment in one gather.

    ``hp``/``vp`` are row/column prefix sums of per-edge weights
    (full costs or overflow penalties).  Column ``j < wmax`` of the
    returned matrix is the H-V-H route bending at column
    ``min(x1 + j, x2)``; column ``wmax + j`` is the V-H-V route
    bending at row ``min(y1 + j, y2)`` — L-shapes are the endpoint
    bends, so the family needs no special cases.  Returns the cost
    matrix and ``wmax`` (the H-V-H column count).
    """
    x1, x2 = np.minimum(sx, dx), np.maximum(sx, dx)
    y1, y2 = np.minimum(sy, dy), np.maximum(sy, dy)
    wmax = int((x2 - x1).max()) + 1
    cc = np.minimum(x1[:, None] + np.arange(wmax)[None, :],
                    x2[:, None])
    hvh = (np.abs(hp[sy[:, None], cc] - hp[sy, sx][:, None])
           + np.abs(vp[dy[:, None], cc] - vp[sy[:, None], cc])
           + np.abs(hp[dy, dx][:, None] - hp[dy[:, None], cc]))
    hmax = int((y2 - y1).max()) + 1
    rr = np.minimum(y1[:, None] + np.arange(hmax)[None, :],
                    y2[:, None])
    vhv = (np.abs(vp[rr, sx[:, None]] - vp[sy, sx][:, None])
           + np.abs(hp[rr, dx[:, None]] - hp[rr, sx[:, None]])
           + np.abs(vp[dy, dx][:, None] - vp[rr, dx[:, None]]))
    return np.concatenate([hvh, vhv], axis=1), wmax


def _path_edges(path: IntArray, nx: int) -> tuple:
    """Flat (h, v) usage-array indices of an (L, 2) gcell path."""
    x, y = path[:, 0], path[:, 1]
    horiz = y[1:] == y[:-1]
    hx = np.minimum(x[1:], x[:-1])[horiz]
    hy = y[1:][horiz]
    vx = x[1:][~horiz]
    vy = np.minimum(y[1:], y[:-1])[~horiz]
    return hy * (nx - 1) + hx, vy * nx + vx


class _BatchedRouter:
    """One batched-routing run; see the module docstring."""

    def __init__(self, placement: Placement, *, layers: int,
                 gcell_um: float, topology: str, max_iterations: int,
                 seed: int, telemetry: Any) -> None:
        if topology not in ("mst", "steiner"):
            raise ValueError("topology must be 'mst' or 'steiner'")
        self.placement = placement
        self.topology = topology
        self.max_iterations = max_iterations
        self.telemetry = telemetry
        node = placement.netlist.library.node
        self.grid = RoutingGrid.for_die(
            placement.die_w_um, placement.die_h_um, node,
            gcell_um=gcell_um, layers=layers)
        self.rng = np.random.default_rng(seed)
        self.phases: dict = {}

    # -- one wave of segment ids, bucketed by window shape -------------

    def _route_ids(self, ids: IntArray, congestion_weight: float,
                   chunk_cap: int = _CHUNK_CAP) -> None:
        if ids.size == 0:
            return
        sx, dx = self.seg_sx[ids], self.seg_dx[ids]
        sy, dy = self.seg_sy[ids], self.seg_dy[ids]
        straight = (sx == dx) | (sy == dy)
        rest: list = []
        st = ids[straight]
        for lo in range(0, st.size, _STRAIGHT_CHUNK_CAP):
            rest.append(self._route_straight(
                st[lo:lo + _STRAIGHT_CHUNK_CAP], congestion_weight))
        bent = ids[~straight]
        for lo in range(0, bent.size, _PATTERN_CHUNK_CAP):
            rest.append(self._route_patterns(
                bent[lo:lo + _PATTERN_CHUNK_CAP], congestion_weight,
                _PATTERN_SLACK))
        ids = np.concatenate(rest) if rest else ids[:0]
        if ids.size == 0:
            return
        x0, y0, w, h = (a[ids] for a in self.windows)
        shapes: dict = {}
        for pos in range(ids.size):
            shapes.setdefault((int(h[pos]), int(w[pos])),
                              []).append(pos)
        for (hh, ww) in sorted(shapes):
            pos = np.asarray(shapes[(hh, ww)], dtype=np.int64)
            k_max = max(16, min(_WAVE_CELLS // (hh * ww), chunk_cap))
            for lo in range(0, pos.size, k_max):
                self._route_chunk(ids[pos[lo:lo + k_max]], hh, ww,
                                  congestion_weight)

    def _route_straight(self, ids: IntArray,
                        congestion_weight: float) -> IntArray:
        """Commit provably-optimal straight segments without expansion.

        An axis-aligned segment's line cost is an O(1) prefix-sum
        difference, and any alternative path is at least two edges
        longer at a floor cost of 1.0 per edge — so a line costing no
        more than ``manhattan + 2`` *is* a shortest path and can skip
        the wavefront entirely.  Returns the ids (congested lines)
        that must go through the regular windowed expansion.
        """
        if ids.size == 0:
            return ids
        g = self.grid
        nx = g.nx
        with _phase(self.telemetry, self.phases, "route_expand"):
            h_cost, v_cost = g.cost_arrays(
                congestion_weight=congestion_weight)
            # Zero-congestion-weight twin: the overflow *penalty* on
            # the line is the difference, so the slack check is not
            # poisoned by the history tax that every edge pays once
            # negotiation has begun.
            h_cost0, v_cost0 = g.cost_arrays(congestion_weight=0.0)
            hps = np.concatenate(
                [np.zeros((h_cost.shape[0], 1)),
                 np.cumsum(h_cost - h_cost0, axis=1)], axis=1)
            vps = np.concatenate(
                [np.zeros((1, v_cost.shape[1])),
                 np.cumsum(v_cost - v_cost0, axis=0)], axis=0)
            sx, dx = self.seg_sx[ids], self.seg_dx[ids]
            sy, dy = self.seg_sy[ids], self.seg_dy[ids]
            x1, x2 = np.minimum(sx, dx), np.maximum(sx, dx)
            y1, y2 = np.minimum(sy, dy), np.maximum(sy, dy)
            horiz = sy == dy
            penalty = np.where(horiz,
                               hps[sy, x2] - hps[sy, x1],
                               vps[y2, sx] - vps[y1, sx])
            length = (x2 - x1) + (y2 - y1)
            good = penalty <= _STRAIGHT_SLACK + 1e-9
        with _phase(self.telemetry, self.phases, "route_commit"):
            for axis in (True, False):
                pick = good & (horiz == axis)
                if not pick.any():
                    continue
                pids = ids[pick]
                ln = length[pick]
                total = int(ln.sum())
                off = np.repeat(np.cumsum(ln) - ln, ln)
                steps = np.arange(total) - off
                if axis:
                    base = y1[pick] * (nx - 1) + x1[pick]
                    flat = np.repeat(base, ln) + steps
                    np.add.at(g.h_usage.ravel(), flat, 1)
                else:
                    base = y1[pick] * nx + sx[pick]
                    flat = np.repeat(base, ln) + steps * nx
                    np.add.at(g.v_usage.ravel(), flat, 1)
                cuts = np.cumsum(ln)[:-1]
                parts = np.split(flat, cuts)
                for j, i in enumerate(pids):
                    if axis:
                        self.seg_h[i] = parts[j]
                        self.seg_v[i] = _EMPTY_I64
                    else:
                        self.seg_v[i] = parts[j]
                        self.seg_h[i] = _EMPTY_I64
                self.seg_kind[pids] = _KIND_STRAIGHT
        return ids[~good]

    def _route_patterns(self, ids: IntArray, congestion_weight: float,
                        slack: float) -> IntArray:
        """Route bent segments as min-cost monotone L/Z patterns.

        Every 3-leg monotone route (H-V-H with a bend column ``c``, or
        V-H-V with a bend row ``r``) has a cost that is three
        prefix-sum differences, so the *entire* candidate family —
        every possible bend position, L-shapes included as the
        endpoints — evaluates as one batched gather per chunk.  A
        segment commits its cheapest pattern when that costs no more
        than ``manhattan + slack`` (monotone patterns never add
        wirelength); the rest return to the caller for windowed
        wavefront expansion, which can also find non-monotone detours.
        The seeded jitter diffuses equal-cost bends across the batch
        exactly like the backtrace tie-breaking.
        """
        if ids.size == 0:
            return ids
        g = self.grid
        nx = g.nx
        k = ids.size
        with _phase(self.telemetry, self.phases, "route_expand"):
            h_cost, v_cost = g.cost_arrays(
                congestion_weight=congestion_weight)
            # Row/column prefix sums; costs are >= 1, so both are
            # strictly increasing and |difference| is the leg cost in
            # either direction.
            hps = np.zeros((g.ny, nx))
            hps[:, 1:] = np.cumsum(h_cost, axis=1)
            vps = np.zeros((g.ny, nx))
            vps[1:, :] = np.cumsum(v_cost, axis=0)
            sx, dx = self.seg_sx[ids], self.seg_dx[ids]
            sy, dy = self.seg_sy[ids], self.seg_dy[ids]
            x1, x2 = np.minimum(sx, dx), np.maximum(sx, dx)
            y1, y2 = np.minimum(sy, dy), np.maximum(sy, dy)
            cand, wmax = _pattern_family(hps, vps, sx, sy, dx, dy)
            cand += self.rng.random(cand.shape) * 1e-4
            best = np.argmin(cand, axis=1)
            if np.isinf(slack):
                good = np.ones(k, dtype=bool)
            else:
                # Overflow penalty of the chosen route (cost minus its
                # zero-congestion-weight twin), so the slack check is
                # not poisoned by the history tax — same reasoning as
                # the straight fast path.
                h0, v0 = g.cost_arrays(congestion_weight=0.0)
                hp0 = np.zeros((g.ny, nx))
                hp0[:, 1:] = np.cumsum(h_cost - h0, axis=1)
                vp0 = np.zeros((g.ny, nx))
                vp0[1:, :] = np.cumsum(v_cost - v0, axis=0)
                bc = np.minimum(
                    np.where(best < wmax, x1 + best, 0), x2)
                br = np.minimum(
                    np.where(best >= wmax, y1 + best - wmax, 0), y2)
                pen_hvh = (np.abs(hp0[sy, bc] - hp0[sy, sx])
                           + np.abs(vp0[dy, bc] - vp0[sy, bc])
                           + np.abs(hp0[dy, dx] - hp0[dy, bc]))
                pen_vhv = (np.abs(vp0[br, sx] - vp0[sy, sx])
                           + np.abs(hp0[br, dx] - hp0[br, sx])
                           + np.abs(vp0[dy, dx] - vp0[br, dx]))
                penalty = np.where(best < wmax, pen_hvh, pen_vhv)
                good = penalty <= slack + 1e-9
        with _phase(self.telemetry, self.phases, "route_commit"):
            bend_c = np.where(best < wmax,
                              np.minimum(x1 + best, x2), 0)
            bend_r = np.where(best >= wmax,
                              np.minimum(y1 + best - wmax, y2), 0)
            for hvh_fam in (True, False):
                pick = good & ((best < wmax) == hvh_fam)
                if not pick.any():
                    continue
                self._commit_patterns(
                    ids[pick], (bend_c if hvh_fam else bend_r)[pick],
                    hvh_fam)
        return ids[~good]

    def _pattern_edge_parts(self, pids: IntArray, bend: IntArray,
                            hvh: bool) -> tuple:
        """Per-segment flat (h, v) edge arrays of pattern routes.

        The two same-axis legs interleave per segment so ``np.split``
        lands each segment's edges contiguous; nothing is committed.
        """
        g = self.grid
        nx = g.nx
        kk = pids.size
        sx, dx = self.seg_sx[pids], self.seg_dx[pids]
        sy, dy = self.seg_sy[pids], self.seg_dy[pids]
        if hvh:
            # legs: h (row sy: sx->c), v (col c: sy->dy),
            #       h (row dy: c->dx)
            l1, l2 = np.abs(bend - sx), np.abs(dy - sy)
            l3 = np.abs(dx - bend)
            same_h = (sy * (nx - 1) + np.minimum(sx, bend),
                      dy * (nx - 1) + np.minimum(bend, dx))
            cross = np.minimum(sy, dy) * nx + bend
            cross_step = nx
            same_step = 1
        else:
            # legs: v (col sx: sy->r), h (row r: sx->dx),
            #       v (col dx: r->dy)
            l1, l2 = np.abs(bend - sy), np.abs(dx - sx)
            l3 = np.abs(dy - bend)
            same_h = (np.minimum(sy, bend) * nx + sx,
                      np.minimum(bend, dy) * nx + dx)
            cross = bend * (nx - 1) + np.minimum(sx, dx)
            cross_step = 1
            same_step = nx
        sbase = np.stack(same_h, axis=1).ravel()
        slens = np.stack([l1, l3], axis=1).ravel()
        sflat = _ragged_runs(sbase, np.full(2 * kk, same_step), slens)
        cflat = _ragged_runs(cross, np.full(kk, cross_step), l2)
        sparts = np.split(sflat, np.cumsum(l1 + l3)[:-1])
        cparts = np.split(cflat, np.cumsum(l2)[:-1])
        return (sparts, cparts) if hvh else (cparts, sparts)

    def _commit_patterns(self, pids: IntArray, bend: IntArray,
                         hvh: bool) -> None:
        """Commit a family of pattern routes: usage, per-segment edge
        lists, and the route descriptor (the path itself is rebuilt
        from the descriptor at emit time)."""
        g = self.grid
        hparts, vparts = self._pattern_edge_parts(pids, bend, hvh)
        if pids.size:
            np.add.at(g.h_usage.ravel(),
                      np.concatenate(hparts), 1)
            np.add.at(g.v_usage.ravel(),
                      np.concatenate(vparts), 1)
        for j, i in enumerate(pids):
            self.seg_h[i] = hparts[j]
            self.seg_v[i] = vparts[j]
        self.seg_kind[pids] = _KIND_HVH if hvh else _KIND_VHV
        self.seg_bend[pids] = bend

    def _route_chunk(self, ids: IntArray, hh: int, ww: int,
                     congestion_weight: float) -> None:
        g = self.grid
        sx, sy = self.seg_sx[ids], self.seg_sy[ids]
        dx, dy = self.seg_dx[ids], self.seg_dy[ids]
        x0, y0 = self.windows[0][ids], self.windows[1][ids]
        with _phase(self.telemetry, self.phases, "route_expand"):
            h_cost, v_cost = g.cost_arrays(
                congestion_weight=congestion_weight)
            dist, hw, vw = _expand_chunk(
                h_cost, v_cost, x0, y0, ww, hh, sx - x0, sy - y0)
            px, py, done, ok = _backtrace(
                dist, hw, vw, sx - x0, sy - y0, dx - x0, dy - y0,
                self.rng)
        with _phase(self.telemetry, self.phases, "route_commit"):
            # Global step-stacked coordinates; the frozen tail of each
            # finished row repeats its last cell, so "an edge exists at
            # step s" is exactly "the position changed at step s".
            gx = px + x0[:, None]
            gy = py + y0[:, None]
            ax, bx = gx[:, :-1], gx[:, 1:]
            ay, by = gy[:, :-1], gy[:, 1:]
            moved = ok[:, None] & ((ax != bx) | (ay != by))
            horiz = moved & (ay == by)
            vert = moved & (ay != by)
            rows = np.broadcast_to(
                np.arange(ids.size)[:, None], moved.shape)
            h_flat = (ay * (g.nx - 1) + np.minimum(ax, bx))[horiz]
            v_flat = (np.minimum(ay, by) * g.nx + ax)[vert]
            h_rows, v_rows = rows[horiz], rows[vert]
            # Distribute the flat edge lists back per segment (row
            # order is already sorted by k).
            h_cuts = np.searchsorted(h_rows, np.arange(ids.size))
            v_cuts = np.searchsorted(v_rows, np.arange(ids.size))
            h_parts = np.split(h_flat, h_cuts[1:])
            v_parts = np.split(v_flat, v_cuts[1:])
            h_add = [h_flat]
            v_add = [v_flat]
            for k, i in enumerate(ids):
                if ok[k]:
                    length = int(done[k]) + 1
                    self.seg_paths[i] = np.stack(
                        [gx[k, :length][::-1],
                         gy[k, :length][::-1]], axis=1)
                    self.seg_h[i] = h_parts[k]
                    self.seg_v[i] = v_parts[k]
                    self.seg_kind[i] = _KIND_EXPLICIT
                    continue
                # Window failed to descend: sequential fallback.
                found = maze_route(
                    g, (int(sx[k]), int(sy[k])),
                    (int(dx[k]), int(dy[k])),
                    congestion_weight=congestion_weight)
                if found is None:
                    if self.seg_kind[i] == _KIND_NONE:
                        self.failed.append(
                            self.net_names[self.seg_net[i]])
                        continue
                    # keep (recommit) the ripped-up old route
                    h_add.append(self.seg_h[i])
                    v_add.append(self.seg_v[i])
                    continue
                self.seg_paths[i] = np.asarray(found, dtype=np.int64)
                self.seg_kind[i] = _KIND_EXPLICIT
                he, ve = _path_edges(self.seg_paths[i], g.nx)
                self.seg_h[i] = he
                self.seg_v[i] = ve
                h_add.append(he)
                v_add.append(ve)
            np.add.at(g.h_usage.ravel(), np.concatenate(h_add), 1)
            np.add.at(g.v_usage.ravel(), np.concatenate(v_add), 1)

    # -- negotiation helpers -------------------------------------------

    def _penalty_arrays(self, congestion_weight: float) -> tuple:
        """Flat overflow-penalty arrays: (newcomer, incumbent) per axis.

        The newcomer arrays price *entering* an edge (the congestion
        term of the grid's cost model); the incumbent arrays price
        *staying* on one — the same term with the segment's own unit
        of usage discounted, so an edge at exactly capacity taxes a
        newcomer but not a segment already committed to it.
        """
        g = self.grid
        out: list = []
        for use, cap, hist in (
                (g.h_usage, g.h_capacity, g.h_history),
                (g.v_usage, g.v_capacity, g.v_history)):
            scale = (congestion_weight * (1.0 + hist) / cap).ravel()
            out.append(
                (np.maximum(0.0, (use + 1 - cap)).ravel() * scale,
                 np.maximum(0.0, (use - cap)).ravel() * scale))
        (h_pen, h_pen0), (v_pen, v_pen0) = out
        return h_pen, h_pen0, v_pen, v_pen0

    def _stay_penalties(self, ids: IntArray, h_pen0: Any,
                        v_pen0: Any) -> Any:
        """Overflow penalty each segment's current path pays to stay."""
        stay = np.zeros(ids.size)
        for flat, pen0 in ((self.seg_h, h_pen0),
                           (self.seg_v, v_pen0)):
            arrs = [flat[i] for i in ids]
            lens = np.asarray([0 if a is None else a.size
                               for a in arrs])
            if not lens.any():
                continue
            cat = np.concatenate(
                [a for a in arrs if a is not None and a.size])
            owner = np.repeat(np.arange(ids.size), lens)
            stay += np.bincount(owner, weights=pen0[cat],
                                minlength=ids.size)
        return stay

    def _escape_moves(self, ids: IntArray, h_pen: Any,
                      v_pen: Any) -> tuple:
        """Cheapest equal-length escape per segment.

        Prices the whole monotone pattern family against the
        *newcomer* penalty prefix sums and returns ``(penalty, bend,
        is_hvh)`` for each segment's best candidate.  Priced with the
        segment's own usage still committed, so wherever a candidate
        reuses the current edges the estimate errs conservative.
        """
        g = self.grid
        hp = np.zeros((g.ny, g.nx))
        hp[:, 1:] = np.cumsum(h_pen.reshape(g.h_usage.shape), axis=1)
        vp = np.zeros((g.ny, g.nx))
        vp[1:, :] = np.cumsum(v_pen.reshape(g.v_usage.shape), axis=0)
        pen = np.empty(ids.size)
        bend = np.empty(ids.size, dtype=np.int64)
        fam = np.empty(ids.size, dtype=bool)
        for lo in range(0, ids.size, _CHUNK_CAP):
            sl = slice(lo, lo + _CHUNK_CAP)
            sub = ids[sl]
            sx, dx = self.seg_sx[sub], self.seg_dx[sub]
            sy, dy = self.seg_sy[sub], self.seg_dy[sub]
            cand, wmax = _pattern_family(hp, vp, sx, sy, dx, dy)
            cand += self.rng.random(cand.shape) * 1e-4
            best = np.argmin(cand, axis=1)
            pen[sl] = cand[np.arange(sub.size), best]
            fam[sl] = best < wmax
            x1, x2 = np.minimum(sx, dx), np.maximum(sx, dx)
            y1, y2 = np.minimum(sy, dy), np.maximum(sy, dy)
            bend[sl] = np.where(
                best < wmax,
                np.minimum(x1 + best, x2),
                np.minimum(y1 + np.maximum(best - wmax, 0), y2))
        return pen, bend, fam

    def _relocate(self, congestion_weight: float) -> int:
        """Vectorized equal-length escape rounds; returns move count.

        This replicates where the sequential engine's negotiation
        rounds actually win: rerouting every segment that crosses an
        overflowed edge returns almost every path unchanged, and the
        productive few are *equal-length staircase escapes* — exactly
        the moves the monotone pattern family prices with prefix-sum
        gathers.  Each pass selects the segments whose cheapest
        escape strictly beats the (self-discounted) cost of staying
        and commits the capacity-feasible subset in batches.

        Returns the *stuck* movers: segments that would profit from
        an escape but whose every profitable candidate is blocked on
        full edges.  The caller forces those through the excess tail
        (a paid move can still shed overflow even when no free
        corridor exists).
        """
        g = self.grid
        h_tax = 0.1 * g.h_history.ravel()
        v_tax = 0.1 * g.v_history.ravel()
        cand = np.flatnonzero(
            (self.seg_sx != self.seg_dx)
            & (self.seg_sy != self.seg_dy))
        for _pass in range(_RELOC_PASSES):
            if not cand.size:
                break
            (h_pen, h_pen0, v_pen,
             v_pen0) = self._penalty_arrays(congestion_weight)
            # Only segments crossing an overflowed edge are up for
            # relocation (the sequential engine's rip criterion); the
            # history tax joins the pricing so chronic-corridor
            # incumbents prefer fresh corridors even at equal overflow
            # — the same pressure that spreads the sequential engine's
            # equal-cost reroutes.
            stay_pen = self._stay_penalties(cand, h_pen0, v_pen0)
            keep = stay_pen > 1e-12
            cand = cand[keep]
            if cand.size == 0:
                break
            stay = (stay_pen[keep]
                    + self._stay_penalties(cand, h_tax, v_tax))
            pen, bend, fam = self._escape_moves(
                cand, h_pen + h_tax, v_pen + v_tax)
            gain = stay - pen
            movers = np.flatnonzero(gain > 1e-9)
            if movers.size == 0:
                break
            order = movers[np.argsort(-gain[movers],
                                      kind="stable")]
            mv, tb, tf = cand[order], bend[order], fam[order]
            # Capacity-aware acceptance, best gain first: a move is
            # accepted only if every edge of its new route either has
            # spare capacity left after the better-ranked moves ahead
            # of it or is an edge the segment already holds (it keeps
            # its unit there, consuming nothing).  An accepted wave
            # therefore commits in one batch without the corridor
            # pile-ups that chunk-blind commits suffer.  Acceptance
            # runs several sub-waves against the same pricing: each
            # wave's commits free their old edges, so vacancy chains
            # propagate without paying for a full re-pricing.
            parts: dict = {True: None, False: None}
            fidx: dict = {}
            for f in (True, False):
                fidx[f] = np.flatnonzero(tf == f)
                if fidx[f].size:
                    parts[f] = self._pattern_edge_parts(
                        mv[fidx[f]], tb[fidx[f]], f)
            entries: list = []
            for ax in (0, 1):
                own_flat = self.seg_h if ax == 0 else self.seg_v
                n_edges = (g.h_usage if ax == 0 else g.v_usage).size
                new_parts: list = [None] * mv.size
                for f in (True, False):
                    if fidx[f].size:
                        for j, p in zip(fidx[f], parts[f][ax]):
                            new_parts[j] = p
                lens = np.asarray([p.size for p in new_parts])
                edge = (np.concatenate(new_parts) if lens.any()
                        else _EMPTY_I64)
                owner = np.repeat(np.arange(mv.size), lens)
                olens = np.asarray([own_flat[i].size for i in mv])
                okey = (np.repeat(mv, olens) * n_edges
                        + np.concatenate(
                            [own_flat[i] for i in mv]))
                held = np.isin(mv[owner] * n_edges + edge, okey)
                entries.append((edge, owner, held))
            alive = np.ones(mv.size, dtype=bool)
            committed = 0
            for _wave in range(_ACCEPT_WAVES):
                bad = np.zeros(mv.size, dtype=np.int64)
                for ax, (edge, owner, held) in enumerate(entries):
                    avail = ((g.h_capacity - g.h_usage) if ax == 0
                             else (g.v_capacity
                                   - g.v_usage)).ravel()
                    ne = np.flatnonzero(alive[owner] & ~held)
                    if not ne.size:
                        continue
                    e = edge[ne]
                    srt = np.lexsort((ne, e))
                    es = e[srt]
                    starts = np.flatnonzero(
                        np.r_[True, es[1:] != es[:-1]])
                    rank = np.arange(es.size) - np.repeat(
                        starts, np.diff(np.r_[starts, es.size]))
                    ok = rank < avail[es]
                    bad += np.bincount(owner[ne[srt[~ok]]],
                                       minlength=mv.size)
                acc = alive & (bad == 0)
                if not acc.any():
                    break
                take, tbk, tfk = mv[acc], tb[acc], tf[acc]
                self._rip_up(take)
                for f in (True, False):
                    s = tfk == f
                    if s.any():
                        self._commit_patterns(take[s], tbk[s], f)
                committed += take.size
                alive &= ~acc
            # Movers not committed are re-priced against the updated
            # usage; segments with no profitable escape are out until
            # the next negotiation round re-prices the population.
            cand = mv[alive]
            if committed == 0:
                break
        return cand

    def _overflowed_ids(self, margin: int = 0) -> IntArray:
        """Segments to rip up: the *excess* on each overflowed edge.

        Ripping every segment that merely touches an overflowed edge
        (the sequential engine's policy) re-routes half the design per
        round here, because a full-to-capacity edge carries dozens of
        perfectly fine segments.  Instead each overflowed edge keeps a
        capacity-sized subset of its segments and only the excess —
        chosen by seeded random rank, so the run stays
        bit-reproducible — goes back to the router.

        ``margin`` shrinks the kept subset to ``cap - margin``: excess
        alone just shuffles between corridors that the keepers pin at
        exactly full, so later rounds evict a few keepers per edge too,
        letting accumulated history push chronic traffic out of the
        contested region.
        """
        h_of, v_of = self.grid.overflow_masks()
        n_seg = self.seg_net.size
        hit = np.zeros(n_seg, dtype=bool)
        for flat, mask, cap in (
                (self.seg_h, h_of.ravel(), self.grid.h_capacity),
                (self.seg_v, v_of.ravel(), self.grid.v_capacity)):
            routed = [i for i in range(n_seg)
                      if flat[i] is not None and flat[i].size]
            if not routed:
                continue
            cat = np.concatenate([flat[i] for i in routed])
            sid = np.repeat(np.asarray(routed),
                            [flat[i].size for i in routed])
            bad = mask[cat]
            edges, segs = cat[bad], sid[bad]
            if edges.size == 0:
                continue
            order = np.lexsort((self.rng.permutation(edges.size),
                                edges))
            edges, segs = edges[order], segs[order]
            starts = np.flatnonzero(
                np.r_[True, edges[1:] != edges[:-1]])
            rank = np.arange(edges.size) - np.repeat(
                starts, np.diff(np.r_[starts, edges.size]))
            hit |= np.bincount(segs[rank >= cap - margin],
                               minlength=n_seg) > 0
        return np.flatnonzero(hit)

    def _rip_up(self, ids: IntArray) -> None:
        g = self.grid
        h_sub = [self.seg_h[i] for i in ids
                 if self.seg_h[i] is not None]
        v_sub = [self.seg_v[i] for i in ids
                 if self.seg_v[i] is not None]
        if h_sub:
            np.add.at(g.h_usage.ravel(), np.concatenate(h_sub), -1)
        if v_sub:
            np.add.at(g.v_usage.ravel(), np.concatenate(v_sub), -1)

    def _route_excess(self, ids: IntArray,
                      congestion_weight: float,
                      chunk: int = 32) -> None:
        """Rip-and-reroute the redo set as small pattern batches.

        The sequential engine's negotiation reroutes essentially never
        change a path's *length* — the productive moves are monotone —
        so the evicted excess can reroute through the pattern family
        at a fraction of a maze search's cost.  Small chunks keep the
        cost snapshot honest: each batch is ripped, priced against the
        usage of everything else, and committed at its cheapest
        monotone route (unconditionally — the excess has to live
        somewhere, and the congestion weight prices where).  Straight
        segments are skipped outright: their only monotone route is
        the line they already hold, so rip-and-recommit would be an
        expensive no-op (the sequential engine's equal-length reroutes
        never moved them either).
        """
        bent = ids[(self.seg_sx[ids] != self.seg_dx[ids])
                   & (self.seg_sy[ids] != self.seg_dy[ids])]
        manhattan = (np.abs(self.seg_dx[bent] - self.seg_sx[bent])
                     + np.abs(self.seg_dy[bent] - self.seg_sy[bent]))
        bent = bent[np.argsort(manhattan, kind="stable")]
        for lo in range(0, bent.size, chunk):
            sub = bent[lo:lo + chunk]
            self._rip_up(sub)
            self._route_patterns(sub, congestion_weight, np.inf)

    def _straight_paths(self, pids: IntArray) -> tuple:
        """(L, 2) path cells of straight segments, one ragged run."""
        sx, dx = self.seg_sx[pids], self.seg_dx[pids]
        sy, dy = self.seg_sy[pids], self.seg_dy[pids]
        horiz = sy == dy
        ln = np.abs(dx - sx) + np.abs(dy - sy)
        run = _ragged_runs(np.where(horiz, sx, sy),
                           np.sign(np.where(horiz, dx - sx, dy - sy)),
                           ln + 1)
        fix = np.repeat(np.where(horiz, sy, sx), ln + 1)
        hmask = np.repeat(horiz, ln + 1)
        xy = np.stack([np.where(hmask, run, fix),
                       np.where(hmask, fix, run)], axis=1)
        return xy, ln + 1

    def _pattern_paths(self, pids: IntArray, hvh: bool) -> tuple:
        """(L, 2) path cells of pattern routes, legs in walk order."""
        bend = self.seg_bend[pids]
        kk = pids.size
        sx, dx = self.seg_sx[pids], self.seg_dx[pids]
        sy, dy = self.seg_sy[pids], self.seg_dy[pids]
        if hvh:
            l1, l2 = np.abs(bend - sx), np.abs(dy - sy)
            l3 = np.abs(dx - bend)
        else:
            l1, l2 = np.abs(bend - sy), np.abs(dx - sx)
            l3 = np.abs(dy - bend)
        a1, a2 = (sx, sy) if hvh else (sy, sx)
        b1, b2 = (dx, dy) if hvh else (dy, dx)
        s1 = np.sign(bend - a1)
        sv = np.sign(b2 - a2)
        s3 = np.sign(b1 - bend)
        along = _ragged_runs(
            np.stack([a1, bend, bend + s3], axis=1).ravel(),
            np.stack([np.where(s1 == 0, 1, s1), np.zeros(kk, int),
                      s3], axis=1).ravel(),
            np.stack([l1 + 1, l2, l3], axis=1).ravel())
        across = _ragged_runs(
            np.stack([a2, a2 + sv, np.broadcast_to(b2, (kk,))],
                     axis=1).ravel(),
            np.stack([np.zeros(kk, int), sv,
                      np.zeros(kk, int)], axis=1).ravel(),
            np.stack([l1 + 1, l2, l3], axis=1).ravel())
        xy = np.stack([along, across] if hvh else [across, along],
                      axis=1)
        return xy, l1 + 1 + l2 + l3

    def _emit(self, n_seg: int) -> tuple:
        """Assemble the paths dict and the per-net QoR arrays.

        Negotiation never materialized paths (rip-and-recommit would
        have thrown them away), so the survivors' cells are rebuilt
        here from their route descriptors in four bulk batches — one
        per kind.  Each emitted path is an ``(L, 2)`` int64 view into
        its batch's cell array (the documented result contract allows
        arrays or lists per path); the only per-segment python work
        left is the dict append.
        """
        g = self.grid
        kind = self.seg_kind
        routed = np.flatnonzero(kind != _KIND_NONE)
        if not routed.size:
            return {}, _EMPTY_I64.copy(), _EMPTY_I64.copy()
        # kind -> (flat cell array, per-segment lengths), pids
        # ascending — consumed in the same order below.
        pts: list = [None] * 5
        lens: list = [None] * 5
        for k, build in (
                (_KIND_STRAIGHT, self._straight_paths),
                (_KIND_HVH,
                 lambda p: self._pattern_paths(p, True)),
                (_KIND_VHV,
                 lambda p: self._pattern_paths(p, False))):
            pids = np.flatnonzero(kind == k)
            if pids.size:
                xy, ln = build(pids)
                pts[k], lens[k] = xy, ln.tolist()
        exp = np.flatnonzero(kind == _KIND_EXPLICIT)
        if exp.size:
            pts[_KIND_EXPLICIT] = np.concatenate(
                [self.seg_paths[i] for i in exp])
            lens[_KIND_EXPLICIT] = [self.seg_paths[i].shape[0]
                                    for i in exp]
        paths: dict = {}
        get = paths.get
        names = self.net_names
        seg_net = self.seg_net.tolist()
        kind_l = kind.tolist()
        ptr = [0] * 5
        at = [0] * 5
        for i in routed.tolist():
            k = kind_l[i]
            j = ptr[k]
            lo = at[k]
            hi = lo + lens[k][j]
            ptr[k] = j + 1
            at[k] = hi
            nm = names[seg_net[i]]
            lst = get(nm)
            if lst is None:
                paths[nm] = lst = []
            lst.append(pts[k][lo:hi])
        # sorted(paths) order for the arrays, per the result contract.
        pos = {net: j for j, net in enumerate(sorted(paths))}
        net_pos = np.asarray(
            [pos.get(net, -1) for net in self.net_names],
            dtype=np.int64)
        net_idx = net_pos[self.seg_net[routed]]
        # Monotone routes are manhattan-length by construction;
        # explicit (wavefront/maze) routes count their stored cells.
        seg_wl = (np.abs(self.seg_dx - self.seg_sx)
                  + np.abs(self.seg_dy - self.seg_sy))[routed]
        if exp.size:
            seg_wl[kind[routed] == _KIND_EXPLICIT] = (
                np.asarray(lens[_KIND_EXPLICIT], dtype=np.int64) - 1)
        nwl = np.bincount(net_idx, weights=seg_wl,
                          minlength=len(pos)).astype(np.int64)
        nof = np.zeros(len(pos), dtype=np.int64)
        h_of, v_of = g.overflow_masks()
        if h_of.any() or v_of.any():
            for edges, mask in ((self.seg_h, h_of.ravel()),
                                (self.seg_v, v_of.ravel())):
                ln = np.fromiter((edges[i].size for i in routed),
                                 dtype=np.int64, count=len(routed))
                cat = np.concatenate([edges[i] for i in routed])
                owner = np.repeat(net_idx, ln)
                nof += np.bincount(owner[mask[cat]],
                                   minlength=len(pos))
        return paths, nwl, nof

    # -- driver --------------------------------------------------------

    def route(self) -> RoutingResult:
        t0 = time.perf_counter()
        g = self.grid
        with _phase(self.telemetry, self.phases, "route_decompose"):
            (self.net_names, self.seg_net, self.seg_sx, self.seg_sy,
             self.seg_dx, self.seg_dy) = _decompose(
                self.placement, g, self.topology)
            self.windows = _windows(g, self.seg_sx, self.seg_sy,
                                    self.seg_dx, self.seg_dy,
                                    pad=_FIRST_PAD)
        n_seg = self.seg_net.size
        self.seg_paths: list = [None] * n_seg
        self.seg_h: list = [None] * n_seg
        self.seg_v: list = [None] * n_seg
        self.seg_kind = np.zeros(n_seg, dtype=np.int8)
        self.seg_bend = np.zeros(n_seg, dtype=np.int64)
        self.failed: list = []

        self._route_ids(np.arange(n_seg), 2.0, chunk_cap=_CHUNK_CAP)

        iterations = 1
        widened = False
        for rnd in range(self.max_iterations - 1):
            if g.total_overflow() == 0:
                break
            if not widened:
                # Reroutes need detour headroom the first pass didn't.
                self.windows = _windows(g, self.seg_sx, self.seg_sy,
                                        self.seg_dx, self.seg_dy)
                widened = True
            # One negotiation round: relocate the profitable
            # equal-length escapes first (free moves), then rip the
            # per-edge excess — plus any mover whose every profitable
            # escape is blocked on full edges — and force it through
            # the pattern tail at the round's congestion weight.
            with _phase(self.telemetry, self.phases,
                        "route_negotiate"):
                g.bump_history()
                sched = min(rnd, len(_NEG_MARGIN) - 1)
                cw = _NEG_CW[sched]
                stuck = self._relocate(cw)
                redo = np.union1d(
                    self._overflowed_ids(_NEG_MARGIN[sched]), stuck)
                self._route_excess(redo, cw)
            iterations += 1

        with _phase(self.telemetry, self.phases, "route_emit"):
            paths, nwl, nof = self._emit(n_seg)
        return RoutingResult.assemble(
            grid=g,
            paths=paths,
            failed=sorted(set(self.failed)),
            iterations=iterations,
            runtime_s=time.perf_counter() - t0,
            engine="batched",
            phase_ms=self.phases,
            net_wirelength=nwl,
            net_overflow=nof,
        )


def batched_route(placement: Placement, *, layers: int = 6,
                  gcell_um: float = 5.0, topology: str = "mst",
                  max_iterations: int = 4, seed: int = 0,
                  telemetry: Any = None) -> RoutingResult:
    """Vectorized global routing of a placement (engine ``batched``).

    Same knobs and result contract as the sequential engines; ``seed``
    only perturbs tie-breaking (candidate-score jitter and acceptance
    shuffles), so a fixed seed gives a bit-identical result and
    different seeds give equivalent QoR.  Paths in the result are
    (L, 2) int64 arrays (see :class:`RoutingResult`).
    """
    return _BatchedRouter(
        placement, layers=layers, gcell_um=gcell_um,
        topology=topology, max_iterations=max_iterations, seed=seed,
        telemetry=telemetry).route()
