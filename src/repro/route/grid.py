"""The global-routing grid: gcells, edge capacities, occupancy."""

from __future__ import annotations

import numpy as np


class RoutingGrid:
    """A 2-D gcell grid with horizontal/vertical edge capacities.

    The 2-D abstraction sums the track capacity of all horizontal
    layers onto horizontal edges and likewise for vertical — the
    standard global-routing projection; layer assignment re-expands the
    result (:mod:`repro.route.layers`).

    ``h_usage[y, x]`` counts wires crossing the boundary between gcell
    (x, y) and (x+1, y); ``v_usage[y, x]`` between (x, y) and (x, y+1).
    """

    def __init__(self, nx: int, ny: int, *, h_capacity: int,
                 v_capacity: int):
        if nx < 2 or ny < 2:
            raise ValueError("grid must be at least 2x2")
        if h_capacity < 1 or v_capacity < 1:
            raise ValueError("capacities must be positive")
        self.nx = nx
        self.ny = ny
        self.h_capacity = h_capacity
        self.v_capacity = v_capacity
        self.h_usage = np.zeros((ny, nx - 1), dtype=np.int32)
        self.v_usage = np.zeros((ny - 1, nx), dtype=np.int32)
        # Negotiated-congestion history (PathFinder-style).
        self.h_history = np.zeros((ny, nx - 1))
        self.v_history = np.zeros((ny - 1, nx))

    # ------------------------------------------------------------------

    @staticmethod
    def for_die(die_w_um: float, die_h_um: float, node, *,
                gcell_um: float = 5.0, layers: int = 6,
                utilization: float = 0.85) -> "RoutingGrid":
        """Size a grid for a die at a node with a given metal stack.

        Layers alternate H/V starting with M2-horizontal (M1 is kept
        for cell internals/pins).  Track capacity per gcell boundary is
        ``gcell / pitch`` per layer, derated by ``utilization``; the
        routing pitch is 1.5x the minimum metal-1 pitch (intermediate
        metal).
        """
        if layers < 2:
            raise ValueError("need at least 2 routing layers")
        nx = max(2, int(die_w_um / gcell_um))
        ny = max(2, int(die_h_um / gcell_um))
        pitch_um = 1.5 * node.metal1_pitch_nm * 1e-3
        tracks = max(1, int(gcell_um / pitch_um * utilization))
        h_layers = (layers + 1) // 2
        v_layers = layers // 2
        return RoutingGrid(nx, ny,
                           h_capacity=tracks * h_layers,
                           v_capacity=tracks * v_layers)

    # ------------------------------------------------------------------

    def edge_between(self, a: tuple, b: tuple):
        """(kind, y, x) of the edge between adjacent gcells, or raises."""
        (xa, ya), (xb, yb) = a, b
        if ya == yb and abs(xa - xb) == 1:
            return ("h", ya, min(xa, xb))
        if xa == xb and abs(ya - yb) == 1:
            return ("v", min(ya, yb), xa)
        raise ValueError(f"gcells {a} and {b} are not adjacent")

    def usage_of(self, edge) -> int:
        kind, y, x = edge
        return int(self.h_usage[y, x] if kind == "h" else self.v_usage[y, x])

    def capacity_of(self, edge) -> int:
        return self.h_capacity if edge[0] == "h" else self.v_capacity

    def add_path(self, path: list, delta: int = 1) -> None:
        """Commit (or with ``delta=-1`` rip up) a gcell path."""
        for a, b in zip(path, path[1:]):
            kind, y, x = self.edge_between(a, b)
            if kind == "h":
                self.h_usage[y, x] += delta
            else:
                self.v_usage[y, x] += delta

    def edge_cost(self, edge, *, base: float = 1.0,
                  congestion_weight: float = 2.0) -> float:
        """Negotiated cost: base + overflow penalty + history."""
        kind, y, x = edge
        if kind == "h":
            use, cap, hist = (self.h_usage[y, x], self.h_capacity,
                              self.h_history[y, x])
        else:
            use, cap, hist = (self.v_usage[y, x], self.v_capacity,
                              self.v_history[y, x])
        over = max(0.0, (use + 1 - cap) / cap)
        return base + congestion_weight * over * (1.0 + hist) + 0.1 * hist

    def cost_arrays(self, *, base: float = 1.0,
                    congestion_weight: float = 2.0):
        """Vectorized :meth:`edge_cost` over every edge at once.

        Returns ``(h_cost, v_cost)`` float arrays shaped like the usage
        arrays; elementwise identical (bitwise) to calling
        :meth:`edge_cost` per edge — the batched router's cost model IS
        the maze router's cost model.
        """
        h_over = np.maximum(
            0.0, (self.h_usage + 1 - self.h_capacity) / self.h_capacity)
        v_over = np.maximum(
            0.0, (self.v_usage + 1 - self.v_capacity) / self.v_capacity)
        h = (base + congestion_weight * h_over * (1.0 + self.h_history)
             + 0.1 * self.h_history)
        v = (base + congestion_weight * v_over * (1.0 + self.v_history)
             + 0.1 * self.v_history)
        return h, v

    def overflow_masks(self):
        """Boolean ``(h, v)`` masks of currently overflowed edges."""
        return (self.h_usage > self.h_capacity,
                self.v_usage > self.v_capacity)

    def bump_history(self) -> None:
        """Accumulate history on currently overflowed edges."""
        self.h_history += np.maximum(
            0, self.h_usage - self.h_capacity) / self.h_capacity
        self.v_history += np.maximum(
            0, self.v_usage - self.v_capacity) / self.v_capacity

    # ------------------------------------------------------------------

    def total_overflow(self) -> int:
        """Sum of usage above capacity over all edges."""
        return int(
            np.maximum(0, self.h_usage - self.h_capacity).sum()
            + np.maximum(0, self.v_usage - self.v_capacity).sum())

    def max_utilization(self) -> float:
        """Peak edge utilization (1.0 = full)."""
        h = self.h_usage.max() / self.h_capacity if self.h_usage.size else 0
        v = self.v_usage.max() / self.v_capacity if self.v_usage.size else 0
        return float(max(h, v))

    def wirelength(self) -> int:
        """Total used edges (gcell units of wire)."""
        return int(self.h_usage.sum() + self.v_usage.sum())

    def congestion_map(self) -> np.ndarray:
        """(ny, nx) max utilization of the edges at each gcell."""
        out = np.zeros((self.ny, self.nx))
        out[:, :-1] = np.maximum(
            out[:, :-1], self.h_usage / self.h_capacity)
        out[:, 1:] = np.maximum(out[:, 1:], self.h_usage / self.h_capacity)
        out[:-1, :] = np.maximum(
            out[:-1, :], self.v_usage / self.v_capacity)
        out[1:, :] = np.maximum(out[1:, :], self.v_usage / self.v_capacity)
        return out

    def neighbors(self, cell: tuple) -> list:
        x, y = cell
        out = []
        if x + 1 < self.nx:
            out.append((x + 1, y))
        if x > 0:
            out.append((x - 1, y))
        if y + 1 < self.ny:
            out.append((x, y + 1))
        if y > 0:
            out.append((x, y - 1))
        return out

    def contains(self, cell: tuple) -> bool:
        x, y = cell
        return 0 <= x < self.nx and 0 <= y < self.ny
