"""Routing: maze and line-search engines, global routing, layers.

Domic's routing claims anchor two experiments: multi-patterning made
sub-80nm-pitch interconnect drawable (E3), and "more efficient
'line-search' routing algorithms have resulted in much better routers
under 'simpler' design rules, making it possible to reduce layers at 28
nanometers and above" — the 6-to-4-layer cost experiment (E4).
"""

from repro.route.grid import RoutingGrid
from repro.route.maze import maze_route
from repro.route.linesearch import line_search_route
from repro.route.result import ROUTE_SCHEMA_VERSION, RoutingResult
from repro.route.batched import batched_route
from repro.route.global_route import (
    GlobalRouter,
    route_placement,
    sequential_route,
)
from repro.route.layers import LayerAssignment, assign_layers
from repro.route.track_assign import (
    TrackAssignment,
    assign_tracks,
    decompose_routed_layer,
)

__all__ = [
    "TrackAssignment",
    "assign_tracks",
    "decompose_routed_layer",
    "RoutingGrid",
    "maze_route",
    "line_search_route",
    "GlobalRouter",
    "ROUTE_SCHEMA_VERSION",
    "RoutingResult",
    "batched_route",
    "route_placement",
    "sequential_route",
    "LayerAssignment",
    "assign_layers",
]
