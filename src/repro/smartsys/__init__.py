"""Smart-system (heterogeneous SiP) modeling and co-design.

Macii's position: smart systems — "intelligent, miniaturized devices
incorporating functionalities like sensing, actuation, and control ...
energy-autonomous and ubiquitously connected" — integrate components
from incompatible technologies.  Packaging (SiP/3D) solved the
technological dimension; design methodology did not: "current smart
system design approaches use separate design tools and ad-hoc methods
... clearly sub-optimal."

* :mod:`repro.smartsys.components` — the heterogeneous catalogue
  (sensors, ADCs, MCUs, radios, PMUs, batteries, harvesters).
* :mod:`repro.smartsys.package` — SiP / 3-D stacking with TSVs.
* :mod:`repro.smartsys.energy` — duty-cycled energy-autonomy simulation.
* :mod:`repro.smartsys.codesign` — the E6 experiment: separate-tools
  baseline vs holistic co-design on cost, quality, time-to-market.
"""

from repro.smartsys.components import (
    COMPONENT_CATALOG,
    Component,
    ComponentKind,
    catalog_variants,
)
from repro.smartsys.package import PackagePlan, plan_package
from repro.smartsys.energy import EnergyReport, simulate_energy
from repro.smartsys.codesign import (
    DesignOutcome,
    SystemSpec,
    codesign_flow,
    separate_tools_flow,
)

__all__ = [
    "Component",
    "ComponentKind",
    "COMPONENT_CATALOG",
    "catalog_variants",
    "PackagePlan",
    "plan_package",
    "EnergyReport",
    "simulate_energy",
    "SystemSpec",
    "DesignOutcome",
    "separate_tools_flow",
    "codesign_flow",
]
