"""Energy-autonomy simulation for duty-cycled smart systems."""

from __future__ import annotations

from dataclasses import dataclass

from repro.smartsys.components import (
    BATTERY_MWH_PER_PERF,
    Component,
    ComponentKind,
)


@dataclass
class EnergyReport:
    """Power budget and battery life of a configured system."""

    average_mw: float
    active_mw: float
    sleep_mw: float
    harvest_mw: float
    battery_mwh: float
    battery_life_hours: float

    @property
    def energy_autonomous(self) -> bool:
        """True if harvesting covers the average draw indefinitely."""
        return self.harvest_mw >= self.average_mw

    def summary(self) -> str:
        """One-line report."""
        life = ("infinite" if self.energy_autonomous
                else f"{self.battery_life_hours:.0f} h")
        return (
            f"avg {self.average_mw:.3f} mW (active {self.active_mw:.1f}, "
            f"sleep {self.sleep_mw * 1000:.1f} uW, harvest "
            f"{self.harvest_mw:.3f}), battery {life}"
        )


def simulate_energy(components: list, *, duty_cycle: float = 0.01,
                    radio_duty: float | None = None) -> EnergyReport:
    """Average power of a duty-cycled system and its battery life.

    ``duty_cycle`` is the fraction of time the digital/sensing parts
    are active; ``radio_duty`` (default: duty_cycle / 4) covers the
    radio, usually rarer.  The PMU's conversion loss applies to the
    whole budget (92% efficiency with a buck, 80% with an LDO).
    """
    if not 0 < duty_cycle <= 1:
        raise ValueError("duty_cycle must be in (0, 1]")
    if radio_duty is None:
        radio_duty = duty_cycle / 4
    active = 0.0
    sleep = 0.0
    harvest = 0.0
    battery_mwh = 0.0
    has_buck = False
    for c in components:
        if c.kind is ComponentKind.BATTERY:
            battery_mwh += c.perf * BATTERY_MWH_PER_PERF
            continue
        if c.kind is ComponentKind.HARVESTER:
            harvest += c.perf
            continue
        if c.kind is ComponentKind.PMU and "buck" in c.name:
            has_buck = True
        duty = radio_duty if c.kind is ComponentKind.RADIO else duty_cycle
        active += c.active_mw * duty
        sleep += c.sleep_uw * 1e-3 * (1 - duty)
    efficiency = 0.92 if has_buck else 0.80
    average = (active + sleep) / efficiency
    net = max(average - harvest, 1e-9)
    life_h = battery_mwh / net if battery_mwh > 0 else 0.0
    return EnergyReport(
        average_mw=average,
        active_mw=active,
        sleep_mw=sleep,
        harvest_mw=harvest,
        battery_mwh=battery_mwh,
        battery_life_hours=life_h,
    )
