"""Separate-tools vs holistic co-design: experiment E6.

Macii: current practice "use[s] separate design tools and ad-hoc
methods for transferring the non-digital domain to that of IC design
... clearly sub-optimal"; the goal is "a structured design approach
that explicitly accounts for integration as a specific constraint,
thus minimizing manual hand-off", cutting design cost and
time-to-market.

Both flows search the same component catalogue for a system meeting a
:class:`SystemSpec`.  The separate-tools baseline optimizes one domain
at a time with its own local objective and pays a manual hand-off
iteration whenever the assembled system violates the spec; the
co-design flow searches jointly over the full cross product.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.smartsys.components import (
    ComponentKind,
    catalog_variants,
)
from repro.smartsys.energy import simulate_energy
from repro.smartsys.package import plan_package

#: Domains in the order separate teams hand off to each other.
_DOMAIN_ORDER = [
    ComponentKind.SENSOR, ComponentKind.ADC, ComponentKind.MCU,
    ComponentKind.RADIO, ComponentKind.PMU, ComponentKind.BATTERY,
    ComponentKind.HARVESTER,
]

#: Weeks of calendar time per manual hand-off iteration (domain
#: re-entry, model translation, re-verification).
HANDOFF_WEEKS = 6.0
#: Weeks per automated co-design evaluation batch.
CODESIGN_BATCH_WEEKS = 1.0
#: Engineering cost per calendar week of the program.
COST_PER_WEEK_USD = 25_000.0


@dataclass
class SystemSpec:
    """Requirements for the smart system."""

    min_battery_hours: float = 24 * 365        # one year
    max_footprint_mm2: float = 120.0
    max_unit_cost_usd: float = 8.0
    min_perf: float = 3.0                      # summed capability
    duty_cycle: float = 0.01

    def violations(self, components: list) -> list:
        """Spec clauses the configuration breaks."""
        report = simulate_energy(components, duty_cycle=self.duty_cycle)
        package = plan_package(components)
        out = []
        if (not report.energy_autonomous and
                report.battery_life_hours < self.min_battery_hours):
            out.append("battery_life")
        if package.footprint_mm2 > self.max_footprint_mm2:
            out.append("footprint")
        unit = sum(c.cost_usd for c in components) + \
            package.package_cost_usd
        if unit > self.max_unit_cost_usd:
            out.append("unit_cost")
        perf = sum(c.perf for c in components
                   if c.kind in (ComponentKind.SENSOR, ComponentKind.MCU,
                                 ComponentKind.RADIO, ComponentKind.ADC))
        if perf < self.min_perf:
            out.append("performance")
        return out


@dataclass
class DesignOutcome:
    """Result of one methodology run."""

    methodology: str
    components: list
    met_spec: bool
    iterations: int
    time_to_market_weeks: float
    engineering_cost_usd: float
    unit_cost_usd: float
    battery_hours: float
    footprint_mm2: float
    evaluations: int = 0
    violations: list = field(default_factory=list)

    def summary(self) -> str:
        """One-line report."""
        status = "MET" if self.met_spec else \
            f"FAILED({','.join(self.violations)})"
        return (
            f"{self.methodology}: {status}, {self.iterations} iterations, "
            f"TTM {self.time_to_market_weeks:.0f} wk, NRE "
            f"${self.engineering_cost_usd / 1000:.0f}k, unit "
            f"${self.unit_cost_usd:.2f}, battery "
            f"{self.battery_hours:.0f} h"
        )


def _outcome(methodology: str, components: list, spec: SystemSpec,
             iterations: int, weeks: float,
             evaluations: int) -> DesignOutcome:
    violations = spec.violations(components)
    report = simulate_energy(components, duty_cycle=spec.duty_cycle)
    package = plan_package(components)
    unit = sum(c.cost_usd for c in components) + package.package_cost_usd
    battery_h = float("inf") if report.energy_autonomous else \
        report.battery_life_hours
    return DesignOutcome(
        methodology=methodology,
        components=components,
        met_spec=not violations,
        iterations=iterations,
        time_to_market_weeks=weeks,
        engineering_cost_usd=weeks * COST_PER_WEEK_USD,
        unit_cost_usd=unit,
        battery_hours=battery_h,
        footprint_mm2=package.footprint_mm2,
        evaluations=evaluations,
        violations=violations,
    )


def separate_tools_flow(spec: SystemSpec, *,
                        max_iterations: int = 8) -> DesignOutcome:
    """The baseline: per-domain optimization with manual hand-offs.

    Each domain team picks the best component by its *local* metric
    (sensors maximize capability, MCUs performance-per-cost, PMU
    minimal cost, ...).  Only when all domains hand off is the system
    evaluated; each violation triggers a costly re-entry into one
    domain, fixed by that domain's local rule of thumb.
    """
    # Local-objective choices, one per domain.
    choice = {
        ComponentKind.SENSOR: max(
            catalog_variants(ComponentKind.SENSOR), key=lambda c: c.perf),
        ComponentKind.ADC: max(
            catalog_variants(ComponentKind.ADC), key=lambda c: c.perf),
        ComponentKind.MCU: max(
            catalog_variants(ComponentKind.MCU),
            key=lambda c: c.perf / c.cost_usd),
        ComponentKind.RADIO: max(
            catalog_variants(ComponentKind.RADIO),
            key=lambda c: c.perf / c.cost_usd),
        ComponentKind.PMU: min(
            catalog_variants(ComponentKind.PMU), key=lambda c: c.cost_usd),
        ComponentKind.BATTERY: min(
            catalog_variants(ComponentKind.BATTERY),
            key=lambda c: c.cost_usd),
        ComponentKind.HARVESTER: min(
            catalog_variants(ComponentKind.HARVESTER),
            key=lambda c: c.cost_usd),
    }
    weeks = HANDOFF_WEEKS * len(_DOMAIN_ORDER) * 0.5  # initial designs
    evaluations = 0
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        components = list(choice.values())
        evaluations += 1
        violations = spec.violations(components)
        if not violations:
            break
        weeks += HANDOFF_WEEKS  # manual hand-off + re-entry
        # Domain-local fixes, one violation at a time.
        fixed = violations[0]
        if fixed == "battery_life":
            bats = sorted(catalog_variants(ComponentKind.BATTERY),
                          key=lambda c: -c.perf)
            idx = bats.index(choice[ComponentKind.BATTERY])
            if idx > 0:
                choice[ComponentKind.BATTERY] = bats[idx - 1]
            else:
                harvs = sorted(
                    catalog_variants(ComponentKind.HARVESTER),
                    key=lambda c: -c.perf)
                choice[ComponentKind.HARVESTER] = harvs[0]
        elif fixed == "unit_cost":
            # Cheapen the most expensive discretionary part.
            for kind in (ComponentKind.RADIO, ComponentKind.MCU,
                         ComponentKind.SENSOR):
                variants = sorted(catalog_variants(kind),
                                  key=lambda c: c.cost_usd)
                cur = variants.index(choice[kind])
                if cur > 0:
                    choice[kind] = variants[cur - 1]
                    break
        elif fixed == "footprint":
            for kind in (ComponentKind.BATTERY, ComponentKind.SENSOR):
                variants = sorted(catalog_variants(kind),
                                  key=lambda c: c.area_mm2)
                cur = variants.index(choice[kind])
                if cur > 0:
                    choice[kind] = variants[cur - 1]
                    break
        else:  # performance
            ups = sorted(catalog_variants(ComponentKind.MCU),
                         key=lambda c: c.perf)
            cur = ups.index(choice[ComponentKind.MCU])
            if cur + 1 < len(ups):
                choice[ComponentKind.MCU] = ups[cur + 1]
    components = list(choice.values())
    return _outcome("separate_tools", components, spec, iterations,
                    weeks, evaluations)


def codesign_flow(spec: SystemSpec, *,
                  batch: int = 400) -> DesignOutcome:
    """Holistic co-design: joint search with integration constraints.

    Exhaustive search over the catalogue cross product (it is small;
    a real tool would prune), scored by unit cost among spec-meeting
    configurations.  Calendar time scales with evaluation batches, not
    hand-offs.
    """
    kinds = _DOMAIN_ORDER
    spaces = [catalog_variants(k) for k in kinds]
    best = None
    best_cost = float("inf")
    evaluations = 0
    for combo in itertools.product(*spaces):
        components = list(combo)
        evaluations += 1
        if spec.violations(components):
            continue
        unit = sum(c.cost_usd for c in components) + \
            plan_package(components).package_cost_usd
        if unit < best_cost:
            best, best_cost = components, unit
    weeks = (CODESIGN_BATCH_WEEKS * (evaluations / batch) +
             2 * HANDOFF_WEEKS * 0.5)  # model capture once per domain
    if best is None:
        # Infeasible spec: report the least-violating configuration.
        best = [max(catalog_variants(k), key=lambda c: c.perf)
                for k in kinds]
    return _outcome("codesign", best, spec, 1, weeks, evaluations)
