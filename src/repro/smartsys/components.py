"""The heterogeneous component catalogue.

Each component carries the attributes the co-design loop trades:
active/sleep power, area, cost, performance, and — crucially — the
*technology domain* it is manufactured in (CMOS node, MEMS, III-V,
passive), which is what forces SiP integration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ComponentKind(enum.Enum):
    """Functional classes of a smart system (per Macii's enumeration)."""

    SENSOR = "sensor"
    ACTUATOR = "actuator"
    ADC = "adc"
    MCU = "mcu"
    DSP = "dsp"
    RADIO = "radio"
    PMU = "pmu"
    BATTERY = "battery"
    HARVESTER = "harvester"


@dataclass(frozen=True)
class Component:
    """One catalogue entry.

    ``tech`` names the manufacturing domain; components from different
    domains cannot share a die — the integration constraint at the
    heart of E6.
    """

    name: str
    kind: ComponentKind
    tech: str                  # "cmos180", "cmos55", "mems", "passive"...
    active_mw: float
    sleep_uw: float
    area_mm2: float
    cost_usd: float
    perf: float = 1.0          # normalized capability (rate, gain, ...)

    def __post_init__(self) -> None:
        if self.active_mw < 0 or self.sleep_uw < 0:
            raise ValueError("power must be non-negative")
        if self.area_mm2 <= 0 or self.cost_usd < 0:
            raise ValueError("area must be positive, cost non-negative")


def _c(name, kind, tech, active_mw, sleep_uw, area, cost, perf=1.0):
    return Component(name, kind, tech, active_mw, sleep_uw, area, cost,
                     perf)


#: The catalogue: several variants per kind, spanning technology
#: domains and power/cost/performance points.
COMPONENT_CATALOG: list = [
    # Sensors (MEMS / specialty).
    _c("accel_lp", ComponentKind.SENSOR, "mems", 0.02, 0.3, 4.0, 0.45, 0.7),
    _c("accel_hi", ComponentKind.SENSOR, "mems", 0.12, 1.2, 6.0, 0.95, 1.3),
    _c("env_combo", ComponentKind.SENSOR, "mems", 0.35, 2.0, 9.0, 1.80, 1.6),
    # ADCs.
    _c("adc_sar10", ComponentKind.ADC, "cmos180", 0.10, 0.2, 0.8, 0.20, 0.7),
    _c("adc_sar12", ComponentKind.ADC, "cmos55", 0.18, 0.4, 0.5, 0.38, 1.0),
    _c("adc_sd16", ComponentKind.ADC, "cmos55", 0.90, 1.5, 1.2, 0.85, 1.8),
    # MCUs.
    _c("mcu_m0_180", ComponentKind.MCU, "cmos180", 1.8, 1.0, 4.0, 0.55, 0.6),
    _c("mcu_m3_55", ComponentKind.MCU, "cmos55", 3.2, 2.5, 2.5, 0.90, 1.0),
    _c("mcu_m4_28", ComponentKind.MCU, "cmos28", 5.5, 6.0, 1.8, 1.60, 1.8),
    # DSPs.
    _c("dsp_lite", ComponentKind.DSP, "cmos55", 2.4, 1.0, 1.5, 0.70, 0.8),
    _c("dsp_vec", ComponentKind.DSP, "cmos28", 6.0, 4.0, 2.2, 1.50, 1.8),
    # Radios.
    _c("ble_radio", ComponentKind.RADIO, "cmos55rf", 6.5, 1.5, 3.5, 0.95, 0.8),
    _c("multi_radio", ComponentKind.RADIO, "cmos28rf", 14.0, 4.0, 5.0, 2.20, 1.6),
    _c("nbiot_radio", ComponentKind.RADIO, "cmos28rf", 60.0, 3.0, 6.5, 3.40, 2.2),
    # PMUs.
    _c("pmu_ldo", ComponentKind.PMU, "cmos180", 0.15, 0.8, 1.2, 0.25, 0.6),
    _c("pmu_buck", ComponentKind.PMU, "cmos180", 0.30, 0.4, 2.2, 0.60, 1.2),
    # Batteries / storage.
    _c("coin_cell", ComponentKind.BATTERY, "passive", 0.0, 0.0, 100.0, 0.30, 0.23),
    _c("lipo_small", ComponentKind.BATTERY, "passive", 0.0, 0.0, 300.0, 1.50, 1.0),
    # Harvesters (perf = harvested mW average).
    _c("solar_cm2", ComponentKind.HARVESTER, "passive", 0.0, 0.0, 100.0, 0.80, 0.10),
    _c("none_harv", ComponentKind.HARVESTER, "passive", 0.0, 0.0, 0.1, 0.00, 0.0),
]


def catalog_variants(kind: ComponentKind) -> list:
    """All catalogue entries of a kind."""
    return [c for c in COMPONENT_CATALOG if c.kind == kind]


#: Battery capacity in mWh per unit of ``perf`` (perf 1.0 = 1000 mWh
#: would be huge for a wearable; the scale is mWh = perf * 1000).
BATTERY_MWH_PER_PERF = 1000.0
