"""SiP / 3-D packaging: the technological integration dimension.

Macii: "Advanced packaging technologies, such as system-in-package
(SiP) and chip stacking (3D IC) with through-silicon vias, allow today
manufacturers to package all these functionalities more densely."
The planner picks a package style from the dies' technology mix and
produces footprint, interconnect, and cost figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.smartsys.components import Component, ComponentKind


@dataclass
class PackagePlan:
    """A packaging solution for a set of component dies."""

    style: str                   # "soc", "sip_2d", "stack_3d"
    footprint_mm2: float
    height_mm: float
    tsv_count: int
    bond_wires: int
    package_cost_usd: float
    dies: list = field(default_factory=list)

    def summary(self) -> str:
        """One-line description."""
        return (
            f"{self.style}: {self.footprint_mm2:.1f} mm2 x "
            f"{self.height_mm:.2f} mm, {self.tsv_count} TSVs, "
            f"{self.bond_wires} wires, ${self.package_cost_usd:.2f}"
        )


def plan_package(components: list, *, style: str = "auto",
                 interconnects_per_die: int = 12) -> PackagePlan:
    """Choose and cost a package for the component set.

    ``style``:
    * ``"soc"`` — single die; only legal when every active component
      shares one technology domain (batteries/harvesters ride outside).
    * ``"sip_2d"`` — side-by-side dies on a substrate (bond wires).
    * ``"stack_3d"`` — stacked dies with TSVs: smallest footprint,
      highest cost.
    * ``"auto"`` — cheapest legal style meeting a wearable footprint.
    """
    if not components:
        raise ValueError("no components to package")
    dies = [c for c in components
            if c.kind not in (ComponentKind.BATTERY,
                              ComponentKind.HARVESTER)]
    if not dies:
        raise ValueError("no active dies to package")
    techs = {c.tech for c in dies}
    total_area = sum(c.area_mm2 for c in dies)

    if style == "auto":
        if len(techs) == 1:
            style = "soc"
        elif total_area > 30.0:
            style = "stack_3d"
        else:
            style = "sip_2d"

    if style == "soc":
        if len(techs) > 1:
            raise ValueError(
                f"SoC integration impossible across domains {sorted(techs)}")
        return PackagePlan(
            style="soc",
            footprint_mm2=total_area * 1.15,
            height_mm=0.8,
            tsv_count=0,
            bond_wires=interconnects_per_die,
            package_cost_usd=0.10 + 0.004 * total_area,
            dies=[c.name for c in dies],
        )
    if style == "sip_2d":
        footprint = total_area * 1.45  # substrate routing margin
        wires = interconnects_per_die * len(dies)
        return PackagePlan(
            style="sip_2d",
            footprint_mm2=footprint,
            height_mm=1.1,
            tsv_count=0,
            bond_wires=wires,
            package_cost_usd=0.25 + 0.006 * footprint + 0.002 * wires,
            dies=[c.name for c in dies],
        )
    if style == "stack_3d":
        biggest = max(c.area_mm2 for c in dies)
        footprint = biggest * 1.25
        tsvs = interconnects_per_die * max(len(dies) - 1, 1) * 4
        return PackagePlan(
            style="stack_3d",
            footprint_mm2=footprint,
            height_mm=0.3 * len(dies) + 0.5,
            tsv_count=tsvs,
            bond_wires=0,
            package_cost_usd=0.60 + 0.010 * footprint + 0.004 * tsvs,
            dies=[c.name for c in dies],
        )
    raise ValueError(f"unknown package style {style!r}")
