"""Thermal limits of 3-D die stacks.

The catch in Macii's "chip stacking (3D IC) with through-silicon vias":
heat from buried dies must cross every die above (or below) them.  The
stack model assigns each die a junction temperature from its position
and power, so the co-design loop can reject stacking orders that cook
the sensor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.smartsys.components import Component, ComponentKind


@dataclass
class StackThermalReport:
    """Per-die temperatures for one stacking order."""

    order: list                  # die names, heatsink side first
    temperatures_c: dict         # name -> junction temperature
    ambient_c: float

    @property
    def peak_c(self) -> float:
        return max(self.temperatures_c.values())

    def hottest_die(self) -> str:
        return max(self.temperatures_c, key=self.temperatures_c.get)


def stack_temperatures(components: list, order: list | None = None, *,
                       ambient_c: float = 40.0,
                       rth_per_interface_c_per_w: float = 2.5,
                       rth_sink_c_per_w: float = 4.0,
                       duty_cycle: float = 1.0) -> StackThermalReport:
    """Junction temperature of each die in a 3-D stack.

    Heat flows toward the heatsink at the top of ``order``; die k's
    power crosses k interfaces plus the sink resistance, and carries
    every deeper die's power with it (series thermal path).
    """
    dies = [c for c in components
            if c.kind not in (ComponentKind.BATTERY,
                              ComponentKind.HARVESTER)]
    if not dies:
        raise ValueError("no active dies in the stack")
    by_name = {c.name: c for c in dies}
    if order is None:
        order = [c.name for c in dies]
    if set(order) != set(by_name):
        raise ValueError("order must cover exactly the active dies")
    powers = {name: by_name[name].active_mw * 1e-3 * duty_cycle
              for name in order}
    temps: dict = {}
    # Walk from the sink downward, accumulating the heat that must
    # cross each interface (everything at or below it).
    running = ambient_c + rth_sink_c_per_w * sum(powers.values())
    remaining = sum(powers.values())
    for k, name in enumerate(order):
        if k > 0:
            running += rth_per_interface_c_per_w * remaining
        temps[name] = running
        remaining -= powers[name]
    return StackThermalReport(order=list(order), temperatures_c=temps,
                              ambient_c=ambient_c)


def best_stacking_order(components: list, *,
                        limit_c: float = 85.0,
                        **kwargs):
    """Exhaustive search for the coolest-peak stacking order.

    Returns ``(order, report)``; raises if no order keeps every die
    under ``limit_c`` (the stack must be re-partitioned or the package
    changed — exactly the cross-domain constraint co-design handles).
    """
    import itertools

    dies = [c for c in components
            if c.kind not in (ComponentKind.BATTERY,
                              ComponentKind.HARVESTER)]
    names = [c.name for c in dies]
    if len(names) > 7:
        raise ValueError("stack too deep for exhaustive ordering")
    best = None
    for order in itertools.permutations(names):
        report = stack_temperatures(components, list(order), **kwargs)
        if best is None or report.peak_c < best[1].peak_c:
            best = (list(order), report)
    if best is None or best[1].peak_c > limit_c:
        raise ValueError(
            f"no stacking order keeps the stack under {limit_c} C "
            f"(best {best[1].peak_c:.1f} C)" if best else "empty stack")
    return best
