"""Analog IP porting effort and the node readiness timeline.

Rossi's thesis quantified: a node is usable for networking ASICs only
once its analog IP catalogue (SERDES, ADC/DAC, TCAM) has been ported,
and that porting time — not the digital flow — "define[s] the time a
new technology is used."  Productivity tooling (automated sizing,
layout migration) scales the effort down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tech.library import get_node
from repro.tech.node import TechNode

#: Relative porting complexity of the catalogue entries.
IP_CATALOG_EFFORT = {
    "serdes": 1.0,
    "adc": 0.6,
    "dac": 0.5,
    "pll": 0.4,
    "tcam": 0.45,
}


@dataclass
class IpPortingModel:
    """Porting-effort estimator.

    ``base_years`` is the single-IP flagship effort (a SERDES on a
    familiar node); ``productivity`` < 1 models automated migration
    tooling ("boost the design productivity is fundamental").
    """

    base_years: float = 1.5
    productivity: float = 1.0
    team_parallelism: int = 2

    def port_effort_years(self, ip: str, from_node: str | TechNode,
                          to_node: str | TechNode) -> float:
        """Calendar years to port one IP between nodes.

        Effort grows with the node gap (device models, rules, and
        supply voltage all move) and with the destination's litho
        complexity (more layout constraints).
        """
        if ip not in IP_CATALOG_EFFORT:
            raise KeyError(
                f"unknown IP {ip!r}; catalogue: "
                f"{sorted(IP_CATALOG_EFFORT)}")
        src = from_node if isinstance(from_node, TechNode) else \
            get_node(from_node)
        dst = to_node if isinstance(to_node, TechNode) else \
            get_node(to_node)
        if dst.drawn_nm > src.drawn_nm:
            raise ValueError("porting goes toward smaller nodes")
        gap = src.drawn_nm / dst.drawn_nm
        litho = dst.litho.mask_multiplier ** 0.35
        vdd_shift = 1.0 + 2.0 * abs(src.vdd - dst.vdd)
        return (self.base_years * IP_CATALOG_EFFORT[ip]
                * gap ** 0.5 * litho * vdd_shift * self.productivity)

    def catalogue_years(self, from_node: str | TechNode,
                        to_node: str | TechNode,
                        ips=None) -> float:
        """Calendar time to ready the whole catalogue.

        IPs port in parallel across ``team_parallelism`` teams; the
        critical path is the longest per-team pile (greedy longest-
        first assignment).
        """
        if ips is None:
            ips = sorted(IP_CATALOG_EFFORT)
        efforts = sorted(
            (self.port_effort_years(ip, from_node, to_node)
             for ip in ips),
            reverse=True)
        piles = [0.0] * max(self.team_parallelism, 1)
        for e in efforts:
            piles[piles.index(min(piles))] += e
        return max(piles)


def node_readiness_years(to_node: str, *, from_node: str = "28nm",
                         productivity: float = 1.0) -> float:
    """Years after process availability until ASICs can really start."""
    model = IpPortingModel(productivity=productivity)
    return model.catalogue_years(from_node, to_node)


def readiness_timeline(nodes=("20nm", "14nm", "10nm", "7nm"), *,
                       from_node: str = "28nm",
                       productivity: float = 1.0) -> dict:
    """node -> (process year, ASIC-ready year) under a porting model."""
    out = {}
    prev = from_node
    for name in nodes:
        node = get_node(name)
        delay = node_readiness_years(name, from_node=prev,
                                     productivity=productivity)
        out[name] = (node.year, node.year + delay)
        prev = name
    return out
