"""High-speed SERDES link modeling.

The link budget that decides whether a node's transistors can drive a
given line rate: transistor speed sets the achievable baud, channel
loss sets the equalization burden, and both set the power per bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.library import get_node
from repro.tech.node import TechNode


@dataclass(frozen=True)
class SerdesSpec:
    """One link configuration."""

    gbps: float
    channel_loss_db: float = 20.0
    modulation: str = "nrz"        # "nrz" or "pam4"

    def __post_init__(self) -> None:
        if self.gbps <= 0:
            raise ValueError("data rate must be positive")
        if self.modulation not in ("nrz", "pam4"):
            raise ValueError("modulation must be nrz or pam4")

    @property
    def baud_gbd(self) -> float:
        """Symbol rate: PAM4 halves the baud for the same bit rate."""
        return self.gbps / (2.0 if self.modulation == "pam4" else 1.0)


def _ft_ghz(node: TechNode) -> float:
    """Transistor transit frequency estimate (the analog speed limit)."""
    # fT scales roughly inversely with gate length; anchored at
    # ~250 GHz for a 28 nm-class planar device.
    return 250.0 * 26.0 / node.gate_length_nm * (
        1.25 if node.device.value != "planar" else 1.0)


def serdes_feasible(node: str | TechNode, spec: SerdesSpec, *,
                    ft_ratio_needed: float = 12.0) -> bool:
    """Can the node close this link at all?

    Rule of thumb: the technology's fT must exceed the baud rate by
    ``ft_ratio_needed`` for the front-end stages to have gain margin.
    """
    n = node if isinstance(node, TechNode) else get_node(node)
    return _ft_ghz(n) >= spec.baud_gbd * ft_ratio_needed


def serdes_power_mw(node: str | TechNode, spec: SerdesSpec) -> float:
    """Link power from an efficiency (pJ/bit) model.

    Efficiency improves with node speed margin and worsens with channel
    loss (more equalizer taps); infeasible links raise ``ValueError``.
    """
    n = node if isinstance(node, TechNode) else get_node(node)
    if not serdes_feasible(n, spec):
        raise ValueError(
            f"{n.name} cannot close {spec.gbps} Gb/s "
            f"({spec.modulation})")
    margin = _ft_ghz(n) / (spec.baud_gbd * 12.0)
    base_pj_per_bit = 6.0 / min(margin, 4.0)
    eq_pj = 0.08 * spec.channel_loss_db
    dsp_pj = 1.5 if spec.modulation == "pam4" else 0.0
    return (base_pj_per_bit + eq_pj + dsp_pj) * spec.gbps


def max_line_rate_gbps(node: str | TechNode, *,
                       modulation: str = "nrz") -> float:
    """Highest feasible bit rate at a node."""
    n = node if isinstance(node, TechNode) else get_node(node)
    baud_limit = _ft_ghz(n) / 12.0
    return baud_limit * (2.0 if modulation == "pam4" else 1.0)
