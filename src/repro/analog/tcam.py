"""TCAM arrays: the networking ASIC's other specialty IP."""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.library import get_node
from repro.tech.node import TechNode


@dataclass(frozen=True)
class TcamSpec:
    """A ternary CAM array."""

    entries: int
    width_bits: int
    searches_per_s: float = 1e9

    def __post_init__(self) -> None:
        if self.entries < 1 or self.width_bits < 1:
            raise ValueError("entries and width must be positive")
        if self.searches_per_s <= 0:
            raise ValueError("search rate must be positive")

    @property
    def bits(self) -> int:
        return self.entries * self.width_bits


def tcam_metrics(node: str | TechNode, spec: TcamSpec) -> dict:
    """Area, search energy, and power of a TCAM array at a node.

    A TCAM cell is ~16 transistors; every search charges all match
    lines, which is why TCAM power is the networking ASIC's hot spot
    (feeding experiment E9's activity profile).
    """
    n = node if isinstance(node, TechNode) else get_node(node)
    cell_transistors = 16
    area_mm2 = spec.bits * cell_transistors / (
        n.density_mtr_per_mm2 * 1e6) * 1.6  # array overhead
    # Search energy: every cell's matchline contribution.
    cap_ff_per_cell = 0.05 + n.cgate_ff_per_um * (
        2.0 * n.gate_length_nm * 1e-3)
    energy_pj = spec.bits * cap_ff_per_cell * n.vdd ** 2 * 1e-3
    power_w = energy_pj * 1e-12 * spec.searches_per_s
    return {
        "area_mm2": area_mm2,
        "search_energy_pj": energy_pj,
        "power_w": power_w,
        "power_density_w_per_mm2": power_w / area_mm2,
    }
