"""ADC/DAC power and area via the Walden figure of merit."""

from __future__ import annotations

from repro.tech.library import get_node
from repro.tech.node import TechNode


def _walden_fj_per_step(node: TechNode) -> float:
    """Energy per conversion step.

    Converter efficiency improved roughly 2x per two nodes through the
    2000s, flattening as designs hit thermal-noise limits; anchored at
    ~60 fJ/step for a 65 nm-era moderate-speed ADC.
    """
    improvement = (node.drawn_nm / 65.0) ** 0.8
    return max(60.0 * improvement, 5.0)


def adc_power_mw(node: str | TechNode, *, bits: int,
                 msps: float) -> float:
    """Converter power: FoM * 2^bits * sample rate."""
    if bits < 1 or msps <= 0:
        raise ValueError("bits and sample rate must be positive")
    n = node if isinstance(node, TechNode) else get_node(node)
    fom_fj = _walden_fj_per_step(n)
    return fom_fj * (2 ** bits) * msps * 1e6 * 1e-15 * 1e3


def adc_area_mm2(node: str | TechNode, *, bits: int) -> float:
    """Converter area: capacitor matching dominates, so area shrinks
    far more slowly than digital logic (the analog-porting pain)."""
    if bits < 1:
        raise ValueError("bits must be positive")
    n = node if isinstance(node, TechNode) else get_node(node)
    # Matching-limited unit cap area barely scales; wiring does.
    digital_shrink = (n.drawn_nm / 65.0) ** 0.6
    return 0.02 * (2 ** max(bits - 8, 0)) * max(digital_shrink, 0.35)
