"""Analog IP: the gate on technology adoption (Rossi, E17).

"Even if not evident at all, the time spent in designing, developing
and integrating analog IPs into an ASIC design flow ... define[s] the
time a new technology is used for ASICs for Networking.  These are the
cases of High Speed Links SERDES, High Speed ADC and DAC and, to
different extend, TCAM memories.  From this standpoint boost[ing] the
design productivity is fundamental."

* :mod:`repro.analog.serdes` — SERDES link budget: data rate vs node.
* :mod:`repro.analog.adc` — ADC energy/resolution via the Walden FoM.
* :mod:`repro.analog.tcam` — TCAM array area/power/search-energy model.
* :mod:`repro.analog.porting` — the porting-effort model and node
  readiness timeline: when does a node become usable for ASICs?
"""

from repro.analog.serdes import SerdesSpec, serdes_feasible, serdes_power_mw
from repro.analog.adc import adc_power_mw, adc_area_mm2
from repro.analog.tcam import TcamSpec, tcam_metrics
from repro.analog.porting import (
    IpPortingModel,
    node_readiness_years,
    readiness_timeline,
)

__all__ = [
    "SerdesSpec",
    "serdes_power_mw",
    "serdes_feasible",
    "adc_power_mw",
    "adc_area_mm2",
    "TcamSpec",
    "tcam_metrics",
    "IpPortingModel",
    "node_readiness_years",
    "readiness_timeline",
]
