"""Bit-packed truth tables for small Boolean functions (up to 16 vars).

A :class:`TruthTable` stores the output column of a function of ``n``
variables as an integer bitmask of ``2**n`` bits; minterm ``m`` is true
iff bit ``m`` is set.  Variable 0 is the least-significant input.
"""

from __future__ import annotations

from dataclasses import dataclass

MAX_VARS = 16


def _mask(nvars: int) -> int:
    return (1 << (1 << nvars)) - 1


@dataclass(frozen=True)
class TruthTable:
    """An immutable truth table of ``nvars`` inputs.

    Examples
    --------
    >>> a = TruthTable.var(0, 2)
    >>> b = TruthTable.var(1, 2)
    >>> (a & b).minterms()
    [3]
    """

    nvars: int
    bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.nvars <= MAX_VARS:
            raise ValueError(f"nvars must be in [0, {MAX_VARS}]")
        if self.bits & ~_mask(self.nvars):
            raise ValueError("bits wider than 2**nvars")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def const(value: bool, nvars: int) -> "TruthTable":
        """The constant-0 or constant-1 function of ``nvars`` inputs."""
        return TruthTable(nvars, _mask(nvars) if value else 0)

    @staticmethod
    def var(index: int, nvars: int) -> "TruthTable":
        """The projection function returning input ``index``."""
        if not 0 <= index < nvars:
            raise ValueError(f"var index {index} out of range for {nvars}")
        bits = 0
        for m in range(1 << nvars):
            if m >> index & 1:
                bits |= 1 << m
        return TruthTable(nvars, bits)

    @staticmethod
    def from_minterms(minterms, nvars: int) -> "TruthTable":
        """Build from an iterable of true minterm indices."""
        bits = 0
        for m in minterms:
            if not 0 <= m < (1 << nvars):
                raise ValueError(f"minterm {m} out of range")
            bits |= 1 << m
        return TruthTable(nvars, bits)

    @staticmethod
    def from_string(s: str) -> "TruthTable":
        """Parse a binary output-column string, MSB (highest minterm) first.

        >>> TruthTable.from_string("1000").minterms()   # AND2
        [3]
        """
        n = len(s)
        if n & (n - 1) or n == 0:
            raise ValueError("length must be a power of two")
        nvars = n.bit_length() - 1
        return TruthTable(nvars, int(s, 2))

    # ------------------------------------------------------------------
    # Logic operators
    # ------------------------------------------------------------------

    def _check(self, other: "TruthTable") -> None:
        if self.nvars != other.nvars:
            raise ValueError("operand arity mismatch")

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.nvars, self.bits & other.bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.nvars, self.bits | other.bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.nvars, self.bits ^ other.bits)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.nvars, self.bits ^ _mask(self.nvars))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def evaluate(self, assignment: int) -> bool:
        """Value of the function on the minterm ``assignment``."""
        if not 0 <= assignment < (1 << self.nvars):
            raise ValueError("assignment out of range")
        return bool(self.bits >> assignment & 1)

    def minterms(self) -> list[int]:
        """Sorted list of true minterms."""
        return [m for m in range(1 << self.nvars) if self.bits >> m & 1]

    def count_ones(self) -> int:
        """Number of true minterms."""
        return bin(self.bits).count("1")

    def is_tautology(self) -> bool:
        """True if the function is constant 1."""
        return self.bits == _mask(self.nvars)

    def is_contradiction(self) -> bool:
        """True if the function is constant 0."""
        return self.bits == 0

    def cofactor(self, var: int, value: bool) -> "TruthTable":
        """Shannon cofactor with input ``var`` fixed to ``value``.

        The result keeps the same arity (the fixed variable becomes a
        don't-care), which keeps composition simple.
        """
        if not 0 <= var < self.nvars:
            raise ValueError("var out of range")
        bits = 0
        for m in range(1 << self.nvars):
            src = (m | (1 << var)) if value else (m & ~(1 << var))
            if self.bits >> src & 1:
                bits |= 1 << m
        return TruthTable(self.nvars, bits)

    def depends_on(self, var: int) -> bool:
        """True if the function's value can change with input ``var``."""
        return self.cofactor(var, False).bits != self.cofactor(var, True).bits

    def support(self) -> list[int]:
        """Indices of inputs the function actually depends on."""
        return [v for v in range(self.nvars) if self.depends_on(v)]

    def expand_vars(self, nvars: int, mapping=None) -> "TruthTable":
        """Re-express over a wider input space.

        ``mapping[i]`` gives the new index of old input ``i``; identity by
        default.  Needed when composing sub-functions into one table.
        """
        if nvars < self.nvars:
            raise ValueError("cannot shrink arity")
        if mapping is None:
            mapping = list(range(self.nvars))
        if len(mapping) != self.nvars:
            raise ValueError("mapping length must equal nvars")
        bits = 0
        for m in range(1 << nvars):
            src = 0
            for old, new in enumerate(mapping):
                if m >> new & 1:
                    src |= 1 << old
            if self.bits >> src & 1:
                bits |= 1 << m
        return TruthTable(nvars, bits)

    def to_binary_string(self) -> str:
        """Output column as a binary string, highest minterm first."""
        return format(self.bits, f"0{1 << self.nvars}b")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"TT({self.nvars}v, {self.to_binary_string()})"


# Common two-input functions, handy for cell definitions and tests.
def tt_and2() -> TruthTable:
    """Two-input AND."""
    return TruthTable.from_string("1000")


def tt_or2() -> TruthTable:
    """Two-input OR."""
    return TruthTable.from_string("1110")


def tt_xor2() -> TruthTable:
    """Two-input XOR."""
    return TruthTable.from_string("0110")


def tt_nand2() -> TruthTable:
    """Two-input NAND."""
    return TruthTable.from_string("0111")


def tt_nor2() -> TruthTable:
    """Two-input NOR."""
    return TruthTable.from_string("0001")
