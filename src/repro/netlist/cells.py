"""Standard-cell library model, parameterized by technology node.

Each :class:`Cell` carries a logic function (truth table over its input
pins), layout area, and a linear delay/power model:

* delay  = ``intrinsic_ps + drive_res_kohm * C_load_ff``
* energy = ``C_internal_and_load * Vdd^2`` per output toggle
* static = ``leak_nw`` continuously

:func:`build_library` derives a complete library for any
:class:`~repro.tech.TechNode`, so the same netlist can be retargeted
across nodes — the mechanism behind the panel's established-node
retargeting claims (E13).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.boolfunc import TruthTable
from repro.tech.node import TechNode


@dataclass(frozen=True)
class Cell:
    """One standard cell (a function at a drive strength).

    Attributes
    ----------
    name:
        Library name, e.g. ``"NAND2_X2"``.
    function:
        Truth table over the input pins (``None`` for sequential cells).
    inputs:
        Ordered input pin names.
    area_um2:
        Layout area.
    input_cap_ff:
        Capacitance presented by each input pin.
    drive_res_kohm:
        Output drive resistance (kohm); delay slope vs load.
    intrinsic_ps:
        Parasitic (zero-load) delay.
    leak_nw:
        Static leakage power at nominal Vt.
    is_sequential:
        True for flip-flops and latches.
    is_scan:
        True for scan-enabled flops (adds SI/SE pins).
    vt_flavor:
        "lvt", "rvt", or "hvt": multi-Vt leakage/speed trade.
    """

    name: str
    function: TruthTable | None
    inputs: tuple
    area_um2: float
    input_cap_ff: float
    drive_res_kohm: float
    intrinsic_ps: float
    leak_nw: float
    is_sequential: bool = False
    is_scan: bool = False
    vt_flavor: str = "rvt"

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    def delay_ps(self, load_ff: float) -> float:
        """Linear-model propagation delay for a given output load."""
        if load_ff < 0:
            raise ValueError("load must be non-negative")
        return self.intrinsic_ps + self.drive_res_kohm * load_ff

    def switch_energy_fj(self, vdd: float, load_ff: float) -> float:
        """Energy per output transition, internal plus external load."""
        internal_ff = 0.6 * self.input_cap_ff * self.num_inputs
        return (internal_ff + load_ff) * vdd ** 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


# Base (drive X1, RVT) cell shapes: name -> (truth table string, pins,
# relative area in unit transistors, relative drive, relative intrinsic).
_COMBINATIONAL = {
    "INV": ("01", ("A",), 2, 1.0, 1.0),
    "BUF": ("10", ("A",), 4, 1.0, 1.8),
    "NAND2": ("0111", ("A", "B"), 4, 1.1, 1.2),
    "NOR2": ("0001", ("A", "B"), 4, 1.4, 1.3),
    "AND2": ("1000", ("A", "B"), 6, 1.2, 1.9),
    "OR2": ("1110", ("A", "B"), 6, 1.4, 2.0),
    "NAND3": ("01111111", ("A", "B", "C"), 6, 1.3, 1.5),
    "NOR3": ("00000001", ("A", "B", "C"), 6, 1.8, 1.7),
    "XOR2": ("0110", ("A", "B"), 10, 1.6, 2.4),
    "XNOR2": ("1001", ("A", "B"), 10, 1.6, 2.4),
    # AOI21: Y = !((A & B) | C)
    "AOI21": ("00000111", ("A", "B", "C"), 6, 1.5, 1.6),
    # OAI21: Y = !((A | B) & C)
    "OAI21": ("00011111", ("A", "B", "C"), 6, 1.5, 1.6),
    # MUX2: Y = S ? B : A   (pins A, B, S)
    "MUX2": ("11001010", ("A", "B", "S"), 12, 1.5, 2.2),
}

_DRIVES = {"X1": 1.0, "X2": 2.0, "X4": 4.0}
_VT = {"lvt": (-0.06, 1.25), "rvt": (0.0, 1.0), "hvt": (+0.08, 0.82)}


class CellLibrary:
    """A set of cells for one technology node, indexed by name."""

    def __init__(self, node: TechNode, cells: dict):
        self.node = node
        self.cells = dict(cells)

    def __getitem__(self, name: str) -> Cell:
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(
                f"no cell {name!r} in {self.node.name} library"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __iter__(self):
        return iter(self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)

    def combinational(self) -> list[Cell]:
        """All non-sequential cells."""
        return [c for c in self.cells.values() if not c.is_sequential]

    def variants(self, base: str) -> list[Cell]:
        """All drive/Vt variants of a base function name."""
        prefix = base + "_"
        return [c for n, c in self.cells.items() if n.startswith(prefix)]

    def cheapest(self, base: str) -> Cell:
        """Smallest-area variant of a base function."""
        vs = self.variants(base)
        if not vs:
            raise KeyError(f"no variants of {base}")
        return min(vs, key=lambda c: c.area_um2)

    def inverter(self, drive: str = "X1") -> Cell:
        """The inverter at a given drive."""
        return self[f"INV_{drive}_rvt"]

    def buffer(self, drive: str = "X2") -> Cell:
        """The buffer at a given drive (used by buffering estimators)."""
        return self[f"BUF_{drive}_rvt"]

    def flop(self, scan: bool = False) -> Cell:
        """The (scan) flip-flop."""
        return self["SDFF_X1_rvt" if scan else "DFF_X1_rvt"]


def build_library(node: TechNode, *, vt_flavors=("rvt",),
                  drives=("X1", "X2", "X4")) -> CellLibrary:
    """Derive a full standard-cell library for a technology node.

    Area scales with the node's cell height and poly pitch; caps and
    leakage come from the node's electrical parameters; speed tracks the
    node's FO4 delay.  ``vt_flavors`` widens the library for multi-Vt
    optimization (E5, E13).
    """
    cells: dict[str, Cell] = {}
    # One "unit transistor" of layout: half a poly pitch wide, one cell
    # row tall, two transistors per poly track (NMOS + PMOS).
    unit_area = (node.contacted_poly_pitch_nm * 1e-3 / 2) * (
        node.cell_height_nm * 1e-3) / 2
    fo4 = node.fo4_delay_ps()
    # Calibrate drive resistance so an X1 inverter driving 4 inverter
    # loads has ~1 FO4 of slope delay.
    unit_cin = node.cgate_ff_per_um * (3.0 * node.gate_length_nm * 1e-3)
    unit_res = (0.75 * fo4) / (4.0 * unit_cin)
    width_um_x1 = 3.0 * node.gate_length_nm * 1e-3

    for vt in vt_flavors:
        vth_shift, speed = _VT[vt]
        for base, (tt_str, pins, ntr, drv, intr) in _COMBINATIONAL.items():
            tt = TruthTable.from_string(tt_str)
            for drive, mult in _DRIVES.items():
                name = f"{base}_{drive}_{vt}"
                leak = node.leakage_nw(
                    width_um_x1 * mult * ntr / 4, vth_shift)
                cells[name] = Cell(
                    name=name,
                    function=tt,
                    inputs=pins,
                    area_um2=unit_area * ntr * (0.6 + 0.4 * mult),
                    input_cap_ff=unit_cin * mult,
                    drive_res_kohm=unit_res * drv / (mult * speed),
                    intrinsic_ps=0.35 * fo4 * intr / speed,
                    leak_nw=leak,
                    vt_flavor=vt,
                )
        # Tie cells: constant drivers (one per Vt is redundant; emit for
        # rvt only so names stay unique).
        if vt == "rvt":
            for tie_name, bits in (("TIELO", 0), ("TIEHI", 1)):
                cells[tie_name] = Cell(
                    name=tie_name,
                    function=TruthTable(0, bits),
                    inputs=(),
                    area_um2=unit_area * 2,
                    input_cap_ff=0.0,
                    drive_res_kohm=unit_res,
                    intrinsic_ps=0.0,
                    leak_nw=node.leakage_nw(width_um_x1 / 4, 0.0),
                    vt_flavor="rvt",
                )
        # Sequential cells: D flip-flop and its scan variant.
        for seq_name, pins, ntr, scan in [
            ("DFF", ("D",), 20, False),
            ("SDFF", ("D", "SI", "SE"), 26, True),
        ]:
            name = f"{seq_name}_X1_{vt}"
            cells[name] = Cell(
                name=name,
                function=None,
                inputs=pins,
                area_um2=unit_area * ntr,
                input_cap_ff=unit_cin,
                drive_res_kohm=unit_res / speed,
                intrinsic_ps=2.2 * fo4 / speed,
                leak_nw=node.leakage_nw(width_um_x1 * ntr / 4, vth_shift),
                is_sequential=True,
                is_scan=scan,
                vt_flavor=vt,
            )
    return CellLibrary(node, cells)
