"""Hierarchical designs: modules, instances, and flattening.

The panel's E2 claim (Domic): "the flat implementation of a hierarchical
design can save silicon real estate, and power consumption — due to the
lesser amount of buffering."  The hierarchy model here makes that
testable: block-by-block implementation must isolate each block behind
boundary buffers, while :func:`flatten` produces a single netlist with no
boundary cells.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.cells import CellLibrary
from repro.netlist.circuit import Netlist


@dataclass
class Module:
    """A reusable block: a name plus its implementation netlist."""

    name: str
    netlist: Netlist

    @property
    def ports_in(self) -> list[str]:
        return list(self.netlist.primary_inputs)

    @property
    def ports_out(self) -> list[str]:
        return list(self.netlist.primary_outputs)


@dataclass
class Instance:
    """One placement of a module in the top level.

    ``input_map``/``output_map`` map module port names to top-level nets.
    """

    name: str
    module: str
    input_map: dict
    output_map: dict


class Design:
    """A two-level hierarchy: a top cell instantiating modules."""

    def __init__(self, name: str, library: CellLibrary):
        self.name = name
        self.library = library
        self.modules: dict[str, Module] = {}
        self.instances: list[Instance] = []
        self.top_inputs: list[str] = []
        self.top_outputs: list[str] = []

    def add_module(self, module: Module) -> None:
        """Register a module definition."""
        if module.name in self.modules:
            raise ValueError(f"duplicate module {module.name!r}")
        self.modules[module.name] = module

    def add_instance(self, inst: Instance) -> None:
        """Place an instance of a registered module."""
        if inst.module not in self.modules:
            raise KeyError(f"unknown module {inst.module!r}")
        mod = self.modules[inst.module]
        missing = set(mod.ports_in) - set(inst.input_map)
        if missing:
            raise ValueError(f"{inst.name}: unmapped inputs {sorted(missing)}")
        self.instances.append(inst)

    def set_top_ports(self, inputs, outputs) -> None:
        """Declare the top-level primary inputs/outputs."""
        self.top_inputs = list(inputs)
        self.top_outputs = list(outputs)

    def total_gates(self) -> int:
        """Gate count summed over instances (pre-flattening)."""
        return sum(
            self.modules[i.module].netlist.num_instances()
            for i in self.instances
        )

    def boundary_port_count(self) -> int:
        """Number of module boundary crossings (each needs a buffer in
        block-by-block implementation)."""
        return sum(
            len(i.input_map) + len(i.output_map) for i in self.instances
        )


def flatten(design: Design, name: str | None = None) -> Netlist:
    """Flatten a two-level design into a single netlist.

    Gate and internal-net names are prefixed with the instance name;
    ports are stitched to the top-level nets with no boundary cells.
    """
    nl = Netlist(name or f"{design.name}_flat", design.library)
    for pi in design.top_inputs:
        nl.add_input(pi)

    # First pass: create every gate with prefixed names; record the net
    # renaming per instance.
    for inst in design.instances:
        mod = design.modules[inst.module]
        sub = mod.netlist
        rename: dict[str, str] = {}
        for port, top_net in inst.input_map.items():
            rename[port] = top_net
        for port, top_net in inst.output_map.items():
            rename[port] = top_net
        # Internal nets (gate outputs not mapped as ports).
        for g in sub.gates.values():
            if g.output not in rename:
                rename[g.output] = f"{inst.name}.{g.output}"
        for g in _topo_with_flops(sub):
            pins = {p: rename[n] for p, n in g.pins.items()}
            nl.add_gate(g.cell, pins, rename[g.output],
                        f"{inst.name}.{g.name}")
    for po in design.top_outputs:
        nl.add_output(po)
    return nl


def _topo_with_flops(sub: Netlist):
    """Module gates, flops first then combinational topological order."""
    return sub.sequential_gates() + sub.topological_gates()


def implement_by_block(design: Design, *, buffer_drive: str = "X2"):
    """Block-by-block (hierarchical) implementation of a design.

    Each module is implemented in isolation, so every boundary port gets
    an isolation buffer (input and output side), exactly the overhead the
    flat flow avoids.  Returns the flattened netlist *with* the boundary
    buffers inserted, so it can be compared head-to-head with
    :func:`flatten`.
    """
    nl = Netlist(f"{design.name}_hier", design.library)
    buf = design.library.buffer(buffer_drive)
    for pi in design.top_inputs:
        nl.add_input(pi)
    for inst in design.instances:
        mod = design.modules[inst.module]
        sub = mod.netlist
        rename: dict[str, str] = {}
        # Boundary input buffers: top net -> buffered internal net.
        for port, top_net in inst.input_map.items():
            g = nl.add_gate(buf, {"A": top_net},
                            f"{inst.name}.bufin_{port}")
            rename[port] = g.output
        for port, top_net in inst.output_map.items():
            # The module's internal driver lands on a pre-buffer net;
            # an output buffer drives the top net.
            rename[port] = f"{inst.name}.pre_{port}"
        for g in sub.gates.values():
            if g.output not in rename:
                rename[g.output] = f"{inst.name}.{g.output}"
        for g in _topo_with_flops(sub):
            pins = {p: rename[n] for p, n in g.pins.items()}
            nl.add_gate(g.cell, pins, rename[g.output],
                        f"{inst.name}.{g.name}")
        for port, top_net in inst.output_map.items():
            nl.add_gate(buf, {"A": rename[port]}, top_net,
                        f"{inst.name}.bufout_{port}")
    for po in design.top_outputs:
        nl.add_output(po)
    return nl
