"""Cubes and covers: the two-level (sum-of-products) representation.

A :class:`Cube` assigns each variable one of three literals: ``0``
(complemented), ``1`` (positive), or ``2`` (absent / don't care).  A
:class:`Cover` is a set of cubes whose union is the function's on-set.
This is the representation Espresso-family minimizers
(:mod:`repro.synthesis.espresso`) operate on — the panel (Macii) names
Espresso/Mini/MIS/SIS as the first wave of EDA logic optimization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.boolfunc import TruthTable

ABSENT = 2


@dataclass(frozen=True)
class Cube:
    """A product term over ``len(literals)`` variables.

    ``literals`` is a tuple over {0, 1, 2}: 0 = negated literal,
    1 = positive literal, 2 = variable absent.
    """

    literals: tuple

    def __post_init__(self) -> None:
        if any(v not in (0, 1, 2) for v in self.literals):
            raise ValueError("literals must be 0, 1, or 2")

    @property
    def nvars(self) -> int:
        return len(self.literals)

    @staticmethod
    def universe(nvars: int) -> "Cube":
        """The cube covering the whole space (all variables absent)."""
        return Cube((ABSENT,) * nvars)

    @staticmethod
    def from_minterm(minterm: int, nvars: int) -> "Cube":
        """The single-minterm cube."""
        return Cube(tuple((minterm >> i) & 1 for i in range(nvars)))

    def literal_count(self) -> int:
        """Number of literals present — the classic two-level cost."""
        return sum(1 for v in self.literals if v != ABSENT)

    def contains_minterm(self, minterm: int) -> bool:
        """True if the minterm lies inside this cube."""
        for i, v in enumerate(self.literals):
            if v != ABSENT and ((minterm >> i) & 1) != v:
                return False
        return True

    def covers(self, other: "Cube") -> bool:
        """True if every minterm of ``other`` is inside ``self``."""
        for a, b in zip(self.literals, other.literals):
            if a != ABSENT and a != b:
                return False
        return True

    def intersect(self, other: "Cube"):
        """Cube intersection, or ``None`` if disjoint."""
        out = []
        for a, b in zip(self.literals, other.literals):
            if a == ABSENT:
                out.append(b)
            elif b == ABSENT or a == b:
                out.append(a)
            else:
                return None
        return Cube(tuple(out))

    def distance(self, other: "Cube") -> int:
        """Number of variables where the cubes have opposing literals."""
        return sum(
            1 for a, b in zip(self.literals, other.literals)
            if a != ABSENT and b != ABSENT and a != b
        )

    def consensus(self, other: "Cube"):
        """The consensus cube if the distance is exactly 1, else None."""
        if self.distance(other) != 1:
            return None
        out = []
        for a, b in zip(self.literals, other.literals):
            if a == ABSENT:
                out.append(b)
            elif b == ABSENT:
                out.append(a)
            elif a == b:
                out.append(a)
            else:
                out.append(ABSENT)
        return Cube(tuple(out))

    def expand_var(self, var: int) -> "Cube":
        """Remove variable ``var`` from the cube (make it larger)."""
        lits = list(self.literals)
        lits[var] = ABSENT
        return Cube(tuple(lits))

    def minterms(self) -> list[int]:
        """Enumerate the minterms covered by this cube."""
        free = [i for i, v in enumerate(self.literals) if v == ABSENT]
        base = 0
        for i, v in enumerate(self.literals):
            if v == 1:
                base |= 1 << i
        out = []
        for k in range(1 << len(free)):
            m = base
            for j, var in enumerate(free):
                if k >> j & 1:
                    m |= 1 << var
            out.append(m)
        return sorted(out)

    def to_truth_table(self) -> TruthTable:
        """The cube as a function of its full variable space."""
        return TruthTable.from_minterms(self.minterms(), self.nvars)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "".join("01-"[v] for v in self.literals)


class Cover:
    """A list of cubes over a common variable space (an SOP form)."""

    def __init__(self, cubes, nvars: int):
        cubes = list(cubes)
        for c in cubes:
            if c.nvars != nvars:
                raise ValueError("cube arity mismatch")
        self.cubes = cubes
        self.nvars = nvars

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def from_truth_table(tt: TruthTable) -> "Cover":
        """The canonical minterm cover of a function."""
        return Cover(
            [Cube.from_minterm(m, tt.nvars) for m in tt.minterms()], tt.nvars
        )

    @staticmethod
    def empty(nvars: int) -> "Cover":
        """The empty (constant-0) cover."""
        return Cover([], nvars)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def evaluate(self, minterm: int) -> bool:
        """True if any cube covers the minterm."""
        return any(c.contains_minterm(minterm) for c in self.cubes)

    def to_truth_table(self) -> TruthTable:
        """Expand the cover back into a truth table."""
        bits = 0
        for m in range(1 << self.nvars):
            if self.evaluate(m):
                bits |= 1 << m
        return TruthTable(self.nvars, bits)

    def covers_minterm(self, minterm: int) -> bool:
        """Alias of :meth:`evaluate` for readability at call sites."""
        return self.evaluate(minterm)

    # ------------------------------------------------------------------
    # Cost metrics
    # ------------------------------------------------------------------

    def cube_count(self) -> int:
        """Number of product terms."""
        return len(self.cubes)

    def literal_count(self) -> int:
        """Total literal count — the standard two-level area proxy."""
        return sum(c.literal_count() for c in self.cubes)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def without(self, index: int) -> "Cover":
        """A copy with cube ``index`` removed."""
        return Cover(
            self.cubes[:index] + self.cubes[index + 1:], self.nvars
        )

    def add(self, cube: Cube) -> "Cover":
        """A copy with ``cube`` appended."""
        if cube.nvars != self.nvars:
            raise ValueError("cube arity mismatch")
        return Cover(self.cubes + [cube], self.nvars)

    def deduplicate(self) -> "Cover":
        """Remove duplicate and single-cube-contained cubes."""
        kept: list[Cube] = []
        for c in sorted(set(self.cubes),
                        key=lambda c: -sum(1 for v in c.literals if v == ABSENT)):
            if not any(k.covers(c) for k in kept):
                kept.append(c)
        return Cover(kept, self.nvars)

    def is_tautology(self) -> bool:
        """Unate-recursive tautology check (the URP of Espresso)."""
        return _urp_tautology(self.cubes, self.nvars)

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self):
        return iter(self.cubes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " + ".join(str(c) for c in self.cubes) or "0"


def _urp_tautology(cubes: list[Cube], nvars: int) -> bool:
    """Unate recursive paradigm tautology check on a cube list."""
    if any(c.literal_count() == 0 for c in cubes):
        return True
    if not cubes:
        return False
    # Unate reduction: a cover unate in all variables is a tautology iff
    # it contains the universal cube (already checked above).
    counts = [[0, 0] for _ in range(nvars)]
    for c in cubes:
        for i, v in enumerate(c.literals):
            if v in (0, 1):
                counts[i][v] += 1
    binate = [i for i in range(nvars) if counts[i][0] and counts[i][1]]
    if not binate:
        return False
    # Split on the most binate variable.
    split = max(binate, key=lambda i: counts[i][0] + counts[i][1])
    pos = _cofactor_cubes(cubes, split, 1)
    neg = _cofactor_cubes(cubes, split, 0)
    return _urp_tautology(pos, nvars) and _urp_tautology(neg, nvars)


def _cofactor_cubes(cubes: list[Cube], var: int, value: int) -> list[Cube]:
    """Cofactor a cube list with respect to a literal."""
    out = []
    for c in cubes:
        v = c.literals[var]
        if v == ABSENT or v == value:
            out.append(c.expand_var(var))
    return out


def cover_covers_cube(cover: Cover, cube: Cube) -> bool:
    """True if the cover contains every minterm of ``cube``.

    Implemented as a tautology check of the cover cofactored against the
    cube — polynomial-free but exact, as in Espresso's IRREDUNDANT.
    """
    cof: list[Cube] = []
    for c in cover.cubes:
        inter = c.intersect(cube)
        if inter is None:
            continue
        # Cofactor c against cube: drop the variables cube fixes.
        lits = list(c.literals)
        for i, v in enumerate(cube.literals):
            if v != ABSENT:
                lits[i] = ABSENT
        cof.append(Cube(tuple(lits)))
    return _urp_tautology(cof, cube.nvars)
