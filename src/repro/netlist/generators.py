"""Benchmark design generators.

Synthetic but structurally realistic workloads: arithmetic datapaths,
random logic clouds with tunable Rent-like connectivity, crossbars (the
networking-ASIC fabric of Rossi's position), LFSRs, and registered
pipelines.  All generators are deterministic given an ``rng``/``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.aig import Aig
from repro.netlist.cells import CellLibrary
from repro.netlist.circuit import Netlist


def ripple_carry_adder(width: int, library: CellLibrary,
                       name: str = "rca") -> Netlist:
    """N-bit ripple-carry adder from XOR/AND/OR cells.

    The classic slow-but-small adder; its long carry chain makes it the
    standard victim for delay-oriented synthesis experiments.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    nl = Netlist(name, library)
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    cin = nl.add_input("cin")
    carry = cin
    for i in range(width):
        p = nl.add_gate("XOR2_X1_rvt", [a[i], b[i]], f"p{i}").output
        s = nl.add_gate("XOR2_X1_rvt", [p, carry], f"sum{i}").output
        g1 = nl.add_gate("AND2_X1_rvt", [a[i], b[i]], f"g{i}").output
        g2 = nl.add_gate("AND2_X1_rvt", [p, carry], f"t{i}").output
        carry = nl.add_gate("OR2_X1_rvt", [g1, g2], f"c{i + 1}").output
        nl.add_output(s)
    nl.add_output(carry)
    return nl


def carry_lookahead_adder(width: int, library: CellLibrary,
                          group: int = 4, name: str = "cla") -> Netlist:
    """N-bit adder with group carry-lookahead.

    Carries inside each ``group``-bit block are computed from the block
    carry-in through two-level P/G logic, cutting depth roughly by the
    group size — the faster-but-larger point of the area/delay trade.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    nl = Netlist(name, library)
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    carry = nl.add_input("cin")
    p = []
    g = []
    for i in range(width):
        p.append(nl.add_gate("XOR2_X1_rvt", [a[i], b[i]], f"p{i}").output)
        g.append(nl.add_gate("AND2_X1_rvt", [a[i], b[i]], f"g{i}").output)
    for lo in range(0, width, group):
        hi = min(lo + group, width)
        block_cin = carry
        # Sum bits use the lookahead carries.
        carries = [block_cin]
        for i in range(lo, hi):
            # c[i+1] = g[i] + p[i] * c[i], flattened: OR over AND chains.
            terms = [g[i]]
            chain = carries[i - lo]
            and_prev = nl.add_gate(
                "AND2_X1_rvt", [p[i], chain], f"pc{i}").output
            terms.append(and_prev)
            acc = terms[0]
            for t in terms[1:]:
                acc = nl.add_gate("OR2_X1_rvt", [acc, t]).output
            carries.append(acc)
        for i in range(lo, hi):
            s = nl.add_gate(
                "XOR2_X1_rvt", [p[i], carries[i - lo]], f"sum{i}").output
            nl.add_output(s)
        carry = carries[-1]
    nl.add_output(carry)
    return nl


def multiplier(width: int, library: CellLibrary,
               name: str = "mult") -> Netlist:
    """N x N array multiplier (carry-save reduction, ripple final add)."""
    if width < 1:
        raise ValueError("width must be >= 1")
    nl = Netlist(name, library)
    a = [nl.add_input(f"a{i}") for i in range(width)]
    b = [nl.add_input(f"b{i}") for i in range(width)]
    # Partial products.
    columns: list[list[str]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            pp = nl.add_gate("AND2_X1_rvt", [a[i], b[j]]).output
            columns[i + j].append(pp)
    # Carry-save reduction with full/half adders built from cells.
    for col in range(2 * width):
        while len(columns[col]) > 1:
            if len(columns[col]) >= 3:
                x, y, z = (columns[col].pop() for _ in range(3))
                s1 = nl.add_gate("XOR2_X1_rvt", [x, y]).output
                s = nl.add_gate("XOR2_X1_rvt", [s1, z]).output
                c1 = nl.add_gate("AND2_X1_rvt", [x, y]).output
                c2 = nl.add_gate("AND2_X1_rvt", [s1, z]).output
                c = nl.add_gate("OR2_X1_rvt", [c1, c2]).output
            else:
                x, y = (columns[col].pop() for _ in range(2))
                s = nl.add_gate("XOR2_X1_rvt", [x, y]).output
                c = nl.add_gate("AND2_X1_rvt", [x, y]).output
            columns[col].append(s)
            if col + 1 < 2 * width:
                columns[col + 1].append(c)
        if columns[col]:
            nl.add_output(columns[col][0])
    return nl


def logic_cloud(num_inputs: int, num_outputs: int, num_gates: int,
                library: CellLibrary, seed: int = 0,
                locality: float = 0.7, name: str = "cloud") -> Netlist:
    """Random combinational DAG with tunable locality.

    ``locality`` in [0, 1] biases gate fanins toward recently created
    nets, which mimics the short-wire-rich connectivity of real logic
    (a Rent-exponent-like control).  The gate mix matches typical mapped
    designs (NAND/NOR-heavy with some XOR and AOI).
    """
    if num_inputs < 2 or num_gates < 1 or num_outputs < 1:
        raise ValueError("degenerate cloud parameters")
    rng = np.random.default_rng(seed)
    nl = Netlist(name, library)
    nets = [nl.add_input(f"i{k}") for k in range(num_inputs)]
    mix = [
        ("NAND2_X1_rvt", 0.28), ("NOR2_X1_rvt", 0.16),
        ("INV_X1_rvt", 0.14), ("AND2_X1_rvt", 0.10),
        ("OR2_X1_rvt", 0.08), ("XOR2_X1_rvt", 0.08),
        ("AOI21_X1_rvt", 0.06), ("OAI21_X1_rvt", 0.05),
        ("NAND3_X1_rvt", 0.03), ("MUX2_X1_rvt", 0.02),
    ]
    names = [m[0] for m in mix]
    probs = np.array([m[1] for m in mix])
    probs = probs / probs.sum()
    for _ in range(num_gates):
        cell = library[names[rng.choice(len(names), p=probs)]]
        k = cell.num_inputs
        pool = len(nets)
        picks = []
        for _ in range(k):
            if rng.random() < locality:
                # Recent nets: geometric-ish window over the last 10%.
                window = max(2, pool // 10)
                idx = pool - 1 - int(rng.integers(0, window))
            else:
                idx = int(rng.integers(0, pool))
            picks.append(nets[idx])
        out = nl.add_gate(cell, picks).output
        nets.append(out)
    # Outputs: the most recent nets (the cloud's "frontier").
    for net in nets[-num_outputs:]:
        nl.add_output(net)
    return nl


def registered_cloud(num_inputs: int, num_flops: int, num_gates: int,
                     library: CellLibrary, seed: int = 0,
                     name: str = "regcloud") -> Netlist:
    """A logic cloud wrapped in flops: the DFT/scan workload.

    Flop outputs feed the cloud; a slice of cloud nets feeds the flop D
    pins.  This provides realistic scan-stitching and congestion
    experiments (E10).
    """
    if num_flops < 1:
        raise ValueError("need at least one flop")
    rng = np.random.default_rng(seed)
    nl = Netlist(name, library)
    pis = [nl.add_input(f"i{k}") for k in range(num_inputs)]
    dff = library.flop(scan=False)
    flop_qs = []
    flop_names = []
    for k in range(num_flops):
        # Temporarily drive D from a PI; rewired to cloud nets below.
        g = nl.add_gate(dff, {"D": pis[k % num_inputs]}, f"q{k}", f"ff{k}")
        flop_qs.append(g.output)
        flop_names.append(g.name)
    nets = list(pis) + flop_qs
    mix = ["NAND2_X1_rvt", "NOR2_X1_rvt", "INV_X1_rvt", "XOR2_X1_rvt",
           "AND2_X1_rvt", "OR2_X1_rvt"]
    for _ in range(num_gates):
        cell = library[mix[int(rng.integers(0, len(mix)))]]
        picks = [nets[int(rng.integers(0, len(nets)))]
                 for _ in range(cell.num_inputs)]
        nets.append(nl.add_gate(cell, picks).output)
    cloud_nets = nets[len(pis) + len(flop_qs):]
    if cloud_nets:
        for k, fname in enumerate(flop_names):
            src = cloud_nets[int(rng.integers(0, len(cloud_nets)))]
            nl.rewire_pin(fname, "D", src)
    for net in cloud_nets[-max(1, num_flops // 4):]:
        nl.add_output(net)
    return nl


def crossbar_switch(num_ports: int, width: int, library: CellLibrary,
                    name: str = "xbar") -> Netlist:
    """An output-muxed crossbar: the heart of a networking ASIC.

    Every output port selects among all input ports through a mux tree
    controlled by one-hot-encoded select lines.  High fanout of input
    buses and dense mux columns give the >5x switching-activity profile
    Rossi describes (E9).
    """
    if num_ports < 2 or width < 1:
        raise ValueError("crossbar needs >= 2 ports and width >= 1")
    nl = Netlist(name, library)
    data = [[nl.add_input(f"in{p}_{b}") for b in range(width)]
            for p in range(num_ports)]
    nsel = max(1, (num_ports - 1).bit_length())
    sels = [[nl.add_input(f"sel{o}_{s}") for s in range(nsel)]
            for o in range(num_ports)]
    for o in range(num_ports):
        for b in range(width):
            lanes = [data[p][b] for p in range(num_ports)]
            level = 0
            while len(lanes) > 1:
                nxt = []
                sel = sels[o][min(level, nsel - 1)]
                for i in range(0, len(lanes) - 1, 2):
                    m = nl.add_gate(
                        "MUX2_X1_rvt",
                        {"A": lanes[i], "B": lanes[i + 1], "S": sel},
                    ).output
                    nxt.append(m)
                if len(lanes) % 2:
                    nxt.append(lanes[-1])
                lanes = nxt
                level += 1
            nl.add_output(lanes[0])
    return nl


def lfsr(width: int, library: CellLibrary, taps=None,
         name: str = "lfsr") -> Netlist:
    """Fibonacci LFSR of ``width`` flops (test-pattern generator core)."""
    if width < 2:
        raise ValueError("width must be >= 2")
    if taps is None:
        taps = [width - 1, 0]
    nl = Netlist(name, library)
    en = nl.add_input("en")
    dff = library.flop(scan=False)
    qs = []
    names = []
    for k in range(width):
        g = nl.add_gate(dff, {"D": en}, f"q{k}", f"ff{k}")
        qs.append(g.output)
        names.append(g.name)
    fb = qs[taps[0]]
    for t in taps[1:]:
        fb = nl.add_gate("XOR2_X1_rvt", [fb, qs[t]]).output
    nl.rewire_pin(names[0], "D", fb)
    for k in range(1, width):
        nl.rewire_pin(names[k], "D", qs[k - 1])
    nl.add_output(qs[-1])
    return nl


def random_aig(num_inputs: int, num_ands: int, num_outputs: int,
               seed: int = 0) -> Aig:
    """Random AIG for synthesis stress tests."""
    if num_inputs < 2:
        raise ValueError("need >= 2 inputs")
    rng = np.random.default_rng(seed)
    aig = Aig(num_inputs)
    lits = [aig.input_lit(i) for i in range(num_inputs)]
    attempts = 0
    while aig.num_ands < num_ands and attempts < 50 * num_ands:
        attempts += 1
        a = lits[int(rng.integers(0, len(lits)))] ^ int(rng.integers(0, 2))
        b = lits[int(rng.integers(0, len(lits)))] ^ int(rng.integers(0, 2))
        lit = aig.and_(a, b)
        if lit not in (0, 1):
            lits.append(lit)
    for k in range(num_outputs):
        aig.add_output(lits[-1 - (k % min(len(lits), num_outputs))],
                       f"o{k}")
    return aig


def hierarchical_soc(num_blocks: int, gates_per_block: int,
                     library: CellLibrary, seed: int = 0,
                     bus_width: int = 16):
    """A hierarchical SoC :class:`~repro.netlist.hierarchy.Design`.

    ``num_blocks`` logic-cloud blocks chained by ``bus_width``-bit buses,
    the workload for the flat-vs-hierarchical experiment (E2).
    """
    from repro.netlist.hierarchy import Design, Instance, Module

    if num_blocks < 1:
        raise ValueError("need at least one block")
    modules = []
    for b in range(num_blocks):
        sub = logic_cloud(bus_width, bus_width, gates_per_block,
                          library, seed=seed + b, name=f"block{b}")
        modules.append(Module(f"block{b}", sub))
    design = Design("soc", library)
    for m in modules:
        design.add_module(m)
    # Chain blocks: block b's outputs feed block b+1's inputs.
    top_in = [f"soc_in{k}" for k in range(bus_width)]
    prev = top_in
    for b in range(num_blocks):
        outs = [f"bus{b}_{k}" for k in range(bus_width)]
        design.add_instance(Instance(
            name=f"u_block{b}",
            module=f"block{b}",
            input_map=dict(zip(modules[b].netlist.primary_inputs, prev)),
            output_map=dict(zip(modules[b].netlist.primary_outputs, outs)),
        ))
        prev = outs
    design.set_top_ports(top_in, prev)
    return design
