"""And-Inverter Graphs with structural hashing.

The AIG is the workhorse of modern logic synthesis (the "deep rethinking
of computational models" De Micheli's introduction calls for): every
combinational function is a DAG of two-input ANDs plus edge inverters.

Literals follow the AIGER convention: node ``i`` has literals ``2*i``
(positive) and ``2*i + 1`` (negated); node 0 is constant false, so
literal 0 is FALSE and literal 1 is TRUE.
"""

from __future__ import annotations

import numpy as np

AIG_FALSE = 0
AIG_TRUE = 1


def lit_not(lit: int) -> int:
    """Negate a literal."""
    return lit ^ 1


def lit_var(lit: int) -> int:
    """Node index of a literal."""
    return lit >> 1


def lit_is_neg(lit: int) -> bool:
    """True if the literal is complemented."""
    return bool(lit & 1)


class Aig:
    """A mutable And-Inverter Graph.

    Nodes: index 0 is the constant; indices ``1..num_inputs`` are primary
    inputs; the rest are AND nodes created through :meth:`and_`.
    Structural hashing merges re-created identical ANDs.
    """

    def __init__(self, num_inputs: int = 0, input_names=None):
        self.num_inputs = 0
        self.input_names: list[str] = []
        # Parallel arrays of AND fanins, indexed by node id (entries for
        # the constant and the inputs are (0, 0) placeholders).
        self._fanin0: list[int] = [0]
        self._fanin1: list[int] = [0]
        self._strash: dict[tuple, int] = {}
        self.outputs: list[int] = []
        self.output_names: list[str] = []
        names = input_names or [f"i{k}" for k in range(num_inputs)]
        if len(names) != num_inputs:
            raise ValueError("input_names length mismatch")
        for nm in names:
            self.add_input(nm)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_input(self, name: str | None = None) -> int:
        """Add a primary input; returns its positive literal."""
        if len(self._fanin0) != self.num_nodes:
            raise AssertionError("internal arrays out of sync")
        if self.num_ands:
            raise ValueError("inputs must be added before AND nodes")
        self.num_inputs += 1
        self.input_names.append(name or f"i{self.num_inputs - 1}")
        self._fanin0.append(0)
        self._fanin1.append(0)
        return 2 * (self.num_inputs)

    def input_lit(self, index: int) -> int:
        """Positive literal of input ``index``."""
        if not 0 <= index < self.num_inputs:
            raise IndexError("input index out of range")
        return 2 * (index + 1)

    def and_(self, a: int, b: int) -> int:
        """AND of two literals, with constant folding and strashing."""
        self._check_lit(a)
        self._check_lit(b)
        if a > b:
            a, b = b, a
        if a == AIG_FALSE:
            return AIG_FALSE
        if a == AIG_TRUE:
            return b
        if a == b:
            return a
        if a == lit_not(b):
            return AIG_FALSE
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = self.num_nodes
            self._fanin0.append(a)
            self._fanin1.append(b)
            self._strash[key] = node
        return 2 * node

    def or_(self, a: int, b: int) -> int:
        """OR via De Morgan."""
        return lit_not(self.and_(lit_not(a), lit_not(b)))

    def xor_(self, a: int, b: int) -> int:
        """XOR as (a & ~b) | (~a & b); costs 3 AND nodes."""
        return self.or_(self.and_(a, lit_not(b)), self.and_(lit_not(a), b))

    def mux_(self, sel: int, t: int, e: int) -> int:
        """If-then-else: sel ? t : e."""
        return self.or_(self.and_(sel, t), self.and_(lit_not(sel), e))

    def add_output(self, lit: int, name: str | None = None) -> None:
        """Register a primary output literal."""
        self._check_lit(lit)
        self.outputs.append(lit)
        self.output_names.append(name or f"o{len(self.outputs) - 1}")

    def _check_lit(self, lit: int) -> None:
        if not 0 <= lit_var(lit) < self.num_nodes:
            raise ValueError(f"literal {lit} references unknown node")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total nodes including constant and inputs."""
        return len(self._fanin0)

    @property
    def num_ands(self) -> int:
        """Number of AND nodes — the standard AIG size metric."""
        return self.num_nodes - 1 - self.num_inputs

    def fanins(self, node: int) -> tuple:
        """The two fanin literals of AND node ``node``."""
        if not self.is_and(node):
            raise ValueError(f"node {node} is not an AND")
        return self._fanin0[node], self._fanin1[node]

    def is_input(self, node: int) -> bool:
        """True if ``node`` is a primary input."""
        return 1 <= node <= self.num_inputs

    def is_and(self, node: int) -> bool:
        """True if ``node`` is an AND node."""
        return node > self.num_inputs

    def levels(self) -> list[int]:
        """Logic depth of each node (inputs at level 0)."""
        lev = [0] * self.num_nodes
        for n in range(self.num_inputs + 1, self.num_nodes):
            a, b = self._fanin0[n], self._fanin1[n]
            lev[n] = 1 + max(lev[lit_var(a)], lev[lit_var(b)])
        return lev

    def depth(self) -> int:
        """Maximum logic depth over the outputs."""
        if not self.outputs:
            return 0
        lev = self.levels()
        return max(lev[lit_var(o)] for o in self.outputs)

    def fanout_counts(self) -> list[int]:
        """Fanout count per node (outputs count as one fanout each)."""
        cnt = [0] * self.num_nodes
        for n in range(self.num_inputs + 1, self.num_nodes):
            cnt[lit_var(self._fanin0[n])] += 1
            cnt[lit_var(self._fanin1[n])] += 1
        for o in self.outputs:
            cnt[lit_var(o)] += 1
        return cnt

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def simulate(self, input_vectors: np.ndarray) -> np.ndarray:
        """Bit-parallel simulation.

        ``input_vectors`` is a bool array of shape (num_patterns,
        num_inputs); the result has shape (num_patterns, num_outputs).
        """
        vec = np.asarray(input_vectors, dtype=bool)
        if vec.ndim != 2 or vec.shape[1] != self.num_inputs:
            raise ValueError("input_vectors must be (patterns, num_inputs)")
        npat = vec.shape[0]
        vals = np.zeros((self.num_nodes, npat), dtype=bool)
        for i in range(self.num_inputs):
            vals[i + 1] = vec[:, i]
        for n in range(self.num_inputs + 1, self.num_nodes):
            a, b = self._fanin0[n], self._fanin1[n]
            va = vals[lit_var(a)] ^ lit_is_neg(a)
            vb = vals[lit_var(b)] ^ lit_is_neg(b)
            vals[n] = va & vb
        out = np.empty((npat, len(self.outputs)), dtype=bool)
        for k, o in enumerate(self.outputs):
            out[:, k] = vals[lit_var(o)] ^ lit_is_neg(o)
        return out

    def simulate_all(self) -> np.ndarray:
        """Exhaustive simulation (requires num_inputs <= 20)."""
        if self.num_inputs > 20:
            raise ValueError("too many inputs for exhaustive simulation")
        n = self.num_inputs
        patterns = np.array(
            [[(m >> i) & 1 for i in range(n)] for m in range(1 << n)],
            dtype=bool,
        ).reshape(1 << n, n)
        return self.simulate(patterns)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def cone_nodes(self, roots=None) -> set:
        """AND nodes in the transitive fanin of the given output literals."""
        if roots is None:
            roots = self.outputs
        seen: set[int] = set()
        stack = [lit_var(r) for r in roots]
        while stack:
            n = stack.pop()
            if n in seen or not self.is_and(n):
                continue
            seen.add(n)
            stack.append(lit_var(self._fanin0[n]))
            stack.append(lit_var(self._fanin1[n]))
        return seen

    def cleanup(self) -> "Aig":
        """Copy keeping only nodes reachable from the outputs."""
        out = Aig(self.num_inputs, list(self.input_names))
        mapping = {0: AIG_FALSE}
        for i in range(self.num_inputs):
            mapping[i + 1] = out.input_lit(i)
        live = self.cone_nodes()
        for n in range(self.num_inputs + 1, self.num_nodes):
            if n not in live:
                continue
            a, b = self._fanin0[n], self._fanin1[n]
            na = mapping[lit_var(a)] ^ (a & 1)
            nb = mapping[lit_var(b)] ^ (b & 1)
            mapping[n] = out.and_(na, nb)
        for o, nm in zip(self.outputs, self.output_names):
            out.add_output(mapping[lit_var(o)] ^ (o & 1), nm)
        return out

    def copy(self) -> "Aig":
        """Deep copy."""
        out = Aig(self.num_inputs, list(self.input_names))
        out._fanin0 = list(self._fanin0)
        out._fanin1 = list(self._fanin1)
        out._strash = dict(self._strash)
        out.outputs = list(self.outputs)
        out.output_names = list(self.output_names)
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Aig(inputs={self.num_inputs}, ands={self.num_ands}, "
            f"outputs={len(self.outputs)}, depth={self.depth()})"
        )


def aig_from_truth_table(tt, aig: Aig | None = None, input_lits=None) -> tuple:
    """Build AIG logic computing ``tt``; returns (aig, output_literal).

    Uses Shannon decomposition on the function's actual support, which
    keeps small standard-cell functions compact.
    """
    from repro.netlist.boolfunc import TruthTable

    if not isinstance(tt, TruthTable):
        raise TypeError("tt must be a TruthTable")
    if aig is None:
        aig = Aig(tt.nvars)
    if input_lits is None:
        input_lits = [aig.input_lit(i) for i in range(tt.nvars)]
    if len(input_lits) != tt.nvars:
        raise ValueError("input_lits length mismatch")

    cache: dict[int, int] = {}

    def build(f: TruthTable) -> int:
        if f.is_contradiction():
            return AIG_FALSE
        if f.is_tautology():
            return AIG_TRUE
        key = f.bits
        if key in cache:
            return cache[key]
        sup = f.support()
        v = sup[-1]
        hi = build(f.cofactor(v, True))
        lo = build(f.cofactor(v, False))
        lit = aig.mux_(input_lits[v], hi, lo)
        cache[key] = lit
        return lit

    return aig, build(tt)
