"""Logic-network data structures and design generators.

This package provides the representations every flow stage consumes:

* :class:`TruthTable` — small Boolean functions as bit-packed tables.
* :class:`Cube` / :class:`Cover` — two-level (SOP) form for Espresso-style
  minimization.
* :class:`Aig` — And-Inverter Graphs with structural hashing, the
  multi-level synthesis subject.
* :class:`Cell` / :class:`CellLibrary` — standard-cell libraries derived
  from a :class:`~repro.tech.TechNode`.
* :class:`Netlist` — mapped gate-level networks (combinational +
  sequential) used by timing, power, placement, routing, and DFT.
* :class:`PackedNetlist` — the columnar (structure-of-arrays)
  interchange form: interned name tables + int32 CSR arrays, with the
  binary ``.pnl`` format and the canonical ``content_digest()``.
* generators — adders, multipliers, ALUs, random logic clouds, crossbars,
  and hierarchical SoCs used as benchmark workloads.
"""

from repro.netlist.boolfunc import TruthTable
from repro.netlist.cubes import Cover, Cube
from repro.netlist.aig import Aig, AIG_FALSE, AIG_TRUE
from repro.netlist.cells import Cell, CellLibrary, build_library
from repro.netlist.circuit import Gate, Netlist, NetlistEdit
from repro.netlist.packed import PackedNetlist, PackError
from repro.netlist.generators import (
    carry_lookahead_adder,
    crossbar_switch,
    hierarchical_soc,
    lfsr,
    logic_cloud,
    multiplier,
    random_aig,
    registered_cloud,
    ripple_carry_adder,
)
from repro.netlist.hierarchy import (
    Design,
    Instance,
    Module,
    flatten,
    implement_by_block,
)

__all__ = [
    "TruthTable",
    "Cube",
    "Cover",
    "Aig",
    "AIG_FALSE",
    "AIG_TRUE",
    "Cell",
    "CellLibrary",
    "build_library",
    "Gate",
    "Netlist",
    "NetlistEdit",
    "PackedNetlist",
    "PackError",
    "ripple_carry_adder",
    "carry_lookahead_adder",
    "multiplier",
    "logic_cloud",
    "registered_cloud",
    "crossbar_switch",
    "lfsr",
    "random_aig",
    "hierarchical_soc",
    "Design",
    "Module",
    "Instance",
    "flatten",
    "implement_by_block",
]
