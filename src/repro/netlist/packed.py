"""Columnar (structure-of-arrays) netlist interchange.

:class:`PackedNetlist` is the compact design currency the scaling
layers move around: interned net/gate/cell name tables plus int32
CSR connectivity arrays, instead of a dict of :class:`Gate` objects.
One packed form feeds four consumers:

* **Caching / journaling / worker handoff** — the orchestrate codec
  (:func:`repro.orchestrate.cache.encode_value`) ships netlists as
  ``.pnl`` bytes instead of deep pickles (smaller blobs, faster
  encode; ``benchmarks/bench_serialize.py`` gates the ratios).
* **Cache keys** — :meth:`content_digest` is a canonical,
  insertion-order-independent SHA-256 of the design content, so two
  structurally identical netlists built in different orders share one
  cache entry without pickling either.
* **Analysis kernels** — the incremental timing engine and the lint
  rules build their CSR/levelized views straight from the packed
  arrays (:meth:`comb_levels`, :func:`csr_gather`) instead of
  re-walking gate dicts.
* **Files** — :meth:`save`/:meth:`load` read and write the versioned
  binary ``.pnl`` format (header + raw array sections, checksummed,
  atomically published).

Round trip: ``Netlist.to_packed()`` / :meth:`to_netlist` is lossless
for any netlist (including lint-broken ones: pins are stored with
their names, not assumed to match the cell's declared order), and the
fresh-name counter rides along so reconstructed netlists generate the
same names an uninterrupted flow would.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import zlib
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np
import numpy.typing as npt

if TYPE_CHECKING:
    from repro.netlist.cells import Cell, CellLibrary
    from repro.netlist.circuit import Netlist

_MAGIC = b"PNL1"
_FORMAT_VERSION = 1
_FLAG_ZLIB = 0x01
_FLAG_SHUFFLE = 0x02
_HEADER_STRUCT = struct.Struct("<4sHBI")   # magic, version, flags, hlen


def _shuffle4(data: bytes) -> bytes:
    """Byte-transpose an int32 buffer (blosc-style shuffle).

    Grouping the low bytes of every word together turns smooth index
    columns into long runs, so zlib level 1 compresses the int
    sections both smaller *and* faster than the unshuffled bytes.
    """
    if len(data) % 4:
        raise PackError("misaligned .pnl int sections")
    arr = np.frombuffer(data, dtype=np.uint8).reshape(-1, 4)
    return np.ascontiguousarray(arr.T).tobytes()


def _unshuffle4(data: bytes) -> bytes:
    """Invert :func:`_shuffle4`."""
    if len(data) % 4:
        raise PackError("misaligned .pnl int sections")
    arr = np.frombuffer(data, dtype=np.uint8).reshape(4, -1)
    return np.ascontiguousarray(arr.T).tobytes()


IntArray = npt.NDArray[np.int32]
Int64Array = npt.NDArray[np.int64]


class PackError(ValueError):
    """A packed netlist (or ``.pnl`` blob) is unusable: unknown cell,
    out-of-range index, truncated or corrupt encoding."""


def csr_gather(starts: Int64Array, counts: Int64Array) -> Int64Array:
    """Flat indices of the CSR segments ``[starts[i], starts[i]+counts[i])``.

    The standard vectorized expansion: the returned index array selects
    every element of every named segment, in segment order, without a
    Python loop.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    before = np.concatenate((np.zeros(1, dtype=np.int64), ends[:-1]))
    out: Int64Array = (np.repeat(starts - before, counts)
                       + np.arange(total, dtype=np.int64))
    return out


def _names_to_blob(names: Sequence[str]) -> bytes:
    """Encode a name table as one NUL-separated UTF-8 blob.

    One C-level join instead of a per-name encode loop; names
    containing NUL (never produced by the generators or the Verilog
    reader, but the format stays lossless) are escaped as
    ``NUL 'Q'`` with a literal ``NUL 'Z'`` lead-in marker so the
    separator stays unambiguous.
    """
    joined = "\x00".join(names)
    if joined.count("\x00") != max(len(names) - 1, 0) \
            or joined.startswith("\x00Z"):
        joined = "\x00\x01".join(n.replace("\x00", "\x00\x02")
                                 for n in names)
        return b"\x00Z" + joined.encode("utf-8")
    return joined.encode("utf-8")


def _blob_to_names(blob: "bytes | memoryview",
                   count: int) -> tuple[str, ...]:
    """Decode a name table written by :func:`_names_to_blob`."""
    if not isinstance(blob, bytes):
        blob = bytes(blob)
    try:
        text = blob.decode("utf-8")
    except UnicodeDecodeError as err:
        raise PackError("corrupt name-table blob") from err
    if text.startswith("\x00Z"):
        names = tuple(p.replace("\x00\x02", "\x00")
                      for p in text[2:].split("\x00\x01"))
    elif count == 0 and not text:
        names = ()
    else:
        names = tuple(text.split("\x00"))
    if len(names) != count:
        raise PackError(
            f"corrupt name table: expected {count} names, "
            f"found {len(names)}")
    return names


class PackedNetlist:
    """A flat netlist in structure-of-arrays form.

    Name tables (``net_names``, ``gate_names``, cell/pin tables) intern
    every string once; connectivity is int32 indices into them:

    * ``gate_cell[i]`` / ``gate_output[i]`` — cell-table and net-table
      index of gate ``i`` (gates keep the source insertion order);
    * ``pin_off``/``pin_net``/``pin_name`` — CSR input pins: gate
      ``i``'s pins are flat slots ``pin_off[i]:pin_off[i+1]``, each a
      (pin-name-table, net-table) index pair in the gate's own pin
      order;
    * ``primary_inputs`` / ``primary_outputs`` — net-table indices in
      declared order (order is semantic: it is the simulation column
      order).

    ``counter`` carries the source netlist's fresh-name counter so a
    reconstructed netlist names new gates exactly like the original
    would (it is deliberately *excluded* from :meth:`content_digest`,
    which fingerprints design content, not construction history).

    Instances are treated as immutable; derived views
    (:meth:`content_digest`, :meth:`comb_levels`) are memoized.
    """

    def __init__(self, *, name: str, node: str, counter: int,
                 net_names: tuple[str, ...],
                 gate_names: tuple[str, ...],
                 cell_names: tuple[str, ...],
                 cell_pins: tuple[tuple[str, ...], ...],
                 cell_seq: tuple[bool, ...],
                 pin_names: tuple[str, ...],
                 gate_cell: IntArray, gate_output: IntArray,
                 pin_off: IntArray, pin_net: IntArray,
                 pin_name: IntArray,
                 primary_inputs: IntArray,
                 primary_outputs: IntArray) -> None:
        self.name = name
        self.node = node
        self.counter = counter
        self.net_names = net_names
        self.gate_names = gate_names
        self.cell_names = cell_names
        self.cell_pins = cell_pins
        self.cell_seq = cell_seq
        self.pin_names = pin_names
        self.gate_cell = gate_cell
        self.gate_output = gate_output
        self.pin_off = pin_off
        self.pin_net = pin_net
        self.pin_name = pin_name
        self.primary_inputs = primary_inputs
        self.primary_outputs = primary_outputs
        self._digest: str | None = None
        self._bytes: dict[tuple[bool, bool], bytes] = {}
        self._levels: tuple[Int64Array, Int64Array] | None = None
        self._seq_mask: npt.NDArray[np.bool_] | None = None

    # -- shape ------------------------------------------------------------

    @property
    def num_gates(self) -> int:
        return len(self.gate_names)

    @property
    def num_nets(self) -> int:
        return len(self.net_names)

    @property
    def num_pins(self) -> int:
        return int(self.pin_net.size)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PackedNetlist({self.name!r}, {self.num_gates} gates, "
                f"{self.num_nets} nets, {self.num_pins} pins)")

    # -- construction from the object form ---------------------------------

    @classmethod
    def from_netlist(cls, nl: "Netlist") -> "PackedNetlist":
        """Pack a :class:`~repro.netlist.circuit.Netlist`.

        Pins are recorded in each gate's own ``pins`` order with their
        names, so even netlists that violate the cell's declared pin
        set (the lint subjects) survive the round trip.  The hot path
        is decomposed into C-level comprehensions plus
        ``dict.fromkeys`` interning — about twice as fast as one
        gate-at-a-time Python pass at 50k gates.
        """
        gates = nl.gates
        gate_list = list(gates.values())
        counts = [len(g.pins) for g in gate_list]
        outs = [g.output for g in gate_list]
        cnames = [g.cell.name for g in gate_list]
        pin_keys = [p for g in gate_list for p in g.pins]
        pin_vals = [n for g in gate_list for n in g.pins.values()]

        cell_id = dict(zip(uq := dict.fromkeys(cnames),
                           range(len(uq))))
        # First Cell object seen under each name (libraries are tiny,
        # so this scan almost always breaks within a few hundred gates).
        cell_by_name: dict[str, "Cell"] = {}
        for g in gate_list:
            if g.cell.name not in cell_by_name:
                cell_by_name[g.cell.name] = g.cell
                if len(cell_by_name) == len(cell_id):
                    break
        cells = [cell_by_name[cn] for cn in cell_id]
        pis = list(nl.primary_inputs)
        pos = list(nl.primary_outputs)
        all_nets = pis + pin_vals + outs + pos
        net_id = dict(zip(uq2 := dict.fromkeys(all_nets),
                          range(len(uq2))))
        pin_id = dict(zip(uq3 := dict.fromkeys(pin_keys),
                          range(len(uq3))))

        net_idx: IntArray = np.fromiter(
            map(net_id.__getitem__, all_nets), dtype=np.int32,
            count=len(all_nets))
        a, b = len(pis), len(pis) + len(pin_vals)
        c = b + len(outs)
        pin_off = np.zeros(len(gate_list) + 1, dtype=np.int32)
        if gate_list:
            np.cumsum(np.asarray(counts, dtype=np.int32),
                      out=pin_off[1:])

        node = getattr(getattr(nl.library, "node", None), "name", "")
        return cls(
            name=nl.name, node=str(node),
            counter=int(getattr(nl, "_counter", 0)),
            net_names=tuple(net_id),
            gate_names=tuple(gates),
            cell_names=tuple(cell_id),
            cell_pins=tuple(tuple(cl.inputs) for cl in cells),
            cell_seq=tuple(bool(cl.is_sequential) for cl in cells),
            pin_names=tuple(pin_id),
            gate_cell=np.fromiter(map(cell_id.__getitem__, cnames),
                                  dtype=np.int32, count=len(cnames)),
            gate_output=net_idx[b:c],
            pin_off=pin_off,
            pin_net=net_idx[a:b],
            pin_name=np.fromiter(map(pin_id.__getitem__, pin_keys),
                                 dtype=np.int32, count=len(pin_keys)),
            primary_inputs=net_idx[:a], primary_outputs=net_idx[c:])

    # -- reconstruction -----------------------------------------------------

    def _check_indices(self) -> None:
        """Vectorized bounds checks; PackError names the offending gate."""
        n_nets, n_gates = self.num_nets, self.num_gates
        if self.pin_off.size != n_gates + 1 or \
                (n_gates and int(self.pin_off[-1]) != self.num_pins):
            raise PackError("pin offsets disagree with pin arrays")
        for arr, n, what in (
                (self.primary_inputs, n_nets, "primary input"),
                (self.primary_outputs, n_nets, "primary output")):
            bad = np.flatnonzero((arr < 0) | (arr >= n))
            if bad.size:
                raise PackError(
                    f"{what} #{int(bad[0])} has net index "
                    f"{int(arr[bad[0]])} out of range (nets: {n})")
        bad = np.flatnonzero((self.gate_cell < 0)
                             | (self.gate_cell >= len(self.cell_names)))
        if bad.size:
            g = int(bad[0])
            raise PackError(
                f"gate {self.gate_names[g]!r} has cell index "
                f"{int(self.gate_cell[g])} out of range "
                f"(cells: {len(self.cell_names)})")
        bad = np.flatnonzero((self.gate_output < 0)
                             | (self.gate_output >= n_nets))
        if bad.size:
            g = int(bad[0])
            raise PackError(
                f"gate {self.gate_names[g]!r} drives net index "
                f"{int(self.gate_output[g])} out of range "
                f"(nets: {n_nets})")
        bad = np.flatnonzero((self.pin_net < 0) | (self.pin_net >= n_nets))
        if bad.size:
            g = int(np.searchsorted(self.pin_off, int(bad[0]),
                                    side="right")) - 1
            raise PackError(
                f"gate {self.gate_names[g]!r} reads net index "
                f"{int(self.pin_net[bad[0]])} out of range "
                f"(nets: {n_nets})")
        bad = np.flatnonzero((self.pin_name < 0)
                             | (self.pin_name >= len(self.pin_names)))
        if bad.size:
            g = int(np.searchsorted(self.pin_off, int(bad[0]),
                                    side="right")) - 1
            raise PackError(
                f"gate {self.gate_names[g]!r} has pin-name index "
                f"{int(self.pin_name[bad[0]])} out of range")

    def to_netlist(self, library: "CellLibrary") -> "Netlist":
        """Rebuild the object form against ``library``.

        Every referenced index is bounds-checked up front, and an
        unknown cell raises :class:`PackError` naming the offending
        gate — reconstruction never dies with a bare ``KeyError`` deep
        inside the loop.
        """
        from repro.netlist.circuit import Gate, Netlist

        self._check_indices()
        cells = []
        for ci, cname in enumerate(self.cell_names):
            try:
                cells.append(library[cname])
            except KeyError:
                g = np.flatnonzero(self.gate_cell == ci)
                culprit = (self.gate_names[int(g[0])] if g.size
                           else "<unused>")
                raise PackError(
                    f"gate {culprit!r} instantiates unknown cell "
                    f"{cname!r} (not in the target library)") from None

        nl = Netlist(self.name, library)
        net = self.net_names
        nl.primary_inputs = [net[i] for i in self.primary_inputs]
        for n in nl.primary_inputs:
            nl._driver[n] = ""
        pin_tbl = self.pin_names
        off = self.pin_off.tolist()
        flat_pins = [pin_tbl[i] for i in self.pin_name.tolist()]
        flat_nets = [net[i] for i in self.pin_net.tolist()]
        outs = [net[i] for i in self.gate_output.tolist()]
        gcells = [cells[i] for i in self.gate_cell.tolist()]
        driver = nl._driver
        gates_dict = nl.gates
        for gi, gname in enumerate(self.gate_names):
            a, b = off[gi], off[gi + 1]
            gate = Gate(gname, gcells[gi],
                        dict(zip(flat_pins[a:b], flat_nets[a:b])),
                        outs[gi])
            gates_dict[gname] = gate
            driver.setdefault(outs[gi], gname)
        nl.primary_outputs = [net[i] for i in self.primary_outputs]
        nl._counter = self.counter
        return nl

    # -- canonical content identity ------------------------------------------

    def content_digest(self) -> str:
        """Canonical SHA-256 of the design content (hex).

        Insertion-order independent: net, gate, cell, and pin-name
        tables are hashed in sorted order and every index column is
        remapped through the sort permutations; pins within a gate are
        ordered by pin name.  PI/PO *order* is hashed as-is (it is
        semantic — the simulation column order), and ``counter`` is
        excluded (construction history, not content).  Memoized.
        """
        if self._digest is not None:
            return self._digest
        h = hashlib.sha256()
        h.update(b"pnl-digest:1\x00")
        h.update(self.name.encode("utf-8") + b"\x00")
        h.update(self.node.encode("utf-8") + b"\x00")

        def rank_of(names: tuple[str, ...]
                    ) -> tuple[Int64Array, Int64Array]:
            if not names:
                h.update(b"\x00")
                empty = np.empty(0, dtype=np.int64)
                return empty, empty
            arr = np.asarray(names)          # unicode dtype: C-speed sort
            order = np.argsort(arr, kind="stable")
            rank = np.empty(len(names), dtype=np.int64)
            rank[order] = np.arange(len(names), dtype=np.int64)
            # Fixed-width UCS4 rows are self-delimiting, so the sorted
            # table hashes as one buffer (the width is determined by
            # the names themselves, hence canonical).
            h.update(str(arr.dtype).encode("ascii"))
            h.update(np.ascontiguousarray(arr[order]).tobytes())
            return rank, order

        net_rank, _ = rank_of(self.net_names)
        gate_rank, gate_order = rank_of(self.gate_names)
        pin_rank, _ = rank_of(self.pin_names)
        # Cell table: hash in sorted-name order with pins + seq flag.
        cell_order = sorted(range(len(self.cell_names)),
                            key=self.cell_names.__getitem__)
        cell_rank = np.empty(len(self.cell_names), dtype=np.int64)
        for r, ci in enumerate(cell_order):
            cell_rank[ci] = r
            h.update(self.cell_names[ci].encode("utf-8") + b"\x00")
            h.update(",".join(self.cell_pins[ci]).encode("utf-8"))
            h.update(b";1" if self.cell_seq[ci] else b";0")

        G = self.num_gates
        counts = np.diff(self.pin_off.astype(np.int64))
        new_counts = counts[gate_order]
        flat = csr_gather(self.pin_off[:-1].astype(np.int64)[gate_order],
                          new_counts)
        pn = pin_rank[self.pin_name.astype(np.int64)[flat]]
        pv = net_rank[self.pin_net.astype(np.int64)[flat]]
        row = np.repeat(np.arange(G, dtype=np.int64), new_counts)
        order2 = np.lexsort((pn, row))
        for col in (new_counts,
                    cell_rank[self.gate_cell.astype(np.int64)[gate_order]],
                    net_rank[self.gate_output.astype(np.int64)[gate_order]],
                    pn[order2], pv[order2],
                    net_rank[self.primary_inputs.astype(np.int64)],
                    net_rank[self.primary_outputs.astype(np.int64)]):
            h.update(col.tobytes())
            h.update(b"|")
        self._digest = h.hexdigest()
        return self._digest

    # -- derived analysis views ------------------------------------------------

    def seq_gate_mask(self) -> npt.NDArray[np.bool_]:
        """Per-gate boolean mask of sequential (flop) instances."""
        if self._seq_mask is None:
            seq = np.asarray(self.cell_seq, dtype=bool)
            if self.num_gates:
                self._seq_mask = seq[self.gate_cell.astype(np.int64)]
            else:
                self._seq_mask = np.zeros(0, dtype=bool)
        return self._seq_mask

    def comb_levels(self) -> tuple[Int64Array, Int64Array]:
        """Levelize the combinational graph, cycle-tolerantly.

        Returns ``(level, cyclic)``: ``level[i]`` is the longest
        combinational depth of gate ``i`` from a source (PIs and flop
        outputs are depth-0 sources; sequential gates stay 0), and
        ``cyclic`` lists the row indices of combinational gates on or
        behind a combinational cycle (empty when the graph is acyclic).
        Nets are assumed singly driven (the valid-netlist invariant);
        the lint rules run their own multi-driver-tolerant variant.
        Memoized.
        """
        if self._levels is not None:
            return self._levels
        G = self.num_gates
        n_nets = self.num_nets
        comb = ~self.seq_gate_mask()
        drv = np.full(n_nets, -1, dtype=np.int64)
        if G:
            drv[self.gate_output.astype(np.int64)] = \
                np.arange(G, dtype=np.int64)
        counts = np.diff(self.pin_off.astype(np.int64))
        row = np.repeat(np.arange(G, dtype=np.int64), counts)
        src = drv[self.pin_net.astype(np.int64)]
        ok = src >= 0
        ok[ok] = comb[src[ok]]
        edge = ok & comb[row]
        esrc, edst = src[edge], row[edge]
        level, cyclic = _kahn_levels(G, comb, esrc, edst)
        self._levels = (level, cyclic)
        return self._levels

    # -- binary .pnl format ------------------------------------------------------

    def _sections(self) -> list[npt.NDArray[np.int32] | bytes]:
        return [_names_to_blob(self.net_names),
                _names_to_blob(self.gate_names),
                self.gate_cell, self.gate_output, self.pin_off,
                self.pin_net, self.pin_name,
                self.primary_inputs, self.primary_outputs]

    def to_bytes(self, *, compress: bool = True,
                 shuffle: bool = True) -> bytes:
        """Serialize to the versioned ``.pnl`` binary format.

        Layout: fixed header (magic, format version, flags, header
        length), a JSON header (scalars, small interned tables, section
        lengths, payload checksum), then the raw little-endian array
        sections — zlib-compressed as one block when ``compress`` and
        byte-shuffled when ``shuffle`` (the on-disk default).
        ``compress=False, shuffle=False`` produces the *raw* layout the
        shared-memory transport (:mod:`repro.service.shm`) maps with
        :meth:`from_buffer` — array sections usable in place, no
        decompress or unshuffle pass on the reader side.

        Memoized per ``(compress, shuffle)``: pack once, and the cache
        blob, journal blob, and worker payload all reuse the same bytes.
        """
        cached = self._bytes.get((compress, shuffle))
        if cached is not None:
            return cached
        parts = [s.astype("<i4").tobytes()
                 if isinstance(s, np.ndarray) else s
                 for s in self._sections()]
        ints = b"".join(parts[2:])
        payload = parts[0] + parts[1] \
            + (_shuffle4(ints) if shuffle else ints)
        header = {
            "name": self.name,
            "node": self.node,
            "counter": self.counter,
            "counts": [self.num_nets, self.num_gates],
            "cells": [[n, list(p), int(s)] for n, p, s in
                      zip(self.cell_names, self.cell_pins, self.cell_seq)],
            "pin_names": list(self.pin_names),
            "sections": [len(p) for p in parts],
            "crc32": zlib.crc32(payload),
        }
        if compress:
            payload = zlib.compress(payload, 1)
        hjson = json.dumps(header, separators=(",", ":")).encode("utf-8")
        flags = (_FLAG_SHUFFLE if shuffle else 0) \
            | (_FLAG_ZLIB if compress else 0)
        blob = _HEADER_STRUCT.pack(_MAGIC, _FORMAT_VERSION, flags,
                                   len(hjson)) + hjson + payload
        self._bytes[(compress, shuffle)] = blob
        return blob

    @classmethod
    def from_bytes(cls, data: bytes) -> "PackedNetlist":
        """Parse a ``.pnl`` blob; :class:`PackError` on any damage."""
        return cls.from_buffer(data)

    @classmethod
    def from_buffer(cls, data: "bytes | memoryview") -> "PackedNetlist":
        """Parse a ``.pnl`` blob from any contiguous byte buffer.

        For the raw layout (``compress=False, shuffle=False``) the int
        array sections become read-only views *into* ``data`` — no
        copy.  Handing in a ``memoryview`` over a shared-memory segment
        therefore yields a packed netlist whose connectivity arrays
        live in the segment itself; the caller must keep the segment
        mapped for the life of the returned object.  Compressed or
        shuffled payloads (the on-disk default) decode as before, via
        one transform pass.
        """
        data = memoryview(data) if not isinstance(data, bytes) else data
        if len(data) < _HEADER_STRUCT.size:
            raise PackError("truncated .pnl header")
        magic, version, flags, hlen = _HEADER_STRUCT.unpack_from(data)
        if magic != _MAGIC:
            raise PackError("not a .pnl blob (bad magic)")
        if version != _FORMAT_VERSION:
            raise PackError(f"unsupported .pnl format version {version}")
        if len(data) < _HEADER_STRUCT.size + hlen:
            raise PackError("truncated .pnl header")
        try:
            header = json.loads(
                bytes(data[_HEADER_STRUCT.size:_HEADER_STRUCT.size
                           + hlen]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise PackError("corrupt .pnl header") from err
        payload: "bytes | memoryview" = data[_HEADER_STRUCT.size + hlen:]
        if flags & _FLAG_ZLIB:
            try:
                payload = zlib.decompress(payload)
            except zlib.error as err:
                raise PackError("corrupt .pnl payload "
                                "(decompression failed)") from err
        try:
            sections: list[int] = [int(n) for n in header["sections"]]
            name = str(header["name"])
            node = str(header["node"])
            counter = int(header["counter"])
            n_nets, n_gates = (int(c) for c in header["counts"])
            cells = [(str(n), tuple(str(q) for q in p), bool(s))
                     for n, p, s in header["cells"]]
            pin_names = tuple(str(p) for p in header["pin_names"])
            checksum = int(header["crc32"])
        except (KeyError, TypeError, ValueError) as err:
            raise PackError("corrupt .pnl header") from err
        if len(sections) != 9:
            raise PackError("corrupt .pnl header (bad section table)")
        if sum(sections) != len(payload):
            raise PackError("truncated .pnl payload")
        if zlib.crc32(payload) != checksum:
            raise PackError(".pnl payload checksum mismatch")
        if flags & _FLAG_SHUFFLE:
            split = sections[0] + sections[1]
            payload = bytes(payload[:split]) \
                + _unshuffle4(payload[split:])

        views: list["bytes | memoryview"] = []
        pos = 0
        for n in sections:
            views.append(payload[pos:pos + n])
            pos += n

        def ints(b: "bytes | memoryview") -> IntArray:
            if len(b) % 4:
                raise PackError("misaligned .pnl array section")
            arr = np.frombuffer(b, dtype="<i4")
            # Little-endian hosts keep the (read-only) view; only a
            # byte-order mismatch forces the copy.
            return arr if arr.dtype == np.int32 else arr.astype(np.int32)

        net_names = _blob_to_names(views[0], n_nets)
        gate_names = _blob_to_names(views[1], n_gates)
        packed = cls(
            name=name, node=node, counter=counter,
            net_names=net_names, gate_names=gate_names,
            cell_names=tuple(c[0] for c in cells),
            cell_pins=tuple(c[1] for c in cells),
            cell_seq=tuple(c[2] for c in cells),
            pin_names=pin_names,
            gate_cell=ints(views[2]), gate_output=ints(views[3]),
            pin_off=ints(views[4]), pin_net=ints(views[5]),
            pin_name=ints(views[6]),
            primary_inputs=ints(views[7]),
            primary_outputs=ints(views[8]))
        if packed.pin_off.size != packed.num_gates + 1 or \
                packed.gate_cell.size != packed.num_gates or \
                packed.gate_output.size != packed.num_gates or \
                packed.pin_name.size != packed.pin_net.size:
            raise PackError("corrupt .pnl blob (array shape mismatch)")
        return packed

    def save(self, path: str | os.PathLike[str], *,
             compress: bool = True) -> None:
        """Atomically publish a ``.pnl`` file (tmp + fsync + rename)."""
        data = self.to_bytes(compress=compress)
        directory = os.path.dirname(os.fspath(path)) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "PackedNetlist":
        """Read a ``.pnl`` file written by :meth:`save`."""
        with open(path, "rb") as fh:
            return cls.from_bytes(fh.read())

    # -- misc ---------------------------------------------------------------

    def iter_gate_pins(self, gi: int) -> Iterator[tuple[str, str]]:
        """(pin name, net name) pairs of gate ``gi`` in stored order."""
        for k in range(int(self.pin_off[gi]), int(self.pin_off[gi + 1])):
            yield (self.pin_names[self.pin_name[k]],
                   self.net_names[self.pin_net[k]])


def _kahn_levels(n_gates: int, comb: npt.NDArray[np.bool_],
                 esrc: Int64Array, edst: Int64Array
                 ) -> tuple[Int64Array, Int64Array]:
    """Vectorized longest-path Kahn levelization over explicit edges.

    Processes the ready frontier in waves with ``np.maximum.at`` /
    ``np.subtract.at``; whatever keeps positive in-degree afterwards
    is on or behind a cycle and is reported instead of raised.
    """
    level = np.zeros(n_gates, dtype=np.int64)
    indeg = np.bincount(edst, minlength=n_gates)
    order = np.argsort(esrc, kind="stable")
    adj = edst[order]
    adj_cnt = np.bincount(esrc, minlength=n_gates)
    adj_off = np.concatenate((np.zeros(1, dtype=np.int64),
                              np.cumsum(adj_cnt)))
    remaining = indeg.copy()
    frontier = np.flatnonzero(comb & (indeg == 0))
    processed = int(frontier.size)
    while frontier.size:
        c = adj_cnt[frontier]
        flat = csr_gather(adj_off[:-1][frontier], c)
        tgt = adj[flat]
        np.maximum.at(level, tgt, np.repeat(level[frontier] + 1, c))
        np.subtract.at(remaining, tgt, 1)
        nxt = np.unique(tgt[remaining[tgt] == 0])
        processed += int(nxt.size)
        frontier = nxt
    if processed == int(comb.sum()):
        cyclic = np.empty(0, dtype=np.int64)
    else:
        cyclic = np.flatnonzero(comb & (remaining > 0))
    return level, cyclic
