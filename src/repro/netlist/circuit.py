"""Mapped gate-level netlists.

A :class:`Netlist` is a named set of :class:`Gate` instances connected by
string-named nets, plus primary inputs and outputs.  Sequential cells
(flops) are gates whose cell has ``is_sequential``; their outputs act as
pseudo-primary-inputs and their D pins as pseudo-primary-outputs for
topological traversal, timing, and simulation.

This is the common currency between synthesis (which produces one),
timing/power (which analyze one), placement/routing (which lay one out),
and DFT (which edits one).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

import numpy as np

from repro.netlist.cells import Cell, CellLibrary


@dataclass(frozen=True)
class NetlistEdit:
    """One journal entry describing a netlist mutation.

    ``kind`` is one of ``add_input``, ``add_output``, ``add_gate``,
    ``remove_gate``, ``rewire``, ``replace_cell``, ``resize``.  The
    connectivity at the time of the edit is snapshotted (``fanins``,
    ``net``) so consumers such as the incremental timing engine can
    react to a ``remove_gate`` after the gate object is gone.
    """

    kind: str
    gate: str | None = None      # gate name involved, if any
    net: str | None = None       # output / declared net
    pin: str | None = None       # rewired pin
    old_net: str | None = None   # previous driver of a rewired pin
    fanins: tuple = ()           # gate's fanin nets at edit time

    @property
    def structural(self) -> bool:
        """True when the edit changes connectivity (not just a cell)."""
        return self.kind not in ("resize", "add_output")


@dataclass
class Gate:
    """One cell instance.

    ``pins`` maps input pin name -> driving net; ``output`` is the net
    driven by the cell output.
    """

    name: str
    cell: Cell
    pins: dict
    output: str

    def fanin_nets(self) -> list[str]:
        """Driving nets in the cell's declared pin order."""
        return [self.pins[p] for p in self.cell.inputs]


class Netlist:
    """A flat mapped network.

    Invariants (checked by :meth:`validate`):

    * every net has exactly one driver (a gate output or a primary input);
    * every gate input pin is connected;
    * primary outputs name existing nets.
    """

    def __init__(self, name: str, library: CellLibrary):
        self.name = name
        self.library = library
        self.gates: dict[str, Gate] = {}
        self.primary_inputs: list[str] = []
        self.primary_outputs: list[str] = []
        self._driver: dict[str, str] = {}  # net -> gate name ("" for PI)
        self._counter = 0
        self._struct_version = 0           # bumped on connectivity edits
        self._edit_version = 0             # bumped on *every* edit
        self._view_cache: dict = {}        # memoized fanout/topo views
        self._packed_memo = None           # (edit_version, PackedNetlist)
        self._subscribers: list = []       # change-journal callbacks

    def __getstate__(self):
        """Pickle without the memoized views, journal subscribers, or
        version counters: they are per-process acceleration state, and
        including them would make structurally identical netlists hash
        (and cache-key) differently depending on usage history."""
        state = self.__dict__.copy()
        state["_view_cache"] = {}
        state["_subscribers"] = []
        state["_struct_version"] = 0
        state["_edit_version"] = 0
        state["_packed_memo"] = None
        return state

    def __setstate__(self, state):
        # Intern the attribute names like the default (no-__setstate__)
        # unpickling path does: without this, a pickle -> unpickle ->
        # pickle round trip is not byte-stable (the copy's dict keys
        # stop sharing identity with interned attribute names, so the
        # pickler's memo stream — and any cache key hashed from the
        # bytes — drifts).
        for k, v in state.items():
            self.__dict__[sys.intern(k)] = v
        # Blobs written before the packed-interchange fields existed
        # unpickle without them; backfill so memoization keeps working.
        self.__dict__.setdefault("_edit_version", 0)
        self.__dict__.setdefault("_packed_memo", None)

    # ------------------------------------------------------------------
    # Change journal
    # ------------------------------------------------------------------

    def subscribe(self, callback):
        """Register ``callback(edit: NetlistEdit)`` for every mutation.

        Returns a zero-argument unsubscribe function.  The incremental
        timing engine uses this to learn which gates changed between
        two analyses without diffing the whole netlist.
        """
        self._subscribers.append(callback)

        def unsubscribe():
            if callback in self._subscribers:
                self._subscribers.remove(callback)
        return unsubscribe

    @property
    def struct_version(self) -> int:
        """Monotonic counter of connectivity-changing edits."""
        return self._struct_version

    def _note(self, edit: NetlistEdit) -> None:
        self._edit_version += 1
        self._packed_memo = None
        if edit.structural:
            self._struct_version += 1
            self._view_cache.clear()
        for callback in self._subscribers:
            callback(edit)

    # ------------------------------------------------------------------
    # Columnar interchange
    # ------------------------------------------------------------------

    def to_packed(self):
        """The columnar :class:`~repro.netlist.packed.PackedNetlist`
        form of this netlist.

        Memoized on the edit journal (any journaled edit invalidates),
        so the cache key digest, cache blob, journal blob, and worker
        payload of one design all share a single packing pass.  Like
        the memoized views, the memo cannot see direct attribute
        assignments that bypass the journal (``gate.pins[...] = ...``);
        use :meth:`~repro.netlist.packed.PackedNetlist.from_netlist`
        for a guaranteed-fresh packing of a hand-mutated netlist.
        """
        from repro.netlist.packed import PackedNetlist
        memo = self._packed_memo
        if memo is not None and memo[0] == self._edit_version:
            return memo[1]
        packed = PackedNetlist.from_netlist(self)
        self._packed_memo = (self._edit_version, packed)
        return packed

    def content_digest(self) -> str:
        """Canonical insertion-order-independent SHA-256 of the design
        content (delegates to the memoized packed form); used as the
        cache-key identity of netlist-bearing stage inputs."""
        return self.to_packed().content_digest()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_input(self, net: str) -> str:
        """Declare a primary input net."""
        if net in self._driver:
            raise ValueError(f"net {net!r} already driven")
        self.primary_inputs.append(net)
        self._driver[net] = ""
        self._note(NetlistEdit(kind="add_input", net=net))
        return net

    def add_output(self, net: str) -> str:
        """Declare an existing net as a primary output."""
        self.primary_outputs.append(net)
        self._note(NetlistEdit(kind="add_output", net=net))
        return net

    def add_gate(self, cell: Cell | str, inputs, output: str | None = None,
                 name: str | None = None) -> Gate:
        """Instantiate a cell.

        ``inputs`` is a list of driving nets in pin order, or a dict of
        pin name -> net.  Returns the created :class:`Gate`.
        """
        if isinstance(cell, str):
            cell = self.library[cell]
        if isinstance(inputs, dict):
            pins = dict(inputs)
        else:
            if len(inputs) != len(cell.inputs):
                raise ValueError(
                    f"{cell.name} needs {len(cell.inputs)} inputs, "
                    f"got {len(inputs)}")
            pins = dict(zip(cell.inputs, inputs))
        missing = set(cell.inputs) - set(pins)
        if missing:
            raise ValueError(f"unconnected pins {sorted(missing)}")
        phantom = set(pins) - set(cell.inputs)
        if phantom:
            raise ValueError(
                f"{cell.name} has no pins {sorted(phantom)}")
        if name is None:
            name = self._fresh(f"u_{cell.name.lower()}")
        if name in self.gates:
            raise ValueError(f"duplicate gate name {name!r}")
        if output is None:
            output = self._fresh("n")
        if output in self._driver:
            raise ValueError(f"net {output!r} already driven")
        gate = Gate(name, cell, pins, output)
        self.gates[name] = gate
        self._driver[output] = name
        self._note(NetlistEdit(kind="add_gate", gate=name, net=output,
                               fanins=tuple(pins.values())))
        return gate

    def _fresh(self, prefix: str) -> str:
        while True:
            self._counter += 1
            cand = f"{prefix}{self._counter}"
            if cand not in self._driver and cand not in self.gates:
                return cand

    def remove_gate(self, name: str) -> None:
        """Delete a gate (its output net becomes undriven)."""
        gate = self.gates.pop(name)
        del self._driver[gate.output]
        self._note(NetlistEdit(kind="remove_gate", gate=name,
                               net=gate.output,
                               fanins=tuple(gate.pins.values())))

    def rewire_pin(self, gate_name: str, pin: str, net: str) -> None:
        """Reconnect one input pin of a gate to a different net.

        The target net must already exist (be driven by a gate or
        declared a primary input): rewiring to a phantom net would
        leave the pin floating and silently corrupt the memoized
        fanout/topological views.
        """
        gate = self.gates[gate_name]
        if pin not in gate.pins:
            raise KeyError(f"gate {gate_name} has no pin {pin}")
        if net not in self._driver:
            raise ValueError(
                f"cannot rewire {gate_name}.{pin} to {net!r}: "
                f"net does not exist (undriven)")
        old = gate.pins[pin]
        gate.pins[pin] = net
        self._note(NetlistEdit(kind="rewire", gate=gate_name, pin=pin,
                               net=net, old_net=old,
                               fanins=tuple(gate.pins.values())))

    def resize_gate(self, name: str, cell: Cell | str) -> Gate:
        """Swap a gate's cell for a footprint-compatible variant.

        The replacement must keep the pin list (same input names, same
        sequential-ness): drive-strength and Vt swaps qualify.  This is
        the journal-aware path the sizing loops use so the incremental
        timing engine sees the edit; use :meth:`replace_cell` for swaps
        that change the pinout.
        """
        if isinstance(cell, str):
            cell = self.library[cell]
        gate = self.gates[name]
        old = gate.cell
        if cell is old:
            return gate
        if (cell.inputs != old.inputs
                or cell.is_sequential != old.is_sequential):
            raise ValueError(
                f"{cell.name} is not footprint-compatible with "
                f"{old.name}; use replace_cell")
        gate.cell = cell
        self._note(NetlistEdit(kind="resize", gate=name, net=gate.output,
                               fanins=tuple(gate.pins.values())))
        return gate

    def replace_cell(self, name: str, cell: Cell | str,
                     extra_pins: dict | None = None) -> Gate:
        """Swap a gate's cell, connecting any new pins from
        ``extra_pins`` (pin name -> net).  Pins the new cell does not
        declare are dropped.  Used by scan insertion (DFF -> SDFF)."""
        if isinstance(cell, str):
            cell = self.library[cell]
        gate = self.gates[name]
        pins = {p: n for p, n in gate.pins.items() if p in cell.inputs}
        pins.update(extra_pins or {})
        missing = set(cell.inputs) - set(pins)
        if missing:
            raise ValueError(f"unconnected pins {sorted(missing)}")
        gate.cell = cell
        gate.pins = pins
        self._note(NetlistEdit(kind="replace_cell", gate=name,
                               net=gate.output,
                               fanins=tuple(pins.values())))
        return gate

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def driver_of(self, net: str):
        """The Gate driving ``net``, or None if it is a primary input."""
        owner = self._driver.get(net)
        if owner is None:
            raise KeyError(f"net {net!r} has no driver")
        return self.gates[owner] if owner else None

    def nets(self) -> list[str]:
        """All driven nets."""
        return list(self._driver)

    def loads_of(self, net: str) -> list[tuple]:
        """All (gate, pin) pairs reading ``net``.

        Served from the memoized :meth:`fanout_map`: the first call
        after a connectivity edit pays one pass over the design, later
        calls are dictionary lookups.
        """
        return list(self.fanout_map().get(net, ()))

    def fanout_map(self) -> dict:
        """net -> list of (gate, pin) loads.

        Memoized: rebuilt only after a connectivity edit (the change
        journal invalidates it), so per-iteration callers in the
        optimization loops get the same dict back.  Treat the returned
        mapping as read-only.
        """
        fan = self._view_cache.get("fanout")
        if fan is None:
            fan = {n: [] for n in self._driver}
            for g in self.gates.values():
                for pin, n in g.pins.items():
                    fan.setdefault(n, []).append((g, pin))
            self._view_cache["fanout"] = fan
        return fan

    def sequential_gates(self) -> list[Gate]:
        """All flop instances."""
        return [g for g in self.gates.values() if g.cell.is_sequential]

    def combinational_gates(self) -> list[Gate]:
        """All non-flop instances."""
        return [g for g in self.gates.values() if not g.cell.is_sequential]

    def num_instances(self) -> int:
        """Total cell instances."""
        return len(self.gates)

    def area_um2(self) -> float:
        """Total standard-cell area."""
        return sum(g.cell.area_um2 for g in self.gates.values())

    def leakage_nw(self) -> float:
        """Total static leakage."""
        return sum(g.cell.leak_nw for g in self.gates.values())

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def topological_gates(self) -> list[Gate]:
        """Combinational gates in topological order.

        Flop outputs are treated as sources; an exception is raised on
        combinational cycles.  Memoized until the next connectivity
        edit — treat the returned list as read-only.
        """
        cached = self._view_cache.get("topo")
        if cached is not None:
            return cached
        order: list[Gate] = []
        indeg: dict[str, int] = {}
        dependents: dict[str, list[str]] = {}
        for g in self.combinational_gates():
            deg = 0
            for net in g.pins.values():
                drv = self.driver_of(net)
                if drv is not None and not drv.cell.is_sequential:
                    deg += 1
                    dependents.setdefault(drv.name, []).append(g.name)
            indeg[g.name] = deg
        ready = [n for n, d in indeg.items() if d == 0]
        while ready:
            gname = ready.pop()
            gate = self.gates[gname]
            order.append(gate)
            for dep in dependents.get(gname, ()):
                indeg[dep] -= 1
                if indeg[dep] == 0:
                    ready.append(dep)
        if len(order) != len(indeg):
            raise ValueError("combinational cycle detected")
        self._view_cache["topo"] = order
        return order

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation."""
        for g in self.gates.values():
            for pin, net in g.pins.items():
                if net not in self._driver:
                    raise ValueError(
                        f"gate {g.name} pin {pin} reads undriven net {net!r}")
        for po in self.primary_outputs:
            if po not in self._driver:
                raise ValueError(f"primary output {po!r} undriven")
        self.topological_gates()  # raises on cycles

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def simulate(self, input_vectors: np.ndarray,
                 state: np.ndarray | None = None) -> np.ndarray:
        """One combinational evaluation, bit-parallel over patterns.

        ``input_vectors``: bool array (patterns, num PIs).  ``state``:
        optional bool array (patterns, num flops) giving flop Q values;
        zeros if omitted.  Returns PO values (patterns, num POs).
        """
        vec = np.asarray(input_vectors, dtype=bool)
        if vec.ndim != 2 or vec.shape[1] != len(self.primary_inputs):
            raise ValueError("bad input vector shape")
        npat = vec.shape[0]
        values: dict[str, np.ndarray] = {}
        for i, net in enumerate(self.primary_inputs):
            values[net] = vec[:, i]
        flops = self.sequential_gates()
        if state is None:
            state = np.zeros((npat, len(flops)), dtype=bool)
        for q, g in zip(np.asarray(state, dtype=bool).T, flops):
            values[g.output] = q
        for g in self.topological_gates():
            ins = [values[g.pins[p]] for p in g.cell.inputs]
            values[g.output] = _eval_cell(g.cell, ins, npat)
        out = np.empty((npat, len(self.primary_outputs)), dtype=bool)
        for k, po in enumerate(self.primary_outputs):
            out[:, k] = values[po]
        return out

    def next_state(self, input_vectors: np.ndarray,
                   state: np.ndarray) -> np.ndarray:
        """Flop D values after one combinational evaluation."""
        vec = np.asarray(input_vectors, dtype=bool)
        npat = vec.shape[0]
        values: dict[str, np.ndarray] = {}
        for i, net in enumerate(self.primary_inputs):
            values[net] = vec[:, i]
        flops = self.sequential_gates()
        for q, g in zip(np.asarray(state, dtype=bool).T, flops):
            values[g.output] = q
        for g in self.topological_gates():
            ins = [values[g.pins[p]] for p in g.cell.inputs]
            values[g.output] = _eval_cell(g.cell, ins, npat)
        nxt = np.empty((npat, len(flops)), dtype=bool)
        for k, g in enumerate(flops):
            d = values[g.pins["D"]]
            if g.cell.is_scan:
                se = values[g.pins["SE"]]
                si = values[g.pins["SI"]]
                d = np.where(se, si, d)
            nxt[:, k] = d
        return nxt

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Netlist({self.name!r}, {len(self.gates)} gates, "
            f"{len(self.primary_inputs)} PI, {len(self.primary_outputs)} PO, "
            f"{len(self.sequential_gates())} flops)"
        )


def _eval_cell(cell: Cell, inputs: list, npat: int) -> np.ndarray:
    """Evaluate a combinational cell on bit-parallel input columns."""
    if cell.function is None:
        raise ValueError(f"cannot evaluate sequential cell {cell.name}")
    tt = cell.function
    # Build the minterm index per pattern, then look it up in the table.
    idx = np.zeros(npat, dtype=np.int64)
    for bit, col in enumerate(inputs):
        idx |= col.astype(np.int64) << bit
    table = np.array(
        [bool(tt.bits >> m & 1) for m in range(1 << tt.nvars)], dtype=bool)
    result = table[idx]
    return result
