"""Mapped gate-level netlists.

A :class:`Netlist` is a named set of :class:`Gate` instances connected by
string-named nets, plus primary inputs and outputs.  Sequential cells
(flops) are gates whose cell has ``is_sequential``; their outputs act as
pseudo-primary-inputs and their D pins as pseudo-primary-outputs for
topological traversal, timing, and simulation.

This is the common currency between synthesis (which produces one),
timing/power (which analyze one), placement/routing (which lay one out),
and DFT (which edits one).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.cells import Cell, CellLibrary


@dataclass
class Gate:
    """One cell instance.

    ``pins`` maps input pin name -> driving net; ``output`` is the net
    driven by the cell output.
    """

    name: str
    cell: Cell
    pins: dict
    output: str

    def fanin_nets(self) -> list[str]:
        """Driving nets in the cell's declared pin order."""
        return [self.pins[p] for p in self.cell.inputs]


class Netlist:
    """A flat mapped network.

    Invariants (checked by :meth:`validate`):

    * every net has exactly one driver (a gate output or a primary input);
    * every gate input pin is connected;
    * primary outputs name existing nets.
    """

    def __init__(self, name: str, library: CellLibrary):
        self.name = name
        self.library = library
        self.gates: dict[str, Gate] = {}
        self.primary_inputs: list[str] = []
        self.primary_outputs: list[str] = []
        self._driver: dict[str, str] = {}  # net -> gate name ("" for PI)
        self._counter = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_input(self, net: str) -> str:
        """Declare a primary input net."""
        if net in self._driver:
            raise ValueError(f"net {net!r} already driven")
        self.primary_inputs.append(net)
        self._driver[net] = ""
        return net

    def add_output(self, net: str) -> str:
        """Declare an existing net as a primary output."""
        self.primary_outputs.append(net)
        return net

    def add_gate(self, cell: Cell | str, inputs, output: str | None = None,
                 name: str | None = None) -> Gate:
        """Instantiate a cell.

        ``inputs`` is a list of driving nets in pin order, or a dict of
        pin name -> net.  Returns the created :class:`Gate`.
        """
        if isinstance(cell, str):
            cell = self.library[cell]
        if isinstance(inputs, dict):
            pins = dict(inputs)
        else:
            if len(inputs) != len(cell.inputs):
                raise ValueError(
                    f"{cell.name} needs {len(cell.inputs)} inputs, "
                    f"got {len(inputs)}")
            pins = dict(zip(cell.inputs, inputs))
        missing = set(cell.inputs) - set(pins)
        if missing:
            raise ValueError(f"unconnected pins {sorted(missing)}")
        if name is None:
            name = self._fresh(f"u_{cell.name.lower()}")
        if name in self.gates:
            raise ValueError(f"duplicate gate name {name!r}")
        if output is None:
            output = self._fresh("n")
        if output in self._driver:
            raise ValueError(f"net {output!r} already driven")
        gate = Gate(name, cell, pins, output)
        self.gates[name] = gate
        self._driver[output] = name
        return gate

    def _fresh(self, prefix: str) -> str:
        while True:
            self._counter += 1
            cand = f"{prefix}{self._counter}"
            if cand not in self._driver and cand not in self.gates:
                return cand

    def remove_gate(self, name: str) -> None:
        """Delete a gate (its output net becomes undriven)."""
        gate = self.gates.pop(name)
        del self._driver[gate.output]

    def rewire_pin(self, gate_name: str, pin: str, net: str) -> None:
        """Reconnect one input pin of a gate to a different net."""
        gate = self.gates[gate_name]
        if pin not in gate.pins:
            raise KeyError(f"gate {gate_name} has no pin {pin}")
        gate.pins[pin] = net

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def driver_of(self, net: str):
        """The Gate driving ``net``, or None if it is a primary input."""
        owner = self._driver.get(net)
        if owner is None:
            raise KeyError(f"net {net!r} has no driver")
        return self.gates[owner] if owner else None

    def nets(self) -> list[str]:
        """All driven nets."""
        return list(self._driver)

    def loads_of(self, net: str) -> list[tuple]:
        """All (gate, pin) pairs reading ``net``."""
        out = []
        for g in self.gates.values():
            for pin, n in g.pins.items():
                if n == net:
                    out.append((g, pin))
        return out

    def fanout_map(self) -> dict:
        """net -> list of (gate, pin) loads, one pass over the design."""
        fan: dict[str, list] = {n: [] for n in self._driver}
        for g in self.gates.values():
            for pin, n in g.pins.items():
                fan.setdefault(n, []).append((g, pin))
        return fan

    def sequential_gates(self) -> list[Gate]:
        """All flop instances."""
        return [g for g in self.gates.values() if g.cell.is_sequential]

    def combinational_gates(self) -> list[Gate]:
        """All non-flop instances."""
        return [g for g in self.gates.values() if not g.cell.is_sequential]

    def num_instances(self) -> int:
        """Total cell instances."""
        return len(self.gates)

    def area_um2(self) -> float:
        """Total standard-cell area."""
        return sum(g.cell.area_um2 for g in self.gates.values())

    def leakage_nw(self) -> float:
        """Total static leakage."""
        return sum(g.cell.leak_nw for g in self.gates.values())

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def topological_gates(self) -> list[Gate]:
        """Combinational gates in topological order.

        Flop outputs are treated as sources; an exception is raised on
        combinational cycles.
        """
        order: list[Gate] = []
        indeg: dict[str, int] = {}
        dependents: dict[str, list[str]] = {}
        for g in self.combinational_gates():
            deg = 0
            for net in g.pins.values():
                drv = self.driver_of(net)
                if drv is not None and not drv.cell.is_sequential:
                    deg += 1
                    dependents.setdefault(drv.name, []).append(g.name)
            indeg[g.name] = deg
        ready = [n for n, d in indeg.items() if d == 0]
        while ready:
            gname = ready.pop()
            gate = self.gates[gname]
            order.append(gate)
            for dep in dependents.get(gname, ()):
                indeg[dep] -= 1
                if indeg[dep] == 0:
                    ready.append(dep)
        if len(order) != len(indeg):
            raise ValueError("combinational cycle detected")
        return order

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation."""
        for g in self.gates.values():
            for pin, net in g.pins.items():
                if net not in self._driver:
                    raise ValueError(
                        f"gate {g.name} pin {pin} reads undriven net {net!r}")
        for po in self.primary_outputs:
            if po not in self._driver:
                raise ValueError(f"primary output {po!r} undriven")
        self.topological_gates()  # raises on cycles

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def simulate(self, input_vectors: np.ndarray,
                 state: np.ndarray | None = None) -> np.ndarray:
        """One combinational evaluation, bit-parallel over patterns.

        ``input_vectors``: bool array (patterns, num PIs).  ``state``:
        optional bool array (patterns, num flops) giving flop Q values;
        zeros if omitted.  Returns PO values (patterns, num POs).
        """
        vec = np.asarray(input_vectors, dtype=bool)
        if vec.ndim != 2 or vec.shape[1] != len(self.primary_inputs):
            raise ValueError("bad input vector shape")
        npat = vec.shape[0]
        values: dict[str, np.ndarray] = {}
        for i, net in enumerate(self.primary_inputs):
            values[net] = vec[:, i]
        flops = self.sequential_gates()
        if state is None:
            state = np.zeros((npat, len(flops)), dtype=bool)
        for q, g in zip(np.asarray(state, dtype=bool).T, flops):
            values[g.output] = q
        for g in self.topological_gates():
            ins = [values[g.pins[p]] for p in g.cell.inputs]
            values[g.output] = _eval_cell(g.cell, ins, npat)
        out = np.empty((npat, len(self.primary_outputs)), dtype=bool)
        for k, po in enumerate(self.primary_outputs):
            out[:, k] = values[po]
        return out

    def next_state(self, input_vectors: np.ndarray,
                   state: np.ndarray) -> np.ndarray:
        """Flop D values after one combinational evaluation."""
        vec = np.asarray(input_vectors, dtype=bool)
        npat = vec.shape[0]
        values: dict[str, np.ndarray] = {}
        for i, net in enumerate(self.primary_inputs):
            values[net] = vec[:, i]
        flops = self.sequential_gates()
        for q, g in zip(np.asarray(state, dtype=bool).T, flops):
            values[g.output] = q
        for g in self.topological_gates():
            ins = [values[g.pins[p]] for p in g.cell.inputs]
            values[g.output] = _eval_cell(g.cell, ins, npat)
        nxt = np.empty((npat, len(flops)), dtype=bool)
        for k, g in enumerate(flops):
            d = values[g.pins["D"]]
            if g.cell.is_scan:
                se = values[g.pins["SE"]]
                si = values[g.pins["SI"]]
                d = np.where(se, si, d)
            nxt[:, k] = d
        return nxt

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Netlist({self.name!r}, {len(self.gates)} gates, "
            f"{len(self.primary_inputs)} PI, {len(self.primary_outputs)} PO, "
            f"{len(self.sequential_gates())} flops)"
        )


def _eval_cell(cell: Cell, inputs: list, npat: int) -> np.ndarray:
    """Evaluate a combinational cell on bit-parallel input columns."""
    if cell.function is None:
        raise ValueError(f"cannot evaluate sequential cell {cell.name}")
    tt = cell.function
    # Build the minterm index per pattern, then look it up in the table.
    idx = np.zeros(npat, dtype=np.int64)
    for bit, col in enumerate(inputs):
        idx |= col.astype(np.int64) << bit
    table = np.array(
        [bool(tt.bits >> m & 1) for m in range(1 << tt.nvars)], dtype=bool)
    result = table[idx]
    return result
