"""Netlist interchange: structural Verilog and BLIF.

A downstream user needs to get designs in and out:

* :func:`write_verilog` / :func:`read_verilog` — flat structural
  Verilog restricted to library-cell instantiations (the gate-level
  subset every P&R tool consumes).
* :func:`write_blif` / :func:`read_blif` — the SIS/ABC interchange for
  :class:`~repro.synthesis.LogicNetwork` (``.names`` cover format).
"""

from __future__ import annotations

import re

from repro.netlist.cells import CellLibrary
from repro.netlist.circuit import Netlist


#: Keywords of the structural subset (plus common Verilog reserved
#: words): a net or instance carrying one of these names must be
#: written escaped, or the reader would mistake it for a declaration.
_VERILOG_KEYWORDS = frozenset((
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "assign", "always", "initial", "begin", "end", "generate",
    "endgenerate", "parameter", "localparam", "supply0", "supply1",
))


def _escape(name: str) -> str:
    """Escape a net/instance name for Verilog if needed."""
    if name not in _VERILOG_KEYWORDS and \
            re.fullmatch(r"[A-Za-z_][A-Za-z0-9_$]*", name):
        return name
    return f"\\{name} "


def write_verilog(netlist) -> str:
    """Serialize a mapped netlist as flat structural Verilog.

    Accepts either a :class:`~repro.netlist.circuit.Netlist` or its
    columnar :class:`~repro.netlist.packed.PackedNetlist` form (no
    cell library needed — only names are emitted); both produce
    byte-identical text for the same design.
    """
    from repro.netlist.packed import PackedNetlist

    if isinstance(netlist, PackedNetlist):
        return _write_verilog_packed(netlist)
    lines = []
    ports = [_escape(p) for p in
             netlist.primary_inputs + netlist.primary_outputs]
    lines.append(f"module {_escape(netlist.name)} (")
    lines.append("  " + ", ".join(ports))
    lines.append(");")
    for pi in netlist.primary_inputs:
        lines.append(f"  input {_escape(pi)};")
    for po in netlist.primary_outputs:
        lines.append(f"  output {_escape(po)};")
    pi_set = set(netlist.primary_inputs)
    po_set = set(netlist.primary_outputs)
    internal = [
        n for n in netlist.nets()
        if n not in pi_set and n not in po_set
    ]
    for net in sorted(internal):
        lines.append(f"  wire {_escape(net)};")
    for gate in netlist.gates.values():
        conns = [f".{pin}({_escape(net)})"
                 for pin, net in sorted(gate.pins.items())]
        conns.append(f".Y({_escape(gate.output)})")
        lines.append(
            f"  {gate.cell.name} {_escape(gate.name)} "
            f"({', '.join(conns)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _write_verilog_packed(packed) -> str:
    """The packed-form writer: direct iteration over the interned
    tables and CSR pin arrays, no object netlist materialized."""
    nn = packed.net_names
    pis = [nn[i] for i in packed.primary_inputs.tolist()]
    pos_ = [nn[i] for i in packed.primary_outputs.tolist()]
    lines = [f"module {_escape(packed.name)} (",
             "  " + ", ".join(_escape(p) for p in pis + pos_),
             ");"]
    for pi in pis:
        lines.append(f"  input {_escape(pi)};")
    for po in pos_:
        lines.append(f"  output {_escape(po)};")
    gout = packed.gate_output.tolist()
    pi_set, po_set = set(pis), set(pos_)
    driven = dict.fromkeys(pis)
    driven.update(dict.fromkeys(nn[i] for i in gout))
    internal = [n for n in driven
                if n not in pi_set and n not in po_set]
    for net in sorted(internal):
        lines.append(f"  wire {_escape(net)};")
    off = packed.pin_off.tolist()
    pnet = packed.pin_net.tolist()
    pname = packed.pin_name.tolist()
    pt = packed.pin_names
    gcell = packed.gate_cell.tolist()
    for gi, gname in enumerate(packed.gate_names):
        conns = [f".{pin}({_escape(net)})" for pin, net in sorted(
            (pt[pname[k]], nn[pnet[k]])
            for k in range(off[gi], off[gi + 1]))]
        conns.append(f".Y({_escape(nn[gout[gi]])})")
        lines.append(
            f"  {packed.cell_names[gcell[gi]]} {_escape(gname)} "
            f"({', '.join(conns)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


#: Comments are alternatives of the token regex (not pre-stripped):
#: stripping text up front would corrupt escaped identifiers that
#: contain ``//`` or ``/*``.  Escaped identifiers get their own kind
#: (``eid``) so a net named ``wire`` or ``endmodule`` is never
#: mistaken for a keyword.
_VLOG_TOKEN = re.compile(
    r"//[^\n]*|/\*.*?\*/"
    r"|\\(?P<esc>\S+)\s"
    r"|(?P<id>[A-Za-z_][A-Za-z0-9_$]*)"
    r"|(?P<punct>[(),.;])", re.S)


def _tokenize_verilog(text: str):
    for m in _VLOG_TOKEN.finditer(text):
        if m.group("esc") is not None:
            yield ("eid", m.group("esc"))
        elif m.group("id") is not None:
            yield ("id", m.group("id"))
        elif m.group("punct") is not None:
            yield ("punct", m.group("punct"))
        # comment alternatives bind no group and are skipped


def read_verilog(text: str, library: CellLibrary) -> Netlist:
    """Parse flat structural Verilog produced by :func:`write_verilog`.

    Supports named port connections only; every instantiated module
    must exist in ``library``; the output pin must be named ``Y``.
    """
    tokens = list(_tokenize_verilog(text))
    pos = 0

    def peek():
        return tokens[pos] if pos < len(tokens) else ("eof", "")

    def at_punct(ch):
        kind, val = peek()
        return kind == "punct" and val == ch

    def at_keyword(word):
        # Escaped identifiers ("eid") are never keywords: ``\wire ``
        # is a net named "wire", not a declaration.
        kind, val = peek()
        return kind == "id" and val == word

    def take(expect=None):
        nonlocal pos
        kind, val = peek()
        if expect == "id":
            if kind not in ("id", "eid"):
                raise ValueError(
                    f"parse error: expected identifier, got {val!r}")
        elif expect is not None and (kind == "eid" or val != expect):
            raise ValueError(
                f"parse error: expected {expect!r}, got {val!r}")
        pos += 1
        return val

    take("module")
    name = take("id")
    nl = Netlist(name, library)
    # Port list (names only; direction comes from declarations).
    take("(")
    while not at_punct(")"):
        take()
    take(")")
    take(";")

    inputs: list[str] = []
    outputs: list[str] = []
    pending_gates: list[tuple] = []
    while not at_keyword("endmodule"):
        kind, val = peek()
        if kind == "id" and val in ("input", "output", "wire"):
            take()
            names = []
            while not at_punct(";"):
                comma = at_punct(",")
                tok = take()
                if not comma:
                    names.append(tok)
            take(";")
            if val == "input":
                inputs.extend(names)
            elif val == "output":
                outputs.extend(names)
        elif kind in ("id", "eid"):
            cell_name = take("id")
            inst_name = take("id")
            take("(")
            pins = {}
            while not at_punct(")"):
                take(".")
                pin = take("id")
                take("(")
                net = take("id")
                take(")")
                if at_punct(","):
                    take(",")
                pins[pin] = net
            take(")")
            take(";")
            pending_gates.append((cell_name, inst_name, pins))
        else:
            raise ValueError(f"unexpected token {val!r}")
    for net in inputs:
        nl.add_input(net)
    for cell_name, inst_name, pins in pending_gates:
        cell = library[cell_name]
        output = pins.pop("Y", None)
        if output is None:
            raise ValueError(f"instance {inst_name} has no .Y() pin")
        nl.add_gate(cell, pins, output, inst_name)
    for net in outputs:
        nl.add_output(net)
    return nl


# ----------------------------------------------------------------------
# BLIF for logic networks
# ----------------------------------------------------------------------

def write_blif(network) -> str:
    """Serialize a :class:`~repro.synthesis.LogicNetwork` as BLIF."""
    from repro.synthesis.network import LogicNetwork

    if not isinstance(network, LogicNetwork):
        raise TypeError("write_blif expects a LogicNetwork")
    lines = [f".model {network.name}"]
    lines.append(".inputs " + " ".join(network.inputs))
    lines.append(".outputs " + " ".join(network.outputs))
    for name in network.topological_order():
        node = network.nodes[name]
        fanins = sorted(node.support())
        lines.append(".names " + " ".join(fanins + [name]))
        for cube in node.sop:
            row = []
            for f in fanins:
                if (f, True) in cube:
                    row.append("1")
                elif (f, False) in cube:
                    row.append("0")
                else:
                    row.append("-")
            lines.append(("".join(row) + " 1").strip())
        # Constant-0 nodes have no rows, matching SIS semantics.
    lines.append(".end")
    return "\n".join(lines) + "\n"


def read_blif(text: str):
    """Parse BLIF into a :class:`~repro.synthesis.LogicNetwork`.

    Supports ``.model/.inputs/.outputs/.names/.end`` with single-output
    covers whose output value is 1 (the SIS default).
    """
    from repro.synthesis.network import LogicNetwork

    network = LogicNetwork()
    lines = _continued_lines(text)
    current_names = None
    current_cubes: list = []

    def flush():
        nonlocal current_names, current_cubes
        if current_names is None:
            return
        *fanins, out = current_names
        sop = []
        for row in current_cubes:
            pattern, value = row
            if value != "1":
                raise ValueError("only on-set covers supported")
            cube = set()
            for f, ch in zip(fanins, pattern):
                if ch == "1":
                    cube.add((f, True))
                elif ch == "0":
                    cube.add((f, False))
                elif ch != "-":
                    raise ValueError(f"bad cover character {ch!r}")
            sop.append(frozenset(cube))
        network.add_node(out, sop)
        current_names, current_cubes = None, []

    for line in lines:
        tokens = line.split()
        if not tokens:
            continue
        key = tokens[0]
        if key == ".model":
            network.name = tokens[1] if len(tokens) > 1 else "net"
        elif key == ".inputs":
            flush()
            for t in tokens[1:]:
                network.add_input(t)
        elif key == ".outputs":
            flush()
            outputs = tokens[1:]
        elif key == ".names":
            flush()
            current_names = tokens[1:]
        elif key == ".end":
            flush()
        elif key.startswith("."):
            raise ValueError(f"unsupported BLIF construct {key!r}")
        else:
            if current_names is None:
                raise ValueError("cover row outside .names")
            if len(tokens) == 1 and len(current_names) == 1:
                current_cubes.append(("", tokens[0]))
            else:
                current_cubes.append((tokens[0], tokens[1]))
    flush()
    for out in outputs:
        network.set_output(out)
    return network


def _continued_lines(text: str):
    out = []
    buf = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            buf += line[:-1] + " "
            continue
        out.append(buf + line)
        buf = ""
    if buf:
        out.append(buf)
    return out
