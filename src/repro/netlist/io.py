"""Netlist interchange: structural Verilog and BLIF.

A downstream user needs to get designs in and out:

* :func:`write_verilog` / :func:`read_verilog` — flat structural
  Verilog restricted to library-cell instantiations (the gate-level
  subset every P&R tool consumes).
* :func:`write_blif` / :func:`read_blif` — the SIS/ABC interchange for
  :class:`~repro.synthesis.LogicNetwork` (``.names`` cover format).
"""

from __future__ import annotations

import re

from repro.netlist.cells import CellLibrary
from repro.netlist.circuit import Netlist


def _escape(name: str) -> str:
    """Escape a net/instance name for Verilog if needed."""
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_$]*", name):
        return name
    return f"\\{name} "


def write_verilog(netlist: Netlist) -> str:
    """Serialize a mapped netlist as flat structural Verilog."""
    lines = []
    ports = [_escape(p) for p in
             netlist.primary_inputs + netlist.primary_outputs]
    lines.append(f"module {_escape(netlist.name)} (")
    lines.append("  " + ", ".join(ports))
    lines.append(");")
    for pi in netlist.primary_inputs:
        lines.append(f"  input {_escape(pi)};")
    for po in netlist.primary_outputs:
        lines.append(f"  output {_escape(po)};")
    internal = [
        n for n in netlist.nets()
        if n not in netlist.primary_inputs
        and n not in netlist.primary_outputs
    ]
    for net in sorted(internal):
        lines.append(f"  wire {_escape(net)};")
    for gate in netlist.gates.values():
        conns = [f".{pin}({_escape(net)})"
                 for pin, net in sorted(gate.pins.items())]
        conns.append(f".Y({_escape(gate.output)})")
        lines.append(
            f"  {gate.cell.name} {_escape(gate.name)} "
            f"({', '.join(conns)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_VLOG_TOKEN = re.compile(
    r"\\(?P<esc>\S+)\s|(?P<id>[A-Za-z_][A-Za-z0-9_$]*)"
    r"|(?P<punct>[(),.;])")


def _tokenize_verilog(text: str):
    text = re.sub(r"//[^\n]*", " ", text)
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    for m in _VLOG_TOKEN.finditer(text):
        if m.group("esc") is not None:
            yield ("id", m.group("esc"))
        elif m.group("id") is not None:
            yield ("id", m.group("id"))
        else:
            yield ("punct", m.group("punct"))


def read_verilog(text: str, library: CellLibrary) -> Netlist:
    """Parse flat structural Verilog produced by :func:`write_verilog`.

    Supports named port connections only; every instantiated module
    must exist in ``library``; the output pin must be named ``Y``.
    """
    tokens = list(_tokenize_verilog(text))
    pos = 0

    def peek():
        return tokens[pos] if pos < len(tokens) else ("eof", "")

    def take(expect=None):
        nonlocal pos
        kind, val = peek()
        if expect is not None and val != expect and kind != expect:
            raise ValueError(
                f"parse error: expected {expect!r}, got {val!r}")
        pos += 1
        return val

    take("module")
    name = take("id")
    nl = Netlist(name, library)
    # Port list (names only; direction comes from declarations).
    take("(")
    while peek()[1] != ")":
        take()
    take(")")
    take(";")

    inputs: list[str] = []
    outputs: list[str] = []
    pending_gates: list[tuple] = []
    while peek()[1] != "endmodule":
        kind, val = peek()
        if val in ("input", "output", "wire"):
            take()
            names = []
            while peek()[1] != ";":
                tok = take()
                if tok != ",":
                    names.append(tok)
            take(";")
            if val == "input":
                inputs.extend(names)
            elif val == "output":
                outputs.extend(names)
        elif kind == "id":
            cell_name = take("id")
            inst_name = take("id")
            take("(")
            pins = {}
            while peek()[1] != ")":
                take(".")
                pin = take("id")
                take("(")
                net = take("id")
                take(")")
                if peek()[1] == ",":
                    take(",")
                pins[pin] = net
            take(")")
            take(";")
            pending_gates.append((cell_name, inst_name, pins))
        else:
            raise ValueError(f"unexpected token {val!r}")
    for net in inputs:
        nl.add_input(net)
    for cell_name, inst_name, pins in pending_gates:
        cell = library[cell_name]
        output = pins.pop("Y", None)
        if output is None:
            raise ValueError(f"instance {inst_name} has no .Y() pin")
        nl.add_gate(cell, pins, output, inst_name)
    for net in outputs:
        nl.add_output(net)
    return nl


# ----------------------------------------------------------------------
# BLIF for logic networks
# ----------------------------------------------------------------------

def write_blif(network) -> str:
    """Serialize a :class:`~repro.synthesis.LogicNetwork` as BLIF."""
    from repro.synthesis.network import LogicNetwork

    if not isinstance(network, LogicNetwork):
        raise TypeError("write_blif expects a LogicNetwork")
    lines = [f".model {network.name}"]
    lines.append(".inputs " + " ".join(network.inputs))
    lines.append(".outputs " + " ".join(network.outputs))
    for name in network.topological_order():
        node = network.nodes[name]
        fanins = sorted(node.support())
        lines.append(".names " + " ".join(fanins + [name]))
        for cube in node.sop:
            row = []
            for f in fanins:
                if (f, True) in cube:
                    row.append("1")
                elif (f, False) in cube:
                    row.append("0")
                else:
                    row.append("-")
            lines.append(("".join(row) + " 1").strip())
        # Constant-0 nodes have no rows, matching SIS semantics.
    lines.append(".end")
    return "\n".join(lines) + "\n"


def read_blif(text: str):
    """Parse BLIF into a :class:`~repro.synthesis.LogicNetwork`.

    Supports ``.model/.inputs/.outputs/.names/.end`` with single-output
    covers whose output value is 1 (the SIS default).
    """
    from repro.synthesis.network import LogicNetwork

    network = LogicNetwork()
    lines = _continued_lines(text)
    current_names = None
    current_cubes: list = []

    def flush():
        nonlocal current_names, current_cubes
        if current_names is None:
            return
        *fanins, out = current_names
        sop = []
        for row in current_cubes:
            pattern, value = row
            if value != "1":
                raise ValueError("only on-set covers supported")
            cube = set()
            for f, ch in zip(fanins, pattern):
                if ch == "1":
                    cube.add((f, True))
                elif ch == "0":
                    cube.add((f, False))
                elif ch != "-":
                    raise ValueError(f"bad cover character {ch!r}")
            sop.append(frozenset(cube))
        network.add_node(out, sop)
        current_names, current_cubes = None, []

    for line in lines:
        tokens = line.split()
        if not tokens:
            continue
        key = tokens[0]
        if key == ".model":
            network.name = tokens[1] if len(tokens) > 1 else "net"
        elif key == ".inputs":
            flush()
            for t in tokens[1:]:
                network.add_input(t)
        elif key == ".outputs":
            flush()
            outputs = tokens[1:]
        elif key == ".names":
            flush()
            current_names = tokens[1:]
        elif key == ".end":
            flush()
        elif key.startswith("."):
            raise ValueError(f"unsupported BLIF construct {key!r}")
        else:
            if current_names is None:
                raise ValueError("cover row outside .names")
            if len(tokens) == 1 and len(current_names) == 1:
                current_cubes.append(("", tokens[0]))
            else:
                current_cubes.append((tokens[0], tokens[1]))
    flush()
    for out in outputs:
        network.set_output(out)
    return network


def _continued_lines(text: str):
    out = []
    buf = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            buf += line[:-1] + " "
            continue
        out.append(buf + line)
        buf = ""
    if buf:
        out.append(buf)
    return out
