"""Classic benchmark circuits, for workload diversity.

Small, structurally distinct circuits with known-good reference
functions: the ISCAS-85 c17, decoders, comparators, priority encoders,
population count, parity trees, and Gray-code converters.  Every
generator returns a mapped :class:`~repro.netlist.Netlist` plus (via
``reference_*`` helpers) a Python golden model for verification.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.cells import CellLibrary
from repro.netlist.circuit import Netlist


def c17(library: CellLibrary) -> Netlist:
    """The ISCAS-85 c17: six NAND2 gates, the canonical tiny benchmark."""
    nl = Netlist("c17", library)
    g1, g2, g3, g6, g7 = (nl.add_input(n)
                          for n in ("G1", "G2", "G3", "G6", "G7"))
    n10 = nl.add_gate("NAND2_X1_rvt", [g1, g3], "G10").output
    n11 = nl.add_gate("NAND2_X1_rvt", [g3, g6], "G11").output
    n16 = nl.add_gate("NAND2_X1_rvt", [g2, n11], "G16").output
    n19 = nl.add_gate("NAND2_X1_rvt", [n11, g7], "G19").output
    nl.add_gate("NAND2_X1_rvt", [n10, n16], "G22")
    nl.add_gate("NAND2_X1_rvt", [n16, n19], "G23")
    nl.add_output("G22")
    nl.add_output("G23")
    return nl


def reference_c17(g1, g2, g3, g6, g7):
    """Golden model of c17; returns (G22, G23)."""
    n10 = not (g1 and g3)
    n11 = not (g3 and g6)
    n16 = not (g2 and n11)
    n19 = not (n11 and g7)
    return (not (n10 and n16), not (n16 and n19))


def decoder(bits: int, library: CellLibrary) -> Netlist:
    """A ``bits``-to-``2**bits`` one-hot decoder."""
    if not 1 <= bits <= 5:
        raise ValueError("bits must be in [1, 5]")
    nl = Netlist(f"dec{bits}", library)
    ins = [nl.add_input(f"a{i}") for i in range(bits)]
    nbar = [nl.add_gate("INV_X1_rvt", [a], f"nb{i}").output
            for i, a in enumerate(ins)]
    for m in range(1 << bits):
        acc = None
        for i in range(bits):
            lit = ins[i] if (m >> i) & 1 else nbar[i]
            if acc is None:
                acc = lit
            else:
                acc = nl.add_gate("AND2_X1_rvt", [acc, lit]).output
        if acc in nl.primary_inputs or acc in (n for n in nbar):
            acc = nl.add_gate("BUF_X1_rvt", [acc]).output
        nl.add_output(acc)
    return nl


def comparator(bits: int, library: CellLibrary) -> Netlist:
    """Equality comparator: out = (A == B)."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    nl = Netlist(f"cmp{bits}", library)
    a = [nl.add_input(f"a{i}") for i in range(bits)]
    b = [nl.add_input(f"b{i}") for i in range(bits)]
    eqs = [nl.add_gate("XNOR2_X1_rvt", [a[i], b[i]]).output
           for i in range(bits)]
    acc = eqs[0]
    for e in eqs[1:]:
        acc = nl.add_gate("AND2_X1_rvt", [acc, e]).output
    if bits == 1:
        acc = nl.add_gate("BUF_X1_rvt", [acc]).output
    nl.add_output(acc)
    return nl


def priority_encoder(bits: int, library: CellLibrary) -> Netlist:
    """Outputs one-hot grant for the highest-index asserted request."""
    if bits < 2:
        raise ValueError("bits must be >= 2")
    nl = Netlist(f"prio{bits}", library)
    req = [nl.add_input(f"r{i}") for i in range(bits)]
    # grant[i] = req[i] & !(any higher request).
    higher = None
    grants = []
    for i in reversed(range(bits)):
        if higher is None:
            g = nl.add_gate("BUF_X1_rvt", [req[i]]).output
            higher = req[i]
        else:
            nh = nl.add_gate("INV_X1_rvt", [higher]).output
            g = nl.add_gate("AND2_X1_rvt", [req[i], nh]).output
            if i > 0:      # the final OR would drive nothing
                higher = nl.add_gate(
                    "OR2_X1_rvt", [higher, req[i]]).output
        grants.append(g)
    for g in reversed(grants):
        nl.add_output(g)
    return nl


def popcount(bits: int, library: CellLibrary) -> Netlist:
    """Population count via a full-adder reduction tree."""
    if bits < 2:
        raise ValueError("bits must be >= 2")
    nl = Netlist(f"pop{bits}", library)
    ins = [nl.add_input(f"a{i}") for i in range(bits)]
    # Column-wise carry-save accumulation.
    columns: list = [list(ins)]
    width = 1
    while (1 << width) <= bits:
        width += 1
    for _ in range(width):
        columns.append([])
    col = 0
    while col < len(columns):
        while len(columns[col]) > 1:
            if len(columns[col]) >= 3:
                x, y, z = (columns[col].pop() for _ in range(3))
                s1 = nl.add_gate("XOR2_X1_rvt", [x, y]).output
                s = nl.add_gate("XOR2_X1_rvt", [s1, z]).output
                c1 = nl.add_gate("AND2_X1_rvt", [x, y]).output
                c2 = nl.add_gate("AND2_X1_rvt", [s1, z]).output
                c = nl.add_gate("OR2_X1_rvt", [c1, c2]).output
            else:
                x, y = (columns[col].pop() for _ in range(2))
                s = nl.add_gate("XOR2_X1_rvt", [x, y]).output
                c = nl.add_gate("AND2_X1_rvt", [x, y]).output
            columns[col].append(s)
            if col + 1 < len(columns):
                columns[col + 1].append(c)
        col += 1
    for col_nets in columns:
        if col_nets:
            net = col_nets[0]
            if net in nl.primary_inputs:
                net = nl.add_gate("BUF_X1_rvt", [net]).output
            nl.add_output(net)
    return nl


def parity_tree(bits: int, library: CellLibrary) -> Netlist:
    """XOR-reduction parity of ``bits`` inputs (balanced tree)."""
    if bits < 2:
        raise ValueError("bits must be >= 2")
    nl = Netlist(f"par{bits}", library)
    level = [nl.add_input(f"a{i}") for i in range(bits)]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(nl.add_gate(
                "XOR2_X1_rvt", [level[i], level[i + 1]]).output)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    out = level[0]
    if out in nl.primary_inputs:
        out = nl.add_gate("BUF_X1_rvt", [out]).output
    nl.add_output(out)
    return nl


def gray_to_binary(bits: int, library: CellLibrary) -> Netlist:
    """Gray-code to binary converter (the classic XOR prefix chain)."""
    if bits < 2:
        raise ValueError("bits must be >= 2")
    nl = Netlist(f"gray{bits}", library)
    g = [nl.add_input(f"g{i}") for i in range(bits)]
    # b[msb] = g[msb]; b[i] = b[i+1] ^ g[i].
    b = [None] * bits
    top = nl.add_gate("BUF_X1_rvt", [g[bits - 1]]).output
    b[bits - 1] = top
    for i in reversed(range(bits - 1)):
        b[i] = nl.add_gate("XOR2_X1_rvt", [b[i + 1], g[i]]).output
    for i in range(bits):
        nl.add_output(b[i])
    return nl


#: All parameterized generators, for sweeps: name -> (factory, arity).
CIRCUIT_FACTORIES = {
    "c17": (lambda bits, lib: c17(lib), None),
    "decoder": (decoder, 3),
    "comparator": (comparator, 4),
    "priority_encoder": (priority_encoder, 4),
    "popcount": (popcount, 6),
    "parity_tree": (parity_tree, 8),
    "gray_to_binary": (gray_to_binary, 4),
}


def all_benchmark_circuits(library: CellLibrary) -> dict:
    """Instantiate every benchmark at its default size."""
    out = {}
    for name, (factory, default) in CIRCUIT_FACTORIES.items():
        out[name] = factory(default, library)
    return out
