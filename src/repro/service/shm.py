"""Zero-copy design transport over POSIX shared memory.

The service hands designs to workers as shared-memory ``.pnl``
segments instead of pickling them through a queue: the scheduler packs
each distinct design *once* into a :class:`DesignSegment` (raw,
uncompressed ``.pnl`` layout plus the pickled cell library), and every
worker that executes a job for that design attaches the segment by
name and maps the connectivity arrays in place via
:meth:`~repro.netlist.packed.PackedNetlist.from_buffer` — the int32
CSR sections are read directly out of the segment, no copy and no
decompress pass.  A thousand jobs over sixteen designs ship sixteen
packs, not a thousand.

Crash safety mirrors the abandoned-thread registry from the executor:
every segment this process creates is listed in a per-PID registry
file under ``<tmpdir>/repro-shm/``, an ``atexit`` hook unlinks
whatever is still alive at clean exit, and
:func:`sweep_leaked_segments` (run at service start and by
``python -m repro.serve clean``) unlinks segments whose owning process
is dead — a SIGKILLed service or worker can leak a segment only until
the next sweep.
"""

from __future__ import annotations

import atexit
import contextlib
import errno
import json
import os
import pickle
import struct
import tempfile
import threading
import uuid
from multiprocessing import shared_memory
from pathlib import Path

_PICKLE_PROTOCOL = 4
_FRAME_MAGIC = b"RSH1"
_TAG_DESIGN = b"D"        # pickled library + raw .pnl payload
_TAG_PICKLE = b"G"        # arbitrary pickled subject (RTL specs, ...)
_FRAME_STRUCT = struct.Struct("<4scQQ")   # magic, tag, head len, body len

_SEGMENT_PREFIX = "rpnl"


class SegmentError(RuntimeError):
    """A design segment is missing, torn, or not ours to read."""


def registry_dir() -> Path:
    """Directory of per-PID segment registry files."""
    root = Path(os.environ.get("REPRO_SHM_REGISTRY",
                               Path(tempfile.gettempdir()) / "repro-shm"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:          # alive, owned by someone else
        return True
    except OSError as err:           # pragma: no cover - exotic errnos
        return err.errno != errno.ESRCH
    return True


class _Registry:
    """The calling process's record of segments it owns."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._names: set[str] = set()
        self._pid: int | None = None

    def _path(self) -> Path:
        return registry_dir() / f"{os.getpid()}.json"

    def _flush_locked(self) -> None:
        path = self._path()
        if not self._names:
            path.unlink(missing_ok=True)
            return
        tmp = path.with_suffix(f".{uuid.uuid4().hex[:8]}.tmp")
        tmp.write_text(json.dumps(sorted(self._names)))
        os.replace(tmp, path)

    def add(self, name: str) -> None:
        with self._lock:
            if self._pid != os.getpid():
                # First touch after a fork: the inherited set belongs
                # to the parent's registry file, not ours.
                self._names = set()
                self._pid = os.getpid()
                atexit.register(self.purge)
            self._names.add(name)
            self._flush_locked()

    def remove(self, name: str) -> None:
        with self._lock:
            if self._pid != os.getpid():
                return
            self._names.discard(name)
            self._flush_locked()

    def purge(self) -> None:
        """Unlink every segment this process still owns (atexit)."""
        with self._lock:
            if self._pid != os.getpid():
                return
            for name in sorted(self._names):
                _unlink_quiet(name, owned=True)
            self._names = set()
            self._flush_locked()


_registry = _Registry()


@contextlib.contextmanager
def _tracker_silenced():
    """Suppress resource-tracker (un)registration inside the block.

    The sweeper unlinks segments *other* processes created; its own
    tracker never saw them, so the attach must not register and the
    unlink must not unregister (either mismatch makes the tracker
    process log spurious KeyErrors).
    """
    from multiprocessing import resource_tracker
    original = (resource_tracker.register, resource_tracker.unregister)
    resource_tracker.register = lambda *a, **k: None
    resource_tracker.unregister = lambda *a, **k: None
    try:
        yield
    finally:
        resource_tracker.register, resource_tracker.unregister = original


def _unlink_quiet(name: str, *, owned: bool = False) -> bool:
    """Unlink ``name`` if it still exists.

    ``owned`` says this process created (and therefore registered) the
    segment: its unlink then goes through the live tracker so the
    registration is retired with it.  Foreign segments (the sweep
    path) are unlinked with the tracker silenced on both sides.
    """
    try:
        with _tracker_silenced():
            seg = shared_memory.SharedMemory(name=name)
            seg.close()
        if owned:
            seg.unlink()
        else:
            with _tracker_silenced():
                seg.unlink()
    except FileNotFoundError:
        return False
    return True


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to ``name`` without registering with a resource tracker.

    Attaching normally registers the segment with the caller's
    tracker, which unlinks it when that tracker's last client exits —
    yanking the mapping out from under the owner and every sibling
    worker.  Worse, under ``fork`` a worker may *share* the owner's
    tracker, where a compensating ``unregister`` would cancel the
    owner's registration instead.  Ownership here is explicit (the
    creator unlinks; the registry sweeps leaks), so readers must not
    be lifetime-coupled at all: registration is suppressed for the
    duration of the attach.  (CPython grew a ``track=False`` argument
    for exactly this in 3.13; this is the portable spelling.)
    """
    with _tracker_silenced():
        return shared_memory.SharedMemory(name=name)


def sweep_leaked_segments() -> int:
    """Unlink segments whose owning process is dead; count removed.

    Scans the registry directory: for each per-PID file whose PID no
    longer exists, every listed segment is unlinked and the file
    removed.  Safe to run concurrently with live services (their PIDs
    are alive, their files are skipped).
    """
    removed = 0
    for entry in sorted(registry_dir().glob("*.json")):
        try:
            pid = int(entry.stem)
        except ValueError:
            continue
        if _pid_alive(pid):
            continue
        try:
            names = json.loads(entry.read_text())
        except (OSError, json.JSONDecodeError):
            names = []
        for name in names:
            removed += _unlink_quiet(str(name))
        entry.unlink(missing_ok=True)
    return removed


# ----------------------------------------------------------------------
# Framing


def pack_design(subject, library) -> bytes:
    """Frame ``(subject, library)`` for a segment.

    A :class:`~repro.netlist.circuit.Netlist` (or packed netlist)
    rides as pickled library + *raw* ``.pnl`` bytes — uncompressed and
    unshuffled, so :func:`unpack_design` maps the arrays in place.
    Any other subject (RTL-ish specs) falls back to one pickle.
    """
    from repro.netlist.circuit import Netlist
    from repro.netlist.packed import PackedNetlist
    if isinstance(subject, Netlist):
        packed = subject.to_packed()
    elif isinstance(subject, PackedNetlist):
        packed = subject
    else:
        body = pickle.dumps((subject, library),
                            protocol=_PICKLE_PROTOCOL)
        return _FRAME_STRUCT.pack(_FRAME_MAGIC, _TAG_PICKLE,
                                  0, len(body)) + body
    head = pickle.dumps(library, protocol=_PICKLE_PROTOCOL)
    body = packed.to_bytes(compress=False, shuffle=False)
    return _FRAME_STRUCT.pack(_FRAME_MAGIC, _TAG_DESIGN,
                              len(head), len(body)) + head + body


def unpack_design(buf) -> tuple[object, object]:
    """Invert :func:`pack_design` from any byte buffer.

    Returns ``(subject, library)``.  For design frames the subject is
    rebuilt from a :class:`~repro.netlist.packed.PackedNetlist` whose
    arrays view ``buf`` directly — the reconstruction into ``Netlist``
    objects is the only copy a worker pays.
    """
    view = memoryview(buf)
    if len(view) < _FRAME_STRUCT.size:
        raise SegmentError("truncated design frame")
    magic, tag, hlen, blen = _FRAME_STRUCT.unpack_from(view)
    if magic != _FRAME_MAGIC:
        raise SegmentError("not a design frame (bad magic)")
    total = _FRAME_STRUCT.size + hlen + blen
    if len(view) < total:
        raise SegmentError("truncated design frame")
    if tag == _TAG_PICKLE:
        return pickle.loads(view[_FRAME_STRUCT.size:total])
    if tag != _TAG_DESIGN:
        raise SegmentError(f"unknown design frame tag {tag!r}")
    from repro.netlist.packed import PackedNetlist
    library = pickle.loads(view[_FRAME_STRUCT.size:
                                _FRAME_STRUCT.size + hlen])
    packed = PackedNetlist.from_buffer(
        view[_FRAME_STRUCT.size + hlen:total])
    return packed.to_netlist(library), library


# ----------------------------------------------------------------------
# Segments


class DesignSegment:
    """One shared-memory segment holding a framed design.

    Created by the scheduler (:meth:`create`), attached by workers
    (:meth:`attach`).  The creator owns the name: it unlinks via
    :meth:`unlink` (or the atexit/registry sweep); readers just
    :meth:`close` their mapping.
    """

    def __init__(self, shm: shared_memory.SharedMemory, size: int,
                 *, owner: bool) -> None:
        self._shm = shm
        self.name = shm.name
        self.size = size
        self.owner = owner
        self._closed = False

    @classmethod
    def create(cls, payload: bytes) -> "DesignSegment":
        """Publish ``payload`` under a fresh registered segment name."""
        name = f"{_SEGMENT_PREFIX}_{os.getpid()}_{uuid.uuid4().hex[:12]}"
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(len(payload), 1))
        _registry.add(shm.name)
        shm.buf[:len(payload)] = payload
        return cls(shm, len(payload), owner=True)

    @classmethod
    def create_design(cls, subject, library) -> "DesignSegment":
        """Pack and publish one design (see :func:`pack_design`)."""
        return cls.create(pack_design(subject, library))

    @classmethod
    def attach(cls, name: str, size: int) -> "DesignSegment":
        """Map an existing segment read-only-by-convention."""
        try:
            shm = _attach_untracked(name)
        except FileNotFoundError as err:
            raise SegmentError(
                f"design segment {name!r} has vanished") from err
        return cls(shm, size, owner=False)

    # ------------------------------------------------------------------

    def view(self) -> memoryview:
        return self._shm.buf[:self.size]

    def read_design(self) -> tuple[object, object]:
        """``(subject, library)`` decoded from the mapped frame."""
        return unpack_design(self.view())

    def close(self) -> None:
        """Drop this process's mapping (keeps the segment alive)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:          # pragma: no cover - a live view
            pass                     # outlived us; the unmap happens
                                     # when the view is collected

    def unlink(self) -> None:
        """Destroy the segment (owner only); idempotent."""
        self.close()
        if not self.owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        _registry.remove(self.name)

    def __enter__(self) -> "DesignSegment":
        return self

    def __exit__(self, *exc) -> None:
        if self.owner:
            self.unlink()
        else:
            self.close()
