"""The public face of the flow service.

:class:`FlowService` wraps the scheduler in a four-verb client API —
``submit`` / ``status`` / ``cancel`` / ``result`` — plus lifecycle
(``close``, context manager) and introspection (``stats``,
``job_records``).  Everything the service does under those verbs
(shared-memory transport, job caching, fair queuing, crash recovery)
is policy behind this surface.

:func:`service_sweep` is the batch adapter: it drives a whole
``options_list`` through a service and returns the same
:class:`~repro.orchestrate.sweep.SweepResult` shape as
:func:`~repro.orchestrate.sweep.run_sweep`, so benches and callers can
swap schedulers without rewriting their result handling
(``run_sweep(..., scheduler="service")`` does exactly that).
"""

from __future__ import annotations

import time

from repro.orchestrate.sweep import SweepResult
from repro.service.scheduler import Scheduler
from repro.service.tenancy import ServiceRejection, TenantLedger


class FlowService:
    """A running multi-tenant flow job service.

    Parameters mirror the scheduler: ``workers`` processes, optional
    ``cache_root`` (enables the sharded job cache and the per-stage
    cache), optional ``journal_root`` (enables write-ahead journaling
    and therefore crash recovery of killed workers), optional
    ``rundb_log`` (a :class:`~repro.learn.rundb.RunLog` path receiving
    service and stage telemetry), ``policies`` / ``default_policy`` /
    ``max_queued_total`` for tenancy, and ``use_shm`` to toggle the
    shared-memory design transport (on by default; off falls back to
    sending the framed design through the pipe).
    """

    def __init__(self, *, workers: int = 2, cache_root=None,
                 journal_root=None, rundb_log=None,
                 policies: dict | None = None,
                 default_policy=None,
                 max_queued_total: int | None = None,
                 cache_shards: int = 8,
                 cache_max_bytes: int = 512 << 20,
                 stage_cache: bool = True,
                 use_shm: bool = True,
                 lint: str = "warn") -> None:
        ledger = TenantLedger(policies,
                              default_policy=default_policy,
                              max_queued_total=max_queued_total)
        self._scheduler = Scheduler(
            workers=workers, ledger=ledger,
            cache_root=str(cache_root) if cache_root else None,
            journal_root=str(journal_root) if journal_root else None,
            rundb_log=str(rundb_log) if rundb_log else None,
            cache_shards=cache_shards,
            cache_max_bytes=cache_max_bytes,
            stage_cache=stage_cache, use_shm=use_shm, lint=lint)

    # -- the four verbs ------------------------------------------------

    def submit(self, subject, library, options, *,
               tenant: str = "default") -> str:
        """Queue one flow job; returns its job id.

        Raises :class:`~repro.service.tenancy.ServiceRejection` (with
        ``retry_after``) when the tenant's limits say no.
        """
        return self._scheduler.submit(subject, library, options,
                                      tenant=tenant)

    def status(self, job_id: str) -> dict:
        """The job's current accounting record (state, timings, …)."""
        return self._scheduler.status(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued or running job; ``False`` if too late."""
        return self._scheduler.cancel(job_id)

    def result(self, job_id: str, timeout: float | None = None):
        """Block for the job's :class:`FlowResult`."""
        return self._scheduler.result(job_id, timeout)

    # -- batch + introspection -----------------------------------------

    def drain(self, timeout: float | None = None) -> None:
        """Wait for every submitted job to reach a terminal state."""
        self._scheduler.drain(timeout)

    def stats(self) -> dict:
        """Aggregate counters, tenant snapshots, cache telemetry."""
        return self._scheduler.stats()

    def job_records(self) -> list[dict]:
        return self._scheduler.job_records()

    def running_jobs(self) -> list[tuple[str, int]]:
        """``(job_id, worker_pid)`` for jobs executing right now."""
        return self._scheduler.running_jobs()

    def close(self, *, drain: bool = True,
              timeout: float | None = None) -> None:
        self._scheduler.close(drain=drain, timeout=timeout)

    def __enter__(self) -> "FlowService":
        return self

    def __exit__(self, *exc) -> None:
        self.close(drain=exc[0] is None)


def service_sweep(subject, library, options_list, *,
                  workers: int = 2, cache_root=None,
                  journal_root=None, rundb_log=None,
                  tenant: str = "default", use_shm: bool = True,
                  service: FlowService | None = None,
                  submit_retries: int = 64) -> SweepResult:
    """Run a sweep through a :class:`FlowService`.

    Accepts the :func:`~repro.orchestrate.sweep.run_sweep` subject
    shapes (one design, or one per options entry) and returns results
    in input order.  Backpressure rejections are honoured: the
    submitter sleeps the advertised ``retry_after`` and retries, so a
    sweep larger than the queue cap still completes.

    Pass an existing ``service`` to reuse its warm workers and caches;
    otherwise one is created and closed around the sweep.
    """
    options_list = list(options_list)
    if isinstance(subject, (list, tuple)):
        if len(subject) != len(options_list):
            raise ValueError(
                f"{len(subject)} subjects for {len(options_list)} "
                f"option sets")
        subjects = list(subject)
    else:
        subjects = [subject] * len(options_list)

    owned = service is None
    if owned:
        service = FlowService(
            workers=workers, cache_root=cache_root,
            journal_root=journal_root, rundb_log=rundb_log,
            use_shm=use_shm)
    t0 = time.perf_counter()
    try:
        job_ids = []
        for subj, options in zip(subjects, options_list):
            for attempt in range(submit_retries):
                try:
                    job_ids.append(service.submit(
                        subj, library, options, tenant=tenant))
                    break
                except ServiceRejection as rej:
                    if attempt == submit_retries - 1:
                        raise
                    time.sleep(rej.retry_after
                               if rej.retry_after is not None
                               else 0.05)
        results = [service.result(job_id) for job_id in job_ids]
        wall_s = time.perf_counter() - t0
        stats = service.stats()
    finally:
        if owned:
            service.close(drain=False)
    sweep = SweepResult(results=results, wall_s=wall_s,
                        jobs=workers)
    sweep.cache_stats = stats.get("job_cache")
    return sweep
