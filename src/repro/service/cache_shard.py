"""Sharded, size-capped, content-addressed result cache.

The service's job-level cache: whole :class:`FlowResult` blobs keyed
by a content hash of (design digest, library, options, flow version),
spread over N directory shards so many workers read and write without
contending on one directory, with per-shard byte budgets enforced by
LRU eviction (mtime is the recency clock — a hit touches the file) and
hit/miss/eviction telemetry per shard.

Layered on the sealed-entry discipline of
:mod:`repro.orchestrate.cache`: every blob is framed by
:func:`~repro.orchestrate.cache.seal_blob`, verified on read, and
quarantined on damage — a rotted entry costs a recompute, never a
wrong result.  The class is duck-compatible with
:class:`~repro.orchestrate.cache.ResultCache` (``get``/``put``/
``stats``/``disk_dir``), so it can also serve as a stage cache for
:func:`repro.orchestrate.run`.

Writers on different processes see each other's entries immediately
(shared directories); byte accounting is per-process and trued up
against the real directory on rollover, so concurrent eviction races
degrade to a miss, never corruption.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.orchestrate.cache import (decode_value, encode_value,
                                     seal_blob, unseal_blob)


@dataclass
class ShardStats:
    """Hit/miss/eviction accounting for one shard (or the total)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt: int = 0
    bytes_stored: int = 0          # this process's view of shard size
    bytes_evicted: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def merge(self, other: "ShardStats") -> "ShardStats":
        for name in ("hits", "misses", "puts", "evictions", "corrupt",
                     "bytes_stored", "bytes_evicted"):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self


@dataclass
class _Shard:
    dir: Path
    max_bytes: int
    stats: ShardStats = field(default_factory=ShardStats)
    _scanned: bool = False

    def _scan(self) -> None:
        """True up byte accounting against the directory (lazy)."""
        self._scanned = True
        total = 0
        for p in self.dir.glob("*.blob"):
            try:
                total += p.stat().st_size
            except OSError:          # racing eviction from a sibling
                pass
        self.stats.bytes_stored = total

    def path(self, key: str) -> Path:
        return self.dir / f"{key}.blob"

    def get_bytes(self, key: str) -> bytes | None:
        path = self.path(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            blob = unseal_blob(data, key)
        except Exception:  # noqa: BLE001 - CorruptEntry or worse
            self._quarantine(path)
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        try:
            os.utime(path)           # recency bump for LRU eviction
        except OSError:
            pass
        self.stats.hits += 1
        return blob

    def put_bytes(self, key: str, blob: bytes) -> None:
        if not self._scanned:
            self._scan()
        path = self.path(key)
        data = seal_blob(blob, key)
        fd, tmp = tempfile.mkstemp(dir=self.dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.stats.puts += 1
        self.stats.bytes_stored += len(data)
        if self.stats.bytes_stored > self.max_bytes:
            self._evict(keep=path.name)

    def _evict(self, keep: str) -> None:
        """Drop least-recently-used entries until under budget."""
        entries = []
        for p in self.dir.glob("*.blob"):
            if p.name == keep:
                continue
            try:
                st = p.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, p))
        entries.sort()
        self._scan()                 # exact size before deciding
        for _, size, p in entries:
            if self.stats.bytes_stored <= self.max_bytes:
                break
            try:
                p.unlink()
            except OSError:          # a sibling evicted it first
                continue
            self.stats.bytes_stored -= size
            self.stats.evictions += 1
            self.stats.bytes_evicted += size

    def _quarantine(self, path: Path) -> None:
        qdir = self.dir / "quarantine"
        qdir.mkdir(exist_ok=True)
        try:
            os.replace(path, qdir / path.name)
        except OSError:
            path.unlink(missing_ok=True)


class ShardedResultCache:
    """N directory shards of sealed blobs with per-shard LRU budgets.

    ``max_bytes`` is the *total* budget, split evenly across shards.
    Keys are hex content hashes (:func:`~repro.orchestrate.cache.stable_hash`);
    the shard is the key's leading bits, so placement is stable across
    processes and restarts.
    """

    def __init__(self, root, *, shards: int = 8,
                 max_bytes: int = 512 << 20) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        self.root = Path(root)
        self.shards = shards
        self.max_bytes = max_bytes
        self._shards: list[_Shard] = []
        per_shard = max(max_bytes // shards, 1)
        for i in range(shards):
            d = self.root / f"shard{i:02x}"
            d.mkdir(parents=True, exist_ok=True)
            self._shards.append(_Shard(d, per_shard))

    def _shard(self, key: str) -> _Shard:
        try:
            bucket = int(key[:8], 16) % self.shards
        except ValueError:
            bucket = hash(key) % self.shards
        return self._shards[bucket]

    # -- byte-level API (the service hot path: no decode on a relay) --

    def get_bytes(self, key: str) -> bytes | None:
        return self._shard(key).get_bytes(key)

    def put_bytes(self, key: str, blob: bytes) -> None:
        self._shard(key).put_bytes(key, blob)

    # -- ResultCache-compatible API -----------------------------------

    def get(self, key: str):
        """``(True, fresh_value)`` on hit, ``(False, None)`` on miss."""
        blob = self.get_bytes(key)
        if blob is None:
            return False, None
        return True, decode_value(blob)

    def put(self, key: str, value) -> None:
        self.put_bytes(key, encode_value(value))

    @property
    def disk_dir(self) -> Path:
        return self.root

    def entry_path(self, key: str) -> Path:
        return self._shard(key).path(key)

    # -- telemetry ----------------------------------------------------

    @property
    def stats(self) -> ShardStats:
        total = ShardStats()
        for shard in self._shards:
            total.merge(shard.stats)
        return total

    def telemetry(self) -> dict:
        """Aggregate plus per-shard counters, JSON-ready."""
        total = self.stats
        return {
            "shards": self.shards,
            "max_bytes": self.max_bytes,
            "hits": total.hits,
            "misses": total.misses,
            "hit_rate": total.hit_rate,
            "puts": total.puts,
            "evictions": total.evictions,
            "corrupt": total.corrupt,
            "bytes_stored": total.bytes_stored,
            "bytes_evicted": total.bytes_evicted,
            "per_shard": [
                {"dir": s.dir.name, "hits": s.stats.hits,
                 "misses": s.stats.misses, "puts": s.stats.puts,
                 "evictions": s.stats.evictions,
                 "bytes_stored": s.stats.bytes_stored}
                for s in self._shards
            ],
        }

    def __len__(self) -> int:
        return sum(len(list(s.dir.glob("*.blob")))
                   for s in self._shards)
