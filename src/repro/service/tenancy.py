"""Per-tenant accounting: quotas, rate limits, fair queuing,
backpressure.

A service fronting many design starts cannot let one tenant starve the
rest or queue without bound.  Four mechanisms, all enforced at the
scheduler boundary:

* **Token-bucket rate limiting** — each tenant refills
  ``policy.rate`` submissions/second up to a burst of
  ``policy.burst``; an empty bucket rejects with the exact
  ``retry_after`` until the next token.
* **Quotas** — ``max_active`` caps a tenant's concurrently
  queued+running jobs, ``quota`` its lifetime admissions; exhaustion
  rejects immediately (``retry_after`` only when waiting could help).
* **Fair queuing** — the scheduler drains tenants round-robin
  (:class:`FairQueue`), so a 900-job flood and a 3-job interactive
  tenant interleave instead of serializing.
* **Backpressure** — per-tenant and global queue-depth caps reject
  with ``retry_after`` instead of queuing unboundedly; the estimate is
  derived from observed service rate.

All rejections derive from :class:`ServiceRejection` and carry
``retry_after`` (seconds, or ``None`` when retrying cannot help), so
clients can implement honest backoff.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field


class ServiceRejection(RuntimeError):
    """A submission the service refused to queue.

    ``retry_after`` is the seconds after which a retry may succeed, or
    ``None`` when the rejection is not time-based (exhausted lifetime
    quota, unknown tenant).
    """

    def __init__(self, message: str,
                 retry_after: float | None = None) -> None:
        if retry_after is not None:
            message += f" (retry after {retry_after:.3f}s)"
        super().__init__(message)
        self.retry_after = retry_after


class RateLimited(ServiceRejection):
    """The tenant's token bucket is empty."""


class QueueFull(ServiceRejection):
    """Per-tenant or global queue depth cap reached (backpressure)."""


class QuotaExceeded(ServiceRejection):
    """The tenant is out of quota (lifetime or concurrent)."""


@dataclass(frozen=True)
class TenantPolicy:
    """Admission limits for one tenant (``None`` = unlimited)."""

    rate: float | None = None        # submissions per second
    burst: int = 8                   # bucket capacity when rate is set
    max_queued: int | None = None    # jobs waiting in this tenant's queue
    max_active: int | None = None    # queued + running jobs
    quota: int | None = None         # lifetime admitted jobs


class TokenBucket:
    """Classic token bucket with lazy refill and exact retry hints."""

    def __init__(self, rate: float, burst: int, *,
                 clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.burst = max(int(burst), 1)
        self._clock = clock
        self._tokens = float(self.burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_take(self) -> float | None:
        """``None`` on success; otherwise seconds until a token."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return None
        return (1.0 - self._tokens) / self.rate


@dataclass
class TenantAccount:
    """Live accounting for one tenant."""

    name: str
    policy: TenantPolicy
    bucket: TokenBucket | None = None
    queued: int = 0
    running: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0

    @property
    def active(self) -> int:
        return self.queued + self.running

    def snapshot(self) -> dict:
        return {"tenant": self.name, "queued": self.queued,
                "running": self.running, "admitted": self.admitted,
                "completed": self.completed, "failed": self.failed,
                "cancelled": self.cancelled, "rejected": self.rejected}


class TenantLedger:
    """All tenants' accounts plus the admission decision."""

    def __init__(self, policies: dict | None = None, *,
                 default_policy: TenantPolicy | None = None,
                 max_queued_total: int | None = None,
                 clock=time.monotonic) -> None:
        self.policies = dict(policies or {})
        self.default_policy = default_policy \
            if default_policy is not None else TenantPolicy()
        self.max_queued_total = max_queued_total
        self._clock = clock
        self.accounts: dict[str, TenantAccount] = {}
        #: EWMA of job service time, feeding retry_after estimates.
        self.service_time_s = 0.25

    def account(self, tenant: str) -> TenantAccount:
        acct = self.accounts.get(tenant)
        if acct is None:
            policy = self.policies.get(tenant, self.default_policy)
            bucket = TokenBucket(policy.rate, policy.burst,
                                 clock=self._clock) \
                if policy.rate else None
            acct = TenantAccount(tenant, policy, bucket)
            self.accounts[tenant] = acct
        return acct

    def observe_service_time(self, wall_s: float) -> None:
        self.service_time_s += 0.2 * (wall_s - self.service_time_s)

    def total_queued(self) -> int:
        return sum(a.queued for a in self.accounts.values())

    def admit(self, tenant: str) -> TenantAccount:
        """Check every limit; on success, count the job as queued.

        Raises a :class:`ServiceRejection` subclass naming the limit
        and (where meaningful) the retry horizon.
        """
        acct = self.account(tenant)
        policy = acct.policy
        if policy.quota is not None and acct.admitted >= policy.quota:
            acct.rejected += 1
            raise QuotaExceeded(
                f"tenant {tenant!r} exhausted its quota of "
                f"{policy.quota} jobs")
        if policy.max_active is not None \
                and acct.active >= policy.max_active:
            acct.rejected += 1
            raise QuotaExceeded(
                f"tenant {tenant!r} already has {acct.active} active "
                f"jobs (max_active={policy.max_active})",
                retry_after=self.service_time_s)
        if policy.max_queued is not None \
                and acct.queued >= policy.max_queued:
            acct.rejected += 1
            raise QueueFull(
                f"tenant {tenant!r} queue is full "
                f"({acct.queued}/{policy.max_queued})",
                retry_after=self.service_time_s)
        if self.max_queued_total is not None \
                and self.total_queued() >= self.max_queued_total:
            acct.rejected += 1
            raise QueueFull(
                f"service queue is full ({self.max_queued_total})",
                retry_after=self.service_time_s)
        if acct.bucket is not None:
            wait = acct.bucket.try_take()
            if wait is not None:
                acct.rejected += 1
                raise RateLimited(
                    f"tenant {tenant!r} over its rate of "
                    f"{policy.rate}/s", retry_after=wait)
        acct.admitted += 1
        acct.queued += 1
        return acct

    def snapshot(self) -> list[dict]:
        return [a.snapshot() for _, a in sorted(self.accounts.items())]


class FairQueue:
    """Round-robin-across-tenants FIFO of job specs.

    ``push`` appends to the tenant's own deque; ``pop`` serves tenants
    in rotation, so no tenant waits behind another's backlog more than
    one job deep.  ``push_front`` re-queues a crash-recovered job at
    the head of its tenant's deque *and* moves that tenant to the
    front of the rotation — recovery work is never penalized for the
    crash.
    """

    def __init__(self) -> None:
        self._queues: "OrderedDict[str, deque]" = OrderedDict()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def push(self, tenant: str, item) -> None:
        self._queues.setdefault(tenant, deque()).append(item)
        self._count += 1

    def push_front(self, tenant: str, item) -> None:
        self._queues.setdefault(tenant, deque()).appendleft(item)
        self._queues.move_to_end(tenant, last=False)
        self._count += 1

    def pop(self):
        """Next ``(tenant, item)`` in rotation, or ``None`` when empty."""
        while self._queues:
            tenant, queue = next(iter(self._queues.items()))
            if not queue:
                del self._queues[tenant]
                continue
            item = queue.popleft()
            self._count -= 1
            # Rotate: the served tenant goes to the back.
            self._queues.move_to_end(tenant)
            if not queue:
                del self._queues[tenant]
            return tenant, item
        return None

    def remove(self, tenant: str, match) -> bool:
        """Drop the first queued item where ``match(item)`` (cancel)."""
        queue = self._queues.get(tenant)
        if not queue:
            return False
        for item in queue:
            if match(item):
                queue.remove(item)
                self._count -= 1
                if not queue:
                    del self._queues[tenant]
                return True
        return False

    def items(self):
        for tenant, queue in self._queues.items():
            for item in queue:
                yield tenant, item
