"""repro.service — a multi-tenant flow job service.

Long-lived worker processes execute flow jobs submitted through
:class:`FlowService` (submit / status / cancel / result).  Designs
travel to workers as zero-copy shared-memory ``.pnl`` segments, job
results land in a sharded content-addressed LRU cache, tenants get
quotas, rate limits, fair queuing, and backpressure, and every job
runs through :func:`repro.orchestrate.run` — so journaling, lint
gating, and chaos-tested crash recovery apply unchanged.  SIGKILL a
worker mid-job and the job resumes on another worker, bit-identically.

``python -m repro.serve`` is the command-line front end.
"""

from repro.service.api import FlowService, service_sweep
from repro.service.cache_shard import ShardedResultCache, ShardStats
from repro.service.scheduler import (JobCancelled, JobFailed, JobState,
                                     Scheduler)
from repro.service.shm import (DesignSegment, SegmentError,
                               pack_design, sweep_leaked_segments,
                               unpack_design)
from repro.service.tenancy import (FairQueue, QueueFull, QuotaExceeded,
                                   RateLimited, ServiceRejection,
                                   TenantLedger, TenantPolicy,
                                   TokenBucket)
from repro.service.workers import (JOB_FLOW_VERSION, WorkerConfig,
                                   job_cache_key)

__all__ = [
    "FlowService", "service_sweep",
    "Scheduler", "JobState", "JobFailed", "JobCancelled",
    "ShardedResultCache", "ShardStats",
    "DesignSegment", "SegmentError", "pack_design", "unpack_design",
    "sweep_leaked_segments",
    "TenantLedger", "TenantPolicy", "TokenBucket", "FairQueue",
    "ServiceRejection", "RateLimited", "QueueFull", "QuotaExceeded",
    "WorkerConfig", "job_cache_key", "JOB_FLOW_VERSION",
]
