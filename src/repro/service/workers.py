"""Worker processes: the execution half of the flow service.

Each worker is one long-lived process on the far end of a duplex pipe.
The scheduler sends job descriptors; the worker attaches the design's
shared-memory segment (:mod:`repro.service.shm`), checks the sharded
job-result cache, and on a miss executes the job through the one
documented flow facade — :func:`repro.orchestrate.run` (or
:func:`~repro.orchestrate.resume_run` when the descriptor marks a
crash recovery) — so every job inherits journaling, lint gating, and
chaos-tested crash recovery unchanged.  Results travel back as
codec-framed bytes (:func:`~repro.orchestrate.cache.encode_value`),
the same currency the cache shards store, so a job-cache hit is a
byte relay with no decode anywhere.

A worker holds no scheduler state: SIGKILL one mid-job and the
scheduler re-queues the job with ``resume=True``; the replacement
worker replays the journaled prefix and re-executes only the frontier,
bit-identically (the property ``bench_service.py`` gates in CI).
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass

_PICKLE_PROTOCOL = 4

#: Flow/codec version folded into every job cache key: bump to
#: invalidate job-level results when the flow's semantics change.
JOB_FLOW_VERSION = "service-flow:1"


def job_cache_key(digest: str, counter: int, library,
                  options, lint: str) -> str:
    """Content key of one job execution (design + recipe + flow)."""
    from repro.orchestrate.cache import stable_hash
    return stable_hash({
        "flow": JOB_FLOW_VERSION,
        "design": digest,
        "counter": int(counter),
        "library": pickle.dumps(library, protocol=_PICKLE_PROTOCOL),
        "options": options,
        "lint": lint,
    })


@dataclass
class WorkerConfig:
    """Spawn-time configuration shipped to ``worker_main``."""

    wid: int
    cache_root: str | None          # job-cache shards + stage cache
    journal_root: str | None
    rundb_log: str | None           # concurrent telemetry log path
    cache_shards: int = 8
    cache_max_bytes: int = 512 << 20
    stage_cache: bool = True
    lint: str = "warn"


class _WorkerState:
    """Per-process lazily built caches and sinks."""

    def __init__(self, cfg: WorkerConfig) -> None:
        self.cfg = cfg
        self.job_cache = None
        self.stage_cache = None
        self.run_log = None
        if cfg.cache_root:
            from repro.service.cache_shard import ShardedResultCache
            self.job_cache = ShardedResultCache(
                os.path.join(cfg.cache_root, "jobs"),
                shards=cfg.cache_shards,
                max_bytes=cfg.cache_max_bytes)
            if cfg.stage_cache:
                from repro.orchestrate.cache import ResultCache
                self.stage_cache = ResultCache(
                    disk_dir=os.path.join(cfg.cache_root, "stages"))
        if cfg.rundb_log:
            from repro.learn.rundb import RunLog
            self.run_log = RunLog(cfg.rundb_log)


def _load_design(desc: dict):
    """``(subject, library)`` from the descriptor's transport."""
    seg_name = desc.get("segment")
    if seg_name is not None:
        from repro.service.shm import DesignSegment
        with DesignSegment.attach(seg_name, desc["segment_size"]) as seg:
            return seg.read_design()
    from repro.service.shm import unpack_design
    return unpack_design(desc["inline"])


def execute_job(desc: dict, state: _WorkerState) -> tuple[str, bytes | None, dict]:
    """Run one job descriptor to completion in this process.

    Returns ``(status, result_blob, meta)`` with ``status`` one of
    ``done``/``failed``; ``meta`` carries wall time, cache disposition,
    and the resume flag for the scheduler's telemetry.
    """
    from repro.orchestrate import TelemetrySink, resume_run, run
    from repro.orchestrate.cache import encode_value
    from repro.orchestrate.resilience import RunJournal

    t0 = time.perf_counter()
    meta: dict = {"worker": state.cfg.wid, "cache": "miss",
                  "resumed": False, "wall_s": 0.0}
    key = desc.get("job_key")
    try:
        if key and state.job_cache is not None:
            blob = state.job_cache.get_bytes(key)
            if blob is not None:
                meta["cache"] = "job-hit"
                meta["wall_s"] = time.perf_counter() - t0
                return "done", blob, meta

        subject, library = _load_design(desc)
        options = desc["options"]
        sink = TelemetrySink()
        journal_root = state.cfg.journal_root
        if journal_root and desc.get("resume") \
                and RunJournal.exists(journal_root, desc["job_id"]):
            result = resume_run(
                desc["job_id"], journal_root=journal_root,
                cache=state.stage_cache, telemetry=sink,
                lint=state.cfg.lint)
            meta["resumed"] = True
        else:
            result = run(
                subject, library, options, cache=state.stage_cache,
                telemetry=sink, journal_root=journal_root,
                run_id=desc["job_id"] if journal_root else None,
                lint=state.cfg.lint)
        blob = encode_value(result)
        if key and state.job_cache is not None \
                and str(result.status) in ("ok", "resumed"):
            # A resumed run is bit-identical to an uninterrupted one,
            # so it is as cacheable; degraded/failed runs are not.
            state.job_cache.put_bytes(key, blob)
        meta["wall_s"] = time.perf_counter() - t0
        if state.run_log is not None:
            _log_spans(state, desc, sink)
        return "done", blob, meta
    except BaseException as err:  # noqa: BLE001 - reported to scheduler
        meta["wall_s"] = time.perf_counter() - t0
        meta["error"] = repr(err)
        return "failed", None, meta


def _log_spans(state: _WorkerState, desc: dict, sink) -> None:
    """Append this job's stage spans to the shared telemetry log."""
    try:
        for span in sink.spans:
            state.run_log.append("telemetry", {
                "design": desc.get("design", ""),
                "stage": span.stage,
                "wall_s": span.wall_s,
                "status": span.status,
                "cache": span.cache,
                "retries": span.retries,
                "peak_rss_kb": span.peak_rss_kb,
                "leaked_threads": span.leaked_threads,
            })
    except Exception:  # noqa: BLE001 - telemetry must not fail jobs
        pass


def worker_main(cfg: WorkerConfig, conn) -> None:
    """Worker process entry point: serve jobs until ``stop`` or EOF."""
    state = _WorkerState(cfg)
    try:
        conn.send(("ready", cfg.wid, os.getpid()))
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break                # scheduler died; exit quietly
            if msg[0] == "stop":
                break
            desc = msg[1]
            status, blob, meta = execute_job(desc, state)
            try:
                conn.send(("done", desc["job_id"], status, blob, meta))
            except (BrokenPipeError, OSError):
                break
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
