"""The asynchronous job scheduler behind :class:`repro.service.FlowService`.

One dispatcher loop (a daemon thread) owns all scheduling state and
multiplexes over worker pipes and process sentinels with
``multiprocessing.connection.wait`` — event-driven, no polling sleeps
on the hot path.  Submissions are admitted through the tenant ledger
(:mod:`repro.service.tenancy`), queued in a round-robin
:class:`~repro.service.tenancy.FairQueue`, and pulled by idle workers.

Scheduling policy, in dispatch order:

* **Job-cache short-circuit** — the dispatcher probes the sharded
  job-result cache before spending a worker; a hit completes the job
  in the parent with no process hop at all.
* **Single-flight coalescing** — a job whose content key is already
  executing parks as a *waiter* and completes with the first copy's
  result (flows are deterministic, so results are interchangeable);
  a thousand identical submissions cost one execution.
* **Affinity + work stealing** — every job hashes to a preferred
  worker (keeping that worker's page cache and journal directory warm
  for a given design); an idle worker with no work of its own takes
  the next fair-queue job regardless of affinity, and the mismatch is
  counted as a steal (``stats()["steals"]``).

Crash recovery: a worker death (SIGKILL, OOM, chaos) fires its
sentinel; the dispatcher re-queues the in-flight job at the *front*
of its tenant's queue with ``resume=True`` — the replacement worker
replays the job's write-ahead journal and re-executes only the
frontier — and respawns the worker slot.  Zero jobs are lost; resumed
results are bit-identical (gated by ``bench_service.py``).
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import threading
import time
import uuid
from dataclasses import dataclass, field
from enum import Enum
from multiprocessing.connection import wait as _mpwait

from repro.service.tenancy import FairQueue, TenantLedger
from repro.service.workers import (WorkerConfig, job_cache_key,
                                   worker_main)

_PICKLE_PROTOCOL = 4


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    def __str__(self) -> str:
        return self.value

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED,
                        JobState.CANCELLED)


class JobFailed(RuntimeError):
    """The job's flow raised; the original error is in the message."""


class JobCancelled(RuntimeError):
    """The job was cancelled before it produced a result."""


@dataclass
class JobSpec:
    """One submitted job, parent-side."""

    job_id: str
    tenant: str
    options: object
    design: str                     # display name of the subject
    digest: str                     # content identity (affinity basis)
    job_key: str | None             # job-cache key (None: uncacheable)
    seg_key: tuple | None           # segment table key
    affinity: int                   # preferred worker slot
    submitted_s: float
    inline: bytes | None = None     # transport when shm is off
    state: JobState = JobState.QUEUED
    resume: bool = False            # re-dispatch after a worker death
    dispatched_s: float | None = None
    finished_s: float | None = None
    worker: int | None = None
    stolen: bool = False
    cache: str | None = None        # job-hit | parent-hit | coalesced | miss
    resumed: bool = False
    error: str | None = None
    blob: bytes | None = None       # encoded FlowResult
    event: threading.Event = field(default_factory=threading.Event,
                                   repr=False)

    def record(self) -> dict:
        """JSON-ready accounting row (the service telemetry record)."""
        queued_s = (self.dispatched_s or self.finished_s
                    or self.submitted_s) - self.submitted_s
        exec_s = 0.0
        if self.dispatched_s is not None and self.finished_s is not None:
            exec_s = self.finished_s - self.dispatched_s
        return {"job_id": self.job_id, "tenant": self.tenant,
                "design": self.design, "state": str(self.state),
                "worker": self.worker, "queued_s": queued_s,
                "exec_s": exec_s, "cache": self.cache,
                "resumed": self.resumed, "stolen": self.stolen,
                "error": self.error}


@dataclass
class _Slot:
    """One worker process slot (the slot survives its processes)."""

    wid: int
    proc: multiprocessing.Process | None = None
    conn: object = None
    pid: int | None = None
    idle: bool = False
    stopped: bool = False
    current: JobSpec | None = None


@dataclass
class _Segment:
    seg: object                     # DesignSegment (owner) or None
    payload: bytes | None           # inline transport fallback
    refs: int = 0


class Scheduler:
    """Work-stealing multi-worker job scheduler (see module docs)."""

    def __init__(self, *, workers: int = 2,
                 ledger: TenantLedger | None = None,
                 cache_root: str | None = None,
                 journal_root: str | None = None,
                 rundb_log: str | None = None,
                 cache_shards: int = 8,
                 cache_max_bytes: int = 512 << 20,
                 stage_cache: bool = True,
                 use_shm: bool = True,
                 lint: str = "warn") -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self.nworkers = workers
        self.ledger = ledger if ledger is not None else TenantLedger()
        self.worker_cfg = WorkerConfig(
            wid=-1, cache_root=cache_root, journal_root=journal_root,
            rundb_log=rundb_log, cache_shards=cache_shards,
            cache_max_bytes=cache_max_bytes, stage_cache=stage_cache,
            lint=lint)
        self.use_shm = use_shm
        self._lock = threading.RLock()
        self._jobs: dict[str, JobSpec] = {}
        self._queue = FairQueue()
        self._slots: list[_Slot] = []
        self._segments: dict[tuple, _Segment] = {}
        self._lib_tokens: dict[int, tuple] = {}   # id -> (lib, token)
        self._inflight: dict[str, JobSpec] = {}   # job_key -> leader
        self._waiters: dict[str, list[JobSpec]] = {}
        self._dispatch_log: list[str] = []
        self._stats = {"submitted": 0, "completed": 0, "failed": 0,
                       "cancelled": 0, "rejected": 0, "steals": 0,
                       "affinity_hits": 0, "parent_hits": 0,
                       "worker_hits": 0, "coalesced": 0, "resumed": 0,
                       "respawns": 0, "segments": 0}
        self._job_counter = itertools.count()
        self._stopping = False
        self._closed = False
        self._run_log = None
        if rundb_log:
            from repro.learn.rundb import RunLog
            self._run_log = RunLog(rundb_log)
        self._job_cache = None
        if cache_root:
            from repro.service.cache_shard import ShardedResultCache
            import os
            self._job_cache = ShardedResultCache(
                os.path.join(cache_root, "jobs"), shards=cache_shards,
                max_bytes=cache_max_bytes)
        # Reclaim segments a previously killed service left behind.
        if use_shm:
            from repro.service.shm import sweep_leaked_segments
            try:
                sweep_leaked_segments()
            except OSError:  # pragma: no cover - registry dir races
                pass
        self._wake_r, self._wake_w = multiprocessing.Pipe(duplex=False)
        self._wake_lock = threading.Lock()
        for wid in range(workers):
            self._slots.append(self._spawn(wid))
        self._loop_thread = threading.Thread(
            target=self._loop, name="repro-service-scheduler",
            daemon=True)
        self._loop_thread.start()

    # -- public API ----------------------------------------------------

    def submit(self, subject, library, options, *,
               tenant: str = "default") -> str:
        """Admit and queue one job; returns its id.

        Raises a :class:`~repro.service.tenancy.ServiceRejection`
        subclass (with ``retry_after``) when the tenant is over quota,
        over rate, or the queue is full.
        """
        if self._closed or self._stopping:
            raise RuntimeError("service is shut down")
        digest, counter, packed = self._identify(subject)
        with self._lock:
            try:
                self.ledger.admit(tenant)
            except Exception:
                self._stats["rejected"] += 1
                raise
            job_id = f"svc{next(self._job_counter):06d}-" \
                     f"{uuid.uuid4().hex[:6]}"
            job_key = None
            if self._job_cache is not None and digest is not None:
                job_key = job_cache_key(
                    digest, counter, library, options,
                    self.worker_cfg.lint)
            seg_key, inline = self._place_design(
                subject, library, digest, counter, packed)
            job = JobSpec(
                job_id=job_id, tenant=tenant, options=options,
                design=getattr(subject, "name", type(subject).__name__),
                digest=digest or job_id, job_key=job_key,
                seg_key=seg_key, inline=inline,
                affinity=self._affinity(digest or job_id),
                submitted_s=time.monotonic())
            self._jobs[job_id] = job
            self._queue.push(tenant, job)
            self._stats["submitted"] += 1
        self._wake()
        return job_id

    def status(self, job_id: str) -> dict:
        with self._lock:
            return self._job(job_id).record()

    def result(self, job_id: str, timeout: float | None = None):
        """Block for the job's :class:`FlowResult` (a fresh copy)."""
        job = self._job(job_id)
        if not job.event.wait(timeout):
            raise TimeoutError(f"job {job_id} still "
                               f"{job.state} after {timeout}s")
        if job.state == JobState.FAILED:
            raise JobFailed(f"job {job_id} failed: {job.error}")
        if job.state == JobState.CANCELLED:
            raise JobCancelled(f"job {job_id} was cancelled")
        from repro.orchestrate.cache import decode_value
        return decode_value(job.blob)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job: queued jobs never run, running jobs have
        their worker killed (the slot respawns).  Returns ``False``
        for jobs already terminal."""
        with self._lock:
            job = self._job(job_id)
            if job.state.terminal:
                return False
            acct = self.ledger.account(job.tenant)
            if job.state == JobState.QUEUED:
                removed = self._queue.remove(
                    job.tenant, lambda item: item is job)
                if not removed:      # parked as a coalescing waiter
                    for waiters in self._waiters.values():
                        if job in waiters:
                            waiters.remove(job)
                            break
                acct.queued -= 1
                self._finish(job, JobState.CANCELLED)
                return True
            # RUNNING: kill the worker out from under it.
            slot = self._slots[job.worker]
            acct.running -= 1
            self._finish(job, JobState.CANCELLED)
            if slot.proc is not None and slot.proc.is_alive():
                slot.proc.kill()
            return True

    def running_jobs(self) -> list[tuple[str, int]]:
        """``(job_id, worker_pid)`` pairs currently executing."""
        with self._lock:
            return [(s.current.job_id, s.pid) for s in self._slots
                    if s.current is not None and s.pid is not None
                    and not s.current.state.terminal]

    def stats(self) -> dict:
        with self._lock:
            out = dict(self._stats)
            out["queued"] = len(self._queue)
            out["workers"] = self.nworkers
            out["tenants"] = self.ledger.snapshot()
            if self._job_cache is not None:
                out["job_cache"] = self._job_cache.telemetry()
            return out

    def job_records(self) -> list[dict]:
        with self._lock:
            return [j.record() for j in self._jobs.values()]

    def dispatch_log(self) -> list[str]:
        """Job ids in the order the dispatcher started them."""
        with self._lock:
            return list(self._dispatch_log)

    def drain(self, timeout: float | None = None) -> None:
        """Block until every submitted job is terminal."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        for job in list(self._jobs.values()):
            remaining = None if deadline is None \
                else max(deadline - time.monotonic(), 0.0)
            if not job.event.wait(remaining):
                raise TimeoutError(
                    f"jobs still pending after {timeout}s")

    def close(self, *, drain: bool = True,
              timeout: float | None = None) -> None:
        """Shut down: optionally drain, else cancel the queue; stop
        workers; unlink every design segment."""
        if self._closed:
            return
        if drain:
            self.drain(timeout)
        else:
            with self._lock:
                queued = [j.job_id for j in self._jobs.values()
                          if j.state == JobState.QUEUED]
            for job_id in queued:
                self.cancel(job_id)
        self._stopping = True
        self._wake()
        self._loop_thread.join(timeout=30)
        with self._lock:
            for key in list(self._segments):
                self._drop_segment(key, force=True)
        self._closed = True

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close(drain=exc[0] is None)

    # -- identity and transport ----------------------------------------

    def _identify(self, subject):
        """``(digest, counter, packed)`` of the subject, or pickles."""
        from repro.netlist.circuit import Netlist
        from repro.netlist.packed import PackedNetlist
        if isinstance(subject, Netlist):
            packed = subject.to_packed()
        elif isinstance(subject, PackedNetlist):
            packed = subject
        else:
            from repro.orchestrate.cache import stable_hash
            blob = pickle.dumps(subject, protocol=_PICKLE_PROTOCOL)
            return stable_hash(blob), 0, None
        return packed.content_digest(), int(packed.counter), packed

    def _lib_token(self, library) -> int:
        entry = self._lib_tokens.get(id(library))
        if entry is None or entry[0] is not library:
            entry = (library, len(self._lib_tokens))
            self._lib_tokens[id(library)] = entry
        return entry[1]

    def _place_design(self, subject, library, digest, counter, packed):
        """Get-or-create the transport for this design.

        Returns ``(seg_key, inline)``: one distinct design packs once
        no matter how many jobs reference it.
        """
        key = (digest, counter, self._lib_token(library))
        entry = self._segments.get(key)
        if entry is None:
            from repro.service.shm import DesignSegment, pack_design
            payload = pack_design(packed if packed is not None
                                  else subject, library)
            if self.use_shm:
                entry = _Segment(DesignSegment.create(payload), None)
            else:
                entry = _Segment(None, payload)
            self._segments[key] = entry
            self._stats["segments"] += 1
        entry.refs += 1
        return key, (entry.payload if entry.seg is None else None)

    def _drop_segment(self, key, *, force: bool = False) -> None:
        entry = self._segments.get(key)
        if entry is None:
            return
        entry.refs -= 1
        if entry.refs <= 0 or force:
            if entry.seg is not None:
                entry.seg.unlink()
            del self._segments[key]

    def _affinity(self, digest: str) -> int:
        try:
            return int(digest[:8], 16) % self.nworkers
        except ValueError:
            return hash(digest) % self.nworkers

    # -- worker lifecycle ----------------------------------------------

    def _spawn(self, wid: int) -> _Slot:
        import dataclasses
        cfg = dataclasses.replace(self.worker_cfg, wid=wid)
        parent_conn, child_conn = multiprocessing.Pipe()
        proc = multiprocessing.Process(
            target=worker_main, args=(cfg, child_conn),
            name=f"repro-service-worker-{wid}", daemon=True)
        proc.start()
        child_conn.close()
        return _Slot(wid=wid, proc=proc, conn=parent_conn)

    def _wake(self) -> None:
        with self._wake_lock:
            try:
                self._wake_w.send(b"w")
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass

    # -- the dispatcher loop -------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._lock:
                slots = [s for s in self._slots if s.proc is not None
                         and not s.stopped]
                waitables = [self._wake_r]
                waitables += [s.conn for s in slots]
                waitables += [s.proc.sentinel for s in slots]
                if self._stopping and self._try_stop_workers():
                    return
            try:
                ready = _mpwait(waitables, timeout=0.5)
            except OSError:          # a conn died mid-wait; re-scan
                ready = []
            if self._wake_r in ready:
                try:
                    while self._wake_r.poll():
                        self._wake_r.recv()
                except (EOFError, OSError):  # pragma: no cover
                    pass
            with self._lock:
                for slot in list(self._slots):
                    if slot.conn in ready:
                        self._drain_conn(slot)
                for slot in list(self._slots):
                    if slot.proc is not None \
                            and slot.proc.sentinel in ready \
                            and slot.proc.exitcode is not None:
                        self._handle_death(slot)
                self._dispatch()

    def _try_stop_workers(self) -> bool:
        """Stop idle workers; ``True`` when every slot is down."""
        alive = False
        for slot in self._slots:
            if slot.proc is None or slot.stopped:
                continue
            if not slot.proc.is_alive():
                slot.proc.join()
                slot.stopped = True
                continue
            alive = True
            if slot.idle and slot.current is None:
                try:
                    slot.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
                slot.idle = False
        if not alive:
            for slot in self._slots:
                if slot.proc is not None:
                    slot.proc.join(timeout=5)
            return True
        return False

    def _drain_conn(self, slot: _Slot) -> None:
        try:
            while slot.conn.poll():
                msg = slot.conn.recv()
                if msg[0] == "ready":
                    slot.pid = msg[2]
                    slot.idle = True
                elif msg[0] == "done":
                    self._complete(slot, *msg[1:])
        except (EOFError, OSError):
            pass                     # the sentinel path handles death

    def _handle_death(self, slot: _Slot) -> None:
        slot.proc.join()
        job = slot.current
        slot.current = None
        slot.idle = False
        if job is not None and not job.state.terminal:
            # Lost mid-flight: recover at the front of the fair queue.
            if job.job_key is not None:
                self._inflight.pop(job.job_key, None)
            job.state = JobState.QUEUED
            job.resume = True
            job.worker = None
            acct = self.ledger.account(job.tenant)
            acct.running -= 1
            acct.queued += 1
            self._queue.push_front(job.tenant, job)
        elif job is not None and job.job_key is not None:
            # Cancelled-by-kill: release the key and its waiters.
            self._inflight.pop(job.job_key, None)
            for waiter in self._waiters.pop(job.job_key, []):
                if not waiter.state.terminal:
                    self._queue.push_front(waiter.tenant, waiter)
        if self._stopping:
            slot.proc = None
            slot.stopped = True
            return
        self._stats["respawns"] += 1
        fresh = self._spawn(slot.wid)
        slot.proc, slot.conn, slot.pid = fresh.proc, fresh.conn, None

    # -- dispatch and completion ---------------------------------------

    def _idle_slots(self) -> list[_Slot]:
        return [s for s in self._slots
                if s.idle and s.current is None and not s.stopped]

    def _dispatch(self) -> None:
        if self._stopping:
            return
        while len(self._queue):
            idle = self._idle_slots()
            popped = None
            # Fast paths that need no worker run regardless of idleness.
            popped = self._queue.pop()
            if popped is None:
                return
            _, job = popped
            if job.state.terminal:   # cancelled while queued
                continue
            if self._complete_from_cache(job):
                continue
            if self._coalesce(job):
                continue
            if not idle:
                # No worker free: put it back where it came from.
                self._queue.push_front(job.tenant, job)
                return
            slot = self._pick_slot(idle, job)
            self._send_job(slot, job)

    def _complete_from_cache(self, job: JobSpec) -> bool:
        if job.job_key is None or self._job_cache is None:
            return False
        blob = self._job_cache.get_bytes(job.job_key)
        if blob is None:
            return False
        acct = self.ledger.account(job.tenant)
        acct.queued -= 1
        acct.completed += 1
        job.dispatched_s = job.finished_s = time.monotonic()
        job.cache = "parent-hit"
        job.blob = blob
        self._stats["parent_hits"] += 1
        self._stats["completed"] += 1
        self._dispatch_log.append(job.job_id)
        self._drop_segment(job.seg_key)
        self._log_service_record(job)
        self._finish(job, JobState.DONE, count=False)
        return True

    def _coalesce(self, job: JobSpec) -> bool:
        if job.job_key is None or job.job_key not in self._inflight:
            return False
        self._waiters.setdefault(job.job_key, []).append(job)
        self._stats["coalesced"] += 1
        return True

    def _pick_slot(self, idle: list[_Slot], job: JobSpec) -> _Slot:
        for slot in idle:
            if slot.wid == job.affinity:
                self._stats["affinity_hits"] += 1
                return slot
        # Affinity worker is busy (or down): someone else steals it.
        self._stats["steals"] += 1
        job.stolen = True
        return idle[0]

    def _send_job(self, slot: _Slot, job: JobSpec) -> None:
        desc = {"job_id": job.job_id, "job_key": job.job_key,
                "options": job.options, "design": job.design,
                "resume": job.resume, "tenant": job.tenant}
        entry = self._segments.get(job.seg_key)
        if entry is not None and entry.seg is not None:
            desc["segment"] = entry.seg.name
            desc["segment_size"] = entry.seg.size
        else:
            desc["inline"] = job.inline if job.inline is not None \
                else (entry.payload if entry is not None else None)
        try:
            slot.conn.send(("job", desc))
        except (BrokenPipeError, OSError):
            # Worker died between wait() and send: recover via its
            # sentinel; keep the job queued.
            self._queue.push_front(job.tenant, job)
            slot.idle = False
            return
        acct = self.ledger.account(job.tenant)
        acct.queued -= 1
        acct.running += 1
        job.state = JobState.RUNNING
        job.worker = slot.wid
        job.dispatched_s = time.monotonic()
        slot.idle = False
        slot.current = job
        if job.job_key is not None:
            self._inflight[job.job_key] = job
        self._dispatch_log.append(job.job_id)

    def _complete(self, slot: _Slot, job_id: str, status: str,
                  blob: bytes | None, meta: dict) -> None:
        job = self._jobs.get(job_id)
        slot.current = None
        slot.idle = True
        if job is None:              # pragma: no cover - unknown job
            return
        if job.state.terminal:       # cancelled while running; the
            return                   # worker outran the kill
        acct = self.ledger.account(job.tenant)
        acct.running -= 1
        job.finished_s = time.monotonic()
        job.cache = meta.get("cache")
        job.resumed = bool(meta.get("resumed"))
        if job.resumed:
            self._stats["resumed"] += 1
        if meta.get("cache") == "job-hit":
            self._stats["worker_hits"] += 1
        self.ledger.observe_service_time(
            max(meta.get("wall_s", 0.0), 1e-4))
        if job.job_key is not None:
            self._inflight.pop(job.job_key, None)
        waiters = self._waiters.pop(job.job_key, []) \
            if job.job_key is not None else []
        self._drop_segment(job.seg_key)
        if status == "done":
            acct.completed += 1
            job.blob = blob
            self._stats["completed"] += 1
            job.state = JobState.DONE
        else:
            acct.failed += 1
            job.error = meta.get("error", "unknown worker error")
            self._stats["failed"] += 1
            job.state = JobState.FAILED
        self._log_service_record(job)
        job.event.set()
        for waiter in waiters:
            if waiter.state.terminal:
                continue
            wacct = self.ledger.account(waiter.tenant)
            wacct.queued -= 1
            waiter.dispatched_s = waiter.finished_s = time.monotonic()
            waiter.cache = "coalesced"
            self._drop_segment(waiter.seg_key)
            if status == "done":
                wacct.completed += 1
                waiter.blob = blob
                self._stats["completed"] += 1
                waiter.state = JobState.DONE
            else:
                wacct.failed += 1
                waiter.error = job.error
                self._stats["failed"] += 1
                waiter.state = JobState.FAILED
            self._log_service_record(waiter)
            waiter.event.set()

    def _finish(self, job: JobSpec, state: JobState, *,
                count: bool = True) -> None:
        job.state = state
        job.finished_s = job.finished_s or time.monotonic()
        if count and state == JobState.CANCELLED:
            self.ledger.account(job.tenant).cancelled += 1
            self._stats["cancelled"] += 1
            self._drop_segment(job.seg_key)
            self._log_service_record(job)
        job.event.set()

    def _log_service_record(self, job: JobSpec) -> None:
        if self._run_log is None:
            return
        try:
            self._run_log.append("service", job.record())
        except Exception:  # noqa: BLE001 - telemetry never kills jobs
            pass

    def _job(self, job_id: str) -> JobSpec:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job
