"""The event-driven simulation engine."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.netlist.circuit import Netlist
from repro.timing.sta import WireModel


@dataclass
class SimTrace:
    """Result of simulating one input transition.

    ``waveforms[net]`` is the list of ``(time_ps, value)`` changes
    after t=0 (the initial value is ``initial[net]``).
    """

    initial: dict
    waveforms: dict
    settle_time_ps: float

    def final_value(self, net: str) -> bool:
        events = self.waveforms.get(net)
        if events:
            return events[-1][1]
        return self.initial[net]

    def transitions(self, net: str) -> int:
        """Number of output changes on a net."""
        return len(self.waveforms.get(net, ()))

    def total_transitions(self) -> int:
        return sum(len(v) for v in self.waveforms.values())

    def glitches(self, net: str) -> int:
        """Transitions beyond the minimum needed to reach the final
        value (0 or 1 functional transitions; the rest are glitches)."""
        n = self.transitions(net)
        needed = 1 if self.final_value(net) != self.initial[net] else 0
        return max(0, n - needed)

    def total_glitches(self) -> int:
        return sum(self.glitches(net) for net in self.waveforms)


class EventSimulator:
    """Transport-delay event simulation of a mapped netlist.

    Gate delay is the same linear model STA uses (cell intrinsic plus
    drive resistance times load); an optional :class:`WireModel` adds
    placed-net delays.  Inertial filtering with each gate's delay as
    the pulse-rejection window is applied, matching real gates that
    swallow pulses shorter than their response time when
    ``inertial=True`` (the default is transport, which upper-bounds
    glitching).
    """

    def __init__(self, netlist: Netlist,
                 wire_model: WireModel | None = None, *,
                 inertial: bool = False):
        self.netlist = netlist
        self.wire = wire_model or WireModel()
        self.inertial = inertial
        self._fanout = netlist.fanout_map()
        self._delay = {}
        for gate in netlist.combinational_gates():
            loads = self._fanout.get(gate.output, [])
            load_ff = sum(g.cell.input_cap_ff for g, _ in loads) + \
                self.wire.net_cap_ff(gate.output, len(loads))
            self._delay[gate.name] = gate.cell.delay_ps(load_ff)

    # ------------------------------------------------------------------

    def _evaluate(self, gate, values: dict) -> bool:
        tt = gate.cell.function
        idx = 0
        for bit, pin in enumerate(gate.cell.inputs):
            if values[gate.pins[pin]]:
                idx |= 1 << bit
        return bool(tt.bits >> idx & 1)

    def simulate_transition(self, before: dict, after: dict,
                            *, max_events: int = 100_000) -> SimTrace:
        """Propagate the change from input vector ``before`` to
        ``after``; both map primary input net -> bool.

        Flop outputs are held at their ``before`` values (one
        combinational cycle).  Returns the full event trace.
        """
        nl = self.netlist
        for vec in (before, after):
            missing = set(nl.primary_inputs) - set(vec)
            if missing:
                raise ValueError(f"inputs missing values: {missing}")
        # Steady state under `before`.
        values: dict = dict(before)
        for flop in nl.sequential_gates():
            values[flop.output] = before.get(flop.output, False)
        order = nl.topological_gates()
        for gate in order:
            values[gate.output] = self._evaluate(gate, values)
        initial = dict(values)

        waveforms: dict = {}
        queue: list = []
        counter = itertools.count()
        # Seed events: primary input changes at t=0.
        current = dict(values)
        for net in nl.primary_inputs:
            if after[net] != before[net]:
                heapq.heappush(queue, (0.0, next(counter), net,
                                       after[net]))
        events_processed = 0
        settle = 0.0
        while queue:
            events_processed += 1
            if events_processed > max_events:
                raise RuntimeError("event budget exhausted "
                                   "(oscillating design?)")
            t, _, net, value = heapq.heappop(queue)
            if current[net] == value:
                continue
            current[net] = value
            waveforms.setdefault(net, []).append((t, value))
            settle = max(settle, t)
            for gate, _pin in self._fanout.get(net, ()):
                if gate.cell.is_sequential:
                    continue
                new_out = self._evaluate(gate, current)
                delay = self._delay[gate.name] + \
                    self.wire.net_delay_ps(net)
                heapq.heappush(queue, (t + delay, next(counter),
                                       gate.output, new_out))
        if self.inertial:
            waveforms = {net: self._inertial_filter(net, events, initial)
                         for net, events in waveforms.items()}
            waveforms = {n: e for n, e in waveforms.items() if e}
        return SimTrace(initial=initial, waveforms=waveforms,
                        settle_time_ps=settle)

    def _inertial_filter(self, net: str, events: list,
                         initial: dict) -> list:
        """Drop pulses shorter than the driving gate's delay."""
        driver = self.netlist.driver_of(net)
        window = self._delay.get(driver.name, 0.0) if driver else 0.0
        out = []
        value = initial[net]
        for t, v in events:
            if out and t - out[-1][0] < window and out[-1][1] != v:
                out.pop()  # the previous pulse was too short
                if out:
                    value = out[-1][1]
                else:
                    value = initial[net]
                if v == value:
                    continue
            if v != value:
                out.append((t, v))
                value = v
        return out


def glitch_power_uw(netlist: Netlist, trace: SimTrace, *,
                    freq_ghz: float = 1.0) -> float:
    """Energy of the glitch transitions, expressed as power at a clock.

    Each glitch charges the driving gate's load exactly like a real
    transition; this is the component zero-delay power analysis misses.
    """
    node = netlist.library.node
    fanout = netlist.fanout_map()
    energy_fj = 0.0
    for net in trace.waveforms:
        glitches = trace.glitches(net)
        if glitches == 0:
            continue
        driver = netlist.driver_of(net)
        if driver is None:
            continue
        loads = fanout.get(net, [])
        load_ff = sum(g.cell.input_cap_ff for g, _ in loads)
        energy_fj += glitches * driver.cell.switch_energy_fj(
            node.vdd, load_ff)
    return energy_fj * freq_ghz
