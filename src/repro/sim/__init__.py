"""Event-driven gate-level timing simulation.

Zero-delay simulation (what :meth:`Netlist.simulate` does) cannot see
*glitches* — the spurious transitions unbalanced path delays create,
which burn real dynamic power the E5 catalogue never recovers.  The
event-driven engine propagates timed events through the mapped netlist
and counts them, giving the glitch-power estimate and a measurable
reason why delay-balancing passes (``balance``) also save power.
"""

from repro.sim.event_sim import (
    EventSimulator,
    SimTrace,
    glitch_power_uw,
)

__all__ = [
    "EventSimulator",
    "SimTrace",
    "glitch_power_uw",
]
