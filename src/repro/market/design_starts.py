"""Design-start distribution across technology nodes.

Anchored to the 2015 distribution the panel quotes; the forecast model
migrates a small share of starts downward each year while new
established-node starts (IoT) backfill — which is exactly why the
distribution "won't change significantly over the next decade".
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Share of 2015 design starts per node, calibrated to the panel's two
#: anchors: >90% at 32/28 nm and above; 180 nm alone >25%.
DESIGN_STARTS_2015: dict = {
    "250nm": 0.06,
    "180nm": 0.26,
    "130nm": 0.14,
    "90nm": 0.12,
    "65nm": 0.13,
    "45nm": 0.09,
    "32nm": 0.06,
    "28nm": 0.06,
    "20nm": 0.03,
    "16nm": 0.02,
    "14nm": 0.02,
    "10nm": 0.01,
}


@dataclass
class DesignStartModel:
    """Evolving design-start distribution.

    Each year ``migration_rate`` of each node's starts moves one node
    down the ladder (designs chasing density), while
    ``established_influx`` of the total appears as brand-new starts
    spread over the established nodes (the IoT backfill) — weighted
    toward 180 nm, the cost-optimal analog/sensor node.
    """

    shares: dict = field(default_factory=lambda: dict(DESIGN_STARTS_2015))
    migration_rate: float = 0.04
    established_influx: float = 0.035

    _LADDER = ["250nm", "180nm", "130nm", "90nm", "65nm", "45nm",
               "32nm", "28nm", "20nm", "16nm", "14nm", "10nm",
               "7nm", "5nm"]
    _INFLUX_WEIGHTS = {"250nm": 0.1, "180nm": 0.5, "130nm": 0.2,
                       "90nm": 0.1, "65nm": 0.1}

    def __post_init__(self) -> None:
        total = sum(self.shares.values())
        if abs(total - 1.0) > 0.02:
            raise ValueError(f"shares must sum to ~1 (got {total:.3f})")

    # ------------------------------------------------------------------

    def established_share(self) -> float:
        """Share of starts at 28 nm and above."""
        return sum(v for node, v in self.shares.items()
                   if self._is_established(node))

    @staticmethod
    def _is_established(node: str) -> bool:
        return float(node.rstrip("nm")) >= 28

    def share_of(self, node: str) -> float:
        return self.shares.get(node, 0.0)

    def most_designed_node(self) -> str:
        """The node with the largest share."""
        return max(self.shares, key=self.shares.get)

    # ------------------------------------------------------------------

    def step_year(self) -> None:
        """Advance the distribution one year."""
        ladder = [n for n in self._LADDER if n in self.shares or
                  n in ("7nm", "5nm")]
        new = {n: self.shares.get(n, 0.0) for n in ladder}
        # Downward migration.
        for i, node in enumerate(ladder[:-1]):
            moved = self.shares.get(node, 0.0) * self.migration_rate
            new[node] -= moved
            new[ladder[i + 1]] = new.get(ladder[i + 1], 0.0) + moved
        # Established-node influx (new IoT designs).
        influx = self.established_influx
        for node in new:
            new[node] *= (1.0 - influx)
        for node, w in self._INFLUX_WEIGHTS.items():
            new[node] = new.get(node, 0.0) + influx * w
        self.shares = new

    def forecast(self, years: int) -> list:
        """Yearly snapshots: [(year_offset, established_share,
        share_180nm)]."""
        if years < 0:
            raise ValueError("years must be non-negative")
        out = [(0, self.established_share(), self.share_of("180nm"))]
        for y in range(1, years + 1):
            self.step_year()
            out.append((y, self.established_share(),
                        self.share_of("180nm")))
        return out
