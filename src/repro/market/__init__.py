"""Market modeling: design starts, IoT archetypes, two-path forecast.

Domic (E11): "more than 90% of design starts are happening at 32/28
nanometers and above, and 180 nanometers is by far the most 'designed'
technology node, with more than 25% of the total design starts every
year.  This won't change significantly over the next decade."

Sawicki: the IoT wave "does not require the next technology node to
implement", sending the industry down "two parallel development paths"
— continued scaling (infrastructure) and IoT (established nodes).
"""

from repro.market.design_starts import (
    DESIGN_STARTS_2015,
    DesignStartModel,
)
from repro.market.iot import (
    IOT_ARCHETYPES,
    IotArchetype,
    TwoPathForecast,
    infrastructure_demand,
    two_path_forecast,
)
from repro.market.roadmap import (
    cost_scaling_stalls,
    density_doubling_years,
    project_roadmap,
)

__all__ = [
    "DESIGN_STARTS_2015",
    "DesignStartModel",
    "IotArchetype",
    "IOT_ARCHETYPES",
    "two_path_forecast",
    "TwoPathForecast",
    "infrastructure_demand",
    "project_roadmap",
    "cost_scaling_stalls",
    "density_doubling_years",
]
