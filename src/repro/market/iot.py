"""IoT archetypes and the two-path industry forecast.

Sawicki's taxonomy: "the Fitbit in my pocket, an internet gateway in my
car, and an industrial manufacturing solution.  All have in common a
few elements: a radio to communicate, a processor to manage data, and,
often, a sensor to collect data."  And the two paths: IoT devices reuse
established nodes, while the data they generate drives advanced-node
infrastructure — "a broadly deployed IOT would require a massive
networking and server infrastructure."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tech.library import get_node


@dataclass(frozen=True)
class IotArchetype:
    """One IoT device class."""

    name: str
    node: str                    # implementation node
    die_mm2: float
    units_millions_2015: float
    unit_growth: float           # annual growth rate
    data_mb_per_day: float       # upstream data per device

    def units_in_year(self, years_from_2015: int) -> float:
        """Installed-base additions (millions) in a given year."""
        if years_from_2015 < 0:
            raise ValueError("year must be >= 0")
        return self.units_millions_2015 * \
            (1 + self.unit_growth) ** years_from_2015


#: Sawicki's three examples, calibrated to 2015-era analyst numbers.
IOT_ARCHETYPES: list = [
    IotArchetype("wearable", "65nm", 10.0, 80.0, 0.18, 5.0),
    IotArchetype("car_gateway", "28nm", 60.0, 18.0, 0.22, 400.0),
    IotArchetype("industrial", "180nm", 25.0, 120.0, 0.25, 40.0),
]


@dataclass
class TwoPathForecast:
    """Yearly silicon demand split between the two paths."""

    years: list = field(default_factory=list)
    iot_wafers_300mm: list = field(default_factory=list)      # established
    infra_wafers_300mm: list = field(default_factory=list)    # advanced

    def crossover_year(self):
        """First year infrastructure wafer demand exceeds IoT's."""
        for y, iot, infra in zip(self.years, self.iot_wafers_300mm,
                                 self.infra_wafers_300mm):
            if infra > iot:
                return y
        return None


def infrastructure_demand(total_data_pb_per_day: float, *,
                          server_node: str = "14nm",
                          pb_per_server_day: float = 0.02,
                          server_die_mm2: float = 400.0) -> dict:
    """Servers and advanced wafers needed for an IoT data load.

    Every ``pb_per_server_day`` of daily traffic needs a server; each
    server needs one large advanced-node die (plus switches, amortized
    into the per-server figure).
    """
    if total_data_pb_per_day < 0:
        raise ValueError("data volume must be non-negative")
    servers = total_data_pb_per_day / pb_per_server_day
    node = get_node(server_node)
    from repro.mfg.cost import dies_per_wafer
    dpw = dies_per_wafer(server_die_mm2)
    wafers = servers / max(dpw, 1)
    return {
        "servers": servers,
        "wafers_300mm": wafers,
        "node": node.name,
    }


def two_path_forecast(years: int = 10, *,
                      archetypes: list | None = None) -> TwoPathForecast:
    """Project both demand paths forward from 2015.

    IoT silicon lands on each archetype's (established) node; the data
    all devices generate drives advanced-node server silicon.  The
    *shape* the panel predicts: both paths grow, and neither obsoletes
    the other.
    """
    from repro.mfg.cost import dies_per_wafer

    if archetypes is None:
        archetypes = IOT_ARCHETYPES
    forecast = TwoPathForecast()
    installed_data_pb = 0.0
    for y in range(years + 1):
        iot_wafers = 0.0
        year_data_pb = 0.0
        for arch in archetypes:
            units_m = arch.units_in_year(y)
            dpw = dies_per_wafer(arch.die_mm2)
            iot_wafers += units_m * 1e6 / max(dpw, 1)
            year_data_pb += units_m * 1e6 * arch.data_mb_per_day / 1e9
        installed_data_pb += year_data_pb
        infra = infrastructure_demand(installed_data_pb)
        forecast.years.append(2015 + y)
        forecast.iot_wafers_300mm.append(iot_wafers)
        forecast.infra_wafers_300mm.append(infra["wafers_300mm"])
    return forecast
