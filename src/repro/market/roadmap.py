"""Roadmap projection: "for the next decade to be as great as the past
one" (the panel's closing question), extrapolated from the node table.

Projects hypothetical nodes beyond the canonical table with
:func:`repro.tech.scale_node`, tracks density/cost/power trends, and
reports where the economics (wafer cost growth vs density gain) erode
the historic cost-per-transistor decline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tech.library import get_node
from repro.tech.node import TechNode
from repro.tech.scaling import scale_node


@dataclass
class RoadmapPoint:
    """One (possibly projected) node on the roadmap."""

    node: TechNode
    projected: bool
    cost_per_mtr: float          # wafer $ per million transistors

    def row(self) -> str:
        tag = "proj" if self.projected else "table"
        return (f"{self.node.name:>10} ({self.node.year}, {tag}): "
                f"{self.node.density_mtr_per_mm2:8.1f} MTr/mm2, "
                f"${self.cost_per_mtr:7.4f}/MTr")


def _cost_per_mtr(node: TechNode) -> float:
    from repro.mfg.yield_model import murphy_yield

    # Wafer area (300mm, edge-corrected): ~67,000 mm2; good transistors
    # only (yield at a reference 80 mm2 die).
    wafer_mm2 = 67_000.0
    y = murphy_yield(80.0, node.defect_density_per_cm2)
    mtr_per_wafer = node.density_mtr_per_mm2 * wafer_mm2 * y
    return node.wafer_cost_usd / mtr_per_wafer


def project_roadmap(generations: int = 3, *, shrink: float = 0.75,
                    base: str = "5nm") -> list:
    """The canonical table plus ``generations`` projected nodes."""
    if generations < 0:
        raise ValueError("generations must be non-negative")
    points = []
    for name in ("90nm", "65nm", "45nm", "28nm", "20nm", "14nm",
                 "10nm", "7nm", "5nm"):
        node = get_node(name)
        points.append(RoadmapPoint(node, False, _cost_per_mtr(node)))
    current = get_node(base)
    for _ in range(generations):
        current = scale_node(current, shrink)
        points.append(RoadmapPoint(current, True,
                                   _cost_per_mtr(current)))
    return points


def cost_scaling_stalls(points: list) -> str | None:
    """First node where cost/transistor stops improving, or None.

    The economic cliff behind the panel's two-path thesis: once
    cost-per-transistor flattens, only performance/power-constrained
    products migrate, and everyone else stays established.
    """
    for prev, cur in zip(points, points[1:]):
        if cur.cost_per_mtr >= prev.cost_per_mtr:
            return cur.node.name
    return None


def density_doubling_years(points: list) -> float:
    """Average years per density doubling across the roadmap span."""
    import math

    first, last = points[0], points[-1]
    doublings = math.log2(last.node.density_mtr_per_mm2
                          / first.node.density_mtr_per_mm2)
    if doublings <= 0:
        raise ValueError("roadmap must increase density")
    return (last.node.year - first.node.year) / doublings
