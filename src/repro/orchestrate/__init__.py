"""Flow orchestration: DAG scheduling, content-hash caching, parallel
execution, and run telemetry.

The scaling substrate behind the E7 throughput claim: declare flows as
DAGs of stages (:mod:`~repro.orchestrate.dag`), replay unchanged
stages from a content-addressed cache
(:mod:`~repro.orchestrate.cache`), run independent branches and
independent jobs on a process pool
(:mod:`~repro.orchestrate.executor`,
:mod:`~repro.orchestrate.sweep`), and meter every stage with
structured spans (:mod:`~repro.orchestrate.telemetry`).
:func:`repro.core.flow.implement` is a thin wrapper over
:func:`~repro.orchestrate.flows.implement_dag`.
"""

from repro.orchestrate.cache import (
    CacheStats,
    ResultCache,
    stable_hash,
    stage_key,
)
from repro.orchestrate.dag import CycleError, FlowDAG, Stage
from repro.orchestrate.executor import (
    PoolExecutor,
    RunResult,
    SerialExecutor,
    StageError,
    StageTimeout,
    parallel_map,
    run_stage,
)
from repro.orchestrate.flows import build_implement_dag, implement_dag
from repro.orchestrate.sweep import SweepResult, run_sweep
from repro.orchestrate.telemetry import (
    RunReport,
    Span,
    TelemetrySink,
    peak_rss_kb,
    stage_timer,
)

__all__ = [
    "CacheStats",
    "CycleError",
    "FlowDAG",
    "PoolExecutor",
    "ResultCache",
    "RunReport",
    "RunResult",
    "SerialExecutor",
    "Span",
    "Stage",
    "StageError",
    "StageTimeout",
    "SweepResult",
    "TelemetrySink",
    "build_implement_dag",
    "implement_dag",
    "parallel_map",
    "peak_rss_kb",
    "run_stage",
    "run_sweep",
    "stable_hash",
    "stage_key",
    "stage_timer",
]
