"""Flow orchestration: DAG scheduling, content-hash caching, parallel
execution, crash-safe journaling, and run telemetry.

The scaling substrate behind the E7 throughput claim — and, since the
resilience layer landed, the *one* documented flow API:

* :func:`run` — execute the implementation flow (cache, telemetry,
  ``jobs > 1``, optional write-ahead journal, chaos injection).
* :func:`resume_run` — finish a journaled run after a crash; verified
  stages replay from the journal, only the frontier re-executes, and
  the final metrics are bit-identical to an uninterrupted run.

Underneath: declare flows as DAGs of stages
(:mod:`~repro.orchestrate.dag`), replay unchanged stages from a
checksummed content-addressed cache (:mod:`~repro.orchestrate.cache`),
run independent branches and independent jobs on a process pool
(:mod:`~repro.orchestrate.executor`, :mod:`~repro.orchestrate.sweep`),
checkpoint and fault-inject (:mod:`~repro.orchestrate.resilience`),
and meter every stage with structured spans
(:mod:`~repro.orchestrate.telemetry`).
:func:`repro.core.flow.implement` survives as a deprecation shim over
:func:`run`.
"""

from repro.core.flow import FlowOptions, FlowResult, FlowStatus
from repro.lint.registry import LintGateError
from repro.lint.report import LintReport
from repro.orchestrate.cache import (
    CacheStats,
    CorruptEntry,
    ResultCache,
    seal_blob,
    stable_hash,
    stage_key,
    unseal_blob,
)
from repro.orchestrate.dag import CycleError, FlowDAG, Stage
from repro.orchestrate.executor import (
    PoolExecutor,
    RetryBudget,
    RunResult,
    SerialExecutor,
    StageError,
    StageTimeout,
    WorkerCrash,
    backoff_delay,
    leaked_threads,
    parallel_map,
    run_stage,
)
from repro.orchestrate.flows import (
    LINT_MODES,
    build_implement_dag,
    implement_dag,
)
from repro.orchestrate.resilience import (
    ChaosFailure,
    ChaosPolicy,
    JournalError,
    RunJournal,
    corrupt_file,
    resumable_runs,
    resume_run,
    run,
)
from repro.orchestrate.sweep import (SweepResult,
                                     engine_grid_options, run_sweep)
from repro.orchestrate.telemetry import (
    RunReport,
    Span,
    TelemetrySink,
    peak_rss_kb,
    stage_timer,
)

__all__ = [
    "CacheStats",
    "ChaosFailure",
    "ChaosPolicy",
    "CorruptEntry",
    "CycleError",
    "FlowDAG",
    "FlowOptions",
    "FlowResult",
    "FlowStatus",
    "JournalError",
    "LINT_MODES",
    "LintGateError",
    "LintReport",
    "PoolExecutor",
    "ResultCache",
    "RetryBudget",
    "RunJournal",
    "RunReport",
    "RunResult",
    "SerialExecutor",
    "Span",
    "Stage",
    "StageError",
    "StageTimeout",
    "SweepResult",
    "TelemetrySink",
    "WorkerCrash",
    "backoff_delay",
    "build_implement_dag",
    "corrupt_file",
    "implement_dag",
    "leaked_threads",
    "parallel_map",
    "peak_rss_kb",
    "resumable_runs",
    "resume_run",
    "run",
    "run_stage",
    "engine_grid_options",
    "run_sweep",
    "seal_blob",
    "stable_hash",
    "stage_key",
    "stage_timer",
    "unseal_blob",
]
