"""Run telemetry: structured per-stage spans and aggregate reports.

Every stage execution — cached or not — produces a :class:`Span`
recording wall time, cache disposition, retry count, and peak RSS when
the platform exposes it.  Spans stream to JSON-lines for offline
analysis and aggregate into a :class:`RunReport`, the observability
substrate behind the E7 throughput claim ("1M instances/day on
multicore farms" needs metering before it needs more cores).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path

try:
    import resource
except ImportError:          # pragma: no cover - non-POSIX platforms
    resource = None


@contextmanager
def stage_timer(stages: dict, name: str):
    """Record the elapsed wall time of a block into ``stages[name]``.

    The one timing idiom shared by the legacy flow, the calibration
    loop, and the DAG executor — stage names and timings cannot drift
    apart when both come from the same ``with`` statement.
    """
    t0 = time.perf_counter()
    try:
        yield
    finally:
        stages[name] = time.perf_counter() - t0


@contextmanager
def kernel_span(sink: "TelemetrySink", stage: str, *,
                job: int | None = None):
    """Record one kernel execution (STA, place, route, ...) as a
    :class:`Span` in ``sink``.

    The perf-regression harness (``benchmarks/bench_perf.py``) wraps
    each timed kernel in one of these so per-kernel wall times flow
    into the same :class:`TelemetrySink` / ``RunDatabase.log_telemetry``
    pipeline the flow stages use — sweeps capture kernel regressions
    for free.  Exceptions mark the span ``failed`` and re-raise.
    """
    t0 = time.perf_counter()
    status = "ok"
    try:
        yield
    except BaseException:
        status = "failed"
        raise
    finally:
        sink.record(Span(stage=stage,
                         wall_s=time.perf_counter() - t0,
                         status=status,
                         peak_rss_kb=peak_rss_kb(),
                         job=job))


def peak_rss_kb() -> int | None:
    """Peak resident set size of this process in KiB, if measurable."""
    if resource is None:
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@dataclass
class Span:
    """One stage execution (or cache/journal replay, or skip)."""

    stage: str
    wall_s: float
    status: str = "ok"          # ok | failed | timeout | skipped
    cache: str | None = None    # "hit" | "miss" | "journal" | None
    retries: int = 0
    peak_rss_kb: int | None = None
    job: int | None = None      # sweep job index, when part of a sweep
    leaked_threads: int = 0     # timed-out stage threads still alive
    notes: tuple = ()           # lint/sanitizer findings, rendered

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["notes"] = list(self.notes)
        return payload

    @staticmethod
    def from_dict(payload: dict) -> "Span":
        payload = dict(payload)
        payload["notes"] = tuple(payload.get("notes", ()))
        return Span(**payload)


@dataclass
class RunReport:
    """Aggregate view over a collection of spans."""

    spans: int = 0
    wall_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    failed: int = 0
    timeouts: int = 0
    skipped: int = 0
    replayed: int = 0           # journal replays (resumed runs)
    leaked_threads: int = 0     # high-water mark across spans
    peak_rss_kb: int | None = None
    by_stage: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Cache hits over cacheable executions."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def summary(self) -> str:
        """One-line report string."""
        return (
            f"{self.spans} spans, {self.wall_s:.3f} s, "
            f"cache {self.cache_hits}/{self.cache_hits + self.cache_misses} "
            f"hit ({self.hit_rate:.0%}), {self.retries} retries, "
            f"{self.failed} failed, {self.timeouts} timeouts"
        )


class TelemetrySink:
    """Collects spans from one or more runs."""

    def __init__(self):
        self.spans: list[Span] = []

    def record(self, span: Span) -> None:
        self.spans.append(span)

    def extend(self, spans) -> None:
        for span in spans:
            self.record(span if isinstance(span, Span)
                        else Span.from_dict(span))

    def __len__(self) -> int:
        return len(self.spans)

    # ------------------------------------------------------------------

    def emit_jsonl(self, path) -> None:
        """Append every span as one JSON object per line."""
        with Path(path).open("a") as fh:
            for span in self.spans:
                fh.write(json.dumps(span.to_dict()) + "\n")

    @staticmethod
    def load_jsonl(path) -> "TelemetrySink":
        """Rebuild a sink from a JSON-lines file."""
        sink = TelemetrySink()
        for line in Path(path).read_text().splitlines():
            if line.strip():
                sink.record(Span.from_dict(json.loads(line)))
        return sink

    # ------------------------------------------------------------------

    def report(self) -> RunReport:
        """Aggregate the collected spans."""
        rep = RunReport(spans=len(self.spans))
        rss = [s.peak_rss_kb for s in self.spans
               if s.peak_rss_kb is not None]
        rep.peak_rss_kb = max(rss) if rss else None
        for span in self.spans:
            rep.wall_s += span.wall_s
            rep.retries += span.retries
            rep.cache_hits += span.cache == "hit"
            rep.cache_misses += span.cache == "miss"
            rep.replayed += span.cache == "journal"
            rep.failed += span.status == "failed"
            rep.timeouts += span.status == "timeout"
            rep.skipped += span.status == "skipped"
            rep.leaked_threads = max(rep.leaked_threads,
                                     span.leaked_threads)
            agg = rep.by_stage.setdefault(
                span.stage, {"calls": 0, "wall_s": 0.0, "hits": 0})
            agg["calls"] += 1
            agg["wall_s"] += span.wall_s
            agg["hits"] += span.cache == "hit"
        return rep
