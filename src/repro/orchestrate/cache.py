"""Content-addressed result cache for flow stages.

Keys are a stable SHA-256 over (stage name, code version tag,
canonicalized inputs); values are encoded stage results held in an
in-memory LRU with an optional on-disk store.  Re-running a sweep with
one knob changed only re-executes the stages whose key inputs actually
changed — everything upstream and sideways replays from cache.

Values travel through the *packed-design codec*
(:func:`encode_value` / :func:`decode_value`): netlists and
placements are framed as columnar ``.pnl`` bytes
(:class:`~repro.netlist.packed.PackedNetlist`) instead of deep
pickles, and everything else falls back to a fixed-protocol pickle.
The same codec frames :class:`~repro.orchestrate.executor.PoolExecutor`
cross-process payloads and
:class:`~repro.orchestrate.resilience.RunJournal` stage blobs, so one
encoding is the single design currency everywhere a design crosses a
boundary.  Cache keys for design-bearing inputs use the canonical
:meth:`~repro.netlist.packed.PackedNetlist.content_digest` rather
than a pickle, so structurally identical netlists built in different
insertion orders share one entry.  Every ``get`` decodes a *fresh
copy*, so downstream stages that mutate their inputs (scan insertion,
detailed placement) can never corrupt a cached result.

Disk entries are *sealed* (:func:`seal_blob`): a header line carries
the SHA-256 of the payload and the entry's own key, so a truncated
write, a flipped bit, or a blob copied under the wrong key is detected
on read.  A bad entry is moved to a ``quarantine/`` sibling (kept for
forensics) and reported as a miss, so the caller recomputes instead of
crashing — the cache can only ever cost a recompute, never a wrong or
aborted run.  The same sealed format protects the run journal
(:mod:`repro.orchestrate.resilience`).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path

_PICKLE_PROTOCOL = 4
_SEAL_MAGIC = b"RC2 "


class CorruptEntry(RuntimeError):
    """A sealed blob failed its checksum, key, or format check."""


def seal_blob(payload: bytes, key: str = "") -> bytes:
    """Frame ``payload`` with a checksum header for on-disk storage.

    Format: ``b"RC2 <sha256hex> <key>\\n" + payload``.  The key rides
    inside the checksummed frame so an entry copied (or written) under
    the wrong name is as detectable as a flipped bit.
    """
    digest = hashlib.sha256(payload).hexdigest()
    return _SEAL_MAGIC + digest.encode() + b" " + key.encode() \
        + b"\n" + payload


def unseal_blob(data: bytes, key: str = "") -> bytes:
    """Verify and strip a :func:`seal_blob` frame.

    Raises :class:`CorruptEntry` on a missing/garbled header, checksum
    mismatch (truncation, bit flips), or — when ``key`` is given — a
    header key that names a different entry.
    """
    if not data.startswith(_SEAL_MAGIC):
        raise CorruptEntry("unsealed or foreign blob")
    newline = data.find(b"\n")
    if newline < 0:
        raise CorruptEntry("truncated seal header")
    try:
        digest, entry_key = data[len(_SEAL_MAGIC):newline] \
            .decode().split(" ", 1)
    except (UnicodeDecodeError, ValueError) as err:
        raise CorruptEntry("garbled seal header") from err
    if key and entry_key != key:
        raise CorruptEntry(
            f"entry sealed for key {entry_key[:16]}..., "
            f"expected {key[:16]}...")
    payload = data[newline + 1:]
    if hashlib.sha256(payload).hexdigest() != digest:
        raise CorruptEntry("payload checksum mismatch")
    return payload


_CODEC_MAGIC = b"PVC1"
_TAG_NETLIST = b"N"
_TAG_PLACEMENT = b"P"
_TAG_PACKED = b"K"
_TAG_PICKLE = b"G"


def encode_value(value) -> bytes:
    """Frame a stage value for storage or transport.

    Designs go columnar: a :class:`~repro.netlist.circuit.Netlist`
    becomes (pickled library, ``.pnl`` bytes), a
    :class:`~repro.place.placement.Placement` becomes (pickled
    non-netlist fields + library, ``.pnl`` bytes of its netlist), and a
    bare :class:`~repro.netlist.packed.PackedNetlist` passes through as
    its own bytes.  Everything else is pickled.  ``to_packed()`` /
    ``to_bytes()`` are memoized on the design, so the cache blob, the
    journal blob, and the worker payload of one stage output share one
    packing pass.
    """
    from repro.netlist.circuit import Netlist
    from repro.netlist.packed import PackedNetlist
    if type(value) is Netlist:
        head = pickle.dumps(value.library, protocol=_PICKLE_PROTOCOL)
        return (_CODEC_MAGIC + _TAG_NETLIST
                + len(head).to_bytes(4, "little") + head
                + value.to_packed().to_bytes())
    if isinstance(value, PackedNetlist):
        return _CODEC_MAGIC + _TAG_PACKED + value.to_bytes()
    from repro.place.placement import Placement
    if type(value) is Placement:
        shell = {f.name: getattr(value, f.name)
                 for f in fields(Placement) if f.name != "netlist"}
        head = pickle.dumps((shell, value.netlist.library),
                            protocol=_PICKLE_PROTOCOL)
        return (_CODEC_MAGIC + _TAG_PLACEMENT
                + len(head).to_bytes(4, "little") + head
                + value.netlist.to_packed().to_bytes())
    return _CODEC_MAGIC + _TAG_PICKLE \
        + pickle.dumps(value, protocol=_PICKLE_PROTOCOL)


def decode_value(data: bytes):
    """Invert :func:`encode_value`, yielding a fresh value.

    Raw-pickle blobs (no codec frame — entries written before the
    codec existed) decode transparently: a pickle stream starts with
    ``b"\\x80"``, which can never collide with the codec magic.
    """
    if not data.startswith(_CODEC_MAGIC):
        return pickle.loads(data)
    tag, body = data[4:5], data[5:]
    if tag == _TAG_PICKLE:
        return pickle.loads(body)
    from repro.netlist.packed import PackedNetlist
    if tag == _TAG_PACKED:
        return PackedNetlist.from_bytes(body)
    if tag == _TAG_NETLIST:
        n = int.from_bytes(body[:4], "little")
        library = pickle.loads(body[4:4 + n])
        return PackedNetlist.from_bytes(body[4 + n:]) \
            .to_netlist(library)
    if tag == _TAG_PLACEMENT:
        from repro.place.placement import Placement
        n = int.from_bytes(body[:4], "little")
        shell, library = pickle.loads(body[4:4 + n])
        netlist = PackedNetlist.from_bytes(body[4 + n:]) \
            .to_netlist(library)
        return Placement(netlist=netlist, **shell)
    raise CorruptEntry(f"unknown codec tag {tag!r}")


def _design_digest(obj) -> str | None:
    """Canonical key material for design-bearing objects, or ``None``.

    Uses the packed form's :meth:`content_digest` instead of a pickle,
    plus the fresh-name counter (stages that generate names must not
    share an entry across different construction histories).
    """
    digest = getattr(obj, "content_digest", None)
    if digest is None:
        return None
    try:
        counter = getattr(obj, "_counter", None)
        if counter is None:
            counter = getattr(obj, "counter", 0)
        return f"design:{digest()}:{int(counter)};"
    except Exception:   # noqa: BLE001 - fall back to the pickle path
        return None


def _update(h, obj) -> None:
    """Feed a canonical byte encoding of ``obj`` into hash ``h``.

    Deterministic for the container/scalar types flows actually pass
    around; dicts hash as sorted (key, value) digests, sets as sorted
    element digests, design-bearing objects (anything exposing
    ``content_digest``) as their canonical packed digest, dataclasses
    as (qualname, field dict).  Anything else falls back to a
    fixed-protocol pickle, which is stable within a process for
    identically constructed objects.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        h.update(f"{type(obj).__name__}:{obj!r};".encode())
    elif isinstance(obj, float):
        h.update(f"f:{obj.hex() if obj == obj else 'nan'};".encode())
    elif isinstance(obj, (list, tuple)):
        h.update(f"seq:{len(obj)};".encode())
        for item in obj:
            _update(h, item)
    elif isinstance(obj, dict):
        digests = sorted(
            (stable_hash(k), stable_hash(v)) for k, v in obj.items())
        h.update(f"map:{len(obj)};".encode())
        for kd, vd in digests:
            h.update(kd.encode())
            h.update(vd.encode())
    elif isinstance(obj, (set, frozenset)):
        h.update(f"set:{len(obj)};".encode())
        for digest in sorted(stable_hash(item) for item in obj):
            h.update(digest.encode())
    elif (design := _design_digest(obj)) is not None:
        h.update(design.encode())
    elif is_dataclass(obj) and not isinstance(obj, type):
        h.update(f"dc:{type(obj).__qualname__};".encode())
        _update(h, {f.name: getattr(obj, f.name) for f in fields(obj)})
    elif hasattr(obj, "tobytes") and hasattr(obj, "dtype"):
        h.update(f"nd:{obj.dtype}:{getattr(obj, 'shape', '')};".encode())
        h.update(obj.tobytes())
    else:
        h.update(b"pkl:")
        h.update(pickle.dumps(obj, protocol=_PICKLE_PROTOCOL))


def stable_hash(obj) -> str:
    """Hex SHA-256 of the canonical encoding of ``obj``."""
    h = hashlib.sha256()
    _update(h, obj)
    return h.hexdigest()


def stage_key(name: str, version: str, inputs: dict) -> str:
    """Cache key for one stage execution."""
    return stable_hash({"stage": name, "version": version,
                        "inputs": inputs})


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt: int = 0          # disk entries quarantined on read

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """Two-tier (memory LRU over disk) content-addressed store."""

    def __init__(self, max_memory_entries: int = 128, disk_dir=None):
        if max_memory_entries < 1:
            raise ValueError("max_memory_entries must be positive")
        self.max_memory_entries = max_memory_entries
        self.disk_dir = Path(disk_dir) if disk_dir else None
        if self.disk_dir:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self._memory: OrderedDict = OrderedDict()
        self.stats = CacheStats()

    def entry_path(self, key: str) -> Path:
        """On-disk location of ``key``'s sealed entry (disk tier only)."""
        return self.disk_dir / f"{key}.pkl"

    # ------------------------------------------------------------------

    def get(self, key: str):
        """``(True, fresh_copy)`` on hit, ``(False, None)`` on miss.

        A disk entry that fails verification (truncated, bit-flipped,
        sealed under another key, or unpicklable) is quarantined and
        reported as a miss — the stage recomputes and overwrites it.
        """
        blob = self._memory.get(key)
        if blob is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return True, decode_value(blob)
        if self.disk_dir:
            path = self.entry_path(key)
            if path.exists():
                try:
                    blob = unseal_blob(path.read_bytes(), key)
                    value = decode_value(blob)
                except Exception:   # noqa: BLE001 - CorruptEntry,
                    # PackError, or any unpickling error: recompute.
                    self._quarantine(path)
                else:
                    self._remember(key, blob)
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    return True, value
        self.stats.misses += 1
        return False, None

    def put(self, key: str, value) -> None:
        """Store a result under its content key (both tiers)."""
        blob = encode_value(value)
        self._remember(key, blob)
        self.stats.puts += 1
        if self.disk_dir:
            # Atomic publish so concurrent sweep workers never observe
            # a torn file.
            fd, tmp = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(seal_blob(blob, key))
                os.replace(tmp, self.entry_path(key))
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise

    def _quarantine(self, path: Path) -> None:
        """Move a bad disk entry aside (kept for forensics) so the next
        ``put`` can republish a clean one."""
        self.stats.corrupt += 1
        qdir = self.disk_dir / "quarantine"
        qdir.mkdir(exist_ok=True)
        try:
            os.replace(path, qdir / path.name)
        except OSError:        # pragma: no cover - racing quarantines
            path.unlink(missing_ok=True)

    def _remember(self, key: str, blob: bytes) -> None:
        self._memory[key] = blob
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._memory)

    def clear(self) -> None:
        """Drop the memory tier (disk files are left in place)."""
        self._memory.clear()
