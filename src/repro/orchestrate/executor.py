"""Stage executors: serial and multiprocessing-pool DAG scheduling.

Both executors share the same per-stage contract: consult the result
cache, run with bounded retry and jittered exponential backoff (under
an optional per-run :class:`RetryBudget`), enforce the stage timeout,
and emit a telemetry span either way.  A failed *optional* stage
(e.g. CTS) marks the run ``degraded`` and its output ``None``; a
failed required stage kills its transitive dependents and — under
``strict`` — raises :class:`StageError` so single-run callers see the
original traceback.

Resilience hooks (see :mod:`repro.orchestrate.resilience`): a
``journal`` write-ahead-logs every completed stage so a killed process
can resume; ``preloaded`` seeds outputs replayed from such a journal
(spans carry ``cache="journal"``); a ``chaos`` policy deterministically
injects stage faults, timeouts, and :class:`WorkerCrash` kills for
fault-injection testing.

:class:`PoolExecutor` runs independent DAG branches concurrently in a
``multiprocessing`` pool; :func:`parallel_map` is the job-level
analogue used by :mod:`repro.orchestrate.sweep`.
"""

from __future__ import annotations

import multiprocessing
import random
import threading
import time
from dataclasses import dataclass, field

from repro.orchestrate.cache import (decode_value, encode_value,
                                     stage_key)
from repro.orchestrate.telemetry import Span, peak_rss_kb


class StageError(RuntimeError):
    """A required stage exhausted its retries."""

    def __init__(self, stage: str, attempts: int, cause=None):
        super().__init__(
            f"stage {stage!r} failed after {attempts} attempt(s)"
            + (f": {cause!r}" if cause is not None else ""))
        self.stage = stage
        self.attempts = attempts
        self.cause = cause

    def __reduce__(self):
        # Default Exception reduction would replay only the formatted
        # message into our three-argument __init__; this keeps stage
        # errors picklable across the pool boundary.
        return (self.__class__, (self.stage, self.attempts, self.cause))


class StageTimeout(StageError):
    """A stage exceeded its ``timeout_s`` budget."""


class WorkerCrash(BaseException):
    """A worker died mid-run (or chaos simulated one dying).

    Derives from ``BaseException`` — like ``KeyboardInterrupt`` — so
    the retry machinery and blanket stage-error handlers never absorb
    it: a crash aborts the whole run, leaving the journal's completed
    prefix on disk for :func:`repro.orchestrate.resilience.resume_run`.
    """

    def __init__(self, stage: str):
        super().__init__(f"worker crashed in stage {stage!r}")
        self.stage = stage


@dataclass
class RetryBudget:
    """A per-run cap on total retries across all stages.

    Individual stages still declare their own ``retries``, but one
    pathologically flaky run cannot burn unbounded wall time: once the
    shared budget is spent, further failures become terminal
    immediately.
    """

    limit: int
    used: int = 0

    def take(self) -> bool:
        """Consume one retry; ``False`` when the budget is exhausted."""
        if self.used >= self.limit:
            return False
        self.used += 1
        return True

    @property
    def remaining(self) -> int:
        return max(self.limit - self.used, 0)


def backoff_delay(base_s: float, attempt: int, *,
                  jitter: float = 0.25) -> float:
    """Exponential backoff with multiplicative jitter.

    ``base_s * 2**attempt`` scaled by a uniform factor in
    ``[1, 1 + jitter]`` — the jitter decorrelates retry storms when a
    sweep's workers all hit the same transient fault together.
    """
    return base_s * (2 ** attempt) * (1.0 + random.uniform(0.0, jitter))


# Threads abandoned by timed-out stages, oldest first.  Python offers
# no safe thread preemption, so a timeout can only orphan its worker;
# this registry makes the leak observable (``leaked_threads``) and
# bounded (``MAX_ABANDONED_THREADS``).
_abandoned_lock = threading.Lock()
_abandoned_threads: list = []

#: Cap on concurrently-alive abandoned threads.  At the cap, the next
#: timeout blocks until the oldest orphan finishes — backpressure
#: instead of unbounded thread growth.  (A stage that never returns
#: can therefore stall the flow here; that is the documented trade for
#: a hard bound.)
MAX_ABANDONED_THREADS = 32


def leaked_threads() -> int:
    """How many timed-out stage threads are still running."""
    with _abandoned_lock:
        _abandoned_threads[:] = [t for t in _abandoned_threads
                                 if t.is_alive()]
        return len(_abandoned_threads)


def _abandon_thread(worker) -> None:
    """Register an orphaned stage thread, enforcing the cap."""
    with _abandoned_lock:
        _abandoned_threads[:] = [t for t in _abandoned_threads
                                 if t.is_alive()]
        _abandoned_threads.append(worker)
    while True:
        with _abandoned_lock:
            _abandoned_threads[:] = [t for t in _abandoned_threads
                                     if t.is_alive()]
            if len(_abandoned_threads) <= MAX_ABANDONED_THREADS:
                return
            oldest = _abandoned_threads[0]
        oldest.join(0.05)


def _call_with_timeout(fn, ctx, timeout_s):
    """Run ``fn(ctx)``, bounding wall time when ``timeout_s`` is set.

    The bounded path runs in a daemon thread; on timeout the thread is
    abandoned (Python offers no safe preemption) and the stage is
    reported as timed out.  Abandoned threads keep running until their
    stage function returns on its own; they are tracked in a registry
    capped at :data:`MAX_ABANDONED_THREADS` and surfaced per-span as
    ``leaked_threads``.
    """
    if not timeout_s:
        return fn(ctx)
    box: dict = {}

    def target():
        try:
            box["value"] = fn(ctx)
        except BaseException as err:   # noqa: BLE001 - reraised below
            box["error"] = err

    worker = threading.Thread(target=target, daemon=True)
    worker.start()
    worker.join(timeout_s)
    if worker.is_alive():
        _abandon_thread(worker)
        raise StageTimeout("<stage>", 1)
    if "error" in box:
        raise box["error"]
    return box["value"]


def cache_inputs(stage, ctx) -> dict:
    """The content-hash domain of a stage execution.

    Dependencies and declared params, except that when ``knobs`` is set
    the whole ``options`` object is replaced by just the named
    attributes — so flipping an unrelated knob leaves this stage's key
    (and its cached result) intact.
    """
    inputs = {dep: ctx[dep] for dep in stage.deps}
    for param in stage.params:
        if stage.knobs and param == "options":
            continue
        inputs[param] = ctx[param]
    if stage.knobs:
        options = ctx["options"]
        inputs["__knobs__"] = {k: getattr(options, k)
                               for k in stage.knobs}
    return inputs


@dataclass
class StageOutcome:
    """What happened when one stage was executed."""

    name: str
    value: object
    span: Span
    error: BaseException | None = None
    key: str | None = None       # content-hash key, when cacheable


def run_stage(stage, ctx, cache=None, job=None, *, chaos=None,
              budget=None) -> StageOutcome:
    """Execute one stage in-process: cache, retries, timeout, span.

    ``chaos`` (a :class:`~repro.orchestrate.resilience.ChaosPolicy`)
    may inject a fault per attempt and corrupt the freshly written
    cache entry; ``budget`` (a :class:`RetryBudget`) gates every retry
    after the first attempt.
    """
    child_ctx = {k: ctx[k] for k in (*stage.deps, *stage.params)}
    t0 = time.perf_counter()
    key = None
    if cache is not None and stage.cacheable:
        key = stage_key(stage.name, stage.version,
                        cache_inputs(stage, ctx))
        hit, value = cache.get(key)
        if hit:
            span = Span(stage.name, time.perf_counter() - t0,
                        cache="hit", peak_rss_kb=peak_rss_kb(), job=job,
                        leaked_threads=leaked_threads())
            return StageOutcome(stage.name, value, span, key=key)

    error: BaseException | None = None
    status = "failed"
    value = None
    attempts = 0
    for attempt in range(stage.retries + 1):
        attempts = attempt + 1
        try:
            if chaos is not None:
                chaos.on_attempt(stage.name, attempt)
            value = _call_with_timeout(stage.fn, child_ctx,
                                       stage.timeout_s)
            status = "ok"
            error = None
            break
        except StageTimeout:
            status = "timeout"
            error = StageTimeout(stage.name, attempts)
        except WorkerCrash:
            raise                  # a kill is not a stage failure
        except BaseException as err:   # noqa: BLE001 - recorded in span
            status = "failed"
            error = err
        if attempt >= stage.retries:
            break
        if budget is not None and not budget.take():
            break                  # per-run retry budget exhausted
        time.sleep(backoff_delay(stage.backoff_s, attempt))

    span = Span(stage.name, time.perf_counter() - t0, status=status,
                cache=None if key is None else "miss",
                retries=attempts - 1, peak_rss_kb=peak_rss_kb(),
                job=job, leaked_threads=leaked_threads())
    if status == "ok" and key is not None:
        cache.put(key, value)
        if chaos is not None:
            chaos.after_put(cache, key)
    return StageOutcome(stage.name, value, span, error, key=key)


@dataclass
class RunResult:
    """Outcome of executing a whole DAG once."""

    outputs: dict
    status: str                      # ok | degraded | failed
    spans: list
    wall_s: float
    failed: list = field(default_factory=list)
    skipped: list = field(default_factory=list)
    replayed: list = field(default_factory=list)   # from a run journal


def _resolve_failure(stage, outcome, state, dag, strict):
    """Shared failure bookkeeping for both executors."""
    if stage.optional:
        state["outputs"][stage.name] = None
        state["degraded"] = True
        return
    state["failed"].append(stage.name)
    for name in sorted(dag.dependents(stage.name)):
        if name not in state["outputs"] and name not in state["skipped"]:
            state["skipped"].append(name)
            state["spans"].append(Span(name, 0.0, status="skipped"))
    if strict:
        if isinstance(outcome.error, StageError):
            raise outcome.error
        raise StageError(stage.name, outcome.span.retries + 1,
                         outcome.error) from outcome.error


def _finish(state, t0) -> RunResult:
    status = "failed" if state["failed"] else (
        "degraded" if state["degraded"] else "ok")
    return RunResult(outputs=state["outputs"], status=status,
                     spans=state["spans"],
                     wall_s=time.perf_counter() - t0,
                     failed=state["failed"], skipped=state["skipped"],
                     replayed=state["replayed"])


def _seed_preloaded(state, dag, preloaded) -> None:
    """Replay journaled outputs into a fresh run's state.

    Each replayed stage gets a zero-cost span with ``cache="journal"``
    so telemetry can count exactly what a resume skipped versus
    re-executed.
    """
    for name, value in (preloaded or {}).items():
        if name not in dag.stages:
            continue
        state["outputs"][name] = value
        state["replayed"].append(name)
        state["spans"].append(Span(name, 0.0, cache="journal"))


def _journal_outcome(journal, outcome) -> None:
    """Write-ahead-log one completed stage (best effort: an output the
    journal cannot pickle simply re-executes on resume)."""
    if journal is None:
        return
    try:
        journal.record(outcome.name, outcome.value, key=outcome.key,
                       wall_s=outcome.span.wall_s)
    except Exception:   # noqa: BLE001 - journaling must not kill runs
        pass


def _new_state() -> dict:
    return {"outputs": {}, "spans": [], "failed": [], "skipped": [],
            "degraded": False, "replayed": []}


def _sanitize_boundary(sanitizer, name, value, state) -> None:
    """Run the opt-in stage-boundary sanitizer on one completed stage.

    The span (``sanitize:<stage>``) is recorded even when strict mode
    raises, so the corrupting stage is named in telemetry either way.
    """
    if sanitizer is None:
        return
    try:
        sanitizer.check(name, value)
    finally:
        report = sanitizer.reports.get(name)
        if report is not None:
            state["spans"].append(Span(
                f"sanitize:{name}", report.wall_s,
                status="failed" if report.errors else "ok",
                notes=tuple(str(f) for f in report.findings[:8])))


class SerialExecutor:
    """Run stages one at a time in topological order."""

    def __init__(self, chaos=None):
        self.chaos = chaos

    def run(self, dag, params, cache=None, sink=None, strict=True,
            journal=None, preloaded=None, budget=None,
            sanitizer=None) -> RunResult:
        t0 = time.perf_counter()
        state = _new_state()
        _seed_preloaded(state, dag, preloaded)
        try:
            for stage in dag.topological_order():
                if stage.name in state["outputs"] or \
                        stage.name in state["skipped"]:
                    continue
                if self.chaos is not None:
                    self.chaos.pre_stage(stage.name)   # may crash
                ctx = {**params, **state["outputs"]}
                outcome = run_stage(stage, ctx, cache=cache,
                                    chaos=self.chaos, budget=budget)
                state["spans"].append(outcome.span)
                if outcome.span.status == "ok" or \
                        outcome.span.cache == "hit":
                    state["outputs"][stage.name] = outcome.value
                    _journal_outcome(journal, outcome)
                    _sanitize_boundary(sanitizer, stage.name,
                                       outcome.value, state)
                else:
                    _resolve_failure(stage, outcome, state, dag, strict)
        finally:
            if sink is not None:
                sink.extend(state["spans"])
        return _finish(state, t0)


def _pool_call(fn, ctx, chaos=None, stage=None, attempt=0):
    """Worker-side stage invocation (module-level for pickling).

    ``ctx`` values arrive framed by the packed-design codec
    (:func:`~repro.orchestrate.cache.encode_value`) — netlists and
    placements cross the process boundary as columnar ``.pnl`` bytes,
    not deep pickles — and the stage result returns the same way.
    Chaos faults fire *inside* the worker, so an injected failure
    travels the same pickled-exception path a real stage crash does.
    """
    if chaos is not None:
        chaos.on_attempt(stage, attempt)
    from repro.orchestrate.cache import decode_value, encode_value
    ctx = {k: decode_value(v) for k, v in ctx.items()}
    t0 = time.perf_counter()
    value = fn(ctx)
    return encode_value(value), time.perf_counter() - t0, peak_rss_kb()


class PoolExecutor:
    """Run independent DAG branches concurrently in worker processes.

    Stage functions and their inputs must be picklable (module-level
    callables).  Cache lookups happen in the parent at submit time, so
    a hot cache short-circuits before any process hop.  Timeouts are
    enforced by deadline in the parent; an overrunning worker is
    abandoned to the pool (its late result is discarded).  Journal
    records are written by the parent as results are collected, so the
    write-ahead log stays single-writer even with many workers.
    """

    def __init__(self, jobs: int = 2, poll_s: float = 0.002,
                 chaos=None):
        if jobs < 1:
            raise ValueError("jobs must be positive")
        self.jobs = jobs
        self.poll_s = poll_s
        self.chaos = chaos

    def run(self, dag, params, cache=None, sink=None, strict=True,
            journal=None, preloaded=None, budget=None,
            sanitizer=None) -> RunResult:
        t0 = time.perf_counter()
        order = dag.topological_order()   # validates + cycle check
        state = _new_state()
        _seed_preloaded(state, dag, preloaded)
        pending: dict = {}                # name -> submission record
        submitted: set = set(state["replayed"])
        try:
            with multiprocessing.Pool(min(self.jobs, len(order))) as pool:
                while len(state["outputs"]) + len(state["failed"]) + \
                        len(state["skipped"]) < len(dag):
                    self._submit_ready(pool, dag, params, cache,
                                       state, pending, submitted,
                                       journal, sanitizer)
                    if not pending:
                        if not dag.ready(state["outputs"],
                                         submitted.union(
                                             state["skipped"],
                                             state["failed"])):
                            break      # nothing runnable remains
                        continue
                    self._collect(pool, dag, params, cache, state,
                                  pending, strict, journal, budget,
                                  sanitizer)
                    if pending:
                        time.sleep(self.poll_s)
        finally:
            if sink is not None:
                sink.extend(state["spans"])
        return _finish(state, t0)

    # ------------------------------------------------------------------

    def _submit_ready(self, pool, dag, params, cache, state, pending,
                      submitted, journal, sanitizer=None) -> None:
        blocked = submitted.union(state["skipped"], state["failed"])
        for stage in dag.ready(state["outputs"], blocked):
            if self.chaos is not None:
                self.chaos.pre_stage(stage.name)   # may crash
            ctx = {**params, **state["outputs"]}
            key = None
            if cache is not None and stage.cacheable:
                key = stage_key(stage.name, stage.version,
                                cache_inputs(stage, ctx))
                hit, value = cache.get(key)
                if hit:
                    submitted.add(stage.name)
                    state["outputs"][stage.name] = value
                    span = Span(stage.name, 0.0, cache="hit")
                    state["spans"].append(span)
                    _journal_outcome(journal, StageOutcome(
                        stage.name, value, span, key=key))
                    _sanitize_boundary(sanitizer, stage.name, value,
                                       state)
                    continue
            submitted.add(stage.name)
            pending[stage.name] = self._submission(
                pool, stage, ctx, key, attempts=1)

    def _submission(self, pool, stage, ctx, key, attempts) -> dict:
        # Codec-framed payload: designs ship as .pnl bytes (memoized on
        # the live object, so fan-out stages pack once).
        child_ctx = {k: encode_value(ctx[k])
                     for k in (*stage.deps, *stage.params)}
        deadline = (time.perf_counter() + stage.timeout_s
                    if stage.timeout_s else None)
        return {"stage": stage, "key": key, "attempts": attempts,
                "t0": time.perf_counter(), "deadline": deadline,
                "ctx": ctx, "pool": pool,
                "async": pool.apply_async(
                    _pool_call, (stage.fn, child_ctx, self.chaos,
                                 stage.name, attempts - 1))}

    def _collect(self, pool, dag, params, cache, state, pending,
                 strict, journal, budget, sanitizer=None) -> None:
        now = time.perf_counter()
        for name in list(pending):
            sub = pending[name]
            stage = sub["stage"]
            error = None
            if sub["async"].ready():
                try:
                    value, child_wall, rss = sub["async"].get()
                    value = decode_value(value)
                except WorkerCrash:
                    raise              # abort the run, journal intact
                except BaseException as err:   # noqa: BLE001
                    error = err
                else:
                    state["outputs"][name] = value
                    span = Span(
                        name, now - sub["t0"],
                        cache=None if sub["key"] is None else "miss",
                        retries=sub["attempts"] - 1, peak_rss_kb=rss)
                    state["spans"].append(span)
                    if sub["key"] is not None:
                        cache.put(sub["key"], value)
                        if self.chaos is not None:
                            self.chaos.after_put(cache, sub["key"])
                    _journal_outcome(journal, StageOutcome(
                        name, value, span, key=sub["key"]))
                    _sanitize_boundary(sanitizer, name, value, state)
                    del pending[name]
                    continue
            elif sub["deadline"] is not None and now > sub["deadline"]:
                error = StageTimeout(name, sub["attempts"])
            else:
                continue
            del pending[name]
            if sub["attempts"] <= stage.retries and \
                    (budget is None or budget.take()):
                time.sleep(backoff_delay(stage.backoff_s,
                                         sub["attempts"] - 1))
                pending[name] = self._submission(
                    sub["pool"], stage, sub["ctx"], sub["key"],
                    sub["attempts"] + 1)
                continue
            status = ("timeout" if isinstance(error, StageTimeout)
                      else "failed")
            span = Span(name, now - sub["t0"], status=status,
                        cache=None if sub["key"] is None else "miss",
                        retries=sub["attempts"] - 1)
            state["spans"].append(span)
            outcome = StageOutcome(name, None, span, error)
            _resolve_failure(stage, outcome, state, dag, strict)


def parallel_map(fn, items, *, jobs: int = 1, chunksize: int = 1) -> list:
    """Ordered map over ``items``, optionally in a process pool.

    ``fn`` must be a module-level (picklable) callable when
    ``jobs > 1``.  With ``jobs <= 1`` this is a plain loop — the
    baseline every speedup claim is measured against.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with multiprocessing.Pool(min(jobs, len(items))) as pool:
        return pool.map(fn, items, chunksize)
