"""Stage executors: serial and multiprocessing-pool DAG scheduling.

Both executors share the same per-stage contract: consult the result
cache, run with bounded retry and exponential backoff, enforce the
stage timeout, and emit a telemetry span either way.  A failed
*optional* stage (e.g. CTS) marks the run ``degraded`` and its output
``None``; a failed required stage kills its transitive dependents and
— under ``strict`` — raises :class:`StageError` so single-run callers
see the original traceback.

:class:`PoolExecutor` runs independent DAG branches concurrently in a
``multiprocessing`` pool; :func:`parallel_map` is the job-level
analogue used by :mod:`repro.orchestrate.sweep`.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field

from repro.orchestrate.cache import stage_key
from repro.orchestrate.telemetry import Span, peak_rss_kb


class StageError(RuntimeError):
    """A required stage exhausted its retries."""

    def __init__(self, stage: str, attempts: int, cause=None):
        super().__init__(
            f"stage {stage!r} failed after {attempts} attempt(s)"
            + (f": {cause!r}" if cause is not None else ""))
        self.stage = stage
        self.attempts = attempts
        self.cause = cause


class StageTimeout(StageError):
    """A stage exceeded its ``timeout_s`` budget."""


def _call_with_timeout(fn, ctx, timeout_s):
    """Run ``fn(ctx)``, bounding wall time when ``timeout_s`` is set.

    The bounded path runs in a daemon thread; on timeout the thread is
    abandoned (Python offers no safe preemption) and the stage is
    reported as timed out.
    """
    if not timeout_s:
        return fn(ctx)
    box: dict = {}

    def target():
        try:
            box["value"] = fn(ctx)
        except BaseException as err:   # noqa: BLE001 - reraised below
            box["error"] = err

    worker = threading.Thread(target=target, daemon=True)
    worker.start()
    worker.join(timeout_s)
    if worker.is_alive():
        raise StageTimeout("<stage>", 1)
    if "error" in box:
        raise box["error"]
    return box["value"]


def cache_inputs(stage, ctx) -> dict:
    """The content-hash domain of a stage execution.

    Dependencies and declared params, except that when ``knobs`` is set
    the whole ``options`` object is replaced by just the named
    attributes — so flipping an unrelated knob leaves this stage's key
    (and its cached result) intact.
    """
    inputs = {dep: ctx[dep] for dep in stage.deps}
    for param in stage.params:
        if stage.knobs and param == "options":
            continue
        inputs[param] = ctx[param]
    if stage.knobs:
        options = ctx["options"]
        inputs["__knobs__"] = {k: getattr(options, k)
                               for k in stage.knobs}
    return inputs


@dataclass
class StageOutcome:
    """What happened when one stage was executed."""

    name: str
    value: object
    span: Span
    error: BaseException | None = None


def run_stage(stage, ctx, cache=None, job=None) -> StageOutcome:
    """Execute one stage in-process: cache, retries, timeout, span."""
    child_ctx = {k: ctx[k] for k in (*stage.deps, *stage.params)}
    t0 = time.perf_counter()
    key = None
    if cache is not None and stage.cacheable:
        key = stage_key(stage.name, stage.version,
                        cache_inputs(stage, ctx))
        hit, value = cache.get(key)
        if hit:
            span = Span(stage.name, time.perf_counter() - t0,
                        cache="hit", peak_rss_kb=peak_rss_kb(), job=job)
            return StageOutcome(stage.name, value, span)

    error: BaseException | None = None
    status = "failed"
    value = None
    attempts = 0
    for attempt in range(stage.retries + 1):
        attempts = attempt + 1
        try:
            value = _call_with_timeout(stage.fn, child_ctx,
                                       stage.timeout_s)
            status = "ok"
            error = None
            break
        except StageTimeout:
            status = "timeout"
            error = StageTimeout(stage.name, attempts)
        except BaseException as err:   # noqa: BLE001 - recorded in span
            status = "failed"
            error = err
        if attempt < stage.retries:
            time.sleep(stage.backoff_s * (2 ** attempt))

    span = Span(stage.name, time.perf_counter() - t0, status=status,
                cache=None if key is None else "miss",
                retries=attempts - 1, peak_rss_kb=peak_rss_kb(),
                job=job)
    if status == "ok" and key is not None:
        cache.put(key, value)
    return StageOutcome(stage.name, value, span, error)


@dataclass
class RunResult:
    """Outcome of executing a whole DAG once."""

    outputs: dict
    status: str                      # ok | degraded | failed
    spans: list
    wall_s: float
    failed: list = field(default_factory=list)
    skipped: list = field(default_factory=list)


def _resolve_failure(stage, outcome, state, dag, strict):
    """Shared failure bookkeeping for both executors."""
    if stage.optional:
        state["outputs"][stage.name] = None
        state["degraded"] = True
        return
    state["failed"].append(stage.name)
    for name in sorted(dag.dependents(stage.name)):
        if name not in state["outputs"] and name not in state["skipped"]:
            state["skipped"].append(name)
            state["spans"].append(Span(name, 0.0, status="skipped"))
    if strict:
        if isinstance(outcome.error, StageError):
            raise outcome.error
        raise StageError(stage.name, outcome.span.retries + 1,
                         outcome.error) from outcome.error


def _finish(state, t0) -> RunResult:
    status = "failed" if state["failed"] else (
        "degraded" if state["degraded"] else "ok")
    return RunResult(outputs=state["outputs"], status=status,
                     spans=state["spans"],
                     wall_s=time.perf_counter() - t0,
                     failed=state["failed"], skipped=state["skipped"])


class SerialExecutor:
    """Run stages one at a time in topological order."""

    def run(self, dag, params, cache=None, sink=None,
            strict=True) -> RunResult:
        t0 = time.perf_counter()
        state = {"outputs": {}, "spans": [], "failed": [],
                 "skipped": [], "degraded": False}
        try:
            for stage in dag.topological_order():
                if stage.name in state["skipped"]:
                    continue
                ctx = {**params, **state["outputs"]}
                outcome = run_stage(stage, ctx, cache=cache)
                state["spans"].append(outcome.span)
                if outcome.span.status == "ok" or \
                        outcome.span.cache == "hit":
                    state["outputs"][stage.name] = outcome.value
                else:
                    _resolve_failure(stage, outcome, state, dag, strict)
        finally:
            if sink is not None:
                sink.extend(state["spans"])
        return _finish(state, t0)


def _pool_call(fn, ctx):
    """Worker-side stage invocation (module-level for pickling)."""
    t0 = time.perf_counter()
    value = fn(ctx)
    return value, time.perf_counter() - t0, peak_rss_kb()


class PoolExecutor:
    """Run independent DAG branches concurrently in worker processes.

    Stage functions and their inputs must be picklable (module-level
    callables).  Cache lookups happen in the parent at submit time, so
    a hot cache short-circuits before any process hop.  Timeouts are
    enforced by deadline in the parent; an overrunning worker is
    abandoned to the pool (its late result is discarded).
    """

    def __init__(self, jobs: int = 2, poll_s: float = 0.002):
        if jobs < 1:
            raise ValueError("jobs must be positive")
        self.jobs = jobs
        self.poll_s = poll_s

    def run(self, dag, params, cache=None, sink=None,
            strict=True) -> RunResult:
        t0 = time.perf_counter()
        order = dag.topological_order()   # validates + cycle check
        state = {"outputs": {}, "spans": [], "failed": [],
                 "skipped": [], "degraded": False}
        pending: dict = {}                # name -> submission record
        submitted: set = set()
        try:
            with multiprocessing.Pool(min(self.jobs, len(order))) as pool:
                while len(state["outputs"]) + len(state["failed"]) + \
                        len(state["skipped"]) < len(dag):
                    self._submit_ready(pool, dag, params, cache,
                                       state, pending, submitted)
                    if not pending:
                        if not dag.ready(state["outputs"],
                                         submitted.union(
                                             state["skipped"],
                                             state["failed"])):
                            break      # nothing runnable remains
                        continue
                    self._collect(pool, dag, params, cache, state,
                                  pending, strict)
                    if pending:
                        time.sleep(self.poll_s)
        finally:
            if sink is not None:
                sink.extend(state["spans"])
        return _finish(state, t0)

    # ------------------------------------------------------------------

    def _submit_ready(self, pool, dag, params, cache, state, pending,
                      submitted) -> None:
        blocked = submitted.union(state["skipped"], state["failed"])
        for stage in dag.ready(state["outputs"], blocked):
            ctx = {**params, **state["outputs"]}
            key = None
            if cache is not None and stage.cacheable:
                key = stage_key(stage.name, stage.version,
                                cache_inputs(stage, ctx))
                hit, value = cache.get(key)
                if hit:
                    submitted.add(stage.name)
                    state["outputs"][stage.name] = value
                    state["spans"].append(
                        Span(stage.name, 0.0, cache="hit"))
                    continue
            submitted.add(stage.name)
            pending[stage.name] = self._submission(
                pool, stage, ctx, key, attempts=1)

    def _submission(self, pool, stage, ctx, key, attempts) -> dict:
        child_ctx = {k: ctx[k] for k in (*stage.deps, *stage.params)}
        deadline = (time.perf_counter() + stage.timeout_s
                    if stage.timeout_s else None)
        return {"stage": stage, "key": key, "attempts": attempts,
                "t0": time.perf_counter(), "deadline": deadline,
                "ctx": ctx, "pool": pool,
                "async": pool.apply_async(_pool_call,
                                          (stage.fn, child_ctx))}

    def _collect(self, pool, dag, params, cache, state, pending,
                 strict) -> None:
        now = time.perf_counter()
        for name in list(pending):
            sub = pending[name]
            stage = sub["stage"]
            error = None
            if sub["async"].ready():
                try:
                    value, child_wall, rss = sub["async"].get()
                except BaseException as err:   # noqa: BLE001
                    error = err
                else:
                    state["outputs"][name] = value
                    state["spans"].append(Span(
                        name, now - sub["t0"],
                        cache=None if sub["key"] is None else "miss",
                        retries=sub["attempts"] - 1, peak_rss_kb=rss))
                    if sub["key"] is not None:
                        cache.put(sub["key"], value)
                    del pending[name]
                    continue
            elif sub["deadline"] is not None and now > sub["deadline"]:
                error = StageTimeout(name, sub["attempts"])
            else:
                continue
            del pending[name]
            if sub["attempts"] <= stage.retries:
                time.sleep(stage.backoff_s *
                           (2 ** (sub["attempts"] - 1)))
                pending[name] = self._submission(
                    sub["pool"], stage, sub["ctx"], sub["key"],
                    sub["attempts"] + 1)
                continue
            status = ("timeout" if isinstance(error, StageTimeout)
                      else "failed")
            span = Span(name, now - sub["t0"], status=status,
                        cache=None if sub["key"] is None else "miss",
                        retries=sub["attempts"] - 1)
            state["spans"].append(span)
            outcome = StageOutcome(name, None, span, error)
            _resolve_failure(stage, outcome, state, dag, strict)


def parallel_map(fn, items, *, jobs: int = 1, chunksize: int = 1) -> list:
    """Ordered map over ``items``, optionally in a process pool.

    ``fn`` must be a module-level (picklable) callable when
    ``jobs > 1``.  With ``jobs <= 1`` this is a plain loop — the
    baseline every speedup claim is measured against.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with multiprocessing.Pool(min(jobs, len(items))) as pool:
        return pool.map(fn, items, chunksize)
