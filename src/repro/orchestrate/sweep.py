"""Batch front-end: run many flow jobs, serial or in parallel.

``run_sweep`` is the harness the benches use to demonstrate E7-style
throughput: N flow jobs over a list of :class:`FlowOptions` variants,
executed by a process pool (``jobs > 1``) or a shared-cache serial
loop (``jobs = 1``).  Results come back in input order regardless of
completion order, so a parallel sweep is result-for-result identical
to a serial one for seeded flows.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field

from repro.orchestrate.cache import ResultCache
from repro.orchestrate.telemetry import Span, TelemetrySink


@dataclass
class SweepResult:
    """Outcome of one ``run_sweep`` call."""

    results: list
    wall_s: float
    jobs: int
    spans: list = field(default_factory=list)
    cache_stats: object = None

    def __len__(self) -> int:
        return len(self.results)

    @property
    def degraded(self) -> list:
        """Indices of jobs that finished degraded (optional-stage
        failure) or failed — ``resumed`` jobs count as healthy."""
        return [i for i, r in enumerate(self.results)
                if str(getattr(r, "status", "ok"))
                in ("degraded", "failed")]

    def summary(self) -> str:
        per_job = self.wall_s / max(len(self.results), 1)
        return (f"{len(self.results)} jobs with jobs={self.jobs}: "
                f"{self.wall_s:.3f} s wall ({per_job * 1000:.0f} ms/job"
                f", {len(self.degraded)} degraded)")


def engine_grid_options(stages=None, **base):
    """One :class:`~repro.core.flow.FlowOptions` per engine combination.

    The ablation front door: enumerate the
    :func:`repro.engines.axes` grid (optionally restricted to
    ``stages``) and build an options object per combination, with
    ``base`` knobs applied to every variant —

        run_sweep(design, lib, engine_grid_options(
            stages=("synthesis", "cts", "sizing"), cts=True))

    sweeps every synthesis×CTS×sizing engine choice of the registry.
    Engine names validate at construction like any other
    ``FlowOptions``, so the grid cannot silently drift from the
    registry.
    """
    from repro.core.flow import FlowOptions
    from repro.learn.tuner import engine_space
    return [FlowOptions(**base, **knobs)
            for knobs in engine_space(stages).grid()]


def _run_one(payload):
    """Worker body (module-level for pickling): run one flow job."""
    subject, library, options, cache_dir, flow_fn, job, \
        journal_root = payload
    if flow_fn is not None:
        return flow_fn(subject, library, options), []
    from repro.orchestrate.resilience import run
    cache = ResultCache(disk_dir=cache_dir) if cache_dir else None
    sink = TelemetrySink()
    result = run(subject, library, options, cache=cache,
                 telemetry=sink, journal_root=journal_root,
                 run_id=_job_run_id(job) if journal_root else None)
    for span in sink.spans:
        span.job = job
    return result, sink.spans


def _job_run_id(job: int) -> str:
    return f"job{job:04d}"


def run_sweep(subject, library, options_list, *, jobs: int = 1,
              cache=None, cache_dir=None, telemetry=None,
              flow_fn=None, journal_root=None,
              scheduler: str = "pool") -> SweepResult:
    """Run one flow job per entry of ``options_list``.

    With ``journal_root``, each job checkpoints to its own run journal
    (run id ``jobNNNN``) under that directory, so a killed sweep is
    finished job by job with
    :func:`repro.orchestrate.resume_run` instead of re-running the
    whole batch.

    ``subject`` is either a single design (swept over option variants,
    the ablation shape) or a sequence matching ``options_list`` (one
    design per job, the throughput shape).  With ``jobs > 1`` the jobs
    run in a ``multiprocessing`` pool; ``cache_dir`` (or the disk tier
    of ``cache``, when it has one) then gives the workers a shared
    on-disk result cache, while serial sweeps can additionally share
    an in-memory ``cache``
    (:class:`~repro.orchestrate.cache.ResultCache`).  A memory-only
    ``cache`` cannot cross process boundaries and is ignored by
    parallel sweeps.  ``flow_fn``
    substitutes the flow body (module-level callable
    ``fn(subject, library, options)``) for harness tests and custom
    flows.

    Per-job telemetry spans land in ``telemetry`` (and on the returned
    :class:`SweepResult`) tagged with their job index.

    ``scheduler="service"`` hands the whole sweep to the flow service
    (:func:`repro.service.service_sweep`): persistent workers,
    shared-memory design transport, and a job-level result cache
    instead of a fresh process pool — same results, same
    :class:`SweepResult` shape.  (``flow_fn``, ``cache``, and
    ``telemetry`` are pool-scheduler features and are rejected there.)
    """
    if scheduler == "service":
        if flow_fn is not None or cache is not None \
                or telemetry is not None:
            raise ValueError(
                "scheduler='service' does not support flow_fn, "
                "cache, or telemetry; use repro.service.FlowService "
                "directly for custom wiring")
        from repro.service.api import service_sweep
        return service_sweep(
            subject, library, options_list, workers=max(jobs, 1),
            cache_root=cache_dir, journal_root=journal_root)
    if scheduler != "pool":
        raise ValueError(f"unknown scheduler {scheduler!r} "
                         f"(expected 'pool' or 'service')")
    options_list = list(options_list)
    if isinstance(subject, (list, tuple)):
        if len(subject) != len(options_list):
            raise ValueError(
                f"{len(subject)} subjects for {len(options_list)} "
                f"option sets")
        subjects = list(subject)
    else:
        subjects = [subject] * len(options_list)

    t0 = time.perf_counter()
    spans: list[Span] = []
    if jobs <= 1:
        results = []
        for i, (subj, options) in enumerate(zip(subjects,
                                                options_list)):
            if flow_fn is not None:
                results.append(flow_fn(subj, library, options))
                continue
            from repro.orchestrate.resilience import run
            sink = TelemetrySink()
            results.append(run(
                subj, library, options, cache=cache, telemetry=sink,
                journal_root=journal_root,
                run_id=_job_run_id(i) if journal_root else None))
            for span in sink.spans:
                span.job = i
            spans.extend(sink.spans)
    else:
        if cache_dir is None and cache is not None and cache.disk_dir:
            # Workers cannot share the parent's memory tier, but they
            # can share its disk store.
            cache_dir = cache.disk_dir
        payloads = [(subj, library, options, cache_dir, flow_fn, i,
                     journal_root)
                    for i, (subj, options)
                    in enumerate(zip(subjects, options_list))]
        with multiprocessing.Pool(min(jobs, len(payloads))) as pool:
            outcomes = pool.map(_run_one, payloads)
        results = [res for res, _ in outcomes]
        for _, job_spans in outcomes:
            spans.extend(job_spans)

    if telemetry is not None:
        telemetry.extend(spans)
    return SweepResult(
        results=results, wall_s=time.perf_counter() - t0, jobs=jobs,
        spans=spans,
        cache_stats=cache.stats if cache is not None else None)
