"""Crash-safe flow runs: the write-ahead run journal, the resume
engine, and the deterministic fault-injection (chaos) harness.

This module is the production hardening the panelists' economics
demand: an EDA farm run is hours long, and a killed worker, a flaky
stage, or a rotted cache entry must cost *one stage*, not the run.
Three pieces deliver that:

* :class:`RunJournal` — every completed stage is checkpointed to disk
  (sealed pickle blob + append-only JSONL index).  Records are
  published blob-first, index-second, each fsynced, so a kill at any
  byte boundary leaves a prefix of verifiable records and never a torn
  one.
* :func:`run` / :func:`resume_run` — the one documented flow API.
  ``run(subject, library, options, journal_root=...)`` journals as it
  goes; after a crash, ``resume_run(run_id, journal_root=...)``
  reloads the pickled inputs, replays every verified stage from the
  journal, and re-executes only the frontier.  A resumed run's signoff
  metrics are bit-identical to an uninterrupted run's (the chaos soak
  in ``tests/test_resilience.py`` enforces this).
* :class:`ChaosPolicy` — seeded, stateless fault injection: stage
  exceptions, timeouts, worker crashes (:class:`WorkerCrash`), and
  cache-entry corruption, each decided by a hash of
  ``(seed, event, stage, attempt)`` so a scenario replays exactly.
"""

from __future__ import annotations

import json
import os
import pickle
import random
import tempfile
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro.orchestrate.cache import (
    CorruptEntry,
    decode_value,
    encode_value,
    seal_blob,
    stable_hash,
    unseal_blob,
)
from repro.lint.registry import LintGateError
from repro.orchestrate.executor import (
    RetryBudget,
    StageTimeout,
    WorkerCrash,
)

_PICKLE_PROTOCOL = 4


class JournalError(RuntimeError):
    """The run journal is missing or structurally unusable."""


class ChaosFailure(RuntimeError):
    """A fault injected by :class:`ChaosPolicy` (retryable)."""


# ----------------------------------------------------------------------
# Write-ahead run journal


class RunJournal:
    """Append-only, checksummed checkpoint log of one flow run.

    Layout under ``root/run_id/``::

        meta.json        run metadata + completion marker
        inputs.pkl       sealed pickle of (subject, library, options)
        journal.jsonl    one line per completed stage (the index)
        blobs/<stage>.pkl  sealed codec blob of that stage's output
                           (designs as columnar ``.pnl`` bytes)
        quarantine/      corrupted blobs moved aside on detection

    Crash safety: :meth:`record` publishes the blob atomically
    (tmp + rename + fsync) *before* appending its index line (also
    fsynced).  The index is the source of truth — a blob without an
    index line (kill between the two writes) is simply ignored, and an
    index line whose blob fails verification is quarantined and
    dropped.  Either way the stage re-executes on resume; it can never
    be replayed from bad bytes.
    """

    SCHEMA_VERSION = 1

    def __init__(self, root, run_id: str):
        self.root = Path(root)
        self.run_id = run_id
        self.dir = self.root / run_id
        self.blob_dir = self.dir / "blobs"
        self.meta_path = self.dir / "meta.json"
        self.index_path = self.dir / "journal.jsonl"
        self.inputs_path = self.dir / "inputs.pkl"

    # -- creation / discovery ------------------------------------------

    @classmethod
    def create(cls, root, run_id: str, subject, library,
               options) -> "RunJournal":
        """Start a journal: persist inputs and a running meta record."""
        journal = cls(root, run_id)
        if journal.meta_path.exists():
            raise JournalError(f"run {run_id!r} already journaled "
                               f"under {journal.root}")
        journal.blob_dir.mkdir(parents=True, exist_ok=True)
        # The subject rides the packed codec like every stage blob;
        # library and options stay pickled (they are the rehydration
        # context, not design data).
        inputs = pickle.dumps((encode_value(subject), library, options),
                              protocol=_PICKLE_PROTOCOL)
        _atomic_write(journal.inputs_path, seal_blob(inputs, "inputs"))
        journal._write_meta({
            "run_id": run_id,
            "schema_version": cls.SCHEMA_VERSION,
            "fingerprint": stable_hash(
                {"options": options, "subject": type(subject).__name__}),
            "status": "running",
            "flow_status": None,
            "created_unix": time.time(),
        })
        return journal

    @classmethod
    def open(cls, root, run_id: str) -> "RunJournal":
        """Attach to an existing journal; raises if there is none."""
        journal = cls(root, run_id)
        if not journal.meta_path.exists():
            raise JournalError(
                f"no journal for run {run_id!r} under {Path(root)}")
        return journal

    @classmethod
    def exists(cls, root, run_id: str) -> bool:
        """``True`` when ``run_id`` has a journal under ``root``."""
        return cls(root, run_id).meta_path.exists()

    @staticmethod
    def list_runs(root) -> list:
        """Run ids journaled under ``root``, oldest directory first."""
        root = Path(root)
        if not root.is_dir():
            return []
        runs = [p for p in root.iterdir()
                if (p / "meta.json").exists()]
        runs.sort(key=lambda p: p.stat().st_mtime)
        return [p.name for p in runs]

    # -- metadata ------------------------------------------------------

    def _write_meta(self, meta: dict) -> None:
        _atomic_write(self.meta_path,
                      json.dumps(meta, indent=1).encode())

    def meta(self) -> dict:
        return json.loads(self.meta_path.read_text())

    @property
    def is_complete(self) -> bool:
        return self.meta().get("status") == "complete"

    def finish(self, flow_status) -> None:
        """Mark the run complete (it no longer needs resuming)."""
        meta = self.meta()
        meta["status"] = "complete"
        meta["flow_status"] = str(flow_status)
        self._write_meta(meta)

    # -- the write-ahead log -------------------------------------------

    def record(self, stage: str, value, *, key: str | None = None,
               wall_s: float = 0.0) -> None:
        """Checkpoint one completed stage: blob first, index second.

        Stage outputs travel the packed-design codec
        (:func:`~repro.orchestrate.cache.encode_value`): a netlist or
        placement journals as columnar ``.pnl`` bytes, sharing the
        packing pass with the result cache.
        """
        blob = encode_value(value)
        blob_path = self.blob_dir / f"{stage}.pkl"
        _atomic_write(blob_path, seal_blob(blob, stage))
        line = json.dumps({"stage": stage, "key": key,
                           "wall_s": wall_s, "blob": blob_path.name})
        with self.index_path.open("a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def entries(self) -> list:
        """Parsed index records, last-write-wins per stage, in order.

        A trailing torn line (kill mid-append) is ignored, matching the
        blob-first publish discipline.
        """
        if not self.index_path.exists():
            return []
        by_stage: dict = {}
        for line in self.index_path.read_text().splitlines():
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue             # torn tail of an interrupted append
            by_stage[entry["stage"]] = entry
        return list(by_stage.values())

    def completed(self) -> dict:
        """Verified stage outputs: ``{stage: value}``.

        Every blob is unsealed (checksum + stage-name check) and
        decoded; a corrupted one is quarantined and dropped, so the
        resume re-executes that stage instead of trusting bad bytes.
        Blobs journaled before the packed codec existed (raw pickles)
        decode transparently.
        """
        outputs: dict = {}
        for entry in self.entries():
            path = self.blob_dir / entry["blob"]
            try:
                blob = unseal_blob(path.read_bytes(), entry["stage"])
                outputs[entry["stage"]] = decode_value(blob)
            except Exception:   # noqa: BLE001 - missing, corrupt, or
                # unpicklable blob: re-execute the stage instead.
                self._quarantine(path)
        return outputs

    def _quarantine(self, path: Path) -> None:
        qdir = self.dir / "quarantine"
        qdir.mkdir(exist_ok=True)
        try:
            os.replace(path, qdir / path.name)
        except OSError:              # blob never made it to disk
            pass

    def load_inputs(self):
        """``(subject, library, options)`` as journaled at create time.

        Journals written before the packed codec stored the subject
        object directly; current ones store its codec frame (bytes).
        Both load.
        """
        try:
            blob = unseal_blob(self.inputs_path.read_bytes(), "inputs")
            subject, library, options = pickle.loads(blob)
        except (OSError, CorruptEntry) as err:
            raise JournalError(
                f"run {self.run_id!r}: inputs unreadable "
                f"({err}); cannot resume") from err
        if isinstance(subject, bytes):
            subject = decode_value(subject)
        return subject, library, options


def _atomic_write(path: Path, data: bytes) -> None:
    """Publish ``data`` at ``path`` via tmp + fsync + rename."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def resumable_runs(journal_root) -> list:
    """Run ids under ``journal_root`` that never reached completion —
    the work list after a farm node dies."""
    out = []
    for run_id in RunJournal.list_runs(journal_root):
        try:
            if not RunJournal.open(journal_root, run_id).is_complete:
                out.append(run_id)
        except (JournalError, json.JSONDecodeError, OSError):
            out.append(run_id)       # unreadable meta: still resumable
    return out


# ----------------------------------------------------------------------
# Deterministic fault injection


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded fault injection for Serial and Pool executors.

    Stateless and frozen so it pickles across the pool boundary; every
    decision hashes ``(seed, event, stage, attempt)``, making each
    scenario exactly reproducible.  Rates are probabilities in [0, 1];
    ``crash_stages``/``fail_stages`` name deterministic injection
    points on top of the rates (the soak test's kill switches).
    """

    seed: int = 0
    crash_rate: float = 0.0      # kill the whole run (WorkerCrash)
    fail_rate: float = 0.0       # raise ChaosFailure in the stage
    timeout_rate: float = 0.0    # report the attempt as timed out
    corrupt_rate: float = 0.0    # flip a byte of the fresh cache entry
    crash_stages: tuple = ()
    fail_stages: tuple = ()

    def _roll(self, event: str, stage, attempt: int) -> float:
        return random.Random(
            f"{self.seed}|{event}|{stage}|{attempt}").random()

    # -- executor hooks ------------------------------------------------

    def pre_stage(self, stage: str) -> None:
        """Called by the executor before scheduling ``stage``; raising
        :class:`WorkerCrash` aborts the run like a killed process."""
        if stage in self.crash_stages or \
                self._roll("crash", stage, 0) < self.crash_rate:
            raise WorkerCrash(stage)

    def on_attempt(self, stage: str, attempt: int) -> None:
        """Called inside each execution attempt (worker side under the
        pool); raises a retryable fault or a timeout."""
        if stage in self.fail_stages or \
                self._roll("fail", stage, attempt) < self.fail_rate:
            raise ChaosFailure(
                f"chaos fault in {stage!r} attempt {attempt}")
        if self._roll("timeout", stage, attempt) < self.timeout_rate:
            raise StageTimeout(stage or "<chaos>", attempt + 1)

    def after_put(self, cache, key: str) -> None:
        """Called after a cache publish; may corrupt the disk entry to
        simulate bit rot (the checksum layer must catch it later)."""
        if self._roll("corrupt", key, 0) >= self.corrupt_rate:
            return
        if getattr(cache, "disk_dir", None) is None:
            return
        corrupt_file(cache.entry_path(key), seed=self.seed)


def corrupt_file(path, *, seed: int = 0) -> bool:
    """Flip one deterministic byte of ``path`` (bit-rot simulation)."""
    path = Path(path)
    if not path.exists():
        return False
    data = bytearray(path.read_bytes())
    if not data:
        return False
    pos = random.Random(f"{seed}|{path.name}").randrange(len(data))
    data[pos] ^= 0xFF
    path.write_bytes(bytes(data))
    return True


# ----------------------------------------------------------------------
# The unified flow API


def _retry_setup(dag, max_retries):
    """Resolve ``max_retries`` into (dag, budget): per-stage retry
    headroom on the default DAG, plus the run-wide budget cap.  A
    caller-supplied ``dag`` keeps its own per-stage retry settings."""
    if max_retries is None:
        return dag, None
    if dag is None:
        from repro.orchestrate.flows import build_implement_dag
        dag = build_implement_dag(retries=max_retries)
    return dag, RetryBudget(max_retries)


def run(subject, library, options=None, *, run_db=None, cache=None,
        telemetry=None, jobs: int = 1, strict: bool = True, dag=None,
        journal_root=None, run_id: str | None = None, chaos=None,
        max_retries: int | None = None, lint: str = "warn",
        sanitize: bool = False):
    """Run the implementation flow — the single documented entry point.

    The classic surface (``run_db``, ``cache``, ``telemetry``,
    ``jobs``, ``strict``, ``dag``) behaves exactly as on
    :func:`~repro.orchestrate.flows.implement_dag`, which this wraps.
    On top of it:

    * ``journal_root`` — checkpoint every completed stage under
      ``journal_root/run_id`` (``run_id`` is generated when omitted;
      read it back from ``result.run_id``).  If the process dies
      mid-run, :func:`resume_run` finishes the job.
    * ``chaos`` — a :class:`ChaosPolicy` injecting deterministic
      faults, for resilience testing.
    * ``max_retries`` — retry headroom: each stage may retry up to
      this many times, with the *total* across the run capped by a
      :class:`~repro.orchestrate.executor.RetryBudget`.  (The default
      DAG carries no per-stage retries, so this is also how transient
      — e.g. chaos-injected — faults get absorbed at all.)
    * ``lint`` — the static pre-run gate (see :mod:`repro.lint`):
      ``"strict"`` refuses to start on any unwaived error finding,
      ``"warn"`` (default) records findings, ``"off"`` skips.
    * ``sanitize`` — re-check netlist invariants at every stage
      boundary so the first corrupting stage is named in telemetry.

    Returns a :class:`~repro.core.flow.FlowResult`; its ``status`` is a
    :class:`~repro.core.flow.FlowStatus` and its ``run_id`` echoes the
    journal id when journaling was on.
    """
    from repro.orchestrate.flows import implement_dag
    journal = None
    if journal_root is not None:
        run_id = run_id or _new_run_id()
        journal = RunJournal.create(journal_root, run_id, subject,
                                    library, options)
    dag, budget = _retry_setup(dag, max_retries)
    try:
        result = implement_dag(
            subject, library, options, run_db=run_db, cache=cache,
            telemetry=telemetry, jobs=jobs, strict=strict, dag=dag,
            journal=journal, chaos=chaos, retry_budget=budget,
            lint=lint, sanitize=sanitize)
    except LintGateError:
        if journal is not None:
            journal.finish("failed")
        raise
    if journal is not None:
        journal.finish(result.status)
    return result


def resume_run(run_id: str, *, journal_root, run_db=None, cache=None,
               telemetry=None, jobs: int = 1, strict: bool = True,
               dag=None, chaos=None, max_retries: int | None = None,
               lint: str = "warn", sanitize: bool = False):
    """Finish an interrupted journaled run.

    Inputs (subject, library, options) are reloaded from the journal,
    every checkpointed stage whose blob verifies is replayed without
    re-execution (its span carries ``cache="journal"``), and only the
    frontier — stages the crash cut short, plus anything whose blob
    was corrupted and quarantined — actually runs.  The final metrics
    are bit-identical to an uninterrupted run; ``result.status`` is
    ``FlowStatus.RESUMED`` when any stage was replayed.

    With ``run_db``, a recovery record (replayed/executed counts) is
    logged via ``RunDatabase.log_recovery`` alongside the usual QoR
    and telemetry.
    """
    from repro.orchestrate.flows import implement_dag
    journal = RunJournal.open(journal_root, run_id)
    subject, library, options = journal.load_inputs()
    preloaded = journal.completed()
    dag, budget = _retry_setup(dag, max_retries)
    result = implement_dag(
        subject, library, options, run_db=run_db, cache=cache,
        telemetry=telemetry, jobs=jobs, strict=strict, dag=dag,
        journal=journal, preloaded=preloaded, chaos=chaos,
        retry_budget=budget, lint=lint, sanitize=sanitize)
    journal.finish(result.status)
    if run_db is not None and hasattr(run_db, "log_recovery"):
        from repro.learn.rundb import RecoveryRecord
        design = result.netlist.name if result.netlist is not None \
            else "<failed>"
        run_db.log_recovery(RecoveryRecord(
            run_id=run_id, design=design,
            replayed=len(preloaded),
            executed=len(result.stage_runtimes) - len(preloaded),
            status=str(result.status)))
    return result


def _new_run_id() -> str:
    return uuid.uuid4().hex[:12]
